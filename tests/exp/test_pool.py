"""Tests for the campaign pool: parallel == serial, resume, progress, fork_map."""

import dataclasses
import json

import pytest

from repro.analysis import run_trials
from repro.exp import (
    CampaignSpec,
    ResultStore,
    aggregate,
    fork_map,
    run_campaign,
    run_trial,
    run_trial_batch,
)
from repro import BlanketJammer, MultiCast


def small_campaign(**overrides):
    kwargs = dict(
        protocols=["multicast", "core"],
        jammers=["blanket", "sweep"],
        ns=[16],
        budget=4000,
        trials=3,
        base_seed=11,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def aggregate_bytes(records) -> str:
    """Canonical byte string of the aggregate statistics (the determinism oracle)."""
    cells = aggregate(records)
    return json.dumps(
        [
            {
                "cell": list(c.cell),
                "trials": c.trials,
                "success_rate": c.success_rate,
                "violations": c.violations,
                "summaries": {m: s.__dict__ for m, s in sorted(c.summaries.items())},
            }
            for c in cells
        ],
        sort_keys=True,
    )


class TestRunTrial:
    def test_reproducible_from_spec_alone(self):
        (spec,) = small_campaign(protocols=["multicast"], jammers=["blanket"], trials=1).trial_specs()
        a, b = run_trial(spec), run_trial(spec)
        a.wall_time = b.wall_time = 0.0
        assert a == b

    def test_jammer_none_runs_clean(self):
        (spec,) = small_campaign(protocols=["multicast"], jammers=["none"], trials=1).trial_specs()
        rec = run_trial(spec)
        assert rec.success and rec.adversary_spend == 0


class TestRunCampaign:
    def test_parallel_matches_serial_byte_identically(self):
        c = small_campaign()
        serial = run_campaign(c, workers=1)
        parallel = run_campaign(c, workers=3)
        assert aggregate_bytes(serial) == aggregate_bytes(parallel)

    def test_records_cover_grid_in_key_order(self):
        c = small_campaign(trials=2)
        records = run_campaign(c, workers=2)
        assert len(records) == len(c)
        assert [r.key for r in records] == sorted(r.key for r in records)
        assert {r.key for r in records} == {s.key() for s in c.trial_specs()}

    def test_resume_skips_completed_trials(self, tmp_path):
        c = small_campaign(protocols=["multicast"], trials=3)
        path = tmp_path / "r.jsonl"
        full = run_campaign(c, ResultStore(str(path)), workers=1)
        # second run with the same store: nothing pending
        ran = []
        again = run_campaign(
            c,
            ResultStore(str(path)),
            workers=1,
            progress=lambda done, total, rec: ran.append(rec.key),
        )
        assert ran == []
        assert aggregate_bytes(again) == aggregate_bytes(full)

    def test_partial_store_resumes_to_identical_aggregates(self, tmp_path):
        c = small_campaign(protocols=["multicast"], trials=4)
        reference = run_campaign(c, workers=1)
        # simulate an interrupt: only half the records made it to disk
        path = tmp_path / "r.jsonl"
        with ResultStore(str(path)) as store:
            for rec in reference[: len(reference) // 2]:
                store.append(rec)
        ran = []
        resumed = run_campaign(
            c,
            ResultStore(str(path)),
            workers=2,
            progress=lambda done, total, rec: ran.append(rec.key),
        )
        assert len(ran) == len(reference) - len(reference) // 2
        assert aggregate_bytes(resumed) == aggregate_bytes(reference)

    def test_shared_store_returns_only_campaign_records(self, tmp_path):
        path = tmp_path / "shared.jsonl"
        a = small_campaign(protocols=["multicast"], jammers=["blanket"], trials=2)
        b = small_campaign(protocols=["core"], jammers=["sweep"], trials=2)
        with ResultStore(str(path)) as store:
            run_campaign(a, store, workers=1)
        with ResultStore(str(path)) as store:
            out = run_campaign(b, store, workers=1)
        assert {r.key for r in out} == {s.key() for s in b.trial_specs()}
        assert len(ResultStore(str(path))) == len(a) + len(b)

    def test_progress_counts_pending_only(self, tmp_path):
        c = small_campaign(protocols=["multicast"], jammers=["blanket"], trials=2)
        seen = []
        run_campaign(c, workers=1, progress=lambda d, t, r: seen.append((d, t)))
        assert seen == [(1, 2), (2, 2)]


class TestForkMap:
    def test_order_and_closure_capture(self):
        offset = 100
        out = fork_map(lambda x: x + offset, list(range(20)), workers=4)
        assert out == [x + 100 for x in range(20)]

    def test_serial_fallback_identical(self):
        fn = lambda x: x * x  # noqa: E731
        assert fork_map(fn, range(8), workers=1) == fork_map(fn, range(8), workers=3)

    def test_run_trials_workers_match_serial(self):
        def batch(workers):
            return run_trials(
                lambda: MultiCast(16),
                16,
                lambda s: BlanketJammer(3000, channels=0.9, placement="random", seed=s),
                trials=4,
                base_seed=3,
                workers=workers,
            )

        b1, b3 = batch(1), batch(3)
        assert [r.slots for r in b1.results] == [r.slots for r in b3.results]
        assert [r.max_cost for r in b1.results] == [r.max_cost for r in b3.results]
        assert [r.adversary_spend for r in b1.results] == [
            r.adversary_spend for r in b3.results
        ]


class TestBatchedBackend:
    """The serial campaign path batches each cell's trials; records (minus
    wall_time, which reflects execution shape) must match the scalar loop."""

    def test_batched_serial_equals_scalar_serial(self):
        c = small_campaign()
        batched = run_campaign(c, workers=1)  # backend="auto"
        scalar = run_campaign(c, workers=1, backend="scalar")
        assert aggregate_bytes(batched) == aggregate_bytes(scalar)
        for a, b in zip(batched, scalar):
            a = dataclasses.replace(a, wall_time=0.0)
            b = dataclasses.replace(b, wall_time=0.0)
            assert a == b

    def test_run_trial_batch_matches_run_trial(self):
        specs = small_campaign(
            protocols=["multicast"], jammers=["sweep"], trials=4
        ).trial_specs()
        batched = list(run_trial_batch(specs, lane_width=3))
        for spec, record in zip(specs, batched):
            reference = run_trial(spec)
            assert dataclasses.replace(record, wall_time=0.0) == dataclasses.replace(
                reference, wall_time=0.0
            )

    def test_lane_width_defaults_to_protocol_preference(self, monkeypatch):
        """With no explicit lane_width, run_trial_batch honors the built
        protocol's advertised stream_lane_width (MultiCastAdv streams wide
        because refill keeps wide batches occupied) and falls back to the
        module LANE_WIDTH otherwise — a throughput knob only, so asserting
        the stream dispatch suffices."""
        import repro.exp.pool as pool

        calls = []
        real = pool.run_broadcast_stream

        def spy(protocol, n, adversaries, seeds, **kw):
            calls.append((len(seeds), kw.get("lane_width")))
            return real(protocol, n, adversaries, seeds, **kw)

        monkeypatch.setattr(pool, "run_broadcast_stream", spy)
        adv = small_campaign(
            protocols=["adv"], jammers=["none"], trials=3, budget=0,
            protocol_knobs={"adv": {"b": 0.01, "max_epochs": 2}},
        ).trial_specs()
        list(run_trial_batch(adv))
        # one stream over all pending specs; preference 32 caps at 3 inside
        assert calls == [(3, 32)]
        calls.clear()
        mc = small_campaign(protocols=["multicast"], jammers=["none"], trials=3).trial_specs()
        list(run_trial_batch(mc))
        assert calls == [(3, 2)]  # DEFAULT_LANE_WIDTH = 2 slots

    def test_run_trial_batch_rejects_mixed_cells(self):
        mixed = small_campaign(protocols=["multicast", "core"], trials=1).trial_specs()
        with pytest.raises(ValueError):
            list(run_trial_batch(mixed))

    def test_run_trial_batch_empty(self):
        assert list(run_trial_batch([])) == []

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(small_campaign(), workers=1, backend="turbo")

    def test_resume_skips_with_batched_backend(self, tmp_path):
        c = small_campaign(protocols=["multicast"], jammers=["blanket"], trials=4)
        path = tmp_path / "r.jsonl"
        full = run_campaign(c, ResultStore(str(path)), workers=1)
        ran = []
        again = run_campaign(
            c,
            ResultStore(str(path)),
            workers=1,
            progress=lambda done, total, rec: ran.append(rec.key),
        )
        assert ran == []
        assert aggregate_bytes(again) == aggregate_bytes(full)
