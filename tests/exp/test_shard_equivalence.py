"""Differential suite: sharded campaigns are row-identical to serial ones.

The contract under test (DESIGN.md section 10): for a fixed campaign spec,
the merged store produced by any (workers, backend) combination holds exactly
the same rows — same keys, same payloads, everything except ``wall_time`` —
as the ``workers=1, backend=batched`` reference run, up to canonical key
order.  Trial seeds derive from spec identity alone, so scheduling must never
leak into results; this suite is what keeps that true as the pool evolves.
"""

import json
import os

from repro.exp import (
    CampaignSpec,
    ResultStore,
    aggregate,
    run_campaign,
    shard_paths,
)

CONFIGS = [
    ("serial-scalar", 1, "scalar"),
    ("serial-batched", 1, "batched"),
    ("sharded-2", 2, "auto"),
    ("sharded-3", 3, "auto"),
    ("sharded-2-scalar", 2, "scalar"),
]


def small_campaign(**overrides):
    kwargs = dict(
        protocols=["multicast", "core"],
        jammers=["blanket", "sweep"],
        ns=[16],
        budget=4000,
        trials=5,
        base_seed=11,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def canonical_rows(path):
    """The store's rows as key-sorted dicts, with the one physical
    (non-derived) field — wall_time — removed."""
    rows = []
    with open(path) as fh:
        for line in fh:
            if not line.strip():
                continue
            data = json.loads(line)
            data.pop("wall_time", None)
            rows.append(data)
    return sorted(rows, key=lambda d: d["key"])


def run_config(tmp_path, name, workers, backend, campaign):
    path = str(tmp_path / f"{name}.jsonl")
    with ResultStore(path) as store:
        records = run_campaign(campaign, store, workers=workers, backend=backend)
    return path, records


class TestShardEquivalence:
    def test_every_config_matches_the_batched_reference(self, tmp_path):
        campaign = small_campaign()
        reference = None
        for name, workers, backend in CONFIGS:
            path, records = run_config(tmp_path, name, workers, backend, campaign)
            assert len(records) == len(campaign)
            rows = canonical_rows(path)
            assert len(rows) == len(campaign), name
            if reference is None:
                reference = rows
            else:
                assert rows == reference, f"{name} diverged from the reference"

    def test_merge_leaves_no_shard_files(self, tmp_path):
        campaign = small_campaign(trials=3)
        path, _ = run_config(tmp_path, "clean", 3, "auto", campaign)
        assert shard_paths(path) == []
        assert [p for p in os.listdir(tmp_path) if "shard" in p] == []

    def test_sharded_memory_store_matches_serial(self, tmp_path):
        campaign = small_campaign(trials=3)
        serial = run_campaign(campaign, ResultStore(None), workers=1)
        sharded = run_campaign(campaign, ResultStore(None), workers=2)

        def strip(records):
            rows = []
            for r in sorted(records, key=lambda r: r.key):
                d = dict(r.__dict__)
                d.pop("wall_time")
                rows.append(d)
            return rows

        assert strip(serial) == strip(sharded)

    def test_aggregates_are_byte_identical_across_configs(self, tmp_path):
        campaign = small_campaign(trials=3)
        blobs = set()
        for name, workers, backend in CONFIGS:
            _, records = run_config(tmp_path, f"agg-{name}", workers, backend, campaign)
            cells = aggregate(records)
            blobs.add(
                json.dumps(
                    [
                        {
                            "cell": list(c.cell),
                            "trials": c.trials,
                            "success_rate": c.success_rate,
                            "summaries": {
                                m: s.__dict__ for m, s in sorted(c.summaries.items())
                            },
                        }
                        for c in cells
                    ],
                    sort_keys=True,
                )
            )
        assert len(blobs) == 1

    def test_sharded_resume_completes_a_partial_store(self, tmp_path):
        campaign = small_campaign(trials=4)
        full_path, _ = run_config(tmp_path, "full", 1, "batched", campaign)
        full_rows = canonical_rows(full_path)

        # seed a store with a strict prefix of the rows, then resume sharded
        partial_path = str(tmp_path / "partial.jsonl")
        with open(full_path) as src, open(partial_path, "w") as dst:
            for i, line in enumerate(src):
                if i < 5:
                    dst.write(line)
        with ResultStore(partial_path) as store:
            pre = len(store)
            records = run_campaign(campaign, store, workers=2)
        assert pre == 5
        assert len(records) == len(campaign)
        assert canonical_rows(partial_path) == full_rows

    def test_reactive_jammers_shard_too(self, tmp_path):
        # reactive cells route to the arena runtime inside each worker; the
        # scheduling split must not disturb them either
        campaign = small_campaign(
            protocols=["multicast"], jammers=["trailing"], trials=4, budget=2000
        )
        a, _ = run_config(tmp_path, "reactive-serial", 1, "auto", campaign)
        b, _ = run_config(tmp_path, "reactive-sharded", 2, "auto", campaign)
        assert canonical_rows(a) == canonical_rows(b)
