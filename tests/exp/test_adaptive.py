"""Adaptive stopping: synthetic streams, determinism, resume, CLI smoke.

The scheduler's contract (DESIGN.md section 10.3): each cell runs seed waves
until the relative 95% CI half-width of the target metric reaches
``ci_target`` or the cell hits ``max_trials``; decisions are taken only on
complete trial prefixes at wave boundaries, so the trial set — and the
recorded stopping decision — is a pure function of the spec, interrupted or
not.  Synthetic value streams pin the decision logic without running trials;
the e2e tests run real (tiny) campaigns through ``run_campaign`` and the CLI.
"""

import dataclasses
import json

import pytest

from repro.cli import main
from repro.exp import (
    CampaignSpec,
    ResultStore,
    StoppingRule,
    AdaptiveController,
    run_campaign,
)
from repro.exp.adaptive import MIN_TRIALS
from repro.exp.store import TrialRecord


def adaptive_campaign(**overrides):
    kwargs = dict(
        protocols=["multicast"],
        jammers=["blanket"],
        ns=[16],
        budget=4000,
        trials=2,
        base_seed=11,
        ci_target=0.25,
        ci_metric="max_cost",
        max_trials=8,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def synthetic_record(spec, **metrics):
    """A TrialRecord for ``spec`` with chosen metric values (defaults inert)."""
    values = dict(
        success=True,
        slots=100,
        max_cost=10,
        mean_cost=5.0,
        adversary_spend=50,
        dissemination_slot=90,
        halted_uninformed=0,
        periods=3,
    )
    values.update(metrics)
    return TrialRecord(
        key=spec.key(),
        protocol=spec.protocol,
        jammer=spec.jammer,
        n=spec.n,
        budget=spec.budget,
        trial=spec.trial,
        channels=spec.channels,
        **values,
    )


def feed(controller, campaign, values, metric="max_cost"):
    """Observe one synthetic trial per value, in trial order, for the (single)
    cell of ``campaign``."""
    (template,) = campaign.cell_templates()
    for t, value in enumerate(values):
        spec = dataclasses.replace(template, trial=t)
        controller.observe(synthetic_record(spec, **{metric: value}))


class TestStoppingRule:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown ci metric"):
            StoppingRule(metric="nope", target=0.1, wave=2, max_trials=4)
        with pytest.raises(ValueError, match="positive"):
            StoppingRule(metric="slots", target=0.0, wave=2, max_trials=4)
        with pytest.raises(ValueError, match="below the wave size"):
            StoppingRule(metric="slots", target=0.1, wave=4, max_trials=2)

    def test_boundaries_are_wave_multiples_capped(self):
        rule = StoppingRule(metric="slots", target=0.1, wave=3, max_trials=10)
        assert rule.boundaries() == [3, 6, 9, 10]
        exact = StoppingRule(metric="slots", target=0.1, wave=5, max_trials=10)
        assert exact.boundaries() == [5, 10]

    def test_spec_validation_mirrors_the_rule(self):
        with pytest.raises(ValueError, match="ci_target"):
            adaptive_campaign(ci_target=-1.0)
        with pytest.raises(ValueError, match="below the wave size"):
            adaptive_campaign(trials=4, max_trials=2)
        assert adaptive_campaign(max_trials=None).resolved_max_trials() == 20

    def test_suffix_embeds_the_whole_rule(self):
        a = StoppingRule(metric="slots", target=0.1, wave=2, max_trials=8)
        b = StoppingRule(metric="slots", target=0.2, wave=2, max_trials=8)
        c = StoppingRule(metric="slots", target=0.1, wave=2, max_trials=6)
        assert len({a.suffix(), b.suffix(), c.suffix()}) == 3


class TestDecisions:
    def test_tight_stream_stops_at_first_eligible_boundary(self):
        campaign = adaptive_campaign(trials=2, max_trials=8)
        controller = AdaptiveController(campaign, ResultStore(None))
        feed(controller, campaign, [10, 10])  # constant -> ci95 = 0
        (decision,) = controller.take_decisions()
        assert decision.reason == "ci-target"
        assert decision.trials == 2
        assert decision.achieved == 0.0
        assert controller.done
        assert controller.next_wave() == []

    def test_min_trials_guard_blocks_single_trial_stops(self):
        # wave size 1: the k=1 boundary has ci95 = 0 by construction and
        # must NOT satisfy the target; the earliest legal stop is k=2
        campaign = adaptive_campaign(trials=1, max_trials=8)
        controller = AdaptiveController(campaign, ResultStore(None))
        feed(controller, campaign, [10])
        assert controller.take_decisions() == []
        assert len(controller.next_wave()) == 1  # schedule trial 1
        feed(controller, campaign, [10, 10])
        (decision,) = controller.take_decisions()
        assert decision.trials == MIN_TRIALS == 2

    def test_noisy_stream_runs_to_the_cap(self):
        campaign = adaptive_campaign(trials=2, max_trials=6, ci_target=0.01)
        controller = AdaptiveController(campaign, ResultStore(None))
        values = [1, 100, 2, 200, 3, 300]
        for stop in (2, 4):
            feed(controller, campaign, values[:stop])
            assert controller.take_decisions() == []
            assert len(controller.next_wave()) == 2
        feed(controller, campaign, values)
        (decision,) = controller.take_decisions()
        assert decision.reason == "max-trials"
        assert decision.trials == 6
        assert decision.achieved > 0.01

    def test_nan_metric_never_satisfies_the_target(self):
        # dissemination_slot is None on failed trials -> NaN half-width;
        # precision must never be declared on an undefined metric
        campaign = adaptive_campaign(
            trials=2, max_trials=4, ci_metric="dissemination_slot", ci_target=10.0
        )
        controller = AdaptiveController(campaign, ResultStore(None))
        (template,) = campaign.cell_templates()
        for t in range(4):
            spec = dataclasses.replace(template, trial=t)
            controller.observe(
                synthetic_record(spec, success=False, dissemination_slot=None)
            )
        (decision,) = controller.take_decisions()
        assert decision.reason == "max-trials"

    def test_incomplete_prefix_defers_the_decision(self):
        # only trial 1 observed: the k=2 boundary is incomplete (trial 0
        # missing), so no decision and the wave re-schedules the hole
        campaign = adaptive_campaign(trials=2, max_trials=8)
        controller = AdaptiveController(campaign, ResultStore(None))
        (template,) = campaign.cell_templates()
        controller.observe(synthetic_record(dataclasses.replace(template, trial=1)))
        assert controller.take_decisions() == []
        wave = controller.next_wave()
        assert [s.trial for s in wave] == [0]

    def test_recorded_decision_is_trusted_only_under_the_same_rule(self):
        campaign = adaptive_campaign(trials=2, max_trials=8)
        store = ResultStore(None)
        controller = AdaptiveController(campaign, store)
        feed(controller, campaign, [10, 10])
        (decision,) = controller.take_decisions()
        store.append_stopping(decision)

        # same rule: the cell arrives already-stopped, nothing to run
        again = AdaptiveController(campaign, store)
        assert again.done
        assert again.take_decisions() == []

        # tighter target: the stale decision must not be trusted
        tighter = AdaptiveController(
            dataclasses.replace(campaign, ci_target=0.001), store
        )
        assert not tighter.done


class TestAdaptiveCampaigns:
    def test_spends_fewer_trials_than_the_fixed_equivalent(self):
        campaign = adaptive_campaign(
            protocols=["multicast", "core"], jammers=["blanket", "sweep"],
            ci_target=0.5, trials=2, max_trials=8,
        )
        store = ResultStore(None)
        records = run_campaign(campaign, store, workers=1)
        stops = store.stopping_records()
        assert len(stops) == 4  # one decision per cell
        fixed_equivalent = len(campaign.protocols) * len(campaign.jammers) * 8
        assert len(records) < fixed_equivalent
        for stop in stops:
            if stop.reason == "ci-target":
                assert stop.achieved <= campaign.ci_target
                assert stop.trials >= MIN_TRIALS

    def test_adaptive_rerun_is_deterministic(self, tmp_path):
        campaign = adaptive_campaign(ci_target=0.3, trials=2, max_trials=6)
        paths = [str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")]
        for path in paths:
            with ResultStore(path) as store:
                run_campaign(campaign, store, workers=1)

        def rows(path):
            out = []
            with open(path) as fh:
                for line in fh:
                    data = json.loads(line)
                    data.pop("wall_time", None)
                    out.append(data)
            return out

        assert rows(paths[0]) == rows(paths[1])

    def test_adaptive_trials_are_a_prefix_of_the_fixed_run(self):
        campaign = adaptive_campaign(ci_target=0.3, trials=2, max_trials=6)
        adaptive_records = run_campaign(campaign, ResultStore(None), workers=1)
        count = len(adaptive_records)
        fixed = dataclasses.replace(
            campaign, ci_target=None, max_trials=None, trials=count
        )
        fixed_records = run_campaign(fixed, ResultStore(None), workers=1)

        def strip(records):
            rows = []
            for r in sorted(records, key=lambda r: r.key):
                d = dict(r.__dict__)
                d.pop("wall_time")
                rows.append(d)
            return rows

        assert strip(adaptive_records) == strip(fixed_records)

    def test_adaptive_resume_completes_interrupted_store(self, tmp_path):
        campaign = adaptive_campaign(ci_target=0.3, trials=2, max_trials=6)
        full = str(tmp_path / "full.jsonl")
        with ResultStore(full) as store:
            run_campaign(campaign, store, workers=1)
        full_lines = open(full).read().splitlines()

        partial = str(tmp_path / "partial.jsonl")
        trial_lines = [l for l in full_lines if '"kind"' not in l]
        with open(partial, "w") as fh:
            fh.write("\n".join(trial_lines[:1]) + "\n")
        with ResultStore(partial) as store:
            run_campaign(campaign, store, workers=1)
        partial_lines = open(partial).read().splitlines()

        def canonical(lines):
            rows = []
            for line in lines:
                data = json.loads(line)
                data.pop("wall_time", None)
                rows.append(data)
            return sorted(rows, key=lambda d: d["key"])

        assert canonical(partial_lines) == canonical(full_lines)


class TestCliSmoke:
    def test_sweep_ci_target_flag(self, tmp_path, capsys):
        store = str(tmp_path / "adaptive.jsonl")
        code = main(
            [
                "sweep",
                "--protocols", "multicast",
                "--jammers", "blanket",
                "--n", "16",
                "--budget", "4000",
                "--trials", "2",
                "--ci-target", "0.5",
                "--ci-metric", "max_cost",
                "--max-trials", "8",
                "--workers", "1",
                "--quiet",
                "--store", store,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "adaptive stopping" in out
        assert "target 0.5 on max_cost" in out
        lines = [json.loads(l) for l in open(store).read().splitlines()]
        stops = [l for l in lines if l.get("kind") == "stopping"]
        assert len(stops) == 1
        assert stops[0]["reason"] in ("ci-target", "max-trials")

    def test_bad_ci_target_exits_with_message(self, tmp_path):
        with pytest.raises(SystemExit, match="ci_target"):
            main(
                [
                    "sweep",
                    "--protocols", "multicast",
                    "--jammers", "blanket",
                    "--n", "16",
                    "--trials", "2",
                    "--ci-target", "-0.5",
                    "--workers", "1",
                    "--quiet",
                ]
            )
