"""Regression: the scalar-fallback warning fires once per campaign, not once
per lane pass.

``run_broadcast_batch`` warns on stderr when lanes run the scalar block
engine instead of batching (protocol without ``run_batch``, or a mixed
reactive/oblivious batch).  A campaign pushes one batch call per kernel pass,
so the naive warning repeated once per pass; the fix collects the counts in a
campaign-scoped :class:`FallbackNotes` and emits one summary line per cause.
These tests run serially (``workers=1``) so the monkeypatched protocol class
is visible to the execution path.
"""

import pytest

from repro.core import MultiCast
from repro.core.batch import (
    FallbackNotes,
    collect_fallback_notes,
    run_broadcast_batch,
)
from repro.exp import CampaignSpec, ResultStore, run_campaign


@pytest.fixture
def batchless_multicast(monkeypatch):
    """MultiCast with both lane kernels hidden: every lane scalar-falls-back
    (a streamless protocol first falls back to fixed blocks, which then
    dispatch per lane)."""
    monkeypatch.delattr(MultiCast, "run_batch")
    monkeypatch.delattr(MultiCast, "run_stream")


def fallback_campaign(trials):
    return CampaignSpec(
        protocols=["multicast"],
        jammers=["blanket"],
        ns=[16],
        budget=2000,
        trials=trials,
        base_seed=7,
    )


class TestFallbackNotes:
    def test_tally_merges_lanes_and_passes(self):
        notes = FallbackNotes()
        notes.add("MultiCast", "has no run_batch", 2)
        notes.add("MultiCast", "has no run_batch", 2)
        notes.add("MultiCast", "split a mixed reactive/oblivious batch", 1)
        other = FallbackNotes()
        other.merge(notes.snapshot())
        other.add("MultiCast", "has no run_batch", 1)
        assert other.counts[("MultiCast", "has no run_batch")] == [5, 3]
        lines = other.summary_lines()
        assert len(lines) == 2
        assert "5 lane(s) in 3 kernel pass(es)" in lines[0]

    def test_uncollected_call_still_warns_per_call(self, batchless_multicast, capsys):
        for seed in (0, 1):
            run_broadcast_batch(MultiCast(16), 16, None, [seed, seed + 10])
        err = capsys.readouterr().err
        assert err.count("scalar fallback") == 2  # legacy behavior, unscoped

    def test_collector_silences_the_calls_and_keeps_the_counts(
        self, batchless_multicast, capsys
    ):
        with collect_fallback_notes() as notes:
            for seed in (0, 1, 2):
                run_broadcast_batch(MultiCast(16), 16, None, [seed, seed + 10])
        assert capsys.readouterr().err == ""
        assert notes.counts[("MultiCast", "has no run_batch")] == [6, 3]

    def test_campaign_warns_once_with_the_full_count(
        self, batchless_multicast, capsys
    ):
        # 6 trials at lane width 2 = 3 kernel passes; the old behavior
        # printed 3 warnings, the campaign must print exactly one summary
        run_campaign(fallback_campaign(trials=6), ResultStore(None), workers=1)
        err = capsys.readouterr().err
        lines = [l for l in err.splitlines() if "scalar fallback" in l]
        assert len(lines) == 1
        assert "6 lane(s) in 3 kernel pass(es)" in lines[0]

    def test_fully_batched_campaign_warns_nothing(self, capsys):
        run_campaign(fallback_campaign(trials=2), ResultStore(None), workers=1)
        assert "scalar fallback" not in capsys.readouterr().err

    def test_fallback_results_identical_to_batched(self, monkeypatch, capsys):
        campaign = fallback_campaign(trials=4)
        batched = run_campaign(campaign, ResultStore(None), workers=1)
        monkeypatch.delattr(MultiCast, "run_batch")
        fell_back = run_campaign(campaign, ResultStore(None), workers=1)

        def strip(records):
            rows = []
            for r in sorted(records, key=lambda r: r.key):
                d = dict(r.__dict__)
                d.pop("wall_time")
                rows.append(d)
            return rows

        assert strip(batched) == strip(fell_back)
