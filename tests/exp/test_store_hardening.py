"""Hardened store writes and reads: ENOSPC surfacing, checksummed rows.

The write side must turn a bare ``OSError`` into a :class:`StoreWriteError`
whose message tells the operator what to do; the read side must reject
(loudly) any row whose payload no longer matches its ``cs`` checksum, so
silent bit-rot re-runs the trial instead of polluting the aggregates.
"""

import errno
import json

import pytest

from repro.exp.shard import shard_append
from repro.exp.store import (
    ResultStore,
    StoreWriteError,
    TrialRecord,
    checksummed_line,
    iter_jsonl_records,
    row_intact,
)


def _record(t=0, **overrides):
    base = dict(
        key=f"multicast/blanket/n16/T4000/s11/t{t}",
        protocol="multicast",
        jammer="blanket",
        n=16,
        budget=4000,
        trial=t,
        success=True,
        slots=100 + t,
        max_cost=10,
        mean_cost=5.0,
        adversary_spend=4000,
        dissemination_slot=90,
        halted_uninformed=0,
        periods=3,
        wall_time=1.25,
    )
    base.update(overrides)
    return TrialRecord(**base)


class _FailingHandle:
    """A file handle whose writes fail like a full disk."""

    name = "/fake/store.jsonl"

    def __init__(self, err=errno.ENOSPC, fail_on="write"):
        self.err = err
        self.fail_on = fail_on
        self.written = []

    def write(self, text):
        if self.fail_on == "write":
            raise OSError(self.err, "No space left on device")
        self.written.append(text)
        return len(text)

    def flush(self):
        if self.fail_on == "flush":
            raise OSError(self.err, "No space left on device")


class TestWriteErrors:
    def test_store_append_surfaces_enospc_actionably(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.jsonl"))
        store._fh = _FailingHandle()
        with pytest.raises(StoreWriteError) as info:
            store.append(_record())
        assert "disk full (ENOSPC)" in str(info.value)
        assert "re-run the same command to resume" in str(info.value)
        assert info.value.errno == errno.ENOSPC

    def test_shard_append_wraps_write_failure(self):
        fh = _FailingHandle()
        with pytest.raises(StoreWriteError, match="disk full"):
            shard_append(fh, ['{"key": "a"}'])

    def test_shard_append_wraps_flush_failure(self):
        # a short write can surface only at flush time (buffered IO)
        fh = _FailingHandle(fail_on="flush")
        with pytest.raises(StoreWriteError, match="disk full"):
            shard_append(fh, ['{"key": "a"}'])

    def test_other_oserrors_keep_their_identity(self):
        fh = _FailingHandle(err=errno.EIO)
        with pytest.raises(StoreWriteError, match="cannot append to"):
            shard_append(fh, ['{"key": "a"}'])

    def test_store_write_error_is_an_oserror(self):
        assert issubclass(StoreWriteError, OSError)


class TestChecksums:
    def test_roundtrip_row_is_intact(self):
        line = _record().to_json_line()
        data = json.loads(line)
        assert "cs" in data
        assert row_intact(data)

    def test_wall_time_does_not_enter_the_checksum(self):
        a = json.loads(_record(wall_time=1.0).to_json_line())
        b = json.loads(_record(wall_time=9.0).to_json_line())
        assert a["cs"] == b["cs"]
        assert row_intact(a) and row_intact(b)

    def test_legacy_rows_without_cs_pass(self):
        assert row_intact({"key": "old-row", "slots": 5})

    def test_flipped_field_fails(self):
        data = json.loads(checksummed_line({"key": "k", "slots": 5}))
        data["slots"] = 6
        assert not row_intact(data)

    def test_resume_rejects_hand_corrupted_row(self, tmp_path, capsys):
        path = str(tmp_path / "s.jsonl")
        with ResultStore(path) as store:
            store.append(_record(0))
            store.append(_record(1))
        # corrupt row 0 on disk the way bit-rot would: payload changes,
        # checksum does not
        lines = open(path).read().splitlines()
        rotted = json.loads(lines[0])
        rotted["slots"] = 999999
        lines[0] = json.dumps(rotted, sort_keys=True)
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")

        reopened = ResultStore(path)
        assert reopened.completed_keys() == {_record(1).key}
        err = capsys.readouterr().err
        assert "checksum mismatch (corrupt row)" in err
        assert f"{path}:1" in err

    def test_iter_records_skips_torn_tail_loudly(self, tmp_path, capsys):
        path = str(tmp_path / "s.jsonl")
        with open(path, "w") as fh:
            fh.write(_record(0).to_json_line() + "\n")
            fh.write('{"key": "half-a-row", "slo')  # no newline: torn write
        records = list(iter_jsonl_records(path))
        assert [r.key for r in records] == [_record(0).key]
        assert "undecodable JSON (torn write)" in capsys.readouterr().err
