"""Tests for campaign/trial specs: grids, keys, seeds, JSON round-trips."""

import json

import pytest

from repro.exp import CampaignSpec, TrialSpec, UnknownNameError


class TestTrialSpec:
    def test_key_is_stable_and_unique(self):
        a = TrialSpec("multicast", "blanket", 64, 1000, trial=0, base_seed=7)
        b = TrialSpec("multicast", "blanket", 64, 1000, trial=1, base_seed=7)
        c = TrialSpec("multicast", "sweep", 64, 1000, trial=0, base_seed=7)
        assert a.key() == "multicast/blanket/n64/T1000/s7/t0"
        assert len({a.key(), b.key(), c.key()}) == 3

    def test_aliases_canonicalize(self):
        assert TrialSpec("mc", "blanket", 64, 0, 0, 0).protocol == "multicast"
        assert TrialSpec("MultiCastAdv", "blanket", 64, 0, 0, 0).protocol == "adv"

    def test_unknown_names_rejected(self):
        with pytest.raises(UnknownNameError):
            TrialSpec("carrier-pigeon", "blanket", 64, 0, 0, 0)
        with pytest.raises(UnknownNameError):
            TrialSpec("multicast", "emp", 64, 0, 0, 0)

    def test_seeds_independent_and_identity_derived(self):
        a = TrialSpec("multicast", "blanket", 64, 1000, trial=0, base_seed=7)
        b = TrialSpec("multicast", "blanket", 64, 1000, trial=1, base_seed=7)
        assert a.net_seed() != a.jammer_seed()
        assert a.net_seed() != b.net_seed()
        # identity, not object: a fresh equal spec derives the same seeds
        again = TrialSpec("multicast", "blanket", 64, 1000, trial=0, base_seed=7)
        assert again.net_seed() == a.net_seed()

    def test_key_differentiates_measurement_settings(self):
        base = TrialSpec("multicast", "blanket", 64, 1000, trial=0, base_seed=7)
        capped = TrialSpec(
            "multicast", "blanket", 64, 1000, trial=0, base_seed=7, max_slots=1000
        )
        knobbed = TrialSpec(
            "multicast", "blanket", 64, 1000, trial=0, base_seed=7,
            protocol_knobs={"a": 0.1},
        )
        rejammed = TrialSpec(
            "multicast", "blanket", 64, 1000, trial=0, base_seed=7,
            jammer_knobs={"channels": 0.5},
        )
        keys = {base.key(), capped.key(), knobbed.key(), rejammed.key()}
        assert len(keys) == 4, "settings that change the measurement must change the key"
        # default settings keep the short, stable key shape
        assert base.key() == "multicast/blanket/n64/T1000/s7/t0"

    def test_dict_round_trip(self):
        a = TrialSpec("core", "bursts", 32, 500, trial=3, base_seed=1, channels=4)
        assert TrialSpec.from_dict(a.to_dict()) == a


class TestCampaignSpec:
    def test_grid_size_and_order(self):
        c = CampaignSpec(
            protocols=["multicast", "core"],
            jammers=["blanket", "sweep", "bursts"],
            ns=[16, 32],
            trials=4,
        )
        specs = c.trial_specs()
        assert len(specs) == len(c) == 2 * 3 * 2 * 4
        assert specs == c.trial_specs()  # deterministic order
        assert len({s.key() for s in specs}) == len(specs)

    def test_json_round_trip(self):
        c = CampaignSpec(
            protocols=["multicast"],
            jammers=["blanket"],
            ns=[64],
            budget=12345,
            trials=2,
            base_seed=9,
            protocol_knobs={"multicast": {"a": 0.01}},
        )
        back = CampaignSpec.from_json(c.to_json())
        assert back == c
        assert json.loads(c.to_json())["budget"] == 12345

    def test_file_round_trip(self, tmp_path):
        c = CampaignSpec(protocols=["core"], jammers=["none"], trials=1)
        path = tmp_path / "spec.json"
        c.save(path)
        assert CampaignSpec.load(path) == c

    def test_alias_keyed_knobs_canonicalize(self):
        c = CampaignSpec(
            protocols=["mc"],
            jammers=["blanket"],
            trials=1,
            protocol_knobs={"mc": {"a": 0.01}},
        )
        (spec,) = c.trial_specs()
        assert spec.protocol_knobs == {"a": 0.01}
        # knobbed key must differ from the knob-free campaign's key
        plain = CampaignSpec(protocols=["multicast"], jammers=["blanket"], trials=1)
        assert spec.key() != plain.trial_specs()[0].key()

    def test_unknown_knob_names_rejected(self):
        with pytest.raises(UnknownNameError):
            CampaignSpec(
                protocols=["multicast"],
                jammers=["blanket"],
                protocol_knobs={"pigeon": {"a": 1}},
            )

    def test_knobs_reach_trials(self):
        c = CampaignSpec(
            protocols=["multicast"],
            jammers=["blanket"],
            trials=1,
            protocol_knobs={"multicast": {"a": 0.01}},
            jammer_knobs={"blanket": {"channels": 0.5}},
        )
        (spec,) = c.trial_specs()
        assert spec.protocol_knobs == {"a": 0.01}
        assert spec.jammer_knobs == {"channels": 0.5}

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            CampaignSpec(protocols=[], jammers=["blanket"])
        with pytest.raises(ValueError):
            CampaignSpec(protocols=["core"], jammers=["blanket"], trials=0)
