"""Supervisor units: policy backoff, bisect/quarantine, the ledger.

The end-to-end recovery paths live in ``tests/faults/``; these tests pin
the pieces in isolation — the backoff curve, the parent-side bisect that
narrows a failing block to its culprit trial, and the quarantine ledger's
read/write discipline.
"""

import types

import pytest

from repro.core.batch import FallbackNotes
from repro.exp import ResultStore
from repro.exp.spec import TrialSpec
from repro.exp.store import append_jsonl_line
from repro.exp.supervisor import (
    QuarantineRecord,
    RecoveryLog,
    Supervisor,
    SupervisorPolicy,
    quarantine_path,
    read_quarantine,
    remaining_quarantined,
)


def _spec(t):
    return TrialSpec(
        protocol="multicast", jammer="blanket", n=16, budget=4000,
        base_seed=11, trial=t,
    )


class TestSupervisorPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = SupervisorPolicy(backoff_base=0.1, backoff_cap=0.5)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)
        assert policy.backoff(4) == pytest.approx(0.5)  # capped
        assert policy.backoff(10) == pytest.approx(0.5)


class _StubPool:
    """Stands in for repro.exp.pool inside Supervisor._bisect: trials whose
    key hits ``poison`` raise, everything else returns a token record."""

    def __init__(self, poison):
        self.poison = poison
        self.ran = []

    def run_trial(self, spec):
        key = spec.key()
        if self.poison in key:
            raise ValueError(f"boom on {key}")
        self.ran.append(key)
        return types.SimpleNamespace(key=key)

    def run_trial_batch(self, specs):
        return [self.run_trial(s) for s in specs]


def _supervisor(store, recovery, backend="scalar"):
    delivered = []
    sup = Supervisor(
        store=store,
        workers=2,
        backend=backend,
        record_one=delivered.append,
        notes=FallbackNotes(),
        policy=SupervisorPolicy(backoff_base=0.001, backoff_cap=0.002),
        recovery=recovery,
    )
    return sup, delivered


class TestBisect:
    @pytest.mark.parametrize("backend", ["scalar", "batched"])
    def test_narrows_to_the_culprit_and_delivers_the_rest(self, backend):
        specs = [_spec(t) for t in range(8)]
        recovery = RecoveryLog()
        sup, delivered = _supervisor(ResultStore(None), recovery, backend)
        sup._pool = _StubPool(poison="/t5")
        sup._bisect(specs, attempt=3, cause=None)
        assert [q.key for q in recovery.quarantined] == [_spec(5).key()]
        assert sorted(r.key for r in delivered) == sorted(
            _spec(t).key() for t in range(8) if t != 5
        )

    def test_transient_singleton_failure_is_retried_not_quarantined(self):
        specs = [_spec(0)]
        recovery = RecoveryLog()
        sup, delivered = _supervisor(ResultStore(None), recovery)

        class _Flaky(_StubPool):
            def __init__(self):
                super().__init__(poison="/t0")
                self.failures = 0

            def run_trial(self, spec):
                if self.failures < 1:
                    self.failures += 1
                    raise ValueError("transient")
                return types.SimpleNamespace(key=spec.key())

        sup._pool = _Flaky()
        sup._bisect(specs, attempt=0, cause=None)
        assert not recovery.quarantined
        assert recovery.retries == 1
        assert [r.key for r in delivered] == [_spec(0).key()]

    def test_quarantine_writes_the_ledger(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.jsonl"))
        recovery = RecoveryLog()
        sup, _ = _supervisor(store, recovery)
        sup._pool = _StubPool(poison="/t5")
        sup._bisect([_spec(5)], attempt=3, cause=None)
        ledger = read_quarantine(store.path)
        assert len(ledger) == 1
        assert ledger[0].key == _spec(5).key()
        assert "boom" in ledger[0].error
        assert ledger[0].attempts == 4


class TestQuarantineLedger:
    def test_path_shape(self):
        assert quarantine_path("a/b.jsonl") == "a/b.jsonl.quarantine.jsonl"

    def test_read_tolerates_torn_and_foreign_lines(self, tmp_path):
        store_path = str(tmp_path / "s.jsonl")
        path = quarantine_path(store_path)
        append_jsonl_line(path, QuarantineRecord("k1", "err", 3).to_json_line())
        with open(path, "a") as fh:
            fh.write('{"key": "torn\n')  # undecodable: dropped by the reader
            fh.write('{"key": "foreign", "kind": "other"}\n')  # not a ledger row
        append_jsonl_line(path, QuarantineRecord("k2", "err", 4).to_json_line())
        assert [q.key for q in read_quarantine(store_path)] == ["k1", "k2"]

    def test_read_missing_ledger_is_empty(self, tmp_path):
        assert read_quarantine(str(tmp_path / "absent.jsonl")) == []

    def test_remaining_excludes_completed_and_foreign_keys(self, tmp_path):
        from repro.exp.store import TrialRecord

        store = ResultStore(str(tmp_path / "s.jsonl"))
        path = quarantine_path(store.path)
        for key in ("mine/resolved", "mine/open", "theirs/open"):
            append_jsonl_line(path, QuarantineRecord(key, "err", 4).to_json_line())
        # "mine/resolved" later completed on a re-run
        store.append(
            TrialRecord(
                key="mine/resolved", protocol="multicast", jammer="blanket",
                n=16, budget=4000, trial=0, success=True, slots=1, max_cost=1,
                mean_cost=1.0, adversary_spend=1, dissemination_slot=1,
                halted_uninformed=0, periods=1,
            )
        )
        left = remaining_quarantined(store, {"mine/resolved", "mine/open"})
        assert left == ["mine/open"]

    def test_remaining_on_memory_store_is_empty(self):
        assert remaining_quarantined(ResultStore(None), {"k"}) == []
