"""Tests for the JSONL result store: append, reload, resume, aggregation."""

import json

from repro.exp import CampaignSpec, ResultStore, TrialRecord, aggregate, run_trial


def _record(trial=0, protocol="multicast", success=True, slots=100, max_cost=10):
    return TrialRecord(
        key=f"{protocol}/blanket/n16/T1000/s0/t{trial}",
        protocol=protocol,
        jammer="blanket",
        n=16,
        budget=1000,
        trial=trial,
        success=success,
        slots=slots,
        max_cost=max_cost,
        mean_cost=float(max_cost) / 2,
        adversary_spend=1000,
        dissemination_slot=slots - 1 if success else None,
        halted_uninformed=0 if success else 2,
        periods=1,
    )


class TestResultStore:
    def test_append_reload_round_trip(self, tmp_path):
        path = tmp_path / "r.jsonl"
        with ResultStore(str(path)) as store:
            store.append(_record(0))
            store.append(_record(1, slots=200))
        again = ResultStore(str(path))
        assert len(again) == 2
        assert again.completed_keys() == {_record(0).key, _record(1).key}
        assert [r.slots for r in again.records()] == [100, 200]

    def test_duplicate_keys_ignored(self, tmp_path):
        path = tmp_path / "r.jsonl"
        with ResultStore(str(path)) as store:
            store.append(_record(0, slots=100))
            store.append(_record(0, slots=999))
        assert len(ResultStore(str(path))) == 1
        assert ResultStore(str(path)).records()[0].slots == 100

    def test_flushed_per_append(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(str(path))
        store.append(_record(0))
        # visible to a concurrent reader before close(): the crash-safety story
        assert len(path.read_text().strip().splitlines()) == 1
        store.close()

    def test_memory_only_store(self):
        store = ResultStore(None)
        store.append(_record(0))
        assert len(store) == 1

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text(_record(0).to_json_line() + "\n\n")
        assert len(ResultStore(str(path))) == 1


class TestAggregate:
    def test_cells_and_summaries(self):
        records = [
            _record(0, slots=100, max_cost=10),
            _record(1, slots=300, max_cost=30),
            _record(0, protocol="core", success=False, slots=50),
        ]
        cells = aggregate(records)
        assert [c.cell for c in cells] == [
            ("core", "blanket", 16, 1000, None),
            ("multicast", "blanket", 16, 1000, None),
        ]
        core, mc = cells
        assert core.success_rate == 0.0 and core.violations == 2
        assert mc.success_rate == 1.0 and mc.trials == 2
        assert mc.summary("slots").mean == 200.0
        assert mc.summary("max_cost").lo == 10 and mc.summary("max_cost").hi == 30
        assert mc.competitiveness == 20.0 / 1000

    def test_channel_limited_cells_stay_separate(self):
        a, b = _record(0), _record(0)
        a.channels, a.key = 1, a.key + "/C1"
        b.channels, b.key = 2, b.key + "/C2"
        cells = aggregate([a, b])
        assert len(cells) == 2
        assert [c.channels for c in cells] == [1, 2]

    def test_order_independent(self):
        records = [_record(t, slots=100 * (t + 1)) for t in range(4)]
        fwd = aggregate(records)
        rev = aggregate(list(reversed(records)))
        assert json.dumps([c.summaries["slots"].__dict__ for c in fwd]) == json.dumps(
            [c.summaries["slots"].__dict__ for c in rev]
        )

    def test_round_trips_real_trial(self, tmp_path):
        c = CampaignSpec(protocols=["multicast"], jammers=["blanket"], ns=[16], trials=1, budget=5000)
        (spec,) = c.trial_specs()
        rec = run_trial(spec)
        path = tmp_path / "r.jsonl"
        with ResultStore(str(path)) as store:
            store.append(rec)
        loaded = ResultStore(str(path)).records()[0]
        rec.wall_time = loaded.wall_time = 0.0
        assert loaded == rec
