"""End-to-end crash/resume: interrupt or kill a live `repro sweep`.

Three failure modes, one recovery story:

* SIGINT (operator ^C) — the parent converts it to a clean exit 130 with the
  store resumable;
* SIGTERM (a scheduler's soft kill) — same path as SIGINT: the parent
  installs a handler that raises KeyboardInterrupt, so the store is left
  exactly as resumable as after a ^C;
* SIGKILL of a *worker* mid-shard — the pool breaks, the supervisor
  respawns it and resubmits the unfinished blocks, and the run *completes*
  in one invocation with every (cell, seed) exactly once (DESIGN.md
  section 14).
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

# enough trials for several lane blocks per worker (blocks now carry
# batch_lane_width * STREAM_BLOCK_FACTOR = 8 trials each), so the first
# flushed block still leaves the campaign mid-flight to interrupt
TRIALS = 48
CMD_TAIL = [
    "-m", "repro", "sweep",
    "--protocols", "multicast", "--jammers", "blanket",
    "--n", "64", "--budget", "150000", "--trials", str(TRIALS),
    "--workers", "2", "--quiet",
]


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _lines(path):
    if not os.path.exists(path):
        return []
    with open(path) as fh:
        return [line for line in fh.read().splitlines() if line.strip()]


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signal semantics")
def test_sigint_leaves_resumable_store(tmp_path):
    store = str(tmp_path / "campaign.jsonl")
    cmd = [sys.executable, *CMD_TAIL, "--store", store]
    proc = subprocess.Popen(
        cmd, env=_env(), stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
    )
    try:
        # wait for the first completed trial to hit the store, then interrupt
        deadline = time.time() + 120
        while time.time() < deadline and not _lines(store):
            if proc.poll() is not None:
                pytest.fail(f"sweep exited early with {proc.returncode}")
            time.sleep(0.05)
        assert _lines(store), "no trial completed within the deadline"
        proc.send_signal(signal.SIGINT)
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert proc.returncode == 130
    interrupted = _lines(store)
    assert 0 < len(interrupted) < TRIALS, "interrupt should leave a partial store"

    # resuming must run only the remainder and end with the full trial set
    done = subprocess.run(
        cmd, env=_env(), capture_output=True, text=True, timeout=300
    )
    assert done.returncode == 0
    assert "resuming" in done.stderr
    final = _lines(store)
    assert len(final) == TRIALS
    assert final[: len(interrupted)] == interrupted, "resume must append, not rewrite"


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signal semantics")
def test_sigterm_matches_sigint_semantics(tmp_path):
    store = str(tmp_path / "campaign.jsonl")
    cmd = [sys.executable, *CMD_TAIL, "--store", store]
    proc = subprocess.Popen(
        cmd, env=_env(), stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True
    )
    try:
        deadline = time.time() + 120
        while time.time() < deadline and not _lines(store):
            if proc.poll() is not None:
                pytest.fail(f"sweep exited early with {proc.returncode}")
            time.sleep(0.05)
        assert _lines(store), "no trial completed within the deadline"
        proc.terminate()  # SIGTERM, not SIGINT
        _, stderr = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert proc.returncode == 130, stderr
    assert "re-run the same command to resume" in stderr
    interrupted = _lines(store)
    assert 0 < len(interrupted) < TRIALS, "SIGTERM should leave a partial store"

    # resuming after SIGTERM works exactly like resuming after SIGINT
    done = subprocess.run(cmd, env=_env(), capture_output=True, text=True, timeout=300)
    assert done.returncode == 0
    assert "resuming" in done.stderr
    assert len(_lines(store)) == TRIALS


def _worker_pids(parent_pid):
    """Direct children of ``parent_pid`` that are pool workers (via /proc;
    the multiprocessing resource tracker is a child too and must not count —
    killing it would not break the pool)."""
    workers = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/stat", "rb") as fh:
                fields = fh.read().split(b") ", 1)[1].split()
            if int(fields[1]) != parent_pid:
                continue
            with open(f"/proc/{entry}/cmdline", "rb") as fh:
                cmdline = fh.read()
        except (OSError, IndexError, ValueError):
            continue
        if b"resource_tracker" in cmdline or b"semaphore_tracker" in cmdline:
            continue
        workers.append(int(entry))
    return sorted(workers)


def _shard_lines(store):
    lines = []
    for name in os.listdir(os.path.dirname(store)):
        if ".shard-" in name:
            lines.extend(_lines(os.path.join(os.path.dirname(store), name)))
    return lines


@pytest.mark.skipif(
    not os.path.isdir("/proc"), reason="worker discovery needs procfs"
)
def test_sigkilled_worker_is_survived_by_the_supervisor(tmp_path):
    store = str(tmp_path / "campaign.jsonl")
    cmd = [sys.executable, *CMD_TAIL, "--store", store]
    proc = subprocess.Popen(
        cmd, env=_env(), stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True
    )
    try:
        # wait until at least one lane block is flushed somewhere (shard or
        # merged into the main store) and the workers are up, then kill one
        deadline = time.time() + 120
        while time.time() < deadline:
            if proc.poll() is not None:
                pytest.fail(f"sweep exited early with {proc.returncode}")
            if (_lines(store) or _shard_lines(store)) and len(_worker_pids(proc.pid)) >= 2:
                break
            time.sleep(0.05)
        victims = _worker_pids(proc.pid)
        assert len(victims) >= 2, "pool workers never appeared"
        os.kill(victims[0], signal.SIGKILL)
        _, stderr = proc.communicate(timeout=300)
    finally:
        if proc.poll() is None:
            proc.kill()
    # the supervisor respawns the pool and finishes THIS run: no manual
    # resume, exit 0, every (cell, seed) exactly once
    assert proc.returncode == 0, stderr
    assert "respawning" in stderr
    assert "recovery:" in stderr
    keys = [json.loads(line)["key"] for line in _lines(store)]
    assert len(keys) == TRIALS
    assert len(set(keys)) == TRIALS, "a (cell, seed) ran twice"
    expected = {f"multicast/blanket/n64/T150000/s0/t{t}" for t in range(TRIALS)}
    assert set(keys) == expected
    assert _shard_lines(store) == [], "the closing merge must consume the shards"
