"""End-to-end interrupt/resume: SIGINT a live `repro sweep`, then resume it."""

import os
import signal
import subprocess
import sys
import time

import pytest

TRIALS = 10
CMD_TAIL = [
    "-m", "repro", "sweep",
    "--protocols", "multicast", "--jammers", "blanket",
    "--n", "64", "--budget", "150000", "--trials", str(TRIALS),
    "--workers", "2", "--quiet",
]


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _lines(path):
    if not os.path.exists(path):
        return []
    with open(path) as fh:
        return [line for line in fh.read().splitlines() if line.strip()]


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signal semantics")
def test_sigint_leaves_resumable_store(tmp_path):
    store = str(tmp_path / "campaign.jsonl")
    cmd = [sys.executable, *CMD_TAIL, "--store", store]
    proc = subprocess.Popen(
        cmd, env=_env(), stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
    )
    try:
        # wait for the first completed trial to hit the store, then interrupt
        deadline = time.time() + 120
        while time.time() < deadline and not _lines(store):
            if proc.poll() is not None:
                pytest.fail(f"sweep exited early with {proc.returncode}")
            time.sleep(0.05)
        assert _lines(store), "no trial completed within the deadline"
        proc.send_signal(signal.SIGINT)
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert proc.returncode == 130
    interrupted = _lines(store)
    assert 0 < len(interrupted) < TRIALS, "interrupt should leave a partial store"

    # resuming must run only the remainder and end with the full trial set
    done = subprocess.run(
        cmd, env=_env(), capture_output=True, text=True, timeout=300
    )
    assert done.returncode == 0
    assert "resuming" in done.stderr
    final = _lines(store)
    assert len(final) == TRIALS
    assert final[: len(interrupted)] == interrupted, "resume must append, not rewrite"
