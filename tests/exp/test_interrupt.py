"""End-to-end crash/resume: interrupt or kill a live `repro sweep`, resume it.

Two failure modes, one recovery story:

* SIGINT (operator ^C) — the parent converts it to a clean exit 130 with the
  store resumable;
* SIGKILL of a *worker* mid-shard — the pool breaks, the CLI exits 1, and
  the completed lane blocks survive in the worker shard files; the resume
  run merges them and finishes with every (cell, seed) exactly once.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

# enough trials for several lane blocks per worker (blocks now carry
# batch_lane_width * STREAM_BLOCK_FACTOR = 8 trials each), so the first
# flushed block still leaves the campaign mid-flight to interrupt
TRIALS = 48
CMD_TAIL = [
    "-m", "repro", "sweep",
    "--protocols", "multicast", "--jammers", "blanket",
    "--n", "64", "--budget", "150000", "--trials", str(TRIALS),
    "--workers", "2", "--quiet",
]


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _lines(path):
    if not os.path.exists(path):
        return []
    with open(path) as fh:
        return [line for line in fh.read().splitlines() if line.strip()]


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signal semantics")
def test_sigint_leaves_resumable_store(tmp_path):
    store = str(tmp_path / "campaign.jsonl")
    cmd = [sys.executable, *CMD_TAIL, "--store", store]
    proc = subprocess.Popen(
        cmd, env=_env(), stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
    )
    try:
        # wait for the first completed trial to hit the store, then interrupt
        deadline = time.time() + 120
        while time.time() < deadline and not _lines(store):
            if proc.poll() is not None:
                pytest.fail(f"sweep exited early with {proc.returncode}")
            time.sleep(0.05)
        assert _lines(store), "no trial completed within the deadline"
        proc.send_signal(signal.SIGINT)
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert proc.returncode == 130
    interrupted = _lines(store)
    assert 0 < len(interrupted) < TRIALS, "interrupt should leave a partial store"

    # resuming must run only the remainder and end with the full trial set
    done = subprocess.run(
        cmd, env=_env(), capture_output=True, text=True, timeout=300
    )
    assert done.returncode == 0
    assert "resuming" in done.stderr
    final = _lines(store)
    assert len(final) == TRIALS
    assert final[: len(interrupted)] == interrupted, "resume must append, not rewrite"


def _worker_pids(parent_pid):
    """Direct children of ``parent_pid`` that are pool workers (via /proc;
    the multiprocessing resource tracker is a child too and must not count —
    killing it would not break the pool)."""
    workers = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/stat", "rb") as fh:
                fields = fh.read().split(b") ", 1)[1].split()
            if int(fields[1]) != parent_pid:
                continue
            with open(f"/proc/{entry}/cmdline", "rb") as fh:
                cmdline = fh.read()
        except (OSError, IndexError, ValueError):
            continue
        if b"resource_tracker" in cmdline or b"semaphore_tracker" in cmdline:
            continue
        workers.append(int(entry))
    return sorted(workers)


def _shard_lines(store):
    lines = []
    for name in os.listdir(os.path.dirname(store)):
        if ".shard-" in name:
            lines.extend(_lines(os.path.join(os.path.dirname(store), name)))
    return lines


@pytest.mark.skipif(
    not os.path.isdir("/proc"), reason="worker discovery needs procfs"
)
def test_sigkilled_worker_leaves_recoverable_shards(tmp_path):
    store = str(tmp_path / "campaign.jsonl")
    cmd = [sys.executable, *CMD_TAIL, "--store", store]
    proc = subprocess.Popen(
        cmd, env=_env(), stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True
    )
    try:
        # wait until at least one lane block is flushed somewhere (shard or
        # merged into the main store) and the workers are up, then kill one
        deadline = time.time() + 120
        while time.time() < deadline:
            if proc.poll() is not None:
                pytest.fail(f"sweep exited early with {proc.returncode}")
            if (_lines(store) or _shard_lines(store)) and len(_worker_pids(proc.pid)) >= 2:
                break
            time.sleep(0.05)
        victims = _worker_pids(proc.pid)
        assert len(victims) >= 2, "pool workers never appeared"
        os.kill(victims[0], signal.SIGKILL)
        _, stderr = proc.communicate(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert proc.returncode == 1, stderr
    assert "worker process died" in stderr

    # everything flushed before the kill survives: main store rows plus the
    # dead-and-live workers' shard files
    survivors = _lines(store) + _shard_lines(store)
    assert survivors, "no completed trial survived the kill"
    assert len(survivors) < TRIALS, "kill should leave a partial campaign"

    # the resume run merges the shards, re-runs only what was lost, and ends
    # with every (cell, seed) exactly once
    done = subprocess.run(cmd, env=_env(), capture_output=True, text=True, timeout=300)
    assert done.returncode == 0, done.stderr
    keys = [json.loads(line)["key"] for line in _lines(store)]
    assert len(keys) == TRIALS
    assert len(set(keys)) == TRIALS, "a (cell, seed) ran twice"
    expected = {f"multicast/blanket/n64/T150000/s0/t{t}" for t in range(TRIALS)}
    assert set(keys) == expected
    assert _shard_lines(store) == [], "resume must consume the shard files"
