"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.rng import RandomFabric


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return RandomFabric(1234).generator("test")


def make_dense_jam(rng: np.random.Generator, K: int, C: int, p: float = 0.3) -> np.ndarray:
    """Random dense jam mask for kernel tests."""
    return rng.random((K, C)) < p
