"""Tests for the analysis harness (stats, fits, tables, theory, sweeps)."""

import math

import numpy as np
import pytest

from repro import BlanketJammer, MultiCastCore
from repro.analysis import (
    Summary,
    fit_linear,
    fit_loglog_slope,
    render_table,
    run_trials,
    sweep,
    theory,
)


class TestSummary:
    def test_basic_stats(self):
        s = Summary.of([1.0, 2.0, 3.0, 4.0])
        assert s.mean == 2.5
        assert s.median == 2.5
        assert s.lo == 1.0 and s.hi == 4.0
        assert s.ci95 == pytest.approx(1.96 * s.std / 2.0)

    def test_single_value(self):
        s = Summary.of([7.0])
        assert s.mean == 7.0 and s.std == 0.0 and s.ci95 == 0.0

    def test_empty(self):
        s = Summary.of([])
        assert math.isnan(s.mean)


class TestFits:
    def test_linear_exact(self):
        fit = fit_linear([1, 2, 3, 4], [3, 5, 7, 9])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r2 == pytest.approx(1.0)

    def test_power_law_exact(self):
        x = np.array([1.0, 10.0, 100.0])
        fit = fit_loglog_slope(x, 5 * x**0.5)
        assert fit.exponent == pytest.approx(0.5)
        assert fit.scale == pytest.approx(5.0)

    def test_loglog_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_loglog_slope([1, 2], [0, 1])

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_linear([1], [1])


class TestTables:
    def test_render_basic(self):
        out = render_table(["a", "bb"], [[1, 2.5], [30, 0.001]], title="T")
        lines = out.split("\n")
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_nan_rendering(self):
        out = render_table(["x"], [[float("nan")]])
        assert "—" in out


class TestTheory:
    def test_multicast_time_shape(self):
        T = np.array([0.0, 64_000.0])
        b = theory.multicast_time(T, 64)
        assert b[0] == pytest.approx(math.log2(64) ** 2)
        assert b[1] == pytest.approx(1000 + 36)

    def test_multicast_cost_sqrt(self):
        big = theory.multicast_cost(4_000_000, 64)
        small = theory.multicast_cost(1_000_000, 64)
        assert 1.8 < big / small < 2.4  # ~sqrt(4) with log drift

    def test_adv_time_alpha_dependence(self):
        """Larger alpha = worse T-dependence (smaller n^{1-2a} divisor)."""
        lo = theory.adv_time(1e6, 64, 0.05)
        hi = theory.adv_time(1e6, 64, 0.24)
        assert hi > lo

    def test_limited_time_inverse_c(self):
        t1 = theory.limited_time(1e6, 64, 1)
        t32 = theory.limited_time(1e6, 64, 32)
        assert t1 / t32 == pytest.approx(32.0)

    def test_normalize_to(self):
        pred = np.array([1.0, 2.0, 4.0])
        measured = np.array([10.0, 19.0, 40.0])
        scaled = theory.normalize_to(pred, measured)
        assert scaled[-1] == pytest.approx(40.0)
        assert scaled[0] == pytest.approx(10.0)


class TestTrialsAndSweeps:
    def test_run_trials_reproducible(self):
        mk = lambda: MultiCastCore(n=16, T=0, a=8192.0)
        b1 = run_trials(mk, 16, trials=3, base_seed=9)
        b2 = run_trials(mk, 16, trials=3, base_seed=9)
        np.testing.assert_array_equal(b1.slots, b2.slots)
        np.testing.assert_array_equal(b1.max_cost, b2.max_cost)

    def test_run_trials_independent_seeds(self):
        mk = lambda: MultiCastCore(n=16, T=0, a=8192.0)
        batch = run_trials(mk, 16, trials=4, base_seed=1)
        assert len(set(batch.max_cost.tolist())) > 1

    def test_batch_metrics(self):
        mk = lambda: MultiCastCore(n=16, T=0, a=8192.0)
        batch = run_trials(mk, 16, trials=3, base_seed=2)
        assert batch.success_rate == 1.0
        assert batch.violations == 0
        assert (batch.adversary_spend == 0).all()
        assert not np.isnan(batch.dissemination_slots).any()

    def test_adversary_factory_used(self):
        mk = lambda: MultiCastCore(n=16, T=1000, a=8192.0)
        batch = run_trials(
            mk,
            16,
            lambda seed: BlanketJammer(budget=1000, channels=1, seed=seed),
            trials=2,
            base_seed=3,
        )
        assert (batch.adversary_spend == 1000).all()

    def test_sweep_structure(self):
        sw = sweep(
            "a",
            [4096.0, 8192.0],
            lambda a: MultiCastCore(n=16, T=0, a=a),
            lambda a: 16,
            trials=2,
            base_seed=4,
        )
        assert len(sw) == 2
        np.testing.assert_array_equal(sw.values, [4096.0, 8192.0])
        # iteration length doubles with a
        assert sw.means("slots")[1] > sw.means("slots")[0]
        assert sw.success_rates.shape == (2,)


class TestBackends:
    """run_trials backends must be interchangeable: same seeds, same batch."""

    N = 16

    def _factory(self):
        return MultiCastCore(self.N, 2_000)

    def _adversary(self, seed):
        return BlanketJammer(1_500, channels=0.5, seed=seed)

    def _run(self, backend, **kwargs):
        return run_trials(
            self._factory,
            self.N,
            self._adversary,
            trials=5,
            base_seed=9,
            label="backend-test",
            backend=backend,
            **kwargs,
        )

    @staticmethod
    def _assert_batches_equal(a, b):
        assert len(a) == len(b)
        for x, y in zip(a.results, b.results):
            assert x.slots == y.slots
            assert x.adversary_spend == y.adversary_spend
            np.testing.assert_array_equal(x.node_energy, y.node_energy)
            np.testing.assert_array_equal(x.informed_slot, y.informed_slot)
            np.testing.assert_array_equal(x.halt_slot, y.halt_slot)

    def test_batched_equals_scalar(self):
        self._assert_batches_equal(self._run("scalar"), self._run("batched"))

    def test_lane_width_is_not_semantic(self):
        self._assert_batches_equal(
            self._run("batched", lane_width=1), self._run("batched", lane_width=64)
        )

    def test_auto_uses_batched_for_serial_runs(self):
        self._assert_batches_equal(self._run("auto"), self._run("scalar"))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            self._run("vectorized")
