"""Integration matrix: every protocol against every jammer family.

One seeded run per (protocol, jammer) cell, with the universal correctness
invariants checked on each: completion, full dissemination, zero
halted-uninformed, books consistent.  These are end-to-end executions through
the real engine — the closest thing to a deployment test the model allows.
"""

import numpy as np
import pytest

from repro import (
    BlanketJammer,
    FractionalJammer,
    FrontLoadedJammer,
    MultiCast,
    MultiCastAdv,
    MultiCastAdvC,
    MultiCastC,
    MultiCastCore,
    NoJammer,
    PeriodicBurstJammer,
    RandomJammer,
    SweepJammer,
    run_broadcast,
)

N = 32
T = 60_000
ADV_FAST = dict(alpha=0.24, b=0.01, halt_noise_divisor=50.0, helper_wait=4.0)

PROTOCOLS = {
    "core": lambda: MultiCastCore(n=N, T=T, a=8192.0),
    "multicast": lambda: MultiCast(N, a=0.05),
    "multicast_c4": lambda: MultiCastC(N, 4, a=0.05),
    "adv": lambda: MultiCastAdv(**ADV_FAST),
    "adv_c8": lambda: MultiCastAdvC(8, **ADV_FAST),
}

JAMMERS = {
    "none": lambda seed: NoJammer(),
    "blanket": lambda seed: BlanketJammer(budget=T, channels=0.8, placement="random", seed=seed),
    "fractional": lambda seed: FractionalJammer(budget=T, slot_fraction=0.5, channel_fraction=0.8, seed=seed),
    "frontloaded": lambda seed: FrontLoadedJammer(budget=T),
    "bursts": lambda seed: PeriodicBurstJammer(budget=T, period=50, burst=25, channels=0.9, seed=seed),
    "sweep": lambda seed: SweepJammer(budget=T, width=6, seed=seed),
    "random": lambda seed: RandomJammer(budget=T, p=0.3, seed=seed),
}


@pytest.mark.parametrize("jammer_name", sorted(JAMMERS))
@pytest.mark.parametrize("protocol_name", sorted(PROTOCOLS))
def test_matrix_cell(protocol_name, jammer_name):
    proto = PROTOCOLS[protocol_name]()
    adv = JAMMERS[jammer_name](seed=17)
    r = run_broadcast(proto, N, adversary=adv, seed=23, max_slots=200_000_000)

    # universal correctness contract
    assert r.completed, f"{protocol_name} vs {jammer_name}: did not terminate"
    assert r.all_informed, f"{protocol_name} vs {jammer_name}: missed nodes"
    assert r.halted_uninformed == 0, f"{protocol_name} vs {jammer_name}: bad halts"
    assert r.success

    # books consistency
    assert (r.node_energy <= r.slots).all()
    assert (r.halt_slot <= r.slots).all()
    assert (r.informed_slot <= r.halt_slot).all()
    assert r.informed_slot[0] == 0
    assert r.adversary_spend <= T


def test_budgets_fully_spent_when_blanket():
    """A blanket jammer with budget far below the runtime spends it all."""
    adv = BlanketJammer(budget=10_000, channels=1.0, seed=1)
    r = run_broadcast(MultiCast(N, a=0.05), N, adversary=adv, seed=2)
    assert r.adversary_spend == 10_000


def test_energy_listen_send_split_consistent():
    from repro.sim.engine import RadioNetwork

    adv = BlanketJammer(budget=5_000, channels=0.5, seed=3)
    adv.reset()
    net = RadioNetwork(N, adv, seed=4)
    r = MultiCast(N, a=0.05).run(net)
    np.testing.assert_array_equal(
        net.energy.listen_slots + net.energy.send_slots, r.node_energy
    )
    # uninformed-at-start nodes must listen at least once to learn m
    assert (net.energy.listen_slots[1:] >= 1).all()
