"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, make_jammer, make_protocol
from repro import MultiCast, MultiCastAdv, MultiCastC, MultiCastCore
from repro.adversary import BlanketJammer, FrontLoadedJammer


class TestFactories:
    def test_protocol_names(self):
        assert isinstance(make_protocol("core", 16, T=100), MultiCastCore)
        assert isinstance(make_protocol("multicast", 16), MultiCast)
        assert isinstance(make_protocol("multicast_c", 16, C=2), MultiCastC)
        assert isinstance(make_protocol("adv", 16), MultiCastAdv)

    def test_unknown_protocol_exits(self):
        with pytest.raises(SystemExit):
            make_protocol("carrier-pigeon", 16)

    def test_jammer_names(self):
        assert make_jammer("none", 100, seed=1) is None
        assert make_jammer("blanket", 0, seed=1) is None  # zero budget = off
        assert isinstance(make_jammer("blanket", 100, seed=1), BlanketJammer)
        assert isinstance(make_jammer("frontloaded", 100, seed=1), FrontLoadedJammer)

    def test_unknown_jammer_exits(self):
        with pytest.raises(SystemExit):
            make_jammer("emp", 100, seed=1)


class TestCommands:
    def test_run_clean(self, capsys):
        rc = main(["run", "--protocol", "multicast", "--n", "16", "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "success" in out and "slots" in out

    def test_run_jammed(self, capsys):
        rc = main(
            [
                "run", "--protocol", "core", "--n", "16",
                "--jammer", "blackout", "--budget", "20000", "--seed", "3",
            ]
        )
        assert rc == 0
        assert "Eve's spend" in capsys.readouterr().out

    def test_channels_sweep(self, capsys):
        rc = main(["channels", "--n", "16", "--budget", "5000", "--seed", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        # sweep covers C = 1, 2, 4, 8
        assert out.count("yes") == 4

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
