"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, make_jammer, make_protocol
from repro import MultiCast, MultiCastAdv, MultiCastC, MultiCastCore
from repro.adversary import BlanketJammer, FrontLoadedJammer


class TestFactories:
    def test_protocol_names(self):
        assert isinstance(make_protocol("core", 16, T=100), MultiCastCore)
        assert isinstance(make_protocol("multicast", 16), MultiCast)
        assert isinstance(make_protocol("multicast_c", 16, C=2), MultiCastC)
        assert isinstance(make_protocol("adv", 16), MultiCastAdv)

    def test_unknown_protocol_exits_listing_choices(self):
        with pytest.raises(SystemExit) as exc:
            make_protocol("carrier-pigeon", 16)
        message = str(exc.value)
        assert "carrier-pigeon" in message
        for choice in ("core", "multicast", "multicast_c", "adv", "adv_c"):
            assert choice in message

    def test_jammer_names(self):
        assert make_jammer("none", 100, seed=1) is None
        assert make_jammer("blanket", 0, seed=1) is None  # zero budget = off
        assert isinstance(make_jammer("blanket", 100, seed=1), BlanketJammer)
        assert isinstance(make_jammer("frontloaded", 100, seed=1), FrontLoadedJammer)

    def test_unknown_jammer_exits_listing_choices(self):
        with pytest.raises(SystemExit) as exc:
            make_jammer("emp", 100, seed=1)
        message = str(exc.value)
        assert "emp" in message
        for choice in ("blanket", "blackout", "bursts", "sweep", "random", "none"):
            assert choice in message


class TestCommands:
    def test_run_clean(self, capsys):
        rc = main(["run", "--protocol", "multicast", "--n", "16", "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "success" in out and "slots" in out

    def test_run_jammed(self, capsys):
        rc = main(
            [
                "run", "--protocol", "core", "--n", "16",
                "--jammer", "blackout", "--budget", "20000", "--seed", "3",
            ]
        )
        assert rc == 0
        assert "Eve's spend" in capsys.readouterr().out

    def test_channels_sweep(self, capsys):
        rc = main(["channels", "--n", "16", "--budget", "5000", "--seed", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        # sweep covers C = 1, 2, 4, 8
        assert out.count("yes") == 4

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestSweep:
    ARGS = [
        "sweep", "--protocols", "multicast,core", "--jammers", "blanket,sweep",
        "--n", "16", "--budget", "4000", "--trials", "2", "--quiet",
    ]

    def test_sweep_renders_cell_table(self, capsys):
        rc = main(self.ARGS + ["--workers", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "protocol" in out and "cost/T" in out
        # one row per (protocol, jammer) cell
        for pair in ("core  blanket", "core    sweep", "multicast  blanket"):
            assert pair in out

    def test_sweep_progress_reports_elapsed_and_eta(self, capsys):
        """Without --quiet, every completed trial logs a stderr progress
        line carrying the trial key (which names the cell) plus wall-clock
        elapsed and the remaining-work ETA."""
        args = [a for a in self.ARGS if a != "--quiet"]
        rc = main(args + ["--workers", "1"])
        err = capsys.readouterr().err
        assert rc == 0
        lines = [line for line in err.splitlines() if line.startswith("[")]
        assert len(lines) == 2 * 2 * 2  # one per trial
        assert lines[0].startswith("[1/8] ")
        assert lines[-1].startswith("[8/8] ")
        for line in lines:
            assert "elapsed" in line and "eta" in line, line
        # the key locates the campaign's position cell by cell
        assert any("multicast/blanket/n16/T4000" in line for line in lines)

    def test_sweep_serial_matches_parallel(self, capsys):
        main(self.ARGS + ["--workers", "1"])
        serial = capsys.readouterr().out
        main(self.ARGS + ["--workers", "2"])
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_sweep_store_resumes(self, tmp_path, capsys):
        store = str(tmp_path / "r.jsonl")
        main(self.ARGS + ["--workers", "1", "--store", store])
        first = capsys.readouterr().out
        with open(store) as fh:
            lines = len(fh.read().strip().splitlines())
        assert lines == 2 * 2 * 2
        # re-run: everything already stored, identical table, no new lines
        main(self.ARGS + ["--workers", "1", "--store", store])
        again = capsys.readouterr().out
        assert again == first
        with open(store) as fh:
            assert len(fh.read().strip().splitlines()) == lines

    def test_sweep_spec_file(self, tmp_path, capsys):
        from repro.exp import CampaignSpec

        path = tmp_path / "spec.json"
        CampaignSpec(
            protocols=["multicast"], jammers=["blanket"], ns=[16], budget=4000, trials=1
        ).save(path)
        rc = main(["sweep", "--spec", str(path), "--quiet", "--workers", "1"])
        assert rc == 0
        assert "multicast" in capsys.readouterr().out

    def test_sweep_unknown_protocol_exits_with_choices(self):
        with pytest.raises(SystemExit) as exc:
            main(["sweep", "--protocols", "pigeon", "--quiet"])
        assert "pigeon" in str(exc.value) and "multicast" in str(exc.value)

    def test_sweep_bad_grid_exits_cleanly(self):
        with pytest.raises(SystemExit, match="bad campaign spec"):
            main(["sweep", "--trials", "0", "--quiet"])
        with pytest.raises(SystemExit, match="bad campaign spec"):
            main(["sweep", "--n", "abc", "--quiet"])

    def test_sweep_spec_trials_override_is_validated(self, tmp_path):
        from repro.exp import CampaignSpec

        path = tmp_path / "spec.json"
        CampaignSpec(protocols=["multicast"], jammers=["none"], ns=[16], trials=3).save(path)
        with pytest.raises(SystemExit, match="bad campaign spec"):
            main(["sweep", "--spec", str(path), "--trials", "0", "--quiet"])

    def test_sweep_flags_override_spec(self, tmp_path, capsys):
        from repro.exp import CampaignSpec

        path = tmp_path / "spec.json"
        CampaignSpec(
            protocols=["multicast"], jammers=["blanket"], ns=[16], budget=4000, trials=2
        ).save(path)
        rc = main(
            ["sweep", "--spec", str(path), "--budget", "2000", "--jammers", "sweep",
             "--quiet", "--workers", "1"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "budget 2,000" in out  # not the spec's 4,000
        assert "sweep" in out and "blanket" not in out

    def test_sweep_resume_message_counts_own_campaign_only(self, tmp_path, capsys):
        store = str(tmp_path / "shared.jsonl")
        base = ["--n", "16", "--budget", "4000", "--trials", "2",
                "--workers", "1", "--store", store]
        main(["sweep", "--protocols", "multicast", "--jammers", "blanket", *base])
        capsys.readouterr()
        # different campaign, same store: nothing of ITS trials is stored yet
        main(["sweep", "--protocols", "core", "--jammers", "sweep", *base])
        assert "resuming" not in capsys.readouterr().err
        # same campaign again: now all 2 of its trials are stored
        main(["sweep", "--protocols", "core", "--jammers", "sweep", *base])
        assert "resuming: 2 stored trial(s)" in capsys.readouterr().err

    def test_sweep_bad_spec_file_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read campaign spec"):
            main(["sweep", "--spec", str(tmp_path / "nope.json")])
        bad = tmp_path / "bad.json"
        bad.write_text('{"oops": 1}')
        with pytest.raises(SystemExit, match="bad campaign spec"):
            main(["sweep", "--spec", str(bad)])
        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="bad campaign spec"):
            main(["sweep", "--spec", str(bad)])


class TestReport:
    """CLI surface of `repro report`; the golden behaviour itself lives in
    tests/report/test_report_golden.py."""

    def test_check_against_the_committed_record(self, capsys):
        import pathlib

        repo = str(pathlib.Path(__file__).resolve().parent.parent)
        assert main(["report", "--check", "--root", repo]) == 0
        assert "match the stores" in capsys.readouterr().out

    def test_missing_root_exits_with_message(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["report", "--check", "--root", str(tmp_path)])
        assert "EXPERIMENTS.md" in str(exc.value)

    def test_check_flags_drift_without_writing(self, tmp_path, capsys):
        import pathlib
        import shutil

        repo = pathlib.Path(__file__).resolve().parent.parent
        root = tmp_path / "repo"
        (root / "experiments").mkdir(parents=True)
        shutil.copy(repo / "EXPERIMENTS.md", root / "EXPERIMENTS.md")
        shutil.copy(repo / "CLAIMS.md", root / "CLAIMS.md")
        for store in (repo / "experiments").glob("*.jsonl"):
            shutil.copy(store, root / "experiments" / store.name)
        shutil.copytree(repo / "experiments" / "figures", root / "experiments" / "figures")
        shutil.copytree(repo / "benchmarks", root / "benchmarks", ignore=shutil.ignore_patterns("*.py", "__pycache__"))
        # sabotage one generated file: --check must fail and must not repair it
        claims = root / "CLAIMS.md"
        sabotaged = claims.read_text() + "\ndrift\n"
        claims.write_text(sabotaged)
        assert main(["report", "--check", "--root", str(root)]) == 1
        assert "stale: CLAIMS.md" in capsys.readouterr().out
        assert claims.read_text() == sabotaged
        # write mode repairs exactly the drifted file
        assert main(["report", "--root", str(root)]) == 0
        assert "wrote CLAIMS.md" in capsys.readouterr().out
        assert main(["report", "--check", "--root", str(root)]) == 0


class TestObs:
    """``repro sweep --telemetry`` + ``repro obs``: the CLI face of repro.obs."""

    SWEEP = [
        "sweep", "--protocols", "multicast", "--jammers", "blanket",
        "--n", "16", "--budget", "3000", "--trials", "2", "--quiet",
    ]

    def _telemetry_sweep(self, tmp_path, capsys):
        store = str(tmp_path / "run.jsonl")
        rc = main(self.SWEEP + ["--store", store, "--telemetry"])
        assert rc == 0
        capsys.readouterr()
        return store

    def test_sweep_telemetry_then_obs_report(self, tmp_path, capsys):
        store = self._telemetry_sweep(tmp_path, capsys)
        rc = main(["obs", store])
        out = capsys.readouterr().out
        assert rc == 0
        assert "== repro.obs run report ==" in out
        assert "-- kernels --" in out
        assert "batch.kernel_passes" in out

    def test_sweep_telemetry_prints_summary_pointer(self, tmp_path, capsys):
        store = str(tmp_path / "run.jsonl")
        rc = main(self.SWEEP + ["--store", store, "--telemetry"])
        err = capsys.readouterr().err
        assert rc == 0
        assert "telemetry:" in err
        assert "repro obs" in err

    def test_obs_writes_figures(self, tmp_path, capsys):
        store = self._telemetry_sweep(tmp_path, capsys)
        figdir = str(tmp_path / "figs")
        rc = main(["obs", store, "--figures", figdir])
        out = capsys.readouterr().out
        assert rc == 0
        assert "telemetry_throughput.svg" in out

    def test_sweep_progress_line_reports_trials_per_second(self, capsys):
        args = [a for a in self.SWEEP if a != "--quiet"]
        rc = main(args + ["--workers", "1"])
        err = capsys.readouterr().err
        assert rc == 0
        progress = [line for line in err.splitlines() if line.startswith("[")]
        assert progress
        for line in progress:
            assert "trials/s" in line, line

    def test_telemetry_without_store_exits(self):
        with pytest.raises(SystemExit, match="--store"):
            main(self.SWEEP + ["--telemetry"])

    def test_obs_without_store_exits(self):
        with pytest.raises(SystemExit, match="store"):
            main(["obs"])

    def test_obs_missing_stream_points_at_telemetry_flag(self, tmp_path):
        with pytest.raises(SystemExit, match="--telemetry"):
            main(["obs", str(tmp_path / "never-ran.jsonl")])

    def test_obs_check_bench_gates_committed_records(self, capsys):
        import pathlib

        benchdir = str(pathlib.Path(__file__).resolve().parents[1] / "benchmarks")
        rc = main(["obs", "--check-bench", benchdir])
        out = capsys.readouterr().out
        assert rc == 0
        assert "check-bench: PASS" in out

    def test_obs_check_bench_fails_on_floor_violation(self, tmp_path, capsys):
        import json

        (tmp_path / "BENCH_x.json").write_text(json.dumps({
            "bench": "x", "schema": 1, "smoke": True,
            "results": {"t": {"speedups": {"c": {
                "baseline_s": 1.0, "fast_s": 1.0, "speedup": 1.0, "floor": 2.0,
            }}}},
        }))
        rc = main(["obs", "--check-bench", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "check-bench: FAIL" in out

    def test_obs_baseline_requires_check_bench(self, tmp_path):
        with pytest.raises(SystemExit, match="check-bench"):
            main(["obs", str(tmp_path / "s.jsonl"), "--baseline", str(tmp_path)])
