"""`repro sweep --fault-plan`: arming, recovery summary, and exit codes.

Exit-code contract: 0 when every trial completed (recovery actions are
informational), 2 when quarantined trials remain unresolved, and a usage
error before any trial runs when the plan file is malformed.
"""

import json
import os
import subprocess
import sys

from repro.faults import FaultPlan, FaultSpec

CMD_TAIL = [
    "-m", "repro", "sweep",
    "--protocols", "multicast", "--jammers", "blanket",
    "--n", "16", "--budget", "4000", "--trials", "12", "--seed", "11",
    "--workers", "2", "--quiet",
]


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_ZERO_WALL"] = "1"
    return env


def _sweep(store, *extra):
    return subprocess.run(
        [sys.executable, *CMD_TAIL, "--store", store, *extra],
        env=_env(),
        capture_output=True,
        text=True,
        timeout=600,
    )


def _keys(store):
    with open(store) as fh:
        return [json.loads(line)["key"] for line in fh if line.strip()]


def test_transient_faults_recover_to_exit_zero(tmp_path):
    plan_path = str(tmp_path / "kill.json")
    FaultPlan(
        faults=[FaultSpec(kind="kill_worker", match="/t8")], seed=1, name="kill"
    ).save(plan_path)
    store = str(tmp_path / "campaign.jsonl")
    proc = _sweep(store, "--fault-plan", plan_path)
    assert proc.returncode == 0, proc.stderr
    assert "fault injection: plan 'kill' armed" in proc.stderr
    assert "respawning" in proc.stderr
    assert "recovery:" in proc.stderr
    assert len(_keys(store)) == 12

    # the faulted sharded store matches a fault-free serial run byte-for-byte
    serial = str(tmp_path / "serial.jsonl")
    clean = subprocess.run(
        [sys.executable, *CMD_TAIL[:-3], "--workers", "1", "--quiet",
         "--store", serial],
        env=_env(), capture_output=True, text=True, timeout=600,
    )
    assert clean.returncode == 0, clean.stderr
    assert open(store, "rb").read() == open(serial, "rb").read()


def test_unresolved_quarantine_exits_two(tmp_path):
    plan_path = str(tmp_path / "poison.json")
    FaultPlan(
        faults=[FaultSpec(kind="raise_trial", match="/t7", times=99)],
        seed=2,
        name="poison",
    ).save(plan_path)
    store = str(tmp_path / "campaign.jsonl")
    proc = _sweep(store, "--fault-plan", plan_path)
    assert proc.returncode == 2, proc.stderr
    assert "quarantine: 1 trial(s) still unresolved" in proc.stderr
    keys = _keys(store)
    assert len(keys) == 11 and not any(k.endswith("/t7") for k in keys)
    assert os.path.exists(store + ".quarantine.jsonl")

    # the fault budget is spent, so a plain re-run completes the campaign
    # (ledger entries are history, not state) and exits clean
    done = _sweep(store)
    assert done.returncode == 0, done.stderr
    assert len(_keys(store)) == 12


def test_malformed_plan_is_a_usage_error(tmp_path):
    plan_path = str(tmp_path / "bad.json")
    with open(plan_path, "w") as fh:
        fh.write('{"faults": [{"kind": "meteor_strike", "match": "/t0"}]}')
    store = str(tmp_path / "campaign.jsonl")
    proc = _sweep(store, "--fault-plan", plan_path)
    assert proc.returncode != 0
    assert "bad fault plan" in proc.stderr
    assert not os.path.exists(store), "no trial may run under a bad plan"
