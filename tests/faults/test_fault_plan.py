"""Fault plans and the injector's pure decision layer.

A plan is data: (kind, key-substring, attempt budget).  Everything here
asserts the schedule without firing anything — role gating, attempt
semantics, JSON round-trips, and the seeded generator's determinism —
which is what makes the invariance suite's faults replayable.
"""

import json
import os

import pytest

from repro.exp.store import row_intact
from repro.faults import (
    FAULT_KINDS,
    FAULT_PLAN_ENV,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    active,
    injector_from_env,
    install,
    plan_env,
)

KEYS = [f"multicast/blanket/n16/T4000/s11/t{t}" for t in range(8)]


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor_strike", match="/t0")

    def test_rejects_empty_match(self):
        with pytest.raises(ValueError, match="non-empty"):
            FaultSpec(kind="kill_worker", match="")

    def test_rejects_nonpositive_times(self):
        with pytest.raises(ValueError, match="at least 1"):
            FaultSpec(kind="raise_trial", match="/t0", times=0)

    def test_rejects_negative_seconds(self):
        with pytest.raises(ValueError, match=">= 0"):
            FaultSpec(kind="delay_block", match="/t0", seconds=-1.0)


class TestFaultPlan:
    def test_coerces_dict_entries(self):
        plan = FaultPlan(faults=[{"kind": "kill_worker", "match": "/t3"}])
        assert plan.faults == [FaultSpec(kind="kill_worker", match="/t3")]

    def test_json_roundtrip(self, tmp_path):
        plan = FaultPlan(
            faults=[
                FaultSpec(kind="raise_trial", match="/t5", times=2),
                FaultSpec(kind="delay_block", match="/t1", seconds=0.25),
            ],
            seed=7,
            name="roundtrip",
        )
        path = str(tmp_path / "plan.json")
        plan.save(path)
        assert FaultPlan.load(path) == plan
        # the file is plain JSON an operator can read and edit
        data = json.loads(open(path).read())
        assert data["name"] == "roundtrip"
        assert data["faults"][0]["kind"] == "raise_trial"

    def test_matching_is_substring_on_any_key(self):
        plan = FaultPlan(faults=[FaultSpec(kind="kill_worker", match="/t3")])
        assert plan.matching("kill_worker", KEYS)
        assert not plan.matching("kill_worker", ["other/key"])
        assert not plan.matching("raise_trial", KEYS)

    def test_generate_is_deterministic_and_targets_given_keys(self):
        a = FaultPlan.generate(42, KEYS)
        b = FaultPlan.generate(42, list(reversed(KEYS)))  # order-insensitive
        assert a == b
        assert {f.kind for f in a.faults} == {"kill_worker", "raise_trial", "torn_tail"}
        assert all(f.match in KEYS for f in a.faults)
        assert FaultPlan.generate(43, KEYS) != a


class TestInjectorDecisions:
    def _inj(self, role, *faults):
        return FaultInjector(FaultPlan(faults=list(faults)), role=role)

    def test_rejects_unknown_role(self):
        with pytest.raises(ValueError, match="parent or worker"):
            FaultInjector(FaultPlan(), role="bystander")

    def test_worker_faults_never_fire_in_the_parent(self):
        kill = FaultSpec(kind="kill_worker", match="/t3")
        delay = FaultSpec(kind="delay_block", match="/t3", seconds=0.5)
        tear = FaultSpec(kind="torn_tail", match="/t3")
        rot = FaultSpec(kind="corrupt_row", match="/t3")
        parent = self._inj("parent", kill, delay, tear, rot)
        assert not parent.kill_due(KEYS, 0)
        assert parent.delay_due(KEYS, 0) == 0.0
        assert parent.torn_tail(KEYS, 0) is None
        assert parent.corrupt_line(KEYS[3], 0, '{"slots": 5}') is None
        worker = self._inj("worker", kill, delay, tear, rot)
        assert worker.kill_due(KEYS, 0)
        assert worker.delay_due(KEYS, 0) == 0.5
        assert worker.torn_tail(KEYS, 0) is not None

    def test_raise_trial_fires_in_both_roles(self):
        fault = FaultSpec(kind="raise_trial", match="/t5", times=2)
        for role in ("parent", "worker"):
            inj = self._inj(role, fault)
            from repro.faults import InjectedFault

            with pytest.raises(InjectedFault, match="/t5"):
                inj.check_trials(KEYS, 0)

    def test_attempt_budget_is_attempt_lt_times(self):
        inj = self._inj("worker", FaultSpec(kind="kill_worker", match="/t3", times=2))
        assert inj.kill_due(KEYS, 0)
        assert inj.kill_due(KEYS, 1)
        assert not inj.kill_due(KEYS, 2)  # budget spent: the retry succeeds

    def test_torn_tail_is_not_valid_json(self):
        inj = self._inj("worker", FaultSpec(kind="torn_tail", match="/t3"))
        tail = inj.torn_tail(KEYS, 0)
        with pytest.raises(json.JSONDecodeError):
            json.loads(tail)

    def test_corrupt_line_keeps_a_stale_checksum(self):
        from repro.exp.store import checksummed_line

        inj = self._inj("worker", FaultSpec(kind="corrupt_row", match="/t3"))
        line = checksummed_line({"key": KEYS[3], "slots": 5})
        rotted = inj.corrupt_line(KEYS[3], 0, line)
        assert rotted is not None and rotted != line
        data = json.loads(rotted)
        assert data["slots"] == 6  # the flipped field
        assert not row_intact(data)  # ...and the reader must reject it


class TestInstallAndEnv:
    def test_install_returns_previous(self):
        inj = FaultInjector(FaultPlan())
        before = install(inj)
        try:
            assert active() is inj
        finally:
            install(before)

    def test_injector_from_env_unset_is_none(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert injector_from_env("worker") is None

    def test_plan_env_exports_and_restores(self, tmp_path, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        plan = FaultPlan(faults=[FaultSpec(kind="kill_worker", match="/t0")], name="x")
        with plan_env(plan, str(tmp_path)) as path:
            assert os.environ[FAULT_PLAN_ENV] == path
            assert FaultPlan.load(path) == plan
            assert active() is not None and active().role == "parent"
            # a worker bootstrapping from the same env sees the same plan
            worker = injector_from_env("worker")
            assert worker.plan == plan and worker.role == "worker"
        assert FAULT_PLAN_ENV not in os.environ
        assert active() is None
