"""Fault invariance: a supervised campaign's store is *byte-identical*
(under ``REPRO_ZERO_WALL``) to the fault-free serial run, whatever the
fault plan throws at it — worker SIGKILLs, raising trials, torn shard
tails, silently corrupted rows, straggler delays.

This is the PR's acceptance gate: the supervisor's recovery actions
(respawn, retry, straggler re-dispatch, merge-time row rejection) must be
invisible in the data.  The one sanctioned divergence is quarantine — a
trial that fails every attempt is *missing*, recorded in the ledger, and
the campaign still completes.
"""

import json
import os

import pytest

from repro.exp import CampaignSpec, ResultStore, read_quarantine, run_campaign
from repro.exp.supervisor import SupervisorPolicy, RecoveryLog
from repro.faults import FaultPlan, FaultSpec, plan_env

CAMPAIGN = CampaignSpec(
    protocols=["multicast"],
    jammers=["blanket"],
    ns=[16],
    budget=4000,
    trials=12,  # two 8-trial lane blocks across 2 workers
    base_seed=11,
)
KEY = "multicast/blanket/n16/T4000/s11/t{}".format

#: Fast-failure knobs so injected retries cost milliseconds, not seconds.
FAST = dict(backoff_base=0.01, backoff_cap=0.05)


@pytest.fixture(autouse=True, scope="module")
def _zero_wall():
    previous = os.environ.get("REPRO_ZERO_WALL")
    os.environ["REPRO_ZERO_WALL"] = "1"
    yield
    if previous is None:
        os.environ.pop("REPRO_ZERO_WALL", None)
    else:
        os.environ["REPRO_ZERO_WALL"] = previous


_BASELINE = {}


def _baseline(tmp_path_factory) -> bytes:
    """The fault-free serial store's bytes (computed once per module)."""
    if "bytes" not in _BASELINE:
        path = str(tmp_path_factory.mktemp("baseline") / "serial.jsonl")
        with ResultStore(path) as store:
            run_campaign(CAMPAIGN, store, workers=1)
        _BASELINE["bytes"] = open(path, "rb").read()
    return _BASELINE["bytes"]


def _run_with_plan(tmp_path, plan, *, policy=None, recovery=None):
    path = str(tmp_path / f"{plan.name}.jsonl")
    with plan_env(plan, str(tmp_path)):
        with ResultStore(path) as store:
            run_campaign(
                CAMPAIGN,
                store,
                workers=2,
                policy=policy or SupervisorPolicy(**FAST),
                recovery=recovery,
            )
    return path


class TestFaultInvariance:
    def test_worker_sigkill_is_invisible(self, tmp_path, tmp_path_factory, capfd):
        plan = FaultPlan(
            faults=[FaultSpec(kind="kill_worker", match="/t8")], seed=1, name="kill"
        )
        recovery = RecoveryLog()
        path = _run_with_plan(tmp_path, plan, recovery=recovery)
        assert open(path, "rb").read() == _baseline(tmp_path_factory)
        assert recovery.respawns >= 1 and not recovery.quarantined
        assert "respawning" in capfd.readouterr().err
        assert not os.path.exists(path + ".quarantine.jsonl")

    def test_transient_raising_trial_is_retried_away(self, tmp_path, tmp_path_factory):
        plan = FaultPlan(
            faults=[FaultSpec(kind="raise_trial", match="/t5", times=2)],
            seed=2,
            name="raise",
        )
        recovery = RecoveryLog()
        path = _run_with_plan(tmp_path, plan, recovery=recovery)
        assert open(path, "rb").read() == _baseline(tmp_path_factory)
        assert recovery.retries == 2 and not recovery.quarantined

    def test_torn_tail_and_corrupt_row_are_rejected(
        self, tmp_path, tmp_path_factory, capfd
    ):
        plan = FaultPlan(
            faults=[
                FaultSpec(kind="torn_tail", match="/t9"),
                FaultSpec(kind="corrupt_row", match="/t2"),
            ],
            seed=3,
            name="torn",
        )
        path = _run_with_plan(tmp_path, plan)
        assert open(path, "rb").read() == _baseline(tmp_path_factory)
        err = capfd.readouterr().err
        assert "undecodable JSON (torn write)" in err
        assert "checksum mismatch (corrupt row)" in err

    def test_straggler_block_is_redispatched(self, tmp_path, tmp_path_factory):
        plan = FaultPlan(
            faults=[FaultSpec(kind="delay_block", match="/t0", seconds=2.5)],
            seed=4,
            name="slow",
        )
        recovery = RecoveryLog()
        path = _run_with_plan(
            tmp_path,
            plan,
            policy=SupervisorPolicy(block_timeout=0.5, **FAST),
            recovery=recovery,
        )
        assert open(path, "rb").read() == _baseline(tmp_path_factory)
        assert recovery.redispatches >= 1

    def test_generated_plan_holds_too(self, tmp_path, tmp_path_factory):
        keys = [s.key() for s in CAMPAIGN.trial_specs()]
        plan = FaultPlan.generate(1234, keys)
        path = _run_with_plan(tmp_path, plan)
        assert open(path, "rb").read() == _baseline(tmp_path_factory)


class TestQuarantine:
    def test_poison_trial_is_quarantined_and_the_rest_complete(
        self, tmp_path, tmp_path_factory
    ):
        plan = FaultPlan(
            faults=[FaultSpec(kind="raise_trial", match="/t7", times=99)],
            seed=5,
            name="poison",
        )
        recovery = RecoveryLog()
        path = _run_with_plan(tmp_path, plan, recovery=recovery)
        # the store equals the baseline minus exactly the poisoned row
        rows = [json.loads(l) for l in open(path) if l.strip()]
        base = [
            json.loads(l) for l in _baseline(tmp_path_factory).splitlines() if l.strip()
        ]
        assert rows == [r for r in base if r["key"] != KEY(7)]
        # ...and the ledger names the culprit with its attempt count
        assert [q.key for q in recovery.quarantined] == [KEY(7)]
        ledger = read_quarantine(path)
        assert [q.key for q in ledger] == [KEY(7)]
        assert ledger[0].attempts >= 3
        assert "raise_trial" in ledger[0].error
