"""Property-based tests for the spread_block event loop.

The event loop's correctness contract: its output must equal a slot-by-slot
simulation in which statuses update between consecutive slots.  We check that
directly against a scalar oracle built on resolve_block with K = 1.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runner import (
    adv_step_one_actions,
    shared_coin_actions,
    spread_block,
)
from repro.sim.channel import ACT_LISTEN, FB_MSG, resolve_block
from repro.sim.jam import JamBlock


@st.composite
def scenarios(draw):
    K = draw(st.integers(1, 20))
    n = draw(st.integers(2, 8))
    C = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 2**31 - 1))
    p = draw(st.sampled_from([0.1, 0.25, 0.5]))
    jam_p = draw(st.floats(0.0, 0.6))
    rule = draw(st.sampled_from(["shared", "step1"]))
    rng = np.random.default_rng(seed)
    channels = rng.integers(0, C, size=(K, n))
    coins = rng.random((K, n))
    jam = rng.random((K, C)) < jam_p
    informed = rng.random(n) < 0.4
    informed[0] = True
    active = rng.random(n) < 0.9
    return channels, coins, jam, informed, active, p, rule


def oracle(channels, coins, jam, informed, active, build):
    """Slot-by-slot reference: statuses update between slots."""
    K, n = coins.shape
    informed = informed.copy()
    actions_all = np.zeros((K, n), dtype=np.int8)
    fb_all = np.full((K, n), -1, dtype=np.int8)
    for t in range(K):
        acts = build(coins[t : t + 1], informed, active)
        fb = resolve_block(channels[t : t + 1], acts, jam[t : t + 1])
        actions_all[t] = acts[0]
        fb_all[t] = fb[0]
        newly = (fb[0] == FB_MSG) & ~informed & active
        informed |= newly
    return actions_all, fb_all, informed


@given(scenarios())
@settings(max_examples=150, deadline=None)
def test_spread_block_matches_slotwise_oracle(case):
    channels, coins, jam, informed, active, p, rule = case
    build = shared_coin_actions(p) if rule == "shared" else adv_step_one_actions(p)
    out = spread_block(channels, coins, jam, informed, active, build)
    o_actions, o_fb, o_informed = oracle(channels, coins, jam, informed, active, build)
    np.testing.assert_array_equal(out.informed, o_informed)
    np.testing.assert_array_equal(out.actions, o_actions)
    np.testing.assert_array_equal(out.feedback, o_fb)


@given(scenarios())
@settings(max_examples=80, deadline=None)
def test_informed_set_monotone(case):
    channels, coins, jam, informed, active, p, rule = case
    build = shared_coin_actions(p) if rule == "shared" else adv_step_one_actions(p)
    out = spread_block(channels, coins, jam, informed, active, build)
    assert (out.informed | informed == out.informed).all()  # superset


@given(scenarios())
@settings(max_examples=80, deadline=None)
def test_inactive_nodes_never_act_or_learn(case):
    channels, coins, jam, informed, active, p, rule = case
    build = shared_coin_actions(p) if rule == "shared" else adv_step_one_actions(p)
    out = spread_block(channels, coins, jam, informed, active, build)
    assert (out.actions[:, ~active] == 0).all()
    np.testing.assert_array_equal(out.informed[~active], informed[~active])


@given(scenarios())
@settings(max_examples=80, deadline=None)
def test_informed_slot_records_first_hearing(case):
    channels, coins, jam, informed, active, p, rule = case
    build = shared_coin_actions(p) if rule == "shared" else adv_step_one_actions(p)
    informed_slot = np.full(informed.shape, -1, dtype=np.int64)
    out = spread_block(
        channels, coins, jam, informed, active, build,
        slot0=0, informed_slot=informed_slot,
    )
    newly = out.informed & ~informed
    # every newly informed node has a recorded slot, at which it was listening
    assert (informed_slot[newly] >= 0).all()
    for u in np.nonzero(newly)[0]:
        t = informed_slot[u]
        assert out.feedback[t, u] == FB_MSG
        assert out.actions[t, u] == ACT_LISTEN
