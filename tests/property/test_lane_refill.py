"""Property-based tests for continuous lane batching (compaction/refill).

Strategy: generate arbitrary retire/refill schedules — random per-trial slot
caps (the retire times), random lane widths (the refill pressure), random
trial counts — and check the compaction contract (DESIGN.md section 13):

* per-trial results are invariant under the schedule: the stream reproduces
  the per-trial fixed-lane rows bit-identically, whatever order slots retire
  and refill in;
* every trial runs exactly once: ``LaneStream`` rejects a double
  :meth:`~repro.core.batch.LaneStream.finish`, every result lands, and the
  occupancy telemetry (``batch.lanes`` / ``adv_batch.lanes``) counts each
  trial exactly once;
* the refill ledger balances: refills == trials - initial lane count.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import run_broadcast_batch
from repro.core.batch import LaneStream, run_broadcast_stream
from repro.exp.registry import build_jammer, build_protocol
from repro.obs import collect_telemetry

N = 8
BUDGET = 2_000
#: cap menu spanning instant retirement (7 slots) to never-truncated
CAP_MENU = [7, 16, 150, 3_000, 50_000_000]

ADV_FAST = dict(
    alpha=0.24, b=0.01, halt_noise_divisor=20.0, helper_wait=2.0, max_epochs=8
)

PROTOCOLS = {
    "multicast": (lambda: build_protocol("multicast", N), "batch"),
    "adv": (lambda: build_protocol("adv", N, knobs=ADV_FAST), "adv_batch"),
}


@st.composite
def refill_schedules(draw):
    """An arbitrary compaction workload: trial caps, width, protocol."""
    caps = draw(
        st.lists(st.sampled_from(CAP_MENU), min_size=1, max_size=7)
    )
    width = draw(st.integers(1, 5))
    seed0 = draw(st.integers(0, 10_000))
    name = draw(st.sampled_from(sorted(PROTOCOLS)))
    return name, caps, width, seed0


def jammers(count, seed0):
    return [build_jammer("blanket", BUDGET, seed0 + t, n=N) for t in range(count)]


@given(refill_schedules())
@settings(max_examples=25, deadline=None)
def test_schedule_never_changes_a_trial(case):
    name, caps, width, seed0 = case
    factory, _ = PROTOCOLS[name]
    seeds = [seed0 + 17 * t for t in range(len(caps))]
    got = run_broadcast_stream(
        factory(),
        N,
        jammers(len(caps), seed0),
        seeds,
        max_slots=np.asarray(caps),
        lane_width=width,
    )
    assert all(r is not None for r in got)
    for t, (seed, cap) in enumerate(zip(seeds, caps)):
        # fixed single-lane reference: the trial alone, no schedule at all
        (reference,) = run_broadcast_batch(
            factory(),
            N,
            jammers(len(caps), seed0)[t : t + 1],
            [seed],
            max_slots=np.asarray([cap]),
        )
        assert got[t].slots == reference.slots, (case, t)
        assert got[t].completed == reference.completed, (case, t)
        assert got[t].adversary_spend == reference.adversary_spend, (case, t)
        np.testing.assert_array_equal(
            got[t].informed_slot, reference.informed_slot, err_msg=f"{case} t={t}"
        )
        np.testing.assert_array_equal(
            got[t].node_energy, reference.node_energy, err_msg=f"{case} t={t}"
        )


@given(refill_schedules())
@settings(max_examples=25, deadline=None)
def test_each_trial_runs_exactly_once(case):
    name, caps, width, seed0 = case
    factory, prefix = PROTOCOLS[name]
    seeds = [seed0 + 17 * t for t in range(len(caps))]
    with collect_telemetry() as tel:
        got = run_broadcast_stream(
            factory(),
            N,
            jammers(len(caps), seed0),
            seeds,
            max_slots=np.asarray(caps),
            lane_width=width,
        )
        agg = tel.take_aggregates()
    counters = agg["counters"]
    trials = len(caps)
    # every result slot filled — LaneStream.finish would have raised on a
    # double run, so lanes == trials pins "exactly once"
    assert len(got) == trials and all(r is not None for r in got)
    assert counters.get(f"{prefix}.lanes", 0) == trials
    assert counters.get(f"{prefix}.batches", 0) == 1
    # refill ledger: everything beyond the initially-admitted lanes was a
    # refill, regardless of retire order
    assert counters.get(f"{prefix}.refills", 0) == trials - min(width, trials)


@given(st.integers(0, 4), st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_lane_stream_rejects_double_finish(slot_pick, width):
    stream = LaneStream(N, list(range(6)), [None] * 6, [100] * 6, width)
    slot = slot_pick % stream.width
    stream.finish(slot, object())
    try:
        stream.finish(slot, object())
    except RuntimeError as err:
        assert "finished twice" in str(err)
    else:
        raise AssertionError("double finish must raise")
    # after a refill the slot hosts a fresh trial and may finish again
    if stream.refill(slot):
        stream.finish(slot, object())


@given(st.integers(1, 12), st.integers(1, 6))
@settings(max_examples=40, deadline=None)
def test_refill_ledger_drains_exactly(trials, width):
    stream = LaneStream(N, list(range(trials)), [None] * trials, [100] * trials, width)
    drained = 0
    for round_robin in range(trials):
        slot = round_robin % stream.width
        if stream.results[stream._slot_trial[slot]] is None:
            stream.finish(slot, round_robin)
            drained += 1
            stream.refill(slot)
    assert stream.refills == trials - stream.width
    assert stream.next_trial == trials
    assert not stream.refill(0), "a drained stream must refuse further refills"
