"""Property-based tests for adversary budget accounting.

The central model invariant: no strategy, under any (block-size sequence,
channel-count sequence), ever spends more than its budget — and the ledger's
view of the spend always matches the strategy's own.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import (
    BlanketJammer,
    FractionalJammer,
    FrontLoadedJammer,
    PeriodicBurstJammer,
    PhaseTargetedJammer,
    RandomJammer,
    SweepJammer,
)

STRATEGY_FACTORIES = [
    lambda budget, seed: BlanketJammer(budget, channels=0.7, placement="random", seed=seed),
    lambda budget, seed: BlanketJammer(budget, channels=2, placement="prefix", seed=seed),
    lambda budget, seed: FractionalJammer(budget, 0.6, 0.5, seed=seed),
    lambda budget, seed: FrontLoadedJammer(budget),
    lambda budget, seed: PeriodicBurstJammer(budget, period=7, burst=3, channels=0.9, seed=seed),
    lambda budget, seed: SweepJammer(budget, width=3, seed=seed),
    lambda budget, seed: RandomJammer(budget, 0.4, seed=seed),
    lambda budget, seed: PhaseTargetedJammer(
        budget, [(5, 40), (60, 90)], channel_fraction=0.8, seed=seed
    ),
]


@st.composite
def schedules(draw):
    """A random sequence of (block length, channel count) calls."""
    blocks = draw(
        st.lists(
            st.tuples(st.integers(1, 40), st.integers(1, 12)),
            min_size=1,
            max_size=8,
        )
    )
    budget = draw(st.integers(0, 300))
    seed = draw(st.integers(0, 2**31 - 1))
    idx = draw(st.integers(0, len(STRATEGY_FACTORIES) - 1))
    return blocks, budget, seed, idx


@given(schedules())
@settings(max_examples=150, deadline=None)
def test_spend_never_exceeds_budget(case):
    blocks, budget, seed, idx = case
    adv = STRATEGY_FACTORIES[idx](budget, seed)
    total = 0
    start = 0
    for K, C in blocks:
        jam = adv.jam_block(start, K, C)
        assert jam.K == K and jam.C == C
        total += jam.total()
        start += K
    assert total <= budget
    assert adv.spent == total


@given(schedules())
@settings(max_examples=60, deadline=None)
def test_reset_replays_identically(case):
    blocks, budget, seed, idx = case
    adv = STRATEGY_FACTORIES[idx](budget, seed)
    first = []
    start = 0
    for K, C in blocks:
        first.append(adv.jam_block(start, K, C).to_dense())
        start += K
    adv.reset()
    start = 0
    for (K, C), before in zip(blocks, first):
        np.testing.assert_array_equal(adv.jam_block(start, K, C).to_dense(), before)
        start += K


@given(schedules())
@settings(max_examples=60, deadline=None)
def test_channels_within_range(case):
    blocks, budget, seed, idx = case
    adv = STRATEGY_FACTORIES[idx](max(budget, 1), seed)
    start = 0
    for K, C in blocks:
        jam = adv.jam_block(start, K, C)
        if jam.total():
            assert jam.channels.min() >= 0
            assert jam.channels.max() < C
        start += K
