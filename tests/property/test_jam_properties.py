"""Property-based tests for the sparse JamBlock representation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.jam import JamBlock


@st.composite
def masks(draw):
    K = draw(st.integers(1, 12))
    C = draw(st.integers(1, 10))
    seed = draw(st.integers(0, 2**31 - 1))
    p = draw(st.floats(0.0, 1.0))
    rng = np.random.default_rng(seed)
    return rng.random((K, C)) < p


@given(masks())
@settings(max_examples=150, deadline=None)
def test_dense_roundtrip(mask):
    np.testing.assert_array_equal(JamBlock.from_dense(mask).to_dense(), mask)


@given(masks())
@settings(max_examples=100, deadline=None)
def test_total_and_counts(mask):
    jb = JamBlock.from_dense(mask)
    assert jb.total() == int(mask.sum())
    np.testing.assert_array_equal(jb.counts(), mask.sum(axis=1))


@given(masks(), st.data())
@settings(max_examples=100, deadline=None)
def test_slice_any_window(mask, data):
    K = mask.shape[0]
    t0 = data.draw(st.integers(0, K))
    t1 = data.draw(st.integers(t0, K))
    jb = JamBlock.from_dense(mask).slice(t0, t1)
    np.testing.assert_array_equal(jb.to_dense(), mask[t0:t1])


@given(masks(), st.integers(0, 200))
@settings(max_examples=100, deadline=None)
def test_truncate_budget_invariants(mask, limit):
    jb = JamBlock.from_dense(mask).truncate_budget(limit)
    assert jb.total() == min(limit, int(mask.sum()))
    # truncation keeps a prefix in row-major time order: the kept entries'
    # dense mask, flattened, must be a prefix of the original's flattening
    # restricted to jammed positions
    orig_positions = np.nonzero(mask.reshape(-1))[0]
    kept_positions = np.nonzero(jb.to_dense().reshape(-1))[0]
    np.testing.assert_array_equal(kept_positions, orig_positions[: jb.total()])


@given(masks(), st.data())
@settings(max_examples=100, deadline=None)
def test_lookup_agrees_with_dense(mask, data):
    K, C = mask.shape
    jb = JamBlock.from_dense(mask)
    q = data.draw(st.integers(1, 30))
    seed = data.draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, K, size=q)
    cols = rng.integers(0, C, size=q)
    np.testing.assert_array_equal(jb.lookup(rows, cols), mask[rows, cols])


@given(masks(), st.sampled_from([1, 2, 3, 4, 6]))
@settings(max_examples=100, deadline=None)
def test_fold_rows_equals_reshape(mask, group):
    K, C = mask.shape
    if K % group:
        return  # divisibility required; rejected upstream
    jb = JamBlock.from_dense(mask).fold_rows(group)
    np.testing.assert_array_equal(jb.to_dense(), mask.reshape(K // group, group * C))
