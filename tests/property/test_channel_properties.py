"""Property-based tests for the channel-resolution kernel.

Strategy: generate arbitrary (channels, actions, jam) blocks and check the
section-3 semantics against an independent, obviously-correct slot-by-slot
reimplementation, plus structural invariants.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.channel import (
    ACT_IDLE,
    ACT_LISTEN,
    ACT_SEND_BEACON,
    ACT_SEND_MSG,
    FB_BEACON,
    FB_MSG,
    FB_NOISE,
    FB_NONE,
    FB_SILENCE,
    resolve_block,
)
from repro.sim.jam import JamBlock


@st.composite
def blocks(draw):
    K = draw(st.integers(1, 6))
    n = draw(st.integers(1, 8))
    C = draw(st.integers(1, 5))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    channels = rng.integers(0, C, size=(K, n))
    actions = rng.choice(
        np.array([ACT_IDLE, ACT_LISTEN, ACT_SEND_MSG, ACT_SEND_BEACON], dtype=np.int8),
        size=(K, n),
        p=[0.3, 0.3, 0.3, 0.1],
    )
    jam = rng.random((K, C)) < draw(st.floats(0.0, 1.0))
    return channels, actions, jam


def oracle(channels, actions, jam):
    """Slot-by-slot, channel-by-channel reference resolution."""
    K, n = actions.shape
    C = jam.shape[1]
    fb = np.full((K, n), FB_NONE, dtype=np.int8)
    for t in range(K):
        for c in range(C):
            on = [u for u in range(n) if channels[t, u] == c and actions[t, u] != ACT_IDLE]
            senders = [u for u in on if actions[t, u] in (ACT_SEND_MSG, ACT_SEND_BEACON)]
            listeners = [u for u in on if actions[t, u] == ACT_LISTEN]
            if jam[t, c] or len(senders) >= 2:
                out = FB_NOISE
            elif len(senders) == 1:
                out = FB_MSG if actions[t, senders[0]] == ACT_SEND_MSG else FB_BEACON
            else:
                out = FB_SILENCE
            for u in listeners:
                fb[t, u] = out
    return fb


@given(blocks())
@settings(max_examples=120, deadline=None)
def test_resolution_matches_oracle(block):
    channels, actions, jam = block
    np.testing.assert_array_equal(resolve_block(channels, actions, jam), oracle(channels, actions, jam))


@given(blocks())
@settings(max_examples=60, deadline=None)
def test_dense_and_sparse_paths_agree(block):
    from repro.sim.channel import _resolve_dense, _resolve_sparse

    channels, actions, jam = block
    np.testing.assert_array_equal(
        _resolve_dense(channels, actions, jam),
        _resolve_sparse(channels, actions, JamBlock.from_dense(jam)),
    )


@given(blocks())
@settings(max_examples=60, deadline=None)
def test_only_listeners_get_feedback(block):
    channels, actions, jam = block
    fb = resolve_block(channels, actions, jam)
    listening = actions == ACT_LISTEN
    assert (fb[~listening] == FB_NONE).all()
    assert (fb[listening] != FB_NONE).all()


@given(blocks())
@settings(max_examples=60, deadline=None)
def test_colisteners_agree(block):
    """All listeners on the same (slot, channel) observe the same outcome."""
    channels, actions, jam = block
    fb = resolve_block(channels, actions, jam)
    K, n = actions.shape
    for t in range(K):
        seen = {}
        for u in range(n):
            if actions[t, u] == ACT_LISTEN:
                key = channels[t, u]
                if key in seen:
                    assert fb[t, u] == seen[key]
                seen[key] = fb[t, u]


@given(blocks())
@settings(max_examples=60, deadline=None)
def test_jamming_only_adds_noise(block):
    """Monotonicity: adding jamming can only turn feedback into noise,
    never noise into something else."""
    channels, actions, jam = block
    fb_jam = resolve_block(channels, actions, jam)
    fb_clean = resolve_block(channels, actions, np.zeros_like(jam))
    listening = actions == ACT_LISTEN
    changed = listening & (fb_jam != fb_clean)
    assert (fb_jam[changed] == FB_NOISE).all()


@st.composite
def lane_batches(draw):
    B = draw(st.integers(1, 4))
    K = draw(st.integers(1, 6))
    n = draw(st.integers(1, 8))
    C = draw(st.integers(1, 5))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    channels = rng.integers(0, C, size=(B, K, n))
    actions = rng.choice(
        np.array([ACT_IDLE, ACT_LISTEN, ACT_SEND_MSG, ACT_SEND_BEACON], dtype=np.int8),
        size=(B, K, n),
        p=[0.3, 0.3, 0.3, 0.1],
    )
    jam = rng.random((B, K, C)) < draw(st.floats(0.0, 1.0))
    return channels, actions, jam


@given(lane_batches())
@settings(max_examples=60, deadline=None)
def test_batched_resolution_equals_scalar_per_lane(batch):
    """The lane axis is pure bookkeeping: resolving a (B, K, n) batch in one
    flat pass must reproduce each lane's scalar resolution bit for bit."""
    channels, actions, jam = batch
    B = actions.shape[0]
    stacked = JamBlock.stack([JamBlock.from_dense(jam[b]) for b in range(B)])
    fb = resolve_block(channels, actions, stacked)
    assert fb.shape == actions.shape
    for b in range(B):
        np.testing.assert_array_equal(
            fb[b], resolve_block(channels[b], actions[b], jam[b])
        )


@given(lane_batches())
@settings(max_examples=30, deadline=None)
def test_batched_resolution_accepts_dense_lane_masks(batch):
    channels, actions, jam = batch
    B = actions.shape[0]
    stacked = JamBlock.stack([JamBlock.from_dense(jam[b]) for b in range(B)])
    np.testing.assert_array_equal(
        resolve_block(channels, actions, jam),
        resolve_block(channels, actions, stacked),
    )
