"""Property tests: streaming aggregation == whole-store aggregation.

:func:`repro.exp.store.stream_aggregate` and :class:`StreamAggregator` are
the memory-bounded reduction path for sharded million-trial stores; their
contract is equality with the exact in-memory :func:`aggregate` — medians,
minima and maxima exactly, means/stds/CIs to float tolerance (the summation
order differs), counts and rates exactly — for *any* record multiset, any
arrival order, and any split of the rows across shard files (including
duplicates across files and single-row cells).  Hypothesis owns the "any".
"""

import json
import math
import os

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import RunningStat, Summary
from repro.exp.store import (
    METRICS,
    StreamAggregator,
    TrialRecord,
    aggregate,
    stream_aggregate,
)

CELLS = [
    ("multicast", "blanket", 16, 1000),
    ("multicast", "sweep", 16, 1000),
    ("core", "blanket", 32, 2000),
]


@st.composite
def record_sets(draw):
    """A list of trial records spread over up to three cells, with
    non-contiguous trial counts per cell (1..12) and occasional NaN-source
    metrics (dissemination_slot None on failed trials)."""
    records = []
    for cell_index, (protocol, jammer, n, budget) in enumerate(CELLS):
        trials = draw(st.integers(0, 12)) if cell_index else draw(st.integers(1, 12))
        for t in range(trials):
            success = draw(st.booleans())
            records.append(
                TrialRecord(
                    key=f"{protocol}/{jammer}/n{n}/T{budget}/s0/t{t}",
                    protocol=protocol,
                    jammer=jammer,
                    n=n,
                    budget=budget,
                    trial=t,
                    success=success,
                    slots=draw(st.integers(1, 10_000)),
                    max_cost=draw(st.integers(0, 500)),
                    mean_cost=draw(
                        st.floats(0, 1e6, allow_nan=False, allow_infinity=False)
                    ),
                    adversary_spend=draw(st.integers(0, 10_000)),
                    dissemination_slot=draw(st.integers(1, 10_000)) if success else None,
                    halted_uninformed=draw(st.integers(0, 5)),
                    periods=draw(st.integers(1, 50)),
                )
            )
    return records


def assert_cells_match(exact, streamed):
    assert len(exact) == len(streamed)
    for a, b in zip(exact, streamed):
        assert a.cell == b.cell
        assert a.trials == b.trials
        assert a.violations == b.violations
        assert math.isclose(a.success_rate, b.success_rate, abs_tol=0)
        for metric in METRICS:
            sa, sb = a.summaries[metric], b.summaries[metric]
            for field in ("mean", "std", "median", "lo", "hi", "ci95"):
                va, vb = getattr(sa, field), getattr(sb, field)
                if math.isnan(va):
                    assert math.isnan(vb), (metric, field)
                else:
                    assert math.isclose(va, vb, rel_tol=1e-9, abs_tol=1e-9), (
                        metric,
                        field,
                        va,
                        vb,
                    )


@given(record_sets(), st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_stream_aggregator_matches_aggregate_any_order(records, rnd):
    shuffled = list(records)
    rnd.shuffle(shuffled)
    agg = StreamAggregator()
    for record in shuffled:
        agg.add(record)
    assert len(agg) == len(records)
    assert_cells_match(aggregate(records), agg.cells())


@given(record_sets(), st.data())
@settings(max_examples=25, deadline=None)
def test_stream_aggregate_over_shard_splits(tmp_path_factory, records, data):
    """Splitting the rows across shard files at any boundary — including
    duplicating a prefix into a second file — changes nothing."""
    tmp = tmp_path_factory.mktemp("shards")
    cut = data.draw(st.integers(0, len(records)), label="shard boundary")
    dup = data.draw(st.integers(0, cut), label="duplicated prefix")
    paths = [str(tmp / "a.shard-0.jsonl"), str(tmp / "a.shard-1.jsonl")]
    with open(paths[0], "w") as fh:
        for record in records[:cut]:
            fh.write(record.to_json_line() + "\n")
    with open(paths[1], "w") as fh:
        # duplicates across files must be counted exactly once
        for record in records[:dup]:
            fh.write(record.to_json_line() + "\n")
        for record in records[cut:]:
            fh.write(record.to_json_line() + "\n")
    assert_cells_match(aggregate(records), stream_aggregate(paths))
    for path in paths:
        os.remove(path)


@given(record_sets())
@settings(max_examples=25, deadline=None)
def test_stream_aggregate_key_filter_scopes_to_a_campaign(records):
    keys = {r.key for r in records if r.protocol == "multicast"}
    expected = aggregate([r for r in records if r.key in keys])
    agg = StreamAggregator()
    for record in records:
        if record.key in keys:
            agg.add(record)
    assert_cells_match(expected, agg.cells())


@given(
    st.lists(
        st.floats(-1e9, 1e9, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=200,
    )
)
@settings(max_examples=60, deadline=None)
def test_running_stat_matches_batch_summary(values):
    stat = RunningStat().extend(values)
    batch = Summary.of(values)
    assert stat.count == len(values)
    scale = max(1.0, abs(batch.mean))
    assert math.isclose(stat.mean, batch.mean, rel_tol=1e-9, abs_tol=1e-6 * scale)
    assert math.isclose(stat.std, batch.std, rel_tol=1e-7, abs_tol=1e-6 * scale)
    assert math.isclose(stat.ci95, batch.ci95, rel_tol=1e-7, abs_tol=1e-6 * scale)
    assert stat.lo == batch.lo
    assert stat.hi == batch.hi


def test_running_stat_nan_poisons_like_the_batch():
    stat = RunningStat().extend([1.0, float("nan"), 3.0])
    batch = Summary.of([1.0, float("nan"), 3.0])
    assert math.isnan(stat.std) and math.isnan(batch.std)
    assert math.isnan(stat.summary().mean)


def test_single_row_cell_has_zero_spread():
    record = TrialRecord(
        key="core/blanket/n32/T2000/s0/t0",
        protocol="core",
        jammer="blanket",
        n=32,
        budget=2000,
        trial=0,
        success=True,
        slots=7,
        max_cost=3,
        mean_cost=1.5,
        adversary_spend=9,
        dissemination_slot=6,
        halted_uninformed=0,
        periods=2,
    )
    agg = StreamAggregator()
    agg.add(record)
    (cell,) = agg.cells()
    assert cell.trials == 1
    summary = cell.summaries["slots"]
    assert summary.mean == summary.median == summary.lo == summary.hi == 7.0
    assert summary.std == summary.ci95 == 0.0
