"""Unit tests for the arena runtime: kernel semantics, energy, overrun."""

import numpy as np
import pytest

from repro.adversary import BlanketJammer
from repro.adversary.reactive import SniperJammer
from repro.arena import ArenaNetwork, resolve_columns
from repro.sim.channel import (
    ACT_IDLE,
    ACT_LISTEN,
    ACT_SEND_BEACON,
    ACT_SEND_MSG,
    FB_MSG,
    FB_NOISE,
    FB_NONE,
    FB_SILENCE,
    resolve_slot,
)


def random_slot(rng, n, C, p_send=0.2, p_listen=0.3, beacons=False):
    channels = rng.integers(0, C, size=n)
    coin = rng.random(n)
    actions = np.zeros(n, dtype=np.int8)
    actions[coin < p_listen] = ACT_LISTEN
    actions[coin > 1 - p_send] = ACT_SEND_MSG
    if beacons:
        actions[(coin > 1 - p_send / 2)] = ACT_SEND_BEACON
    return channels, actions


class TestResolveColumns:
    """The single-slot column kernel must agree with the block kernel."""

    @pytest.mark.parametrize("beacons", [False, True])
    @pytest.mark.parametrize("jam_p", [0.0, 0.4])
    def test_matches_resolve_slot(self, rng, beacons, jam_p):
        n, C = 32, 8
        for trial in range(50):
            channels, actions = random_slot(rng, n, C, beacons=beacons)
            jam = rng.random(C) < jam_p
            expected = resolve_slot(channels, actions, jam)
            got = resolve_columns(channels, actions, jam if jam_p else None, C)
            if jam_p == 0.0:
                # also exercise the explicit all-false mask
                np.testing.assert_array_equal(
                    resolve_columns(channels, actions, jam, C), expected
                )
            np.testing.assert_array_equal(got, expected)

    def test_network_step_matches_resolve_columns(self, rng):
        """The inlined fast path of ArenaNetwork.step (buffer reuse, payload
        split skipping, presence hints) must equal the reference kernel."""
        n, C = 24, 6
        for trial in range(60):
            channels, actions = random_slot(rng, n, C, beacons=(trial % 2 == 0))
            expected = resolve_columns(channels, actions, None, C)
            net = ArenaNetwork(n)
            got = net.step(channels, actions, C)
            if got is None:
                assert (expected == FB_NONE).all()
            else:
                np.testing.assert_array_equal(got, expected)
            # conservative hints must not change the outcome
            net2 = ArenaNetwork(n)
            got2 = net2.step(
                channels, actions, C, may_beacon=True, has_listen=True, has_send=True
            )
            np.testing.assert_array_equal(got2, expected)


class TestArenaNetwork:
    def test_energy_accounting(self):
        net = ArenaNetwork(2)
        channels = np.zeros(2, dtype=np.int64)
        fb = net.step(channels, np.array([ACT_SEND_MSG, ACT_LISTEN], dtype=np.int8), 1)
        assert fb[1] == FB_MSG and fb[0] == FB_NONE
        assert net.energy.send_slots[0] == 1
        assert net.energy.listen_slots[1] == 1
        assert net.clock == 1

    def test_oblivious_adversary_charged_per_slot(self):
        adv = BlanketJammer(budget=3, channels=1)
        adv.reset()
        net = ArenaNetwork(2, adv)
        channels = np.zeros(2, dtype=np.int64)
        actions = np.array([ACT_SEND_MSG, ACT_LISTEN], dtype=np.int8)
        feedbacks = [net.step(channels, actions, 1).copy() for _ in range(5)]
        # first three slots jammed -> noise; then Eve is broke
        assert [fb[1] for fb in feedbacks[:3]] == [FB_NOISE] * 3
        assert [fb[1] for fb in feedbacks[3:]] == [FB_MSG] * 2
        assert net.energy.adversary_spend == 3

    def test_reactive_adversary_sees_busy_mask(self):
        adv = SniperJammer(budget=None, k=1, seed=1)
        net = ArenaNetwork(2, adv)
        channels = np.array([2, 2], dtype=np.int64)
        actions = np.array([ACT_SEND_MSG, ACT_LISTEN], dtype=np.int8)
        fb = net.step(channels, actions, 4)
        assert fb[1] == FB_NOISE  # within-slot snipe on the live channel
        assert net.energy.adversary_spend == 1

    def test_silence_on_idle_spectrum(self):
        net = ArenaNetwork(2)
        fb = net.step(
            np.array([0, 1], dtype=np.int64),
            np.array([ACT_IDLE, ACT_LISTEN], dtype=np.int8),
            2,
        )
        assert fb[1] == FB_SILENCE

    def test_no_listener_returns_none(self):
        net = ArenaNetwork(2)
        fb = net.step(
            np.zeros(2, dtype=np.int64),
            np.array([ACT_SEND_MSG, ACT_IDLE], dtype=np.int8),
            1,
        )
        assert fb is None
        assert net.energy.send_slots[0] == 1  # energy still charged

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            ArenaNetwork(1)


class TestOverrun:
    def test_truncated_run_is_flagged_not_silent(self):
        """Arena analogue of the ScalarNetwork overrun regression: a run
        stopped at max_slots reports completed=False and the overrun flag."""
        from repro import MultiCast
        from repro.arena import run_broadcast_adaptive
        from repro.adversary import BlanketJammer

        r = run_broadcast_adaptive(
            MultiCast(16, a=0.005),
            16,
            BlanketJammer(budget=10**9, channels=1.0),
            seed=1,
            max_slots=500,
        )
        assert r.slots == 500
        assert not r.completed
        assert r.extras["overrun"]
