"""Differential equivalence: the windowed arena vs the slot-stepped oracle.

The block-stepped driver (:mod:`repro.arena.window`) promises *bit-identity*
with the per-slot arena for every latency >= 1 reactive jammer — same slots,
same informing/halt books, same energy, same adversary spend, draw for draw.
This suite pins that promise:

* the full adapter x jammer matrix (every column adapter, every reactive
  registry jammer that can be window-stepped, plus the unjammed control);
* truncation (``max_slots``) and overrun parity;
* a hypothesis property over random window caps — window placement must
  never be observable;
* the lane-batched entry point against per-lane slot runs;
* backend dispatch: ``auto`` routing, ``backend="window"`` validation, the
  ``extras["backend"]`` stamp, and the once-per-campaign
  :class:`~repro.core.batch.FallbackNotes` entry when a latency-0 jammer
  forces slot stepping.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.reactive import (
    ReactiveLatencyJammer,
    SniperJammer,
    TrailingJammer,
)
from repro.arena import (
    run_broadcast_adaptive,
    run_broadcast_windowed_batch,
    windowable_adversary,
)
from repro.core.batch import collect_fallback_notes
from repro.exp.registry import build_jammer, build_protocol

N = 16
BUDGET = 4_000

#: Window-steppable jammer factories (latency >= 1) plus the unjammed
#: control; ``sniper`` / ``reactive:0`` are latency 0 and appear only in the
#: dispatch tests below.
JAMMERS = {
    "none": lambda: None,
    "trailing": lambda: TrailingJammer(BUDGET, k=4, seed=9),
    "reactive:1": lambda: ReactiveLatencyJammer(BUDGET, latency=1, k=2, seed=9),
    "reactive:2": lambda: ReactiveLatencyJammer(BUDGET, latency=2, k=2, seed=9),
    "reactive:4": lambda: ReactiveLatencyJammer(BUDGET, latency=4, k=2, seed=9),
}

#: One spec per column adapter (name, registry args, run kwargs).  The
#: MultiCastAdv run is truncated like tests/arena/test_parity.py's fast row —
#: the full Fig. 4 run takes minutes and adds no new window machinery.
PROTOCOLS = {
    "core": ("core", {}, {}),
    "multicast": ("multicast", {}, {}),
    "multicast_c2": ("multicast_c", {"T": 20_000, "C": 2}, {}),
    "multicast_c4": ("multicast_c", {"T": 20_000, "C": 4}, {}),
    "single_channel": ("single_channel", {"T": 20_000}, {}),
    "decay": ("decay", {}, {}),
    "naive": ("naive", {}, {}),
    "adv": ("adv", {"T": 20_000}, {"max_slots": 3_000}),
}


def make_protocol(key: str):
    name, kwargs, _ = PROTOCOLS[key]
    return build_protocol(name, N, **kwargs)


def run_pair(key: str, jammer_key: str, *, seed: int = 2, window_cap=None):
    """Run (windowed, slot-stepped) with identical inputs."""
    _, _, kwargs = PROTOCOLS[key]
    windowed = run_broadcast_adaptive(
        make_protocol(key),
        N,
        JAMMERS[jammer_key](),
        seed=seed,
        backend="window",
        window_cap=window_cap,
        **kwargs,
    )
    slot = run_broadcast_adaptive(
        make_protocol(key), N, JAMMERS[jammer_key](), seed=seed,
        backend="slot", **kwargs,
    )
    return windowed, slot


def assert_identical(windowed, slot, context=""):
    """Everything observable must match except the backend stamp itself."""
    __tracebackhide__ = True
    assert windowed.extras.get("backend") == "arena-window", context
    assert slot.extras.get("backend") == "arena-slot", context
    for attr in ("slots", "completed", "adversary_spend", "halted_uninformed",
                 "periods", "protocol", "n"):
        assert getattr(windowed, attr) == getattr(slot, attr), (
            f"{context}: {attr} {getattr(windowed, attr)!r} != "
            f"{getattr(slot, attr)!r}"
        )
    for attr in ("informed_slot", "halt_slot", "node_energy"):
        assert (getattr(windowed, attr) == getattr(slot, attr)).all(), (
            f"{context}: {attr} diverges"
        )
    extras_w = {k: v for k, v in windowed.extras.items() if k != "backend"}
    extras_s = {k: v for k, v in slot.extras.items() if k != "backend"}
    assert extras_w.keys() == extras_s.keys(), context
    for k, v in extras_w.items():
        if isinstance(v, np.ndarray):
            assert (v == extras_s[k]).all(), f"{context}: extras[{k}] diverges"
        else:
            assert v == extras_s[k], f"{context}: extras[{k}] diverges"


@pytest.mark.parametrize("jammer_key", sorted(JAMMERS))
@pytest.mark.parametrize("key", sorted(PROTOCOLS))
def test_bit_identity_matrix(key, jammer_key):
    """Every adapter x every window-steppable jammer: windowed == slot."""
    windowed, slot = run_pair(key, jammer_key)
    assert_identical(windowed, slot, f"{key}/{jammer_key}")


def test_truncation_parity():
    """A max_slots overrun truncates both paths at the same slot with the
    same books (windowed lanes must not commit past the cap)."""
    for max_slots in (137, 500, 1_000):
        windowed = run_broadcast_adaptive(
            make_protocol("multicast"), N, JAMMERS["reactive:2"](),
            seed=5, backend="window", max_slots=max_slots,
        )
        slot = run_broadcast_adaptive(
            make_protocol("multicast"), N, JAMMERS["reactive:2"](),
            seed=5, backend="slot", max_slots=max_slots,
        )
        assert not windowed.completed
        assert windowed.slots <= max_slots
        assert_identical(windowed, slot, f"max_slots={max_slots}")


@settings(max_examples=20, deadline=None)
@given(
    cap=st.integers(min_value=1, max_value=300),
    latency=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=50),
)
def test_window_boundaries_unobservable(cap, latency, seed):
    """Property: window placement never leaks into the results — any cap,
    any latency, any seed reproduces the slot-stepped run exactly."""
    adversary = ReactiveLatencyJammer(2_000, latency=latency, k=2, seed=9)
    windowed = run_broadcast_adaptive(
        build_protocol("multicast", N), N, adversary,
        seed=seed, backend="window", window_cap=cap,
    )
    adversary = ReactiveLatencyJammer(2_000, latency=latency, k=2, seed=9)
    slot = run_broadcast_adaptive(
        build_protocol("multicast", N), N, adversary, seed=seed, backend="slot",
    )
    assert_identical(windowed, slot, f"cap={cap} L={latency} seed={seed}")


def test_lane_batch_matches_single_runs():
    """The lane-batched entry point is bit-identical per lane to independent
    slot-stepped runs (mixed jammers, mixed seeds, staggered finishes)."""
    lanes = [
        ("trailing", 11), ("reactive:1", 12), ("reactive:2", 13),
        ("reactive:4", 14), ("reactive:2", 15),
    ]
    batch = run_broadcast_windowed_batch(
        build_protocol("multicast", N),
        N,
        [JAMMERS[j]() for j, _ in lanes],
        [s for _, s in lanes],
    )
    for (jammer_key, seed), windowed in zip(lanes, batch):
        slot = run_broadcast_adaptive(
            build_protocol("multicast", N), N, JAMMERS[jammer_key](),
            seed=seed, backend="slot",
        )
        assert_identical(windowed, slot, f"lane {jammer_key}/{seed}")


class TestDispatch:
    def test_windowable_predicate(self):
        assert windowable_adversary(None)
        assert windowable_adversary(TrailingJammer(100, k=1, seed=0))
        assert windowable_adversary(ReactiveLatencyJammer(100, latency=1, k=1, seed=0))
        assert not windowable_adversary(SniperJammer(100, k=1, seed=0))
        assert not windowable_adversary(
            ReactiveLatencyJammer(100, latency=0, k=1, seed=0)
        )
        assert not windowable_adversary(build_jammer("random", 100, 0))

    def test_auto_prefers_window(self):
        result = run_broadcast_adaptive(
            build_protocol("multicast", N), N,
            ReactiveLatencyJammer(BUDGET, latency=2, k=2, seed=9), seed=2,
        )
        assert result.extras["backend"] == "arena-window"

    def test_auto_falls_back_for_latency_zero(self):
        result = run_broadcast_adaptive(
            build_protocol("multicast", N), N,
            SniperJammer(BUDGET, k=4, seed=9), seed=2,
        )
        assert result.extras["backend"] == "arena-slot"

    def test_forced_window_rejects_latency_zero(self):
        with pytest.raises(ValueError, match="window"):
            run_broadcast_adaptive(
                build_protocol("multicast", N), N,
                SniperJammer(BUDGET, k=4, seed=9), seed=2, backend="window",
            )

    def test_forced_window_rejects_oblivious(self):
        with pytest.raises(ValueError, match="window"):
            run_broadcast_adaptive(
                build_protocol("multicast", N), N,
                build_jammer("random", BUDGET, 9), seed=2, backend="window",
            )

    def test_fallback_note_records_forced_slot_stepping(self):
        with collect_fallback_notes() as notes:
            run_broadcast_adaptive(
                build_protocol("multicast", N), N,
                SniperJammer(BUDGET, k=4, seed=9), seed=2,
            )
        assert notes, "latency-0 fallback should leave a note"
        (name, reason), _ = next(iter(notes.counts.items()))
        assert name == "arena[SniperJammer]"
        assert "latency 0" in reason

    def test_no_note_outside_collector_or_for_windowed(self):
        with collect_fallback_notes() as notes:
            run_broadcast_adaptive(
                build_protocol("multicast", N), N,
                ReactiveLatencyJammer(BUDGET, latency=2, k=2, seed=9), seed=2,
            )
        assert not notes, "windowed runs must not log fallback notes"
