"""The adversary-model axis end to end: registry -> trials -> campaign -> CLI.

The acceptance path of the arena subsystem: a reactive jammer *name* must
work everywhere an oblivious one does — ``build_jammer``, ``run_broadcast``
(auto-dispatch), ``run_broadcast_batch`` (per-lane fallback), ``run_trials``,
``CampaignSpec``/``run_campaign`` with a store, and ``python -m repro
sweep``/``arena``.
"""

import numpy as np
import pytest

from repro import MultiCast, run_broadcast, run_broadcast_batch
from repro.adversary.reactive import ReactiveLatencyJammer, SniperJammer, TrailingJammer
from repro.analysis.stats import run_trials
from repro.cli import main
from repro.exp import (
    CampaignSpec,
    ResultStore,
    UnknownNameError,
    aggregate,
    build_jammer,
    canonical_jammer,
    is_reactive_jammer,
    jammer_names,
    oblivious_jammer_names,
    reactive_jammer_names,
    run_campaign,
)

N = 16
A = 0.005  # small MultiCast iteration scale keeps each run ~1k slots


def fast_multicast():
    return MultiCast(N, a=A)


class TestRegistry:
    def test_reactive_names_registered(self):
        assert {"sniper", "trailing"} <= set(jammer_names())
        assert "phase_targeted" in jammer_names()
        assert set(reactive_jammer_names()) == {"sniper", "trailing"}
        assert "sniper" not in oblivious_jammer_names()
        assert "phase_targeted" in oblivious_jammer_names()

    def test_reactive_family_canonicalization(self):
        assert canonical_jammer("reactive:0") == "reactive:0"
        assert canonical_jammer("Reactive:7") == "reactive:7"
        assert is_reactive_jammer("reactive:2")
        assert is_reactive_jammer("sniper")
        assert not is_reactive_jammer("blanket")

    @pytest.mark.parametrize("bad", ["reactive:", "reactive:x", "reactive:-1"])
    def test_reactive_family_rejects_bad_latency(self, bad):
        with pytest.raises(UnknownNameError) as exc:
            canonical_jammer(bad)
        assert "reactive:<latency>" in str(exc.value)

    def test_builders(self):
        sniper = build_jammer("sniper", 1_000, 3)
        assert isinstance(sniper, SniperJammer)
        trailing = build_jammer("trailing", 1_000, 3, knobs={"k": 2})
        assert isinstance(trailing, TrailingJammer) and trailing.k == 2
        fam = build_jammer("reactive:3", 1_000, 3)
        assert isinstance(fam, ReactiveLatencyJammer) and fam.latency == 3
        # the name carries the latency; a redundant knob is fine, a
        # contradicting one would mis-key store cells and must be rejected
        same = build_jammer("reactive:3", 1_000, 3, knobs={"latency": 3})
        assert same.latency == 3
        with pytest.raises(ValueError):
            build_jammer("reactive:3", 1_000, 3, knobs={"latency": 0})

    def test_phase_targeted_builder_uses_n(self):
        from repro.adversary import PhaseTargetedJammer

        jam = build_jammer("phase_targeted", 1_000, 3, n=N)
        assert isinstance(jam, PhaseTargetedJammer)
        assert jam.intervals  # timetable intervals got computed
        # j = lg 16 - 1 = 3 is the default target phase for n=16
        other = build_jammer("phase_targeted", 1_000, 3, n=N, knobs={"phase": 0})
        assert other.intervals != jam.intervals

    def test_campaign_spec_accepts_reactive_names(self):
        spec = CampaignSpec(
            protocols=["multicast"], jammers=["trailing", "reactive:2"], ns=[N]
        )
        assert spec.jammers == ["trailing", "reactive:2"]
        keys = {s.key() for s in spec.trial_specs()}
        assert any("reactive:2" in k for k in keys)


class TestDispatch:
    def test_run_broadcast_dispatches_reactive_to_arena(self):
        r = run_broadcast(
            fast_multicast(), N, TrailingJammer(2_000, k=4, seed=5), seed=7
        )
        assert r.extras.get("arena_runtime")
        assert r.protocol.endswith("[arena]")

    def test_run_broadcast_rejects_trace_on_adaptive_runs(self):
        from repro.sim.trace import TraceRecorder

        with pytest.raises(ValueError):
            run_broadcast(
                fast_multicast(), N, SniperJammer(100, k=1), seed=1,
                trace=TraceRecorder(),
            )

    def test_run_broadcast_batch_falls_back_per_lane(self):
        seeds = [4, 9]
        adversaries = [TrailingJammer(2_000, k=4, seed=i) for i in range(2)]
        batched = run_broadcast_batch(fast_multicast(), N, adversaries, seeds)
        for i, seed in enumerate(seeds):
            reference = run_broadcast(
                fast_multicast(), N, TrailingJammer(2_000, k=4, seed=i), seed=seed
            )
            assert batched[i].slots == reference.slots
            np.testing.assert_array_equal(
                batched[i].node_energy, reference.node_energy
            )
            assert batched[i].adversary_spend == reference.adversary_spend

    def test_run_trials_with_reactive_factory(self):
        batch = run_trials(
            fast_multicast,
            N,
            lambda seed: TrailingJammer(2_000, k=4, seed=seed),
            trials=3,
            base_seed=2,
            label="adaptive-flow",
        )
        # pipeline properties, not protocol luck: every trial ran on the
        # arena to completion with a live, budget-bounded adversary
        assert len(batch) == 3
        assert all(r.completed for r in batch.results)
        assert all(r.extras.get("arena_runtime") for r in batch.results)
        assert (batch.adversary_spend > 0).all()
        assert (batch.adversary_spend <= 2_000).all()


class TestCampaign:
    def test_reactive_campaign_stores_and_aggregates(self, tmp_path):
        store_path = str(tmp_path / "arena.jsonl")
        spec = CampaignSpec(
            protocols=["multicast"],
            jammers=["trailing", "sniper"],
            ns=[N],
            budget=2_000,
            trials=2,
            base_seed=1,
        )
        with ResultStore(store_path) as store:
            records = run_campaign(spec, store, workers=1)
        assert len(records) == 4
        cells = {(c.jammer): c for c in aggregate(records)}
        # the section-8 finding, in miniature: the within-slot sniper defeats
        # MultiCast while the one-slot-latency jammer does not
        assert cells["trailing"].success_rate == 1.0
        assert cells["sniper"].success_rate == 0.0
        assert cells["sniper"].violations > 0
        # resume is a no-op
        with ResultStore(store_path) as store:
            again = run_campaign(spec, store, workers=1)
        assert [r.key for r in again] == [r.key for r in records]


class TestCLI:
    def test_sweep_accepts_reactive_jammer_end_to_end(self, tmp_path, capsys):
        store = str(tmp_path / "sweep.jsonl")
        rc = main(
            [
                "sweep", "--protocols", "multicast", "--jammers", "trailing",
                "--n", str(N), "--budget", "2000", "--trials", "2",
                "--workers", "1", "--store", store, "--quiet",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "trailing" in out
        with open(store) as fh:
            assert len(fh.read().strip().splitlines()) == 2

    def test_arena_command(self, capsys):
        rc = main(
            [
                "arena", "--protocol", "multicast", "--n", str(N),
                "--budget", "2000", "--seed", "3",
                "--jammers", "none,trailing,sniper",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "adaptive arena" in out
        assert "trailing" in out and "sniper" in out

    def test_gallery_includes_phase_targeted(self, capsys):
        main(["gallery", "--protocol", "core", "--n", str(N), "--budget", "2000", "--seed", "2"])
        assert "phase_targeted" in capsys.readouterr().out
