"""Differential parity: the arena must be bit-identical to its oracles.

Two oracle families (see repro/arena/columns.py):

* reference protocols (Figs. 1/2/4) against :class:`ScalarNetwork` driving
  the scalar reference nodes — same per-node streams, so *everything*
  observable must match: feedback-derived statuses and event slots, energy
  books, halt slots, Eve's spend, period counts.  Oblivious and reactive
  jammers alike.
* baselines against the block engine (:func:`run_broadcast`) — same
  ``generator("nodes")`` stream; exact equality on jam-free runs and under
  deterministic oblivious jammers.

The minutes-long full MultiCastAdv run sits behind the ``slow`` marker; a
truncated run (a few phases) keeps Fig. 4 in the fast suite.
"""

import numpy as np
import pytest

from repro import (
    BlanketJammer,
    FrontLoadedJammer,
    MultiCast,
    MultiCastAdv,
    MultiCastC,
    MultiCastCore,
    run_broadcast,
)
from repro.adversary.reactive import (
    ReactiveLatencyJammer,
    SniperJammer,
    TrailingJammer,
)
from repro.arena import run_broadcast_adaptive
from repro.baselines import DecayBroadcast, NaiveEpidemic, SingleChannelCompetitive
from repro.core.reference import (
    run_scalar_multicast,
    run_scalar_multicast_adv,
    run_scalar_multicast_core,
)

N = 16
ADV_FAST = dict(alpha=0.24, b=0.01, halt_noise_divisor=50.0, helper_wait=4.0)

#: Jammer factories for the reference-protocol matrix: an unjammed control,
#: a deterministic oblivious jammer, and the reactive ladder.
JAMMERS = {
    "none": lambda: None,
    "blackout": lambda: BlanketJammer(3_000, channels=1.0),
    "sniper": lambda: SniperJammer(3_000, k=4, seed=9),
    "trailing": lambda: TrailingJammer(3_000, k=4, seed=9),
    "reactive:0": lambda: ReactiveLatencyJammer(3_000, latency=0, k=2, seed=9),
    "reactive:3": lambda: ReactiveLatencyJammer(3_000, latency=3, k=2, seed=9),
}


def assert_parity(scalar, arena, context, *, compare_extras=False):
    __tracebackhide__ = True
    for attr in (
        "n",
        "slots",
        "completed",
        "adversary_spend",
        "halted_uninformed",
        "periods",
    ):
        assert getattr(scalar, attr) == getattr(arena, attr), (context, attr)
    for attr in ("informed_slot", "halt_slot", "node_energy"):
        np.testing.assert_array_equal(
            getattr(scalar, attr),
            getattr(arena, attr),
            err_msg=f"{context}: {attr}",
        )
    if compare_extras:
        assert scalar.protocol == arena.protocol, context
        # the arena stamps which execution path ran — a runtime annotation
        # the oracle result cannot carry, excluded from the exact comparison
        extras = dict(arena.extras)
        assert extras.pop("backend") in ("arena-slot", "arena-window"), context
        assert scalar.extras == extras, context


@pytest.mark.parametrize("jammer", sorted(JAMMERS))
@pytest.mark.parametrize("seed", [3, 5])
class TestReferenceParity:
    def test_multicast_core(self, jammer, seed):
        scalar = run_scalar_multicast_core(
            N, T=0, a=64.0, adversary=JAMMERS[jammer](), seed=seed
        )
        arena = run_broadcast_adaptive(
            MultiCastCore(n=N, T=0, a=64.0), N, JAMMERS[jammer](), seed=seed
        )
        assert_parity(scalar, arena, ("core", jammer, seed))

    def test_multicast(self, jammer, seed):
        scalar = run_scalar_multicast(
            N, adversary=JAMMERS[jammer](), a=0.005, seed=seed
        )
        arena = run_broadcast_adaptive(
            MultiCast(N, a=0.005), N, JAMMERS[jammer](), seed=seed
        )
        assert_parity(scalar, arena, ("multicast", jammer, seed))


class TestMultiCastAdvParity:
    def test_truncated_run_fast(self):
        """A few phases of Fig. 4, cut off by max_slots: exercises both steps,
        the counters and the phase machinery without the minutes-long halt."""
        proto = MultiCastAdv(**ADV_FAST)
        for adversary_factory in (
            lambda: None,
            lambda: TrailingJammer(1_000, k=2, seed=4),
            lambda: SniperJammer(1_000, k=2, seed=4),
        ):
            scalar = run_scalar_multicast_adv(
                proto, 8, adversary_factory(), seed=2, max_slots=3_000
            )
            arena = run_broadcast_adaptive(
                proto, 8, adversary_factory(), seed=2, max_slots=3_000
            )
            assert_parity(scalar, arena, ("adv", "truncated"))
            assert not arena.completed

    # The full end-to-end parity run (through the halts) is fused into the
    # existing slow oracle test so its minutes-long scalar workload is paid
    # once: tests/core/test_reference.py::
    # TestScalarMultiCastAdv::test_small_run_success_and_arena_parity.


#: Baseline factories and deterministic jammers for the engine-parity matrix.
BASELINES = {
    "decay": lambda: DecayBroadcast(N),
    "naive": lambda: NaiveEpidemic(N),
    "multicast_c": lambda: MultiCastC(N, 2, a=0.005),
    "single_channel": lambda: SingleChannelCompetitive(N, a=0.005),
}
DETERMINISTIC_JAMMERS = {
    "none": lambda: None,
    "blackout": lambda: BlanketJammer(500, channels=1.0),
    "frontloaded": lambda: FrontLoadedJammer(300),
}


@pytest.mark.parametrize("jammer", sorted(DETERMINISTIC_JAMMERS))
@pytest.mark.parametrize("baseline", sorted(BASELINES))
def test_baseline_matches_block_engine(baseline, jammer):
    """Engine-stream adapters reproduce run_broadcast bit for bit, extras
    and protocol label included."""
    block = run_broadcast(BASELINES[baseline](), N, DETERMINISTIC_JAMMERS[jammer](), seed=11)
    arena = run_broadcast_adaptive(
        BASELINES[baseline](), N, DETERMINISTIC_JAMMERS[jammer](), seed=11
    )
    assert_parity(block, arena, (baseline, jammer), compare_extras=True)


def test_baselines_accept_reactive_jammers():
    """The point of the lift: baselines now run under jammers the block
    engine cannot express at all."""
    for baseline, factory in sorted(BASELINES.items()):
        r = run_broadcast_adaptive(
            factory(), N, SniperJammer(2_000, k=2, seed=7), seed=11
        )
        assert r.slots > 0
        assert r.adversary_spend > 0, baseline
