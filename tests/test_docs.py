"""Docs-consistency: the documentation the code cites must actually exist.

Two failure modes this guards against, both of which shipped historically:

* a docstring says "see DESIGN.md section 2.4" and DESIGN.md has no
  section 2.4 (or no DESIGN.md at all) — every such citation anywhere in
  the tree is extracted and checked against the real headings;
* the README / package-docstring quickstart drifts from the actual API —
  both snippets are executed, asserts included.
"""

from __future__ import annotations

import re
import textwrap
from pathlib import Path

import pytest

import repro

REPO = Path(__file__).resolve().parent.parent
SCAN_DIRS = ("src", "tests", "benchmarks", "examples")

#: "DESIGN.md section 2.2", "DESIGN.md 2.2", "EXPERIMENTS.md section 1" ...
CITATION = re.compile(r"\b(DESIGN|EXPERIMENTS)\.md(?:\s+section)?\s+(\d+(?:\.\d+)*)")
#: any mention at all (a bare "see EXPERIMENTS.md" still requires the file)
MENTION = re.compile(r"\b(DESIGN|EXPERIMENTS)\.md\b")
#: "## 1. Overview", "### 2.2 Laptop-scale ..." -> "1", "2.2"
HEADING = re.compile(r"^#{1,6}\s+(\d+(?:\.\d+)*)[.\s]", re.MULTILINE)


def _python_files():
    for d in SCAN_DIRS:
        yield from (REPO / d).rglob("*.py")


def _collect_citations():
    sectioned, mentioned = [], set()
    for path in _python_files():
        text = path.read_text()
        for doc, section in CITATION.findall(text):
            sectioned.append((path.relative_to(REPO), doc, section))
        for doc in MENTION.findall(text):
            mentioned.add(doc)
    return sectioned, mentioned


def _sections_of(doc: str) -> set:
    return set(HEADING.findall((REPO / f"{doc}.md").read_text()))


class TestCitations:
    def test_cited_docs_exist(self):
        _, mentioned = _collect_citations()
        assert mentioned, "expected the tree to cite DESIGN.md/EXPERIMENTS.md somewhere"
        for doc in mentioned:
            assert (REPO / f"{doc}.md").is_file(), f"{doc}.md is cited but missing"

    def test_every_cited_section_exists(self):
        sectioned, _ = _collect_citations()
        assert sectioned, "expected sectioned citations (e.g. 'DESIGN.md section 2.2')"
        sections = {doc: _sections_of(doc) for doc in {d for _, d, _ in sectioned}}
        dangling = [
            f"{path}: {doc}.md section {ref} (have: {sorted(sections[doc])})"
            for path, doc, ref in sectioned
            if ref not in sections[doc]
        ]
        assert not dangling, "dangling doc citations:\n" + "\n".join(dangling)

    def test_known_anchor_sections_present(self):
        # the three sections the seed code has always cited by number
        for anchor in ("2.2", "2.4", "2.6"):
            assert anchor in _sections_of("DESIGN"), f"DESIGN.md lost section {anchor}"


#: "bench_arena", "bench_engine", ... — any bench-module token in src/.  A
#: trailing extension other than .py (e.g. "bench_output.txt") is not a
#: module reference.
BENCH_REF = re.compile(r"\bbench_[a-z0-9_]+\b(?!\.(?!py\b)\w)")


class TestBenchReferences:
    """Docstrings must not cite benchmarks that do not exist.

    Regression: ``adversary/reactive.py`` shipped citing a
    ``bench_adaptive_extension`` experiment that was never written; every
    ``bench_<name>`` token in ``src/`` must now match a real module under
    ``benchmarks/``.
    """

    def test_bench_references_resolve(self):
        dangling = []
        for path in (REPO / "src").rglob("*.py"):
            text = path.read_text()
            for token in set(BENCH_REF.findall(text)):
                if not (REPO / "benchmarks" / f"{token}.py").is_file():
                    dangling.append(f"{path.relative_to(REPO)}: {token}")
        assert not dangling, "dead bench references:\n" + "\n".join(dangling)

    def test_the_regression_is_covered(self):
        # the fixed docstring must now point at the arena bench, and that
        # bench must exist
        text = (REPO / "src/repro/adversary/reactive.py").read_text()
        assert "bench_adaptive_extension" not in text
        assert "bench_arena" in text
        assert (REPO / "benchmarks/bench_arena.py").is_file()


def _extract_readme_snippet() -> str:
    text = (REPO / "README.md").read_text()
    match = re.search(r"```python\n(.*?)```", text, re.DOTALL)
    assert match, "README.md has no python quickstart block"
    return match.group(1)


def _extract_init_snippet() -> str:
    doc = repro.__doc__
    match = re.search(r"Quickstart::\n\n((?:[ ]{4}.*\n|\n)+)", doc)
    assert match, "repro.__doc__ has no Quickstart:: block"
    return textwrap.dedent(match.group(1))


class TestQuickstarts:
    def test_readme_quickstart_runs(self, capsys):
        exec(compile(_extract_readme_snippet(), "README.md", "exec"), {})

    def test_init_quickstart_runs(self, capsys):
        exec(compile(_extract_init_snippet(), "repro.__doc__", "exec"), {})

    def test_snippets_agree_on_the_api(self):
        # both quickstarts must exercise the same headline entry point
        for snippet in (_extract_readme_snippet(), _extract_init_snippet()):
            assert "run_broadcast(" in snippet
            assert "result.success" in snippet


class TestClaimsLedger:
    """CLAIMS.md must cover the whole predictor registry.

    A new predictor in ``analysis.theory`` cannot ship without a declared
    ledger row: ``repro.report.ledger`` refuses to evaluate a mismatched
    ledger, and this test refuses a committed CLAIMS.md that predates the
    predictor.  (That the file also matches the *data* is asserted by
    ``tests/report/test_report_golden.py``.)
    """

    def test_claims_md_exists(self):
        assert (REPO / "CLAIMS.md").is_file(), (
            "CLAIMS.md is missing — run `python -m repro report`"
        )

    def test_every_predictor_has_a_ledger_row(self):
        from repro.analysis.theory import PREDICTORS

        text = (REPO / "CLAIMS.md").read_text()
        missing = [name for name in PREDICTORS if f"`{name}`" not in text]
        assert not missing, (
            f"CLAIMS.md has no row for predictor(s) {missing} — declare them "
            "in repro.report.ledger (UNTESTED with a reason is allowed) and "
            "regenerate with `python -m repro report`"
        )

    def test_every_row_carries_a_verdict(self):
        from repro.analysis.theory import PREDICTORS

        text = (REPO / "CLAIMS.md").read_text()
        for line in text.splitlines():
            if line.startswith("| `"):
                assert re.search(r"\*\*(SUPPORTED|PARTIAL|REFUTED|UNTESTED)\*\*", line), (
                    f"ledger summary row without a verdict: {line}"
                )
        assert len(PREDICTORS) == sum(
            1 for line in text.splitlines() if line.startswith("| `")
        )


class TestReadme:
    def test_cli_tour_covers_all_subcommands(self):
        from repro.cli import build_parser

        text = (REPO / "README.md").read_text()
        parser = build_parser()
        subactions = next(
            a for a in parser._actions if a.__class__.__name__ == "_SubParsersAction"
        )
        for command in subactions.choices:
            assert f"python -m repro {command}" in text, (
                f"README CLI tour is missing the `{command}` subcommand"
            )

    def test_registry_names_documented(self):
        from repro.exp import jammer_names, protocol_names

        text = (REPO / "README.md").read_text()
        for name in (*protocol_names(), *jammer_names()):
            assert f"`{name}`" in text, f"README does not document the name `{name}`"
