"""Claims-ledger unit tests: verdict thresholds and coverage enforcement.

Evidence is graded against synthetic cells (no file IO) so each acceptance
rule — exponent match, envelope, shape residual — can be pinned at its
strict/loose boundaries.
"""

import numpy as np
import pytest

from repro.analysis.stats import Summary
from repro.analysis.theory import PREDICTORS
from repro.exp.store import CellStats
from repro.report import (
    PARTIAL,
    REFUTED,
    SUPPORTED,
    UNTESTED,
    ClaimRow,
    Evidence,
    ReportError,
    claims_ledger,
    evaluate_claims,
)
from repro.report.ledger import evaluate_evidence


def make_cells(x_attr, xs, ys, metric="slots"):
    cells = []
    for x, y in zip(xs, ys):
        fields = dict(protocol="p", jammer="j", n=16, budget=1000, channels=None)
        fields[x_attr] = x
        cells.append(
            CellStats(
                protocol=fields["protocol"],
                jammer=fields["jammer"],
                n=fields["n"],
                budget=fields["budget"],
                trials=1,
                success_rate=1.0,
                violations=0,
                channels=fields["channels"],
                summaries={metric: Summary.of([y])},
            )
        )
    return cells


class StubBundle:
    """Duck-typed RecordBundle serving one prebuilt cell list."""

    def __init__(self, cells):
        self._cells = cells

    def cells(self, name):
        return self._cells


def ev(**overrides):
    base = dict(
        label="synthetic",
        store="synthetic",
        metric="slots",
        x="n",
        kind="exponent",
        curve=lambda x: x,
        tol=0.1,
        tol_loose=0.5,
    )
    base.update(overrides)
    return Evidence(**base)


XS = [8.0, 16.0, 32.0, 64.0]


class TestExponentRule:
    def test_exact_match_is_supported(self):
        bundle = StubBundle(make_cells("n", XS, [x**2 for x in XS]))
        result = evaluate_evidence(bundle, ev(curve=lambda x: x**2))
        assert result.verdict == SUPPORTED
        assert result.measured == pytest.approx(2.0)

    def test_loose_match_is_partial(self):
        bundle = StubBundle(make_cells("n", XS, [x**2 for x in XS]))
        result = evaluate_evidence(bundle, ev(curve=lambda x: x**1.7))
        assert result.verdict == PARTIAL

    def test_gross_mismatch_is_refuted(self):
        bundle = StubBundle(make_cells("n", XS, [x**2 for x in XS]))
        result = evaluate_evidence(bundle, ev(curve=lambda x: x**0.5))
        assert result.verdict == REFUTED

    def test_explicit_expect_instead_of_curve(self):
        bundle = StubBundle(make_cells("n", XS, [7.0, 7.0, 7.0, 7.0]))
        result = evaluate_evidence(bundle, ev(curve=None, expect=0.0))
        assert result.verdict == SUPPORTED

    def test_r2_gate_demotes_to_partial(self):
        # slope lands inside the strict tolerance, but the data wiggles too
        # much around the fit line to call it SUPPORTED (fit r² ~ 0.12)
        ys = [x**0.3 * f for x, f in zip(XS, (1.35, 0.74, 1.35, 0.74))]
        bundle = StubBundle(make_cells("n", XS, ys))
        result = evaluate_evidence(
            bundle, ev(curve=None, expect=0.13, tol=0.1, r2_min=0.9)
        )
        assert result.verdict == PARTIAL

    def test_neither_curve_nor_expect_errors(self):
        bundle = StubBundle(make_cells("n", XS, [x for x in XS]))
        with pytest.raises(ReportError, match="neither curve nor expect"):
            evaluate_evidence(bundle, ev(curve=None, expect=None))


class TestEnvelopeRule:
    def test_below_the_envelope_is_supported(self):
        bundle = StubBundle(make_cells("n", XS, [x**0.4 for x in XS]))
        result = evaluate_evidence(bundle, ev(kind="envelope", curve=lambda x: x))
        assert result.verdict == SUPPORTED

    def test_slight_excess_is_partial(self):
        bundle = StubBundle(make_cells("n", XS, [x**1.3 for x in XS]))
        result = evaluate_evidence(bundle, ev(kind="envelope", curve=lambda x: x))
        assert result.verdict == PARTIAL

    def test_gross_excess_is_refuted(self):
        bundle = StubBundle(make_cells("n", XS, [x**2.5 for x in XS]))
        result = evaluate_evidence(bundle, ev(kind="envelope", curve=lambda x: x))
        assert result.verdict == REFUTED


class TestShapeRule:
    def test_matching_shape_is_supported(self):
        bundle = StubBundle(make_cells("n", XS, [3.0 * x**1.5 for x in XS]))
        result = evaluate_evidence(
            bundle, ev(kind="shape", curve=lambda x: x**1.5, tol=0.05, tol_loose=0.5)
        )
        assert result.verdict == SUPPORTED
        assert result.measured == pytest.approx(0.0, abs=1e-12)

    def test_residual_between_tolerances_is_partial(self):
        ys = [3.0 * x**1.5 for x in XS]
        ys[0] *= 1.3  # 30 % off at the first point, anchored at the last
        bundle = StubBundle(make_cells("n", XS, ys))
        result = evaluate_evidence(
            bundle, ev(kind="shape", curve=lambda x: x**1.5, tol=0.05, tol_loose=0.5)
        )
        assert result.verdict == PARTIAL

    def test_gross_residual_is_refuted(self):
        ys = [3.0 * x**1.5 for x in XS]
        ys[0] *= 10.0
        bundle = StubBundle(make_cells("n", XS, ys))
        result = evaluate_evidence(
            bundle, ev(kind="shape", curve=lambda x: x**1.5, tol=0.05, tol_loose=0.5)
        )
        assert result.verdict == REFUTED


class TestEvidenceValidation:
    def test_fewer_than_two_cells_errors(self):
        bundle = StubBundle(make_cells("n", [8.0], [1.0]))
        with pytest.raises(ReportError, match="need at least 2"):
            evaluate_evidence(bundle, ev())

    def test_select_filters_cells(self):
        cells = make_cells("n", XS, [x**2 for x in XS]) + make_cells(
            "n", XS, [x**0.1 for x in XS]
        )
        for c in cells[len(XS):]:
            c.protocol = "other"
        bundle = StubBundle(cells)
        result = evaluate_evidence(
            bundle, ev(curve=lambda x: x**2, select=(("protocol", "p"),))
        )
        assert result.verdict == SUPPORTED

    def test_unknown_kind_errors(self):
        bundle = StubBundle(make_cells("n", XS, [x for x in XS]))
        with pytest.raises(ReportError, match="unknown kind"):
            evaluate_evidence(bundle, ev(kind="vibes"))

    def test_nonpositive_metric_errors(self):
        bundle = StubBundle(make_cells("n", XS, [0.0, 1.0, 2.0, 3.0]))
        with pytest.raises(ReportError, match="non-positive"):
            evaluate_evidence(bundle, ev())


class TestLedgerStructure:
    def test_ledger_covers_exactly_the_predictor_registry(self):
        assert [row.predictor for row in claims_ledger()] == list(PREDICTORS)

    def test_untested_rows_declare_a_reason(self):
        for row in claims_ledger():
            if not row.evidence:
                assert row.untested_reason, f"{row.predictor} is silently untested"

    def test_partial_reason_caps_the_verdict(self, monkeypatch):
        import repro.report.ledger as ledger_mod

        rows = tuple(
            ClaimRow(
                predictor=name,
                statement="synthetic",
                evidence=(ev(curve=lambda x: x**2, store="s"),),
                partial_reason="only half the claim" if name == "multicast_time" else "",
            )
            for name in PREDICTORS
        )
        monkeypatch.setattr(ledger_mod, "claims_ledger", lambda: rows)
        bundle = StubBundle(make_cells("n", XS, [x**2 for x in XS]))
        results = {r.row.predictor: r for r in ledger_mod.evaluate_claims(bundle)}
        assert results["multicast_time"].verdict == PARTIAL
        assert results["multicast_cost"].verdict == SUPPORTED

    def test_undeclared_untested_row_errors(self, monkeypatch):
        import repro.report.ledger as ledger_mod

        rows = tuple(
            ClaimRow(predictor=name, statement="synthetic") for name in PREDICTORS
        )
        monkeypatch.setattr(ledger_mod, "claims_ledger", lambda: rows)
        with pytest.raises(ReportError, match="untested claims must be declared"):
            ledger_mod.evaluate_claims(StubBundle([]))

    def test_row_order_mismatch_errors(self, monkeypatch):
        import repro.report.ledger as ledger_mod

        monkeypatch.setattr(ledger_mod, "claims_ledger", lambda: ())
        with pytest.raises(ReportError, match="do not match theory.PREDICTORS"):
            ledger_mod.evaluate_claims(StubBundle([]))
