"""Marker-splicing unit tests: malformed structure must fail loudly.

A silent skip on a bad marker would freeze a region at stale content while
``report --check`` keeps passing — every malformed shape is a MarkerError.
"""

import pytest

from repro.report import MarkerError, find_regions, splice, splice_all

DOC = """# title

prose before

<!-- repro:begin alpha -->
old alpha
<!-- repro:end alpha -->

between

<!-- repro:begin beta -->
old beta
<!-- repro:end beta -->

prose after
"""


class TestFindRegions:
    def test_finds_all_regions(self):
        regions = find_regions(DOC)
        assert set(regions) == {"alpha", "beta"}
        start, end = regions["alpha"]
        assert DOC[start:end].strip() == "old alpha"

    def test_no_regions_is_fine(self):
        assert find_regions("just prose") == {}

    def test_nested_begin_errors(self):
        doc = "<!-- repro:begin a -->\n<!-- repro:begin b -->\n<!-- repro:end b -->"
        with pytest.raises(MarkerError, match="nested"):
            find_regions(doc)

    def test_end_without_begin_errors(self):
        with pytest.raises(MarkerError, match="without a matching begin"):
            find_regions("<!-- repro:end a -->")

    def test_mismatched_end_errors(self):
        doc = "<!-- repro:begin a -->\n<!-- repro:end b -->"
        with pytest.raises(MarkerError, match="closes the open region"):
            find_regions(doc)

    def test_unclosed_begin_errors(self):
        with pytest.raises(MarkerError, match="no end marker"):
            find_regions("<!-- repro:begin a -->\ncontent")

    def test_duplicate_region_errors(self):
        doc = (
            "<!-- repro:begin a -->\nx\n<!-- repro:end a -->\n"
            "<!-- repro:begin a -->\ny\n<!-- repro:end a -->"
        )
        with pytest.raises(MarkerError, match="duplicate"):
            find_regions(doc)


class TestSplice:
    def test_replaces_only_the_named_region(self):
        out = splice(DOC, "alpha", "NEW ALPHA")
        assert "NEW ALPHA" in out
        assert "old alpha" not in out
        assert "old beta" in out
        assert "prose before" in out and "prose after" in out

    def test_splice_is_idempotent(self):
        once = splice(DOC, "alpha", "NEW")
        assert splice(once, "alpha", "NEW") == once

    def test_markers_survive_splicing(self):
        out = splice(DOC, "alpha", "NEW")
        assert set(find_regions(out)) == {"alpha", "beta"}

    def test_unknown_name_errors(self):
        with pytest.raises(MarkerError, match="missing marker"):
            splice(DOC, "gamma", "content")


class TestSpliceAll:
    def test_full_replacement(self):
        out = splice_all(DOC, {"alpha": "A2", "beta": "B2"})
        assert "A2" in out and "B2" in out
        assert "old alpha" not in out and "old beta" not in out

    def test_document_region_without_renderer_errors(self):
        # strict mode: an unknown marker in the doc would freeze stale content
        with pytest.raises(MarkerError, match="unknown region"):
            splice_all(DOC, {"alpha": "A2"})

    def test_renderer_without_document_region_errors(self):
        with pytest.raises(MarkerError, match="missing marker"):
            splice_all(DOC, {"alpha": "A2", "beta": "B2", "gamma": "G"})
