"""Golden-file tests: the committed record IS what the stores produce.

These are the teeth behind "the docs match the data": regenerating every
report-owned file from the committed JSONL stores must reproduce the
committed bytes exactly, twice in a row, and through the CLI's ``--check``.
"""

import xml.etree.ElementTree as ET
from pathlib import Path

import pytest

from repro.analysis.theory import PREDICTORS
from repro.cli import main
from repro.report import UNTESTED, RecordBundle, build_outputs, evaluate_claims

REPO = Path(__file__).resolve().parent.parent.parent


@pytest.fixture(scope="module")
def outputs():
    return build_outputs(str(REPO))


class TestGolden:
    def test_generated_files_match_the_committed_record(self, outputs):
        stale = [
            rel
            for rel, content in outputs.items()
            if (REPO / rel).read_text() != content
        ]
        assert not stale, (
            f"committed files drifted from the stores: {stale} — "
            "run `python -m repro report` and commit the result"
        )

    def test_regeneration_is_byte_identical(self, outputs):
        again = build_outputs(str(REPO))
        assert outputs == again

    def test_cli_check_passes(self, capsys):
        assert main(["report", "--check", "--root", str(REPO)]) == 0
        assert "match the stores" in capsys.readouterr().out

    def test_outputs_cover_claims_experiments_and_figures(self, outputs):
        assert "EXPERIMENTS.md" in outputs
        assert "CLAIMS.md" in outputs
        figures = [rel for rel in outputs if rel.endswith(".svg")]
        assert len(figures) >= 5
        assert all(rel.startswith("experiments/figures/") for rel in figures)


class TestLedgerAgainstTheRecord:
    def test_all_predictors_appear_with_verdicts(self, outputs):
        claims = outputs["CLAIMS.md"]
        for name in PREDICTORS:
            assert f"`{name}`" in claims

    def test_at_least_five_claims_are_tested(self):
        results = evaluate_claims(RecordBundle(str(REPO)))
        tested = [r for r in results if r.verdict != UNTESTED]
        assert len(tested) >= 5
        untested = [r for r in results if r.verdict == UNTESTED]
        for r in untested:
            assert r.row.untested_reason

    def test_nothing_is_refuted_by_the_committed_record(self):
        # a REFUTED row means the stores contradict a declared tolerance —
        # that must never be the committed state of the repo
        results = evaluate_claims(RecordBundle(str(REPO)))
        refuted = [r.row.predictor for r in results if r.verdict == "REFUTED"]
        assert not refuted


class TestFigures:
    def test_svgs_are_well_formed_xml(self, outputs):
        for rel, content in outputs.items():
            if not rel.endswith(".svg"):
                continue
            root = ET.fromstring(content)
            assert root.tag.endswith("svg"), rel
            # at least one data polyline and the axes frame made it in
            body = content
            assert "<polyline" in body and "<rect" in body, rel

    def test_svgs_carry_no_timestamps(self, outputs):
        # determinism guard: nothing date-like may leak into the bytes
        import re

        for rel, content in outputs.items():
            if rel.endswith(".svg"):
                assert not re.search(r"\d{4}-\d{2}-\d{2}", content), rel
