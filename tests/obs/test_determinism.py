"""The telemetry hard contract: trial stores are byte-identical on and off.

Telemetry writes to a side channel (``<store>.telemetry.jsonl``) and must
never perturb a trial row.  The one physical field in a row — ``wall_time``
— is zeroed via the ``REPRO_ZERO_WALL`` escape hatch (an env var, so it
survives the fork into pool workers), after which "never perturb" sharpens
to *byte-identical store files*.  Pinned here across the three execution
shapes the ISSUE names: serial, sharded (workers=3), and the windowed
arena (a reactive latency-2 jammer).  The same runs double as the
fallback-note contract: the merged telemetry stream carries the campaign's
FallbackNotes exactly once.
"""

import json

import pytest

from repro.exp import CampaignSpec, ResultStore, run_campaign
from repro.exp.pool import ZERO_WALL_ENV
from repro.obs.recorder import active, telemetry_path


@pytest.fixture(autouse=True)
def zero_wall(monkeypatch):
    monkeypatch.setenv(ZERO_WALL_ENV, "1")


def campaign(jammers):
    return CampaignSpec(
        protocols=["multicast"],
        jammers=jammers,
        ns=[16],
        budget=3000,
        trials=4,
        base_seed=7,
    )


def run(tmp_path, name, spec, *, workers, telemetry):
    path = str(tmp_path / f"{name}.jsonl")
    with ResultStore(path) as store:
        run_campaign(spec, store, workers=workers, telemetry=telemetry)
    return path


CONFIGS = [
    ("serial", ["blanket"], 1),
    ("sharded", ["blanket", "sweep"], 3),
    ("windowed-arena", ["reactive:2"], 1),
    ("windowed-arena-sharded", ["reactive:2"], 3),
]


@pytest.mark.parametrize("name,jammers,workers", CONFIGS)
def test_store_bytes_identical_with_telemetry_on_and_off(
    tmp_path, name, jammers, workers
):
    spec = campaign(jammers)
    off = run(tmp_path, f"{name}-off", spec, workers=workers, telemetry=False)
    on = run(tmp_path, f"{name}-on", spec, workers=workers, telemetry=True)
    with open(off, "rb") as a, open(on, "rb") as b:
        assert a.read() == b.read(), name
    # and the side channel actually materialized, ending in the parent summary
    rows = [json.loads(line) for line in open(telemetry_path(on))]
    assert rows, "telemetry-on run produced no events"
    assert rows[-1]["event"] == "summary"
    assert rows[-1]["source"] == "main"


def test_sharded_telemetry_merges_worker_events(tmp_path):
    spec = campaign(["blanket"])
    on = run(tmp_path, "workers", spec, workers=3, telemetry=True)
    rows = [json.loads(line) for line in open(telemetry_path(on))]
    events = {r["event"] for r in rows}
    assert "heartbeat" in events and "campaign" in events
    # worker heartbeats survive the shard merge under their own source tag
    assert any(r["source"].startswith("worker-") for r in rows)
    # aggregates travel via futures, not shards: exactly one summary (parent)
    summaries = [r for r in rows if r["event"] == "summary"]
    assert len(summaries) == 1
    assert summaries[0]["counters"].get("batch.kernel_passes", 0) > 0
    # no shard files survive the closing merge
    import glob

    assert glob.glob(f"{on}.telemetry.shard-*") == []


def test_fallback_notes_appear_exactly_once_in_merged_telemetry(tmp_path):
    # "sniper" senses within its own slot (latency 0): every trial forces
    # the arena's slot fallback, which FallbackNotes tallies campaign-wide
    spec = campaign(["sniper"])
    on = run(tmp_path, "notes", spec, workers=3, telemetry=True)
    rows = [json.loads(line) for line in open(telemetry_path(on))]
    note_events = [r for r in rows if r["event"] == "fallback_notes"]
    assert len(note_events) == 1
    notes = note_events[0]["notes"]
    assert any("latency 0" in n["reason"] for n in notes)
    # the slot-fallback counter made it into the parent summary too
    (summary,) = [r for r in rows if r["event"] == "summary"]
    assert summary["counters"].get("arena.slot_fallbacks", 0) >= len(spec)


def test_windowed_arena_counters_reach_the_summary(tmp_path):
    spec = campaign(["reactive:2"])
    on = run(tmp_path, "window", spec, workers=1, telemetry=True)
    rows = [json.loads(line) for line in open(telemetry_path(on))]
    (summary,) = [r for r in rows if r["event"] == "summary"]
    counters = summary["counters"]
    assert counters.get("window.passes", 0) > 0
    assert counters.get("window.slots_committed", 0) > 0
    assert "window.proposed" in summary["hists"]


def test_adaptive_campaign_emits_wave_trajectory(tmp_path):
    spec = CampaignSpec(
        protocols=["multicast"],
        jammers=["blanket"],
        ns=[16],
        budget=3000,
        trials=2,
        base_seed=7,
        ci_target=0.9,
        max_trials=6,
    )
    on = run(tmp_path, "adaptive", spec, workers=1, telemetry=True)
    rows = [json.loads(line) for line in open(telemetry_path(on))]
    waves = [r for r in rows if r["event"] == "wave"]
    assert waves, "adaptive run emitted no wave events"
    assert waves[0]["wave"] == 1
    assert waves[0]["scheduled"] > 0
    for row in waves:
        assert isinstance(row["rel_ci"], dict)


def test_telemetry_requires_an_on_disk_store():
    with pytest.raises(ValueError, match="on-disk store"):
        run_campaign(campaign(["blanket"]), ResultStore(None), telemetry=True)


def test_campaign_leaves_no_recorder_installed(tmp_path):
    run(tmp_path, "clean", campaign(["blanket"]), workers=1, telemetry=True)
    assert active() is None


def test_crash_leftover_shards_fold_into_next_run(tmp_path):
    # simulate a killed worker's orphan shard, then run a telemetry campaign
    # against the same store: the orphan's events must lead the merged stream
    spec = campaign(["blanket"])
    path = str(tmp_path / "crash.jsonl")
    from repro.obs.merge import telemetry_shard_path

    with open(telemetry_shard_path(path, 5), "w") as fh:
        fh.write(json.dumps({"event": "orphan", "source": "worker-5", "seq": 0}) + "\n")
    with ResultStore(path) as store:
        run_campaign(spec, store, workers=1, telemetry=True)
    rows = [json.loads(line) for line in open(telemetry_path(path))]
    assert rows[0]["event"] == "orphan"
    assert rows[-1]["event"] == "summary"
