"""The perf-regression gate: ``check_bench`` over BENCH_*.json files.

Floors are recorded next to the speedups they bound (one schema, one
writer — ``benchmarks/conftest.py``'s ``record_speedup``), so the gate
needs no knowledge of individual benches: every recorded speedup meets
its own floor, and in baseline mode every baseline case must exist in
the fresh run and meet the *baseline's* floor.
"""

import json

from repro.obs.bench import SCHEMA_VERSION, check_bench, load_bench_files


def _write(dirpath, name, data):
    path = dirpath / f"BENCH_{name}.json"
    path.write_text(json.dumps(data) + "\n")
    return path


def _bench(name, speedup=5.0, floor=2.0, test="test_x", case="case"):
    return {
        "bench": name,
        "schema": SCHEMA_VERSION,
        "smoke": False,
        "results": {
            test: {
                "speedups": {
                    case: {"baseline_s": 10.0, "fast_s": 2.0,
                           "speedup": speedup, "floor": floor}
                }
            }
        },
    }


def test_load_bench_files_keys_by_bench_name(tmp_path):
    _write(tmp_path, "engine", _bench("engine"))
    _write(tmp_path, "arena", _bench("arena"))
    assert sorted(load_bench_files(str(tmp_path))) == ["arena", "engine"]


def test_empty_dir_fails(tmp_path):
    ok, lines = check_bench(str(tmp_path))
    assert not ok
    assert "no BENCH_*.json" in lines[0]


def test_speedup_meeting_floor_passes(tmp_path):
    _write(tmp_path, "engine", _bench("engine", speedup=3.0, floor=2.0))
    ok, lines = check_bench(str(tmp_path))
    assert ok
    assert lines[-1] == "check-bench: PASS"


def test_speedup_below_floor_fails(tmp_path):
    _write(tmp_path, "engine", _bench("engine", speedup=1.5, floor=2.0))
    ok, lines = check_bench(str(tmp_path))
    assert not ok
    assert any("speedup 1.5 < floor 2.0" in line for line in lines)


def test_wrong_schema_fails(tmp_path):
    data = _bench("engine")
    data["schema"] = 99
    _write(tmp_path, "engine", data)
    ok, lines = check_bench(str(tmp_path))
    assert not ok
    assert any("schema" in line and "FAIL" in line for line in lines)


def test_missing_floor_fails(tmp_path):
    data = _bench("engine")
    del data["results"]["test_x"]["speedups"]["case"]["floor"]
    _write(tmp_path, "engine", data)
    ok, lines = check_bench(str(tmp_path))
    assert not ok
    assert any("missing speedup/floor" in line for line in lines)


def test_shape_only_bench_passes(tmp_path):
    _write(tmp_path, "shard", {
        "bench": "shard", "schema": SCHEMA_VERSION, "smoke": False,
        "results": {"test_y": {"wall_time_s": 1.0}},
    })
    ok, lines = check_bench(str(tmp_path))
    assert ok
    assert any("shape-only" in line for line in lines)


class TestBaselineMode:
    def test_fresh_meeting_baseline_floor_passes(self, tmp_path):
        fresh, base = tmp_path / "fresh", tmp_path / "base"
        fresh.mkdir(), base.mkdir()
        _write(base, "engine", _bench("engine", speedup=5.0, floor=2.0))
        _write(fresh, "engine", _bench("engine", speedup=2.5, floor=2.0))
        ok, _ = check_bench(str(fresh), str(base))
        assert ok

    def test_fresh_below_baseline_floor_fails(self, tmp_path):
        fresh, base = tmp_path / "fresh", tmp_path / "base"
        fresh.mkdir(), base.mkdir()
        _write(base, "engine", _bench("engine", speedup=5.0, floor=2.0))
        # fresh run passes its own (regenerated, looser) floor but regressed
        # below the committed baseline's floor — the gate must catch it
        _write(fresh, "engine", _bench("engine", speedup=1.5, floor=1.0))
        ok, lines = check_bench(str(fresh), str(base))
        assert not ok
        assert any("fresh speedup 1.5 < baseline floor 2.0" in line for line in lines)

    def test_bench_missing_from_fresh_run_fails(self, tmp_path):
        fresh, base = tmp_path / "fresh", tmp_path / "base"
        fresh.mkdir(), base.mkdir()
        _write(base, "engine", _bench("engine"))
        _write(base, "arena", _bench("arena"))
        _write(fresh, "engine", _bench("engine"))
        ok, lines = check_bench(str(fresh), str(base))
        assert not ok
        assert any("arena: in baseline but missing" in line for line in lines)

    def test_case_missing_from_fresh_run_fails(self, tmp_path):
        fresh, base = tmp_path / "fresh", tmp_path / "base"
        fresh.mkdir(), base.mkdir()
        _write(base, "engine", _bench("engine", case="jammed"))
        _write(fresh, "engine", _bench("engine", case="unjammed"))
        ok, lines = check_bench(str(fresh), str(base))
        assert not ok
        assert any("case missing from fresh run" in line for line in lines)

    def test_committed_bench_files_pass_the_gate(self):
        # the real committed records are the CI gate's ground truth — they
        # must stay valid under their own floors
        from pathlib import Path

        committed = Path(__file__).resolve().parents[2] / "benchmarks"
        ok, lines = check_bench(str(committed))
        assert ok, "\n".join(lines)
