"""Pin the lane-occupancy accounting: every trial lands in exactly one of
``batch.lanes``, ``adv_batch.lanes`` or ``batch.fallback_lanes``.

Regression anchor for the width-1/fallback bypass bug: the batched engines
used to guard their end-of-batch counters behind ``B > 1``, so single-lane
runs (width-1 streams, one-trial cells) and scalar-fallback lanes vanished
from the occupancy books and the telemetry under-counted the campaign.  The
counters are now unconditional, and fallback lanes are both counted and
stamped in the result extras.
"""

import numpy as np
import pytest

from repro.core import MultiCast, run_broadcast_batch
from repro.core.batch import run_broadcast_stream
from repro.exp import CampaignSpec, ResultStore, run_campaign
from repro.exp.registry import build_jammer, build_protocol
from repro.obs import collect_telemetry

N = 8
BUDGET = 2_000
ADV_FAST = dict(
    alpha=0.24, b=0.01, halt_noise_divisor=20.0, helper_wait=2.0, max_epochs=8
)


def jammers(count):
    return [build_jammer("blanket", BUDGET, 100 + t, n=N) for t in range(count)]


def counters_for(run):
    with collect_telemetry() as tel:
        run()
        return tel.take_aggregates()["counters"]


class TestUnguardedLaneCounters:
    def test_width_one_stream_counts_every_lane(self):
        counters = counters_for(
            lambda: run_broadcast_stream(
                build_protocol("multicast", N),
                N,
                jammers(3),
                [3, 7, 11],
                lane_width=1,
            )
        )
        assert counters["batch.lanes"] == 3
        assert counters["batch.batches"] == 1

    def test_single_lane_fixed_batch_counts_its_lane(self):
        counters = counters_for(
            lambda: run_broadcast_batch(MultiCast(N), N, jammers(1), [3])
        )
        assert counters["batch.lanes"] == 1
        assert counters["batch.batches"] == 1

    def test_width_one_adv_stream_counts_every_lane(self):
        counters = counters_for(
            lambda: run_broadcast_stream(
                build_protocol("adv", N, knobs=ADV_FAST),
                N,
                jammers(3),
                [3, 7, 11],
                lane_width=1,
            )
        )
        assert counters["adv_batch.lanes"] == 3
        assert counters["adv_batch.batches"] == 1


class TestFallbackAccounting:
    def test_fallback_lanes_counted_and_stamped(self, monkeypatch, capsys):
        # hide both lane kernels: every lane scalar-falls-back
        monkeypatch.delattr(MultiCast, "run_batch")
        monkeypatch.delattr(MultiCast, "run_stream")

        def run():
            return run_broadcast_stream(
                MultiCast(N), N, jammers(3), [3, 7, 11], lane_width=2
            )

        with collect_telemetry() as tel:
            results = run()
            counters = tel.take_aggregates()["counters"]
        capsys.readouterr()  # swallow the per-call fallback warnings
        assert counters["batch.fallback_lanes"] == 3
        assert "batch.lanes" not in counters, "fallback lanes must not double-count"
        for r in results:
            assert r.extras["backend"] == "scalar-fallback"

    @pytest.mark.parametrize("name", ["naive", "decay"])
    def test_bespoke_run_batch_protocols_book_their_lanes(self, name):
        """naive/decay batch through their own drivers, not
        run_iterations_batch — their lanes must still land in batch.lanes."""
        counters = counters_for(
            lambda: run_broadcast_stream(
                build_protocol(name, N), N, jammers(3), [3, 7, 11], lane_width=2
            )
        )
        assert counters["batch.lanes"] == 3
        assert "batch.fallback_lanes" not in counters

    def test_batched_lanes_carry_no_fallback_stamp(self):
        results = run_broadcast_stream(
            build_protocol("multicast", N), N, jammers(2), [3, 7], lane_width=2
        )
        for r in results:
            assert r.extras.get("backend") != "scalar-fallback"


class TestOccupancyInvariant:
    def test_mixed_campaign_lane_counters_sum_to_trials(self):
        """One campaign spanning every batched engine — shared-coin stream,
        adv stream, bespoke run_batch baselines, the limited-channel variant
        — must book every trial in exactly one lane counter."""
        campaign = CampaignSpec(
            protocols=["multicast", "adv", "naive", "decay", "single_channel"],
            jammers=["blanket"],
            ns=[N],
            budget=BUDGET,
            trials=4,
            base_seed=9,
            protocol_knobs={"adv": dict(ADV_FAST)},
        )
        with collect_telemetry() as tel:
            records = run_campaign(campaign, ResultStore(None), workers=1)
            counters = tel.take_aggregates()["counters"]
        occupancy = (
            counters.get("batch.lanes", 0)
            + counters.get("adv_batch.lanes", 0)
            + counters.get("batch.fallback_lanes", 0)
        )
        assert occupancy == len(records) == len(campaign)

    @pytest.mark.parametrize("width", [1, 2, 8])
    def test_stream_occupancy_matches_trials_at_any_width(self, width):
        """Staggered caps force retires/refills; the lane counter must still
        book each trial exactly once at every width."""
        caps = np.asarray([7, 50_000_000, 16, 150, 50_000_000])
        counters = counters_for(
            lambda: run_broadcast_stream(
                build_protocol("multicast", N),
                N,
                jammers(5),
                [3, 7, 11, 19, 23],
                max_slots=caps,
                lane_width=width,
            )
        )
        assert counters["batch.lanes"] == 5
        assert counters.get("batch.refills", 0) == 5 - min(width, 5)
