"""Unit contract of the telemetry recorder (``repro.obs.recorder``).

The recorder is the one piece every instrumented layer depends on, so its
semantics are pinned tightly: aggregate arithmetic, the snapshot/merge
worker transport, the event-stream framing (source + per-source seq), and
the install/restore discipline of ``collect_telemetry``.
"""

import json

import pytest

from repro.obs.recorder import (
    Telemetry,
    active,
    collect_telemetry,
    telemetry_path,
)


class TestAggregates:
    def test_counters_accumulate(self):
        tel = Telemetry()
        tel.count("x")
        tel.count("x", 4)
        tel.count("y", 0)
        assert tel.counters == {"x": 5, "y": 0}

    def test_timers_accumulate_seconds_and_passes(self):
        tel = Telemetry()
        tel.add_time("k", 0.5)
        tel.add_time("k", 0.25, passes=3)
        assert tel.timers == {"k": [0.75, 4]}

    def test_timer_contextmanager_counts_one_pass(self):
        tel = Telemetry()
        with tel.timer("k"):
            pass
        assert tel.timers["k"][1] == 1
        assert tel.timers["k"][0] >= 0

    @pytest.mark.parametrize(
        "value,bucket", [(0, 0), (1, 1), (2, 2), (3, 2), (4, 3), (7, 3), (8, 4)]
    )
    def test_observe_power_of_two_buckets(self, value, bucket):
        tel = Telemetry()
        tel.observe("h", value)
        assert tel.hists["h"] == {bucket: 1}

    def test_take_aggregates_snapshots_and_resets(self):
        tel = Telemetry()
        tel.count("c", 2)
        tel.add_time("t", 1.0)
        tel.observe("h", 4)
        snap = tel.take_aggregates()
        assert snap == {
            "counters": {"c": 2},
            "timers": {"t": [1.0, 1]},
            "hists": {"h": {3: 1}},
        }
        assert tel.counters == {} and tel.timers == {} and tel.hists == {}

    def test_merge_aggregates_folds_a_snapshot_in(self):
        a, b = Telemetry(), Telemetry()
        for tel in (a, b):
            tel.count("c", 3)
            tel.add_time("t", 0.5, passes=2)
            tel.observe("h", 2)
        a.merge_aggregates(b.take_aggregates())
        assert a.counters == {"c": 6}
        assert a.timers == {"t": [1.0, 4]}
        assert a.hists == {"h": {2: 2}}

    def test_merge_accepts_json_roundtripped_snapshot(self):
        # worker snapshots travel through pickling today, but the summary
        # path stringifies hist buckets — merge must take both spellings
        a, b = Telemetry(), Telemetry()
        b.observe("h", 4)
        snap = json.loads(json.dumps(b.take_aggregates()))
        a.merge_aggregates(snap)
        assert a.hists == {"h": {3: 1}}


class TestEventStream:
    def test_rows_carry_source_and_monotonic_seq(self):
        tel = Telemetry(source="worker-2")
        tel.emit("alpha", x=1)
        tel.emit("beta")
        rows = tel.rows
        assert [r["event"] for r in rows] == ["alpha", "beta"]
        assert [r["seq"] for r in rows] == [0, 1]
        assert all(r["source"] == "worker-2" for r in rows)

    def test_heartbeat_stamps_elapsed(self):
        tel = Telemetry()
        tel.heartbeat(trials=5)
        (row,) = tel.rows
        assert row["event"] == "heartbeat"
        assert row["trials"] == 5
        assert row["elapsed"] >= 0

    def test_summary_serializes_sorted_aggregates(self):
        tel = Telemetry()
        tel.count("b")
        tel.count("a")
        tel.add_time("t", 0.5)
        tel.observe("h", 1)
        tel.emit_summary()
        (row,) = tel.rows
        assert row["event"] == "summary"
        assert list(row["counters"]) == ["a", "b"]
        assert row["timers"] == {"t": {"seconds": 0.5, "count": 1}}
        assert row["hists"] == {"h": {"1": 1}}

    def test_file_sink_writes_jsonl(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tel = Telemetry(path)
        tel.emit("ping", n=1)
        tel.close()
        rows = [json.loads(line) for line in open(path)]
        assert rows == [{"event": "ping", "n": 1, "seq": 0, "source": "main"}]


class TestCollectTelemetry:
    def test_installs_and_restores(self):
        assert active() is None
        with collect_telemetry() as tel:
            assert active() is tel
        assert active() is None

    def test_nesting_shadows_then_restores(self):
        with collect_telemetry() as outer:
            with collect_telemetry() as inner:
                assert active() is inner
            assert active() is outer

    def test_exit_appends_summary_to_sink(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with collect_telemetry(path) as tel:
            tel.count("c")
        rows = [json.loads(line) for line in open(path)]
        assert rows[-1]["event"] == "summary"
        assert rows[-1]["counters"] == {"c": 1}

    def test_restores_even_when_body_raises(self):
        with pytest.raises(RuntimeError):
            with collect_telemetry():
                raise RuntimeError("boom")
        assert active() is None


def test_telemetry_path_is_a_store_sibling():
    assert telemetry_path("/x/run.jsonl") == "/x/run.jsonl.telemetry.jsonl"
