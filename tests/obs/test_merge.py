"""Telemetry shard merge: worker-order concatenation, crash tolerance.

``merge_telemetry_shards`` is ``exp/shard.py``'s sibling without the
dedup step (events are observations, not idempotent facts); what it must
guarantee is a deterministic worker-index order, tolerance for the torn
final line of a killed worker, and shard deletion after the fold.
"""

import json

from repro.obs.merge import (
    merge_telemetry_shards,
    telemetry_shard_path,
    telemetry_shard_paths,
)
from repro.obs.recorder import telemetry_path


def _write_shard(store, worker, rows):
    path = telemetry_shard_path(store, worker)
    with open(path, "w") as fh:
        for row in rows:
            fh.write(json.dumps(row) + "\n")
    return path


def _read(path):
    return [json.loads(line) for line in open(path)]


def test_shard_path_naming():
    assert (
        telemetry_shard_path("/x/run.jsonl", 3)
        == "/x/run.jsonl.telemetry.shard-3.jsonl"
    )


def test_shard_discovery_is_worker_ordered(tmp_path):
    store = str(tmp_path / "run.jsonl")
    # create out of order (and with a double-digit worker so lexicographic
    # ordering would get it wrong)
    for worker in (10, 2, 0):
        _write_shard(store, worker, [{"w": worker}])
    assert telemetry_shard_paths(store) == [
        telemetry_shard_path(store, w) for w in (0, 2, 10)
    ]


def test_merge_concatenates_in_worker_order_and_deletes(tmp_path):
    store = str(tmp_path / "run.jsonl")
    _write_shard(store, 1, [{"w": 1, "seq": 0}, {"w": 1, "seq": 1}])
    _write_shard(store, 0, [{"w": 0, "seq": 0}])
    assert merge_telemetry_shards(store) == 3
    rows = _read(telemetry_path(store))
    assert [(r["w"], r["seq"]) for r in rows] == [(0, 0), (1, 0), (1, 1)]
    assert telemetry_shard_paths(store) == []


def test_merge_appends_to_existing_stream(tmp_path):
    store = str(tmp_path / "run.jsonl")
    with open(telemetry_path(store), "w") as fh:
        fh.write(json.dumps({"event": "existing"}) + "\n")
    _write_shard(store, 0, [{"event": "fresh"}])
    merge_telemetry_shards(store)
    assert [r["event"] for r in _read(telemetry_path(store))] == [
        "existing",
        "fresh",
    ]


def test_merge_drops_torn_final_line(tmp_path):
    store = str(tmp_path / "run.jsonl")
    path = _write_shard(store, 0, [{"ok": 1}])
    with open(path, "a") as fh:
        fh.write('{"torn": tru')  # killed mid-write
    assert merge_telemetry_shards(store) == 1
    assert _read(telemetry_path(store)) == [{"ok": 1}]


def test_merge_without_shards_is_a_noop(tmp_path):
    store = str(tmp_path / "run.jsonl")
    assert merge_telemetry_shards(store) == 0
    import os

    assert not os.path.exists(telemetry_path(store))
