"""The run report and its figures: pure functions of the event stream.

``render_report`` / ``write_figures`` consume the merged telemetry JSONL;
both must be deterministic (same events -> same bytes) and tolerant of
partial streams (a crashed run has heartbeats but no summary, an
oblivious campaign has no wave events, ...).
"""

import json

from repro.obs.report import iter_telemetry, render_report, write_figures


def _events():
    """A synthetic but schema-faithful two-worker campaign stream."""
    return [
        {"event": "heartbeat", "source": "worker-0", "seq": 0,
         "elapsed": 1.0, "trials": 8, "block_s": 1.0, "trials_per_s": 8.0},
        {"event": "heartbeat", "source": "worker-1", "seq": 0,
         "elapsed": 2.0, "trials": 8, "block_s": 2.0, "trials_per_s": 4.0},
        {"event": "queue_depth", "source": "main", "seq": 0,
         "elapsed": 1.0, "pending": 1},
        {"event": "queue_depth", "source": "main", "seq": 1,
         "elapsed": 2.0, "pending": 0},
        {"event": "wave", "source": "main", "seq": 2, "wave": 1,
         "scheduled": 8, "cells_open": 2, "rel_ci": {"cell-a": 0.5, "cell-b": 0.2}},
        {"event": "wave", "source": "main", "seq": 3, "wave": 2,
         "scheduled": 4, "cells_open": 1, "rel_ci": {"cell-a": 0.1}},
        {"event": "shard_merge", "source": "main", "seq": 4,
         "records": 3, "shards": 2},
        {"event": "fallback_notes", "source": "main", "seq": 5,
         "notes": [{"protocol": "scalar-only", "reason": "no run_batch",
                    "lanes": 4, "passes": 2}]},
        {"event": "campaign", "source": "main", "seq": 6,
         "trials": 16, "workers": 2, "elapsed": 2.0},
        {"event": "summary", "source": "main", "seq": 7,
         "counters": {"batch.kernel_passes": 12, "window.adv_queries": 3,
                      "window.slots_proposed": 40, "window.slots_committed": 30},
         "timers": {"batch.kernel_s": {"seconds": 1.2, "count": 12}},
         "hists": {"batch.occupancy": {"0": 1, "3": 5}}},
    ]


class TestRenderReport:
    def test_report_is_deterministic(self):
        assert render_report(_events()) == render_report(_events())

    def test_sections_cover_the_stream(self):
        text = render_report(_events())
        assert "== repro.obs run report ==" in text
        # throughput: per-source rows and the campaign utilization line
        assert "worker-0" in text and "worker-1" in text
        assert "16 trials in 2.00s" in text
        # busy = 1.0 + 2.0 over elapsed 2.0 x 2 workers = 75%
        assert "worker utilization 75%" in text
        # kernels: timer with ms/pass, counters, histogram
        assert "batch.kernel_s: 1.200s over 12 passes (100.000 ms/pass)" in text
        assert "batch.kernel_passes: 12" in text
        assert "batch.occupancy (pow2 buckets)" in text
        # window derived lines: queries saved + committed-prefix fraction
        assert "saved 27 adversary queries" in text
        assert "committed-prefix fraction: 75.0% (30/40" in text
        # wave trajectory: worst open-cell CI per wave
        assert "0.5000" in text and "0.1000" in text
        # recovery + fallback notes
        assert "shard-merge recovery: 3 record(s)" in text
        assert "scalar-only: no run_batch (4 lane(s), 2 pass(es))" in text

    def test_empty_stream(self):
        assert "empty telemetry stream" in render_report([])

    def test_no_faults_section_on_a_clean_run(self):
        assert "faults / recovery" not in render_report(_events())

    def test_faults_section_renders_recovery_actions(self):
        events = _events() + [
            {"event": "retry", "source": "main", "seq": 8,
             "block": "cell/t0", "attempt": 1, "error": "ValueError: boom"},
            {"event": "respawn", "source": "main", "seq": 9,
             "respawns": 1, "blocks_left": 2},
            {"event": "straggler", "source": "main", "seq": 10,
             "block": "cell/t8", "attempt": 1},
            {"event": "quarantine", "source": "main", "seq": 11,
             "key": "cell/t5", "attempts": 4, "error": "ValueError: boom"},
            {"event": "degrade", "source": "main", "seq": 12, "blocks": 3},
            {"event": "summary", "source": "main", "seq": 13,
             "counters": {"supervise.retries": 1, "supervise.respawns": 1,
                          "store.torn_rows": 2}},
        ]
        text = render_report(events)
        assert "-- faults / recovery --" in text
        assert "supervise.retries: 1" in text
        assert "store.torn_rows: 2" in text
        assert "retry: block cell/t0 attempt 1 (ValueError: boom)" in text
        assert "respawn: pool #1 with 2 block(s) outstanding" in text
        assert "straggler: block cell/t8 re-dispatched (attempt 1)" in text
        assert "quarantine: cell/t5 after 4 attempt(s)" in text
        assert "degrade: 3 block(s) finished in-process" in text

    def test_supervision_counters_stay_out_of_the_kernel_section(self):
        events = _events() + [
            {"event": "summary", "source": "main", "seq": 8,
             "counters": {"supervise.retries": 1, "store.corrupt_rows": 1}},
        ]
        text = render_report(events)
        kernels = text.split("-- kernels --")[1].split("--")[0]
        assert "supervise." not in kernels
        assert "store." not in kernels

    def test_partial_stream_renders(self):
        # a crashed run: heartbeats only, no summary/campaign events
        text = render_report([e for e in _events() if e["event"] == "heartbeat"])
        assert "worker-0" in text


class TestWriteFigures:
    def test_writes_all_three_timelines(self, tmp_path):
        written = write_figures(_events(), str(tmp_path))
        names = sorted(p.rsplit("/", 1)[-1] for p in written)
        assert names == [
            "telemetry_ci_trajectory.svg",
            "telemetry_queue_depth.svg",
            "telemetry_throughput.svg",
        ]
        for path in written:
            body = open(path).read()
            assert body.startswith("<svg") and body.rstrip().endswith("</svg>")

    def test_figures_are_deterministic_bytes(self, tmp_path):
        a = write_figures(_events(), str(tmp_path / "a"))
        b = write_figures(_events(), str(tmp_path / "b"))
        for pa, pb in zip(a, b):
            assert open(pa, "rb").read() == open(pb, "rb").read()

    def test_skips_figures_without_events(self, tmp_path):
        written = write_figures(
            [e for e in _events() if e["event"] == "queue_depth"], str(tmp_path)
        )
        assert [p.rsplit("/", 1)[-1] for p in written] == [
            "telemetry_queue_depth.svg"
        ]


class TestIterTelemetry:
    def test_skips_torn_and_foreign_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps({"event": "ok", "source": "main", "seq": 0}) + "\n"
            + '{"torn": tru\n'
            + '[1, 2, 3]\n'
            + json.dumps({"no_event_key": 1}) + "\n"
            + "\n"
            + json.dumps({"event": "ok2", "source": "main", "seq": 1}) + "\n"
        )
        assert [e["event"] for e in iter_telemetry(str(path))] == ["ok", "ok2"]
