"""Tests for the baseline protocols and their documented failure modes."""

import numpy as np
import pytest

from repro import BlanketJammer, MultiCast, run_broadcast
from repro.baselines import DecayBroadcast, NaiveEpidemic, SingleChannelCompetitive


class TestDecay:
    def test_clean_channel_success(self):
        ok = sum(
            run_broadcast(DecayBroadcast(64), 64, seed=s).success for s in range(8)
        )
        assert ok >= 7

    def test_energy_is_theta_time(self):
        """Uninformed nodes listen every slot: the late-informed node's cost
        is close to the full runtime."""
        r = run_broadcast(DecayBroadcast(64), 64, seed=1)
        assert r.node_energy.max() > 0.3 * r.slots

    def test_collapses_under_cheap_jamming(self):
        """A budget equal to Decay's entire runtime (1 channel!) blocks
        everything — the motivating failure for resource competitiveness."""
        proto = DecayBroadcast(64)
        budget = proto.epochs * proto.round_slots
        r = run_broadcast(proto, 64, adversary=BlanketJammer(budget=budget, channels=1), seed=2)
        assert not r.success
        assert r.halted_uninformed == 63  # only the source knows m

    def test_round_structure(self):
        proto = DecayBroadcast(64, epochs=10)
        r = run_broadcast(proto, 64, seed=3)
        assert r.slots == 10 * 6  # lg 64 = 6 slots per round

    def test_rejects_tiny_network(self):
        with pytest.raises(ValueError):
            DecayBroadcast(1)


class TestNaiveEpidemic:
    def test_clean_channel_fast(self):
        """p = 1 epidemic on n/2 channels disseminates in O(lg n)-ish time —
        far faster than anything with sparse participation."""
        r = run_broadcast(NaiveEpidemic(64), 64, seed=1)
        assert r.success
        assert r.dissemination_slot < 200

    def test_energy_equals_time(self):
        """Every node acts every slot: cost == slots for every node."""
        r = run_broadcast(NaiveEpidemic(64), 64, seed=2)
        np.testing.assert_array_equal(r.node_energy, r.slots)

    def test_not_resource_competitive(self):
        """Full blanket jamming for t slots costs each node t (vs Eve's
        t * n/2): per-node cost tracks Eve's *time*, not sqrt(T)."""
        T = 320_000  # blankets 32 channels for 10k slots
        adv = BlanketJammer(budget=T, channels=1.0, seed=1)
        r = run_broadcast(NaiveEpidemic(64), 64, adversary=adv, seed=3)
        assert r.success
        assert r.max_cost >= 10_000  # nodes paid the whole blackout

    def test_gives_up_at_budget(self):
        adv = BlanketJammer(budget=None, channels=1.0)
        r = run_broadcast(NaiveEpidemic(64, max_slots_budget=5_000), 64, adversary=adv, seed=4)
        assert not r.success

    def test_oracle_overshoot_bounded(self):
        r = run_broadcast(NaiveEpidemic(64), 64, seed=5)
        assert r.slots <= r.dissemination_slot + 64  # one small block at most


class TestSingleChannelCompetitive:
    def test_is_multicast_c1(self):
        proto = SingleChannelCompetitive(64, a=0.05)
        assert proto.C == 1
        assert proto.slots_per_round == 32

    def test_success_and_energy_match_multicast(self):
        """Same energy as the multi-channel protocol, ~n/2 times slower —
        the paper's headline comparison."""
        rs = run_broadcast(SingleChannelCompetitive(64, a=0.05), 64, seed=1)
        rm = run_broadcast(MultiCast(64, a=0.05), 64, seed=1)
        assert rs.success and rm.success
        assert rs.slots == 32 * rm.slots
        np.testing.assert_array_equal(rs.node_energy, rm.node_energy)

    def test_competitive_under_jamming(self):
        T = 100_000
        adv = BlanketJammer(budget=T, channels=1.0, seed=1)
        r = run_broadcast(SingleChannelCompetitive(64, a=0.05), 64, adversary=adv, seed=2)
        assert r.success
        assert r.max_cost < T / 10
