"""Unit tests for energy/time accounting."""

import numpy as np
import pytest

from repro.sim.metrics import CostSummary, EnergyLedger


class TestEnergyLedger:
    def test_initial_state(self):
        led = EnergyLedger(4)
        assert led.slots == 0
        assert led.adversary_spend == 0
        assert led.max_node_cost == 0

    def test_rejects_empty_network(self):
        with pytest.raises(ValueError):
            EnergyLedger(0)

    def test_charge_nodes_accumulates(self):
        led = EnergyLedger(3)
        led.charge_nodes(np.array([1, 0, 2]), np.array([0, 3, 1]))
        led.charge_nodes(np.array([1, 1, 1]), np.array([0, 0, 0]))
        np.testing.assert_array_equal(led.listen_slots, [2, 1, 3])
        np.testing.assert_array_equal(led.send_slots, [0, 3, 1])
        np.testing.assert_array_equal(led.node_cost, [2, 4, 4])

    def test_max_and_mean(self):
        led = EnergyLedger(2)
        led.charge_nodes(np.array([5, 1]), np.array([0, 2]))
        assert led.max_node_cost == 5
        assert led.mean_node_cost == 4.0

    def test_adversary_and_clock(self):
        led = EnergyLedger(2)
        led.charge_adversary(7)
        led.charge_adversary(3)
        led.advance(100)
        assert led.adversary_spend == 10
        assert led.slots == 100

    def test_summary(self):
        led = EnergyLedger(2)
        led.charge_nodes(np.array([2, 4]), np.array([1, 1]))
        led.charge_adversary(6)
        led.advance(10)
        s = led.summary()
        assert s == CostSummary(
            slots=10,
            max_node_cost=5.0,
            mean_node_cost=4.0,
            total_node_cost=8.0,
            adversary_cost=6.0,
        )
        assert s.competitive_ratio == 5.0 / 6.0

    def test_competitive_ratio_infinite_without_adversary(self):
        s = CostSummary(1, 1.0, 1.0, 1.0, 0.0)
        assert s.competitive_ratio == float("inf")
