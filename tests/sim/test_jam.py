"""Unit tests for the sparse JamBlock representation."""

import numpy as np
import pytest

from repro.sim.jam import JamBlock


def random_mask(rng, K=7, C=11, p=0.3):
    return rng.random((K, C)) < p


class TestConstruction:
    def test_empty(self):
        jb = JamBlock.empty(5, 3)
        assert jb.total() == 0
        assert (jb.counts() == 0).all()
        assert not jb.to_dense().any()

    def test_dense_roundtrip(self, rng):
        mask = random_mask(rng)
        np.testing.assert_array_equal(JamBlock.from_dense(mask).to_dense(), mask)

    def test_from_rows(self):
        jb = JamBlock.from_rows(4, 10, np.array([1, 3]), [np.array([5, 2]), np.array([0])])
        dense = jb.to_dense()
        assert dense[1, 2] and dense[1, 5] and dense[3, 0]
        assert dense.sum() == 3

    def test_from_rows_sorts_channels(self):
        jb = JamBlock.from_rows(1, 10, np.array([0]), [np.array([7, 1, 4])])
        np.testing.assert_array_equal(jb.channels, [1, 4, 7])

    def test_coerce_passthrough(self):
        jb = JamBlock.empty(2, 2)
        assert JamBlock.coerce(jb) is jb

    def test_coerce_dense(self):
        mask = np.array([[True, False]])
        jb = JamBlock.coerce(mask)
        assert isinstance(jb, JamBlock)
        assert jb.total() == 1

    def test_invalid_indptr_rejected(self):
        with pytest.raises(ValueError):
            JamBlock(2, 3, np.array([0, 1]), np.array([0]))


class TestAccounting:
    def test_total_matches_dense_sum(self, rng):
        mask = random_mask(rng)
        assert JamBlock.from_dense(mask).total() == mask.sum()

    def test_counts_match_dense_rows(self, rng):
        mask = random_mask(rng)
        np.testing.assert_array_equal(
            JamBlock.from_dense(mask).counts(), mask.sum(axis=1)
        )


class TestLookup:
    def test_lookup_matches_dense(self, rng):
        mask = random_mask(rng, K=9, C=13)
        jb = JamBlock.from_dense(mask)
        rows = rng.integers(0, 9, size=50)
        cols = rng.integers(0, 13, size=50)
        np.testing.assert_array_equal(jb.lookup(rows, cols), mask[rows, cols])

    def test_lookup_empty(self):
        jb = JamBlock.empty(3, 5)
        assert not jb.lookup(np.array([0, 2]), np.array([1, 4])).any()

    def test_lookup_huge_channel_space(self):
        C = 1 << 40
        jb = JamBlock.from_rows(2, C, np.array([0]), [np.array([C - 1, 12345])])
        assert jb.lookup(np.array([0]), np.array([C - 1]))[0]
        assert jb.lookup(np.array([0]), np.array([12345]))[0]
        assert not jb.lookup(np.array([0]), np.array([12346]))[0]
        assert not jb.lookup(np.array([1]), np.array([C - 1]))[0]


class TestSlice:
    def test_slice_matches_dense_slice(self, rng):
        mask = random_mask(rng, K=10)
        jb = JamBlock.from_dense(mask)
        np.testing.assert_array_equal(jb.slice(3, 8).to_dense(), mask[3:8])

    def test_slice_default_end(self, rng):
        mask = random_mask(rng, K=10)
        jb = JamBlock.from_dense(mask)
        np.testing.assert_array_equal(jb.slice(4).to_dense(), mask[4:])

    def test_slice_bounds_checked(self):
        jb = JamBlock.empty(4, 2)
        with pytest.raises(IndexError):
            jb.slice(3, 6)

    def test_slice_is_view_cheap(self, rng):
        """Slicing shares the channels buffer (no copy)."""
        mask = random_mask(rng, K=10)
        jb = JamBlock.from_dense(mask)
        sl = jb.slice(0, 10)
        assert sl.channels.base is jb.channels or sl.channels is jb.channels


class TestTruncateBudget:
    def test_no_op_when_under_budget(self, rng):
        jb = JamBlock.from_dense(random_mask(rng))
        assert jb.truncate_budget(jb.total()) is jb

    def test_exact_truncation(self):
        mask = np.ones((3, 4), dtype=bool)
        jb = JamBlock.from_dense(mask).truncate_budget(7)
        assert jb.total() == 7
        dense = jb.to_dense()
        # time order: first 7 channel-slots row-major
        assert dense[0].sum() == 4 and dense[1].sum() == 3 and dense[2].sum() == 0

    def test_zero_budget(self, rng):
        jb = JamBlock.from_dense(random_mask(rng)).truncate_budget(0)
        assert jb.total() == 0


class TestFoldRows:
    def test_fold_matches_reshape_semantics(self, rng):
        """fold_rows(S) must equal the dense reshape (K/S, S*C)."""
        K, C, S = 12, 3, 4
        mask = random_mask(rng, K=K, C=C)
        jb = JamBlock.from_dense(mask).fold_rows(S)
        np.testing.assert_array_equal(jb.to_dense(), mask.reshape(K // S, S * C))

    def test_fold_requires_divisibility(self):
        with pytest.raises(ValueError):
            JamBlock.empty(10, 2).fold_rows(3)

    def test_fold_preserves_total(self, rng):
        mask = random_mask(rng, K=8, C=5)
        jb = JamBlock.from_dense(mask)
        assert jb.fold_rows(2).total() == jb.total()

    def test_fold_single_group(self, rng):
        mask = random_mask(rng, K=4, C=3)
        jb = JamBlock.from_dense(mask).fold_rows(4)
        assert jb.K == 1 and jb.C == 12


class TestEdgeCases:
    """Boundary behaviour the batched execution layer leans on."""

    def test_lookup_on_empty_block(self):
        jb = JamBlock.empty(6, 9)
        rows = np.array([0, 2, 5])
        cols = np.array([0, 8, 4])
        assert not jb.lookup(rows, cols).any()
        assert not jb.lookup_keys(np.array([0, 53])).any()
        assert jb.lookup_keys(np.empty(0, dtype=np.int64)).shape == (0,)

    def test_slice_at_block_boundaries(self, rng):
        mask = random_mask(rng, K=10)
        jb = JamBlock.from_dense(mask)
        np.testing.assert_array_equal(jb.slice(0, 10).to_dense(), mask)
        empty_front = jb.slice(0, 0)
        empty_back = jb.slice(10, 10)
        assert empty_front.K == 0 and empty_front.total() == 0
        assert empty_back.K == 0 and empty_back.total() == 0
        np.testing.assert_array_equal(jb.slice(9, 10).to_dense(), mask[9:])

    def test_coerce_roundtrip_below_dense_cell_limit(self, rng):
        from repro.sim.channel import DENSE_CELL_LIMIT

        K, C = 16, 64
        assert K * C < DENSE_CELL_LIMIT
        mask = random_mask(rng, K=K, C=C)
        np.testing.assert_array_equal(JamBlock.coerce(mask).to_dense(), mask)

    def test_coerce_roundtrip_above_dense_cell_limit(self, rng):
        """The sparse form stays exact where resolve_block would refuse to
        materialize a dense grid (K*C above the dense-path cutoff)."""
        from repro.sim.channel import DENSE_CELL_LIMIT

        K, C = 4, DENSE_CELL_LIMIT // 2  # K*C == 2 * DENSE_CELL_LIMIT
        rows = np.arange(K, dtype=np.int64)
        row_channels = [
            rng.choice(C, size=5, replace=False).astype(np.int64) for _ in range(K)
        ]
        jb = JamBlock.from_rows(K, C, rows, row_channels)
        assert K * C > DENSE_CELL_LIMIT
        dense = jb.to_dense()
        assert dense.sum() == jb.total() == 5 * K
        np.testing.assert_array_equal(JamBlock.coerce(dense).to_dense(), dense)

    def test_coerce_three_dimensional_mask_stacks_lanes(self, rng):
        masks = rng.random((3, 4, 5)) < 0.4
        jb = JamBlock.coerce(masks)
        assert jb.K == 12 and jb.C == 5
        np.testing.assert_array_equal(jb.to_dense(), masks.reshape(12, 5))


class TestStack:
    def test_stack_matches_dense_concatenation(self, rng):
        masks = [random_mask(rng, K=k, C=6) for k in (3, 1, 5)]
        stacked = JamBlock.stack([JamBlock.from_dense(m) for m in masks])
        np.testing.assert_array_equal(stacked.to_dense(), np.concatenate(masks))

    def test_stack_of_empties(self):
        stacked = JamBlock.stack([JamBlock.empty(2, 4), JamBlock.empty(3, 4)])
        assert stacked.K == 5 and stacked.total() == 0

    def test_stack_single_block(self, rng):
        mask = random_mask(rng)
        jb = JamBlock.from_dense(mask)
        np.testing.assert_array_equal(JamBlock.stack([jb]).to_dense(), mask)

    def test_stack_rejects_mismatched_channels(self):
        with pytest.raises(ValueError):
            JamBlock.stack([JamBlock.empty(2, 4), JamBlock.empty(2, 5)])

    def test_stack_rejects_empty_list(self):
        with pytest.raises(ValueError):
            JamBlock.stack([])

    def test_stacked_lane_slices_recover_inputs(self, rng):
        """The batched kernel's per-lane addressing: rows [l*K, (l+1)*K)."""
        K = 4
        masks = [random_mask(rng, K=K, C=7) for _ in range(3)]
        stacked = JamBlock.stack([JamBlock.from_dense(m) for m in masks])
        for lane, mask in enumerate(masks):
            np.testing.assert_array_equal(
                stacked.slice(lane * K, (lane + 1) * K).to_dense(), mask
            )
