"""Unit tests for the sparse JamBlock representation."""

import numpy as np
import pytest

from repro.sim.jam import JamBlock


def random_mask(rng, K=7, C=11, p=0.3):
    return rng.random((K, C)) < p


class TestConstruction:
    def test_empty(self):
        jb = JamBlock.empty(5, 3)
        assert jb.total() == 0
        assert (jb.counts() == 0).all()
        assert not jb.to_dense().any()

    def test_dense_roundtrip(self, rng):
        mask = random_mask(rng)
        np.testing.assert_array_equal(JamBlock.from_dense(mask).to_dense(), mask)

    def test_from_rows(self):
        jb = JamBlock.from_rows(4, 10, np.array([1, 3]), [np.array([5, 2]), np.array([0])])
        dense = jb.to_dense()
        assert dense[1, 2] and dense[1, 5] and dense[3, 0]
        assert dense.sum() == 3

    def test_from_rows_sorts_channels(self):
        jb = JamBlock.from_rows(1, 10, np.array([0]), [np.array([7, 1, 4])])
        np.testing.assert_array_equal(jb.channels, [1, 4, 7])

    def test_coerce_passthrough(self):
        jb = JamBlock.empty(2, 2)
        assert JamBlock.coerce(jb) is jb

    def test_coerce_dense(self):
        mask = np.array([[True, False]])
        jb = JamBlock.coerce(mask)
        assert isinstance(jb, JamBlock)
        assert jb.total() == 1

    def test_invalid_indptr_rejected(self):
        with pytest.raises(ValueError):
            JamBlock(2, 3, np.array([0, 1]), np.array([0]))


class TestAccounting:
    def test_total_matches_dense_sum(self, rng):
        mask = random_mask(rng)
        assert JamBlock.from_dense(mask).total() == mask.sum()

    def test_counts_match_dense_rows(self, rng):
        mask = random_mask(rng)
        np.testing.assert_array_equal(
            JamBlock.from_dense(mask).counts(), mask.sum(axis=1)
        )


class TestLookup:
    def test_lookup_matches_dense(self, rng):
        mask = random_mask(rng, K=9, C=13)
        jb = JamBlock.from_dense(mask)
        rows = rng.integers(0, 9, size=50)
        cols = rng.integers(0, 13, size=50)
        np.testing.assert_array_equal(jb.lookup(rows, cols), mask[rows, cols])

    def test_lookup_empty(self):
        jb = JamBlock.empty(3, 5)
        assert not jb.lookup(np.array([0, 2]), np.array([1, 4])).any()

    def test_lookup_huge_channel_space(self):
        C = 1 << 40
        jb = JamBlock.from_rows(2, C, np.array([0]), [np.array([C - 1, 12345])])
        assert jb.lookup(np.array([0]), np.array([C - 1]))[0]
        assert jb.lookup(np.array([0]), np.array([12345]))[0]
        assert not jb.lookup(np.array([0]), np.array([12346]))[0]
        assert not jb.lookup(np.array([1]), np.array([C - 1]))[0]


class TestSlice:
    def test_slice_matches_dense_slice(self, rng):
        mask = random_mask(rng, K=10)
        jb = JamBlock.from_dense(mask)
        np.testing.assert_array_equal(jb.slice(3, 8).to_dense(), mask[3:8])

    def test_slice_default_end(self, rng):
        mask = random_mask(rng, K=10)
        jb = JamBlock.from_dense(mask)
        np.testing.assert_array_equal(jb.slice(4).to_dense(), mask[4:])

    def test_slice_bounds_checked(self):
        jb = JamBlock.empty(4, 2)
        with pytest.raises(IndexError):
            jb.slice(3, 6)

    def test_slice_is_view_cheap(self, rng):
        """Slicing shares the channels buffer (no copy)."""
        mask = random_mask(rng, K=10)
        jb = JamBlock.from_dense(mask)
        sl = jb.slice(0, 10)
        assert sl.channels.base is jb.channels or sl.channels is jb.channels


class TestTruncateBudget:
    def test_no_op_when_under_budget(self, rng):
        jb = JamBlock.from_dense(random_mask(rng))
        assert jb.truncate_budget(jb.total()) is jb

    def test_exact_truncation(self):
        mask = np.ones((3, 4), dtype=bool)
        jb = JamBlock.from_dense(mask).truncate_budget(7)
        assert jb.total() == 7
        dense = jb.to_dense()
        # time order: first 7 channel-slots row-major
        assert dense[0].sum() == 4 and dense[1].sum() == 3 and dense[2].sum() == 0

    def test_zero_budget(self, rng):
        jb = JamBlock.from_dense(random_mask(rng)).truncate_budget(0)
        assert jb.total() == 0


class TestFoldRows:
    def test_fold_matches_reshape_semantics(self, rng):
        """fold_rows(S) must equal the dense reshape (K/S, S*C)."""
        K, C, S = 12, 3, 4
        mask = random_mask(rng, K=K, C=C)
        jb = JamBlock.from_dense(mask).fold_rows(S)
        np.testing.assert_array_equal(jb.to_dense(), mask.reshape(K // S, S * C))

    def test_fold_requires_divisibility(self):
        with pytest.raises(ValueError):
            JamBlock.empty(10, 2).fold_rows(3)

    def test_fold_preserves_total(self, rng):
        mask = random_mask(rng, K=8, C=5)
        jb = JamBlock.from_dense(mask)
        assert jb.fold_rows(2).total() == jb.total()

    def test_fold_single_group(self, rng):
        mask = random_mask(rng, K=4, C=3)
        jb = JamBlock.from_dense(mask).fold_rows(4)
        assert jb.K == 1 and jb.C == 12
