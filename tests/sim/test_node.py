"""Tests for the scalar per-node runtime."""

import numpy as np
import pytest

from repro.adversary import BlanketJammer
from repro.sim.channel import ACT_IDLE, ACT_LISTEN, ACT_SEND_MSG, FB_MSG, FB_SILENCE
from repro.sim.node import NodeProtocol, ScalarNetwork


class Beacon(NodeProtocol):
    """Broadcasts every slot until told to stop."""

    def __init__(self, slots):
        self.left = slots

    def begin_slot(self, slot):
        if self.left > 0:
            return 0, ACT_SEND_MSG
        return 0, ACT_IDLE

    def end_slot(self, slot, feedback):
        self.left -= 1

    @property
    def halted(self):
        return self.left <= 0


class Listener(NodeProtocol):
    """Listens until it hears the message."""

    def __init__(self):
        self.heard_at = None
        self.feedbacks = []

    def begin_slot(self, slot):
        return (0, ACT_IDLE) if self.halted else (0, ACT_LISTEN)

    def end_slot(self, slot, feedback):
        self.feedbacks.append(feedback)
        if feedback == FB_MSG and self.heard_at is None:
            self.heard_at = slot

    @property
    def halted(self):
        return self.heard_at is not None


class TestScalarNetwork:
    def test_delivery_and_halting(self):
        nodes = [Beacon(3), Listener()]
        net = ScalarNetwork(nodes)
        slots = net.run(1)
        assert nodes[1].heard_at == 0
        assert slots <= 3

    def test_energy_accounting(self):
        nodes = [Beacon(2), Listener()]
        net = ScalarNetwork(nodes)
        net.run(1)
        assert net.energy.send_slots[0] >= 1
        assert net.energy.listen_slots[1] == 1

    def test_adversary_integration(self):
        adv = BlanketJammer(budget=2, channels=1)
        adv.reset()
        listener = Listener()
        nodes = [Beacon(5), listener]
        net = ScalarNetwork(nodes, adv)
        net.run(1)
        # first two slots jammed -> noise; delivery at slot 2
        assert listener.heard_at == 2
        assert net.energy.adversary_spend == 2

    def test_max_slots_cap(self):
        nodes = [Listener(), Listener()]  # nobody ever sends; never halt
        net = ScalarNetwork(nodes, max_slots=50)
        slots = net.run(1)
        assert slots == 50

    def test_overrun_is_flagged_not_silent(self):
        """Regression: hitting max_slots used to truncate with no signal;
        now the run carries the overrun flag, like the batched engine's
        per-lane overrun mask."""
        nodes = [Listener(), Listener()]
        net = ScalarNetwork(nodes, max_slots=50)
        assert not net.overrun
        net.run(1)
        assert net.overrun

    def test_completed_run_does_not_flag_overrun(self):
        nodes = [Beacon(3), Listener()]
        net = ScalarNetwork(nodes, max_slots=50)
        net.run(1)
        assert not net.overrun

    def test_reference_result_records_overrun(self):
        """The scalar reference drivers surface the flag in extras."""
        from repro import BlanketJammer
        from repro.core.reference import run_scalar_multicast

        r = run_scalar_multicast(
            16, adversary=BlanketJammer(10**9, channels=1.0), a=0.005,
            seed=1, max_slots=300,
        )
        assert not r.completed
        assert r.extras["overrun"]
        clean = run_scalar_multicast(16, a=0.005, seed=1)
        assert clean.completed and not clean.extras["overrun"]

    def test_callable_channel_count(self):
        nodes = [Beacon(4), Listener()]
        net = ScalarNetwork(nodes)
        net.run(lambda slot: 1 + slot % 2)
        assert nodes[1].heard_at is not None

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            ScalarNetwork([Listener()])

    def test_silence_observed_on_idle_channel(self):
        class QuietListener(Listener):
            def begin_slot(self, slot):
                return (1, ACT_IDLE) if self.halted else (1, ACT_LISTEN)

        quiet = QuietListener()
        nodes = [Beacon(1), quiet]  # beacon on channel 0, listener on 1
        net = ScalarNetwork(nodes, max_slots=2)
        net.run(2)
        assert quiet.feedbacks[0] == FB_SILENCE
