"""Unit tests for the deterministic RNG fabric."""

import numpy as np
import pytest

from repro.sim.rng import RandomFabric, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)

    def test_label_sensitivity(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_root_sensitivity(self):
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_label_order_matters(self):
        assert derive_seed(7, "a", "b") != derive_seed(7, "b", "a")

    def test_depth_matters(self):
        assert derive_seed(7, "a") != derive_seed(7, "a", "a")

    def test_integer_vs_string_labels_differ(self):
        # repr-based hashing distinguishes 1 from "1"
        assert derive_seed(7, 1) != derive_seed(7, "1")

    def test_range(self):
        for i in range(50):
            s = derive_seed(i, "x", i * 3)
            assert 0 <= s < 2**63

    def test_no_collisions_small_space(self):
        seeds = {derive_seed(0, "trial", i) for i in range(10_000)}
        assert len(seeds) == 10_000


class TestRandomFabric:
    def test_same_path_same_stream(self):
        a = RandomFabric(42).generator("nodes").integers(1 << 30, size=16)
        b = RandomFabric(42).generator("nodes").integers(1 << 30, size=16)
        assert (a == b).all()

    def test_different_paths_differ(self):
        a = RandomFabric(42).generator("nodes").integers(1 << 30, size=16)
        b = RandomFabric(42).generator("adversary").integers(1 << 30, size=16)
        assert (a != b).any()

    def test_child_fabric_independent(self):
        f = RandomFabric(42)
        child = f.child("sub")
        a = child.generator("x").integers(1 << 30, size=8)
        b = f.generator("x").integers(1 << 30, size=8)
        assert (a != b).any()

    def test_spawn_count_and_independence(self):
        gens = RandomFabric(1).spawn(5, "workers")
        draws = [g.integers(1 << 30, size=4) for g in gens]
        assert len(gens) == 5
        for i in range(5):
            for j in range(i + 1, 5):
                assert (draws[i] != draws[j]).any()

    def test_trial_seeds_unique(self):
        seeds = RandomFabric(9).trial_seeds(100, "exp")
        assert len(set(seeds)) == 100

    def test_statistical_uniformity(self):
        # crude sanity: mean of uniforms near 0.5
        g = RandomFabric(3).generator("u")
        x = g.random(10_000)
        assert abs(x.mean() - 0.5) < 0.02
