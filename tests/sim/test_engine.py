"""Unit tests for the RadioNetwork engine (draw/commit discipline, books)."""

import numpy as np
import pytest

from repro.adversary import BlanketJammer, NoJammer
from repro.sim.channel import ACT_IDLE, ACT_LISTEN, ACT_SEND_MSG
from repro.sim.engine import BlockProtocolError, RadioNetwork, SlotLimitExceeded
from repro.sim.jam import JamBlock


def idle_actions(K, n):
    return np.zeros((K, n), dtype=np.int8)


class TestBlockDiscipline:
    def test_draw_then_commit_advances_clock(self):
        net = RadioNetwork(4)
        net.draw_jamming(10, 2)
        net.commit_block(idle_actions(10, 4))
        assert net.clock == 10

    def test_double_draw_rejected(self):
        net = RadioNetwork(4)
        net.draw_jamming(5, 2)
        with pytest.raises(BlockProtocolError):
            net.draw_jamming(5, 2)

    def test_commit_without_draw_rejected(self):
        net = RadioNetwork(4)
        with pytest.raises(BlockProtocolError):
            net.commit_block(idle_actions(5, 4))

    def test_commit_length_mismatch_rejected(self):
        net = RadioNetwork(4)
        net.draw_jamming(5, 2)
        with pytest.raises(BlockProtocolError):
            net.commit_block(idle_actions(4, 4))

    def test_commit_wrong_node_count_rejected(self):
        net = RadioNetwork(4)
        net.draw_jamming(5, 2)
        with pytest.raises(ValueError):
            net.commit_block(idle_actions(5, 3))

    def test_slots_per_row_scaling(self):
        net = RadioNetwork(4)
        net.draw_jamming(12, 2)  # 12 physical slots
        net.commit_block(idle_actions(3, 4), slots_per_row=4)  # 3 rounds of 4
        assert net.clock == 12

    def test_abort_block_clears_pending(self):
        net = RadioNetwork(4)
        net.draw_jamming(5, 2)
        net.abort_block()
        net.draw_jamming(5, 2)  # allowed again
        net.commit_block(idle_actions(5, 4))

    def test_invalid_block_dimensions(self):
        net = RadioNetwork(4)
        with pytest.raises(ValueError):
            net.draw_jamming(0, 2)
        with pytest.raises(ValueError):
            net.draw_jamming(2, 0)


class TestAccounting:
    def test_node_energy_from_actions(self):
        net = RadioNetwork(3)
        net.draw_jamming(4, 2)
        actions = np.array(
            [
                [ACT_LISTEN, ACT_SEND_MSG, ACT_IDLE],
                [ACT_LISTEN, ACT_IDLE, ACT_IDLE],
                [ACT_IDLE, ACT_SEND_MSG, ACT_IDLE],
                [ACT_LISTEN, ACT_SEND_MSG, ACT_IDLE],
            ],
            dtype=np.int8,
        )
        net.commit_block(actions)
        np.testing.assert_array_equal(net.energy.node_cost, [3, 3, 0])
        np.testing.assert_array_equal(net.energy.listen_slots, [3, 0, 0])
        np.testing.assert_array_equal(net.energy.send_slots, [0, 3, 0])

    def test_adversary_charged_on_draw(self):
        adv = BlanketJammer(budget=100, channels=2)
        adv.reset()
        net = RadioNetwork(4, adv)
        net.draw_jamming(10, 4)
        assert net.energy.adversary_spend == 20  # 2 channels x 10 slots
        net.commit_block(idle_actions(10, 4))

    def test_adversary_budget_exactly_respected(self):
        adv = BlanketJammer(budget=15, channels=2)
        adv.reset()
        net = RadioNetwork(4, adv)
        net.draw_jamming(10, 4)
        net.commit_block(idle_actions(10, 4))
        net.draw_jamming(10, 4)
        net.commit_block(idle_actions(10, 4))
        assert net.energy.adversary_spend == 15

    def test_no_adversary_means_empty_jam(self):
        net = RadioNetwork(4)
        jam = net.draw_jamming(8, 3)
        assert isinstance(jam, JamBlock)
        assert jam.total() == 0
        net.commit_block(idle_actions(8, 4))


class TestLimits:
    def test_max_slots_enforced(self):
        net = RadioNetwork(4, max_slots=12)
        net.draw_jamming(10, 2)
        net.commit_block(idle_actions(10, 4))
        net.draw_jamming(10, 2)
        with pytest.raises(SlotLimitExceeded):
            net.commit_block(idle_actions(10, 4))

    def test_min_network_size(self):
        with pytest.raises(ValueError):
            RadioNetwork(1)

    def test_seed_determines_node_stream(self):
        a = RadioNetwork(4, seed=5).rng.integers(1 << 30, size=8)
        b = RadioNetwork(4, seed=5).rng.integers(1 << 30, size=8)
        assert (a == b).all()
