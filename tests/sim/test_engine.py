"""Unit tests for the RadioNetwork engine (draw/commit discipline, books)."""

import numpy as np
import pytest

from repro.adversary import BlanketJammer, NoJammer
from repro.sim.channel import ACT_IDLE, ACT_LISTEN, ACT_SEND_MSG
from repro.sim.engine import (
    BatchNetwork,
    BlockProtocolError,
    RadioNetwork,
    SlotLimitExceeded,
)
from repro.sim.jam import JamBlock


def idle_actions(K, n):
    return np.zeros((K, n), dtype=np.int8)


class TestBlockDiscipline:
    def test_draw_then_commit_advances_clock(self):
        net = RadioNetwork(4)
        net.draw_jamming(10, 2)
        net.commit_block(idle_actions(10, 4))
        assert net.clock == 10

    def test_double_draw_rejected(self):
        net = RadioNetwork(4)
        net.draw_jamming(5, 2)
        with pytest.raises(BlockProtocolError):
            net.draw_jamming(5, 2)

    def test_commit_without_draw_rejected(self):
        net = RadioNetwork(4)
        with pytest.raises(BlockProtocolError):
            net.commit_block(idle_actions(5, 4))

    def test_commit_length_mismatch_rejected(self):
        net = RadioNetwork(4)
        net.draw_jamming(5, 2)
        with pytest.raises(BlockProtocolError):
            net.commit_block(idle_actions(4, 4))

    def test_commit_wrong_node_count_rejected(self):
        net = RadioNetwork(4)
        net.draw_jamming(5, 2)
        with pytest.raises(ValueError):
            net.commit_block(idle_actions(5, 3))

    def test_slots_per_row_scaling(self):
        net = RadioNetwork(4)
        net.draw_jamming(12, 2)  # 12 physical slots
        net.commit_block(idle_actions(3, 4), slots_per_row=4)  # 3 rounds of 4
        assert net.clock == 12

    def test_abort_block_clears_pending(self):
        net = RadioNetwork(4)
        net.draw_jamming(5, 2)
        net.abort_block()
        net.draw_jamming(5, 2)  # allowed again
        net.commit_block(idle_actions(5, 4))

    def test_invalid_block_dimensions(self):
        net = RadioNetwork(4)
        with pytest.raises(ValueError):
            net.draw_jamming(0, 2)
        with pytest.raises(ValueError):
            net.draw_jamming(2, 0)


class TestAccounting:
    def test_node_energy_from_actions(self):
        net = RadioNetwork(3)
        net.draw_jamming(4, 2)
        actions = np.array(
            [
                [ACT_LISTEN, ACT_SEND_MSG, ACT_IDLE],
                [ACT_LISTEN, ACT_IDLE, ACT_IDLE],
                [ACT_IDLE, ACT_SEND_MSG, ACT_IDLE],
                [ACT_LISTEN, ACT_SEND_MSG, ACT_IDLE],
            ],
            dtype=np.int8,
        )
        net.commit_block(actions)
        np.testing.assert_array_equal(net.energy.node_cost, [3, 3, 0])
        np.testing.assert_array_equal(net.energy.listen_slots, [3, 0, 0])
        np.testing.assert_array_equal(net.energy.send_slots, [0, 3, 0])

    def test_adversary_charged_on_draw(self):
        adv = BlanketJammer(budget=100, channels=2)
        adv.reset()
        net = RadioNetwork(4, adv)
        net.draw_jamming(10, 4)
        assert net.energy.adversary_spend == 20  # 2 channels x 10 slots
        net.commit_block(idle_actions(10, 4))

    def test_adversary_budget_exactly_respected(self):
        adv = BlanketJammer(budget=15, channels=2)
        adv.reset()
        net = RadioNetwork(4, adv)
        net.draw_jamming(10, 4)
        net.commit_block(idle_actions(10, 4))
        net.draw_jamming(10, 4)
        net.commit_block(idle_actions(10, 4))
        assert net.energy.adversary_spend == 15

    def test_no_adversary_means_empty_jam(self):
        net = RadioNetwork(4)
        jam = net.draw_jamming(8, 3)
        assert isinstance(jam, JamBlock)
        assert jam.total() == 0
        net.commit_block(idle_actions(8, 4))


class TestLimits:
    def test_max_slots_enforced(self):
        net = RadioNetwork(4, max_slots=12)
        net.draw_jamming(10, 2)
        net.commit_block(idle_actions(10, 4))
        net.draw_jamming(10, 2)
        with pytest.raises(SlotLimitExceeded):
            net.commit_block(idle_actions(10, 4))

    def test_min_network_size(self):
        with pytest.raises(ValueError):
            RadioNetwork(1)

    def test_seed_determines_node_stream(self):
        a = RadioNetwork(4, seed=5).rng.integers(1 << 30, size=8)
        b = RadioNetwork(4, seed=5).rng.integers(1 << 30, size=8)
        assert (a == b).all()


class TestBatchNetwork:
    def _bnet(self, **kwargs):
        return BatchNetwork(4, [1, 2, 3], **kwargs)

    def test_lane_draws_match_scalar_streams(self):
        """Each lane's generator consumes exactly like its scalar twin."""
        bnet = self._bnet()
        lanes = np.arange(3)
        batch_channels = bnet.draw_channels(lanes, 5, 2)
        batch_coins = bnet.draw_coins(lanes, 5)
        for lane, seed in enumerate([1, 2, 3]):
            net = RadioNetwork(4, seed=seed)
            np.testing.assert_array_equal(
                batch_channels[lane], net.rng.integers(0, 2, size=(5, 4), dtype=np.int32)
            )
            np.testing.assert_array_equal(batch_coins[lane], net.rng.random((5, 4)))

    def test_draw_jamming_stacks_per_lane_masks(self):
        adversaries = [BlanketJammer(10, channels=1.0, seed=s) for s in range(3)]
        bnet = BatchNetwork(4, [1, 2, 3], adversaries)
        jam = bnet.draw_jamming(np.arange(3), 2, 2)
        assert jam.K == 6 and jam.C == 2
        np.testing.assert_array_equal(bnet.energy.jammed_channel_slots, [4, 4, 4])

    def test_draw_commit_pairing_enforced(self):
        bnet = self._bnet()
        lanes = np.arange(3)
        bnet.draw_jamming(lanes, 2, 2)
        with pytest.raises(BlockProtocolError):
            bnet.draw_jamming(lanes, 2, 2)
        with pytest.raises(BlockProtocolError):
            bnet.commit_block(np.array([0, 1]), np.zeros((2, 2, 4), dtype=np.int8))
        with pytest.raises(BlockProtocolError):
            bnet.commit_block(lanes, np.zeros((3, 3, 4), dtype=np.int8))
        bnet.commit_block(lanes, np.zeros((3, 2, 4), dtype=np.int8))
        with pytest.raises(BlockProtocolError):
            bnet.commit_counts(lanes, np.zeros((3, 4)), np.zeros((3, 4)), 2)

    def test_commit_counts_equals_commit_block(self):
        actions = np.zeros((2, 3, 4), dtype=np.int8)
        actions[0, :, 1] = ACT_LISTEN
        actions[1, 2, 3] = ACT_SEND_MSG
        a = BatchNetwork(4, [1, 2])
        a.draw_jamming(np.arange(2), 3, 2)
        a.commit_block(np.arange(2), actions)
        b = BatchNetwork(4, [1, 2])
        b.draw_jamming(np.arange(2), 3, 2)
        listen = (actions == ACT_LISTEN).sum(axis=1)
        send = (actions == ACT_SEND_MSG).sum(axis=1)
        b.commit_counts(np.arange(2), listen, send, 3)
        np.testing.assert_array_equal(a.energy.listen_slots, b.energy.listen_slots)
        np.testing.assert_array_equal(a.energy.send_slots, b.energy.send_slots)
        np.testing.assert_array_equal(a.clocks, b.clocks)

    def test_overrun_reported_per_lane_not_raised(self):
        bnet = BatchNetwork(4, [1, 2], max_slots=3)
        lanes = np.arange(2)
        bnet.draw_jamming(lanes, 2, 2)
        assert not bnet.commit_block(lanes, np.zeros((2, 2, 4), dtype=np.int8)).any()
        # lane 1 sits out the next block; only lane 0 passes the cap
        bnet.draw_jamming(np.array([0]), 2, 2)
        overrun = bnet.commit_block(np.array([0]), np.zeros((1, 2, 4), dtype=np.int8))
        np.testing.assert_array_equal(overrun, [True])
        np.testing.assert_array_equal(bnet.clocks, [4, 2])

    def test_masked_out_lanes_freeze(self):
        bnet = self._bnet()
        bnet.draw_jamming(np.array([0, 2]), 4, 2)
        bnet.commit_block(np.array([0, 2]), np.zeros((2, 4, 4), dtype=np.int8))
        np.testing.assert_array_equal(bnet.clocks, [4, 0, 4])

    def test_shared_adversary_rejected(self):
        adv = BlanketJammer(5, seed=0)
        with pytest.raises(ValueError):
            BatchNetwork(4, [1, 2], [adv, adv])

    def test_lane_ledger_views_match_energy_contract(self):
        actions = np.zeros((2, 2, 4), dtype=np.int8)
        actions[0, :, 0] = ACT_LISTEN
        actions[1, :, 1] = ACT_SEND_MSG
        bnet = BatchNetwork(4, [1, 2])
        bnet.draw_jamming(np.arange(2), 2, 2)
        bnet.commit_block(np.arange(2), actions)
        np.testing.assert_array_equal(bnet.energy.lane_node_cost(0), [2, 0, 0, 0])
        np.testing.assert_array_equal(bnet.energy.lane_node_cost(1), [0, 2, 0, 0])
        assert bnet.energy.lane_adversary_spend(0) == 0
        assert isinstance(bnet.energy.lane_adversary_spend(0), int)
