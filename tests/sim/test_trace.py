"""Unit tests for the trace recorder."""

import numpy as np

from repro.sim.trace import TraceRecorder


class TestGrowthCurve:
    def test_empty(self):
        tr = TraceRecorder()
        slots, counts = tr.informed_curve()
        assert slots.size == 0 and counts.size == 0
        assert tr.slots_to_informed() is None

    def test_curve_ordering(self):
        tr = TraceRecorder()
        tr.record_growth(0, 1)
        tr.record_growth(10, 3)
        tr.record_growth(25, 8)
        slots, counts = tr.informed_curve()
        np.testing.assert_array_equal(slots, [0, 10, 25])
        np.testing.assert_array_equal(counts, [1, 3, 8])

    def test_slots_to_informed_full(self):
        tr = TraceRecorder()
        tr.record_growth(0, 1)
        tr.record_growth(7, 4)
        tr.record_growth(20, 8)
        assert tr.slots_to_informed(1.0) == 20

    def test_slots_to_informed_fraction(self):
        tr = TraceRecorder()
        tr.record_growth(0, 1)
        tr.record_growth(7, 4)
        tr.record_growth(20, 8)
        assert tr.slots_to_informed(0.5) == 7


class TestPeriods:
    def test_record_and_filter(self):
        tr = TraceRecorder()
        tr.record_period("iteration", (6,), 0, 100, 5, 8, R=100)
        tr.record_period("phase", (3, 1), 100, 140, 6, 8, p=0.25)
        assert len(tr.periods_of("iteration")) == 1
        assert len(tr.periods_of("phase")) == 1
        assert tr.periods_of("phase")[0].detail["p"] == 0.25

    def test_len_counts_everything(self):
        tr = TraceRecorder()
        tr.record_growth(0, 1)
        tr.record_period("iteration", (1,), 0, 10, 2, 2)
        assert len(tr) == 2

    def test_indices_are_int_tuples(self):
        tr = TraceRecorder()
        tr.record_period("phase", (np.int64(3), np.int64(1)), 0, 1, 1, 1)
        idx = tr.periods[0].index
        assert idx == (3, 1)
        assert all(isinstance(x, int) for x in idx)
