"""Unit tests for the channel-contention kernel (paper section 3 semantics)."""

import numpy as np
import pytest

from repro.sim.channel import (
    ACT_IDLE,
    ACT_LISTEN,
    ACT_SEND_BEACON,
    ACT_SEND_MSG,
    FB_BEACON,
    FB_MSG,
    FB_NOISE,
    FB_NONE,
    FB_SILENCE,
    resolve_block,
    resolve_slot,
)
from repro.sim.jam import JamBlock


def slot(channels, actions, jammed):
    return resolve_slot(
        np.array(channels), np.array(actions, dtype=np.int8), np.array(jammed, dtype=bool)
    )


class TestSingleSlotSemantics:
    def test_silence_on_empty_channel(self):
        fb = slot([0, 1], [ACT_LISTEN, ACT_IDLE], [False, False])
        assert fb[0] == FB_SILENCE

    def test_single_broadcaster_delivers(self):
        fb = slot([0, 0], [ACT_SEND_MSG, ACT_LISTEN], [False])
        assert fb[1] == FB_MSG

    def test_beacon_delivers_as_beacon(self):
        fb = slot([0, 0], [ACT_SEND_BEACON, ACT_LISTEN], [False])
        assert fb[1] == FB_BEACON

    def test_two_broadcasters_collide(self):
        fb = slot([0, 0, 0], [ACT_SEND_MSG, ACT_SEND_MSG, ACT_LISTEN], [False])
        assert fb[2] == FB_NOISE

    def test_msg_beacon_collision_is_noise(self):
        fb = slot([0, 0, 0], [ACT_SEND_MSG, ACT_SEND_BEACON, ACT_LISTEN], [False])
        assert fb[2] == FB_NOISE

    def test_jamming_is_noise(self):
        fb = slot([0, 0], [ACT_SEND_MSG, ACT_LISTEN], [True])
        assert fb[1] == FB_NOISE

    def test_jammed_empty_channel_is_noise_not_silence(self):
        """Nodes cannot distinguish a jammed-idle channel from a collision."""
        fb = slot([0, 1], [ACT_LISTEN, ACT_IDLE], [True, False])
        assert fb[0] == FB_NOISE

    def test_broadcaster_gets_no_feedback(self):
        fb = slot([0, 0], [ACT_SEND_MSG, ACT_LISTEN], [False])
        assert fb[0] == FB_NONE

    def test_idle_gets_no_feedback(self):
        fb = slot([0, 0], [ACT_IDLE, ACT_SEND_MSG], [False])
        assert fb[0] == FB_NONE

    def test_channels_are_independent(self):
        # sender on ch0, listener on ch1 hears silence, listener on ch0 hears m
        fb = slot([0, 1, 0], [ACT_SEND_MSG, ACT_LISTEN, ACT_LISTEN], [False, False])
        assert fb[1] == FB_SILENCE
        assert fb[2] == FB_MSG

    def test_jam_on_other_channel_irrelevant(self):
        fb = slot([0, 0], [ACT_SEND_MSG, ACT_LISTEN], [False, True])
        assert fb[1] == FB_MSG

    def test_multiple_listeners_same_channel_all_hear(self):
        fb = slot([0, 0, 0, 0], [ACT_SEND_MSG, ACT_LISTEN, ACT_LISTEN, ACT_LISTEN], [False])
        assert fb[1] == fb[2] == fb[3] == FB_MSG

    def test_listeners_do_not_collide(self):
        """Listening does not occupy the channel — two listeners both hear m."""
        fb = slot([0, 0, 0], [ACT_LISTEN, ACT_LISTEN, ACT_SEND_MSG], [False])
        assert fb[0] == FB_MSG and fb[1] == FB_MSG


class TestBlockResolution:
    def test_block_rows_independent(self, rng):
        # slot 0: delivery; slot 1: collision; slot 2: jam
        channels = np.zeros((3, 2), dtype=np.int64)
        actions = np.array(
            [
                [ACT_SEND_MSG, ACT_LISTEN],
                [ACT_SEND_MSG, ACT_SEND_MSG],
                [ACT_SEND_MSG, ACT_LISTEN],
            ],
            dtype=np.int8,
        )
        jam = np.array([[False], [False], [True]])
        fb = resolve_block(channels, actions, jam)
        assert fb[0, 1] == FB_MSG
        assert fb[1, 0] == FB_NONE and fb[1, 1] == FB_NONE
        assert fb[2, 1] == FB_NOISE

    def test_check_flag_validates_channel_range(self):
        channels = np.array([[5]])
        actions = np.array([[ACT_LISTEN]], dtype=np.int8)
        jam = np.zeros((1, 2), dtype=bool)
        with pytest.raises(ValueError, match="channel index"):
            resolve_block(channels, actions, jam, check=True)

    def test_check_flag_validates_action_codes(self):
        channels = np.zeros((1, 1), dtype=np.int64)
        actions = np.array([[9]], dtype=np.int8)
        jam = np.zeros((1, 2), dtype=bool)
        with pytest.raises(ValueError, match="invalid action"):
            resolve_block(channels, actions, jam, check=True)

    def test_idle_channel_value_ignored(self):
        """Idle nodes' channel entries may be garbage without effect."""
        channels = np.array([[999_999, 0, 0]])
        actions = np.array([[ACT_IDLE, ACT_SEND_MSG, ACT_LISTEN]], dtype=np.int8)
        jam = np.zeros((1, 4), dtype=bool)
        fb = resolve_block(channels, actions, jam)
        assert fb[0, 2] == FB_MSG

    def test_accepts_jamblock_input(self):
        channels = np.zeros((2, 2), dtype=np.int64)
        actions = np.array(
            [[ACT_SEND_MSG, ACT_LISTEN], [ACT_SEND_MSG, ACT_LISTEN]], dtype=np.int8
        )
        jam = JamBlock.from_dense(np.array([[True], [False]]))
        fb = resolve_block(channels, actions, jam)
        assert fb[0, 1] == FB_NOISE
        assert fb[1, 1] == FB_MSG


class TestDenseSparseEquivalence:
    """The two resolution paths must agree exactly (they are separately
    implemented; this is the contract that lets the sparse path exist)."""

    def _random_case(self, rng, K, n, C, jam_p):
        channels = rng.integers(0, C, size=(K, n))
        actions = rng.choice(
            np.array([ACT_IDLE, ACT_LISTEN, ACT_SEND_MSG, ACT_SEND_BEACON], dtype=np.int8),
            size=(K, n),
        )
        jam = rng.random((K, C)) < jam_p
        return channels, actions, jam

    @pytest.mark.parametrize("case", range(8))
    def test_equivalence_random_cases(self, rng, case):
        from repro.sim.channel import _resolve_dense, _resolve_sparse

        K, n, C = 16, 9, 5
        channels, actions, jam = self._random_case(rng, K, n, C, 0.3)
        dense = _resolve_dense(channels, actions, jam)
        sparse = _resolve_sparse(channels, actions, JamBlock.from_dense(jam))
        np.testing.assert_array_equal(dense, sparse)

    def test_sparse_path_used_for_huge_c(self):
        """Huge channel counts must resolve without materializing (K, C)."""
        C = 1 << 30
        K, n = 4, 6
        channels = np.array([[0, 0, 1, C - 1, C - 1, 5]] * K, dtype=np.int64)
        actions = np.tile(
            np.array(
                [ACT_SEND_MSG, ACT_LISTEN, ACT_LISTEN, ACT_SEND_MSG, ACT_LISTEN, ACT_IDLE],
                dtype=np.int8,
            ),
            (K, 1),
        )
        jam = JamBlock.empty(K, C)
        fb = resolve_block(channels, actions, jam)
        assert (fb[:, 1] == FB_MSG).all()  # lone sender on channel 0
        assert (fb[:, 2] == FB_SILENCE).all()  # nobody on channel 1
        assert (fb[:, 4] == FB_MSG).all()  # lone sender on channel C-1
        assert (fb[:, 5] == FB_NONE).all()  # idle node

    def test_sparse_path_single_sender_on_high_channel(self):
        C = 1 << 30
        channels = np.array([[C - 1, C - 1]], dtype=np.int64)
        actions = np.array([[ACT_SEND_MSG, ACT_LISTEN]], dtype=np.int8)
        fb = resolve_block(channels, actions, JamBlock.empty(1, C))
        assert fb[0, 1] == FB_MSG
