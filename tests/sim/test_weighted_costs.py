"""Tests for non-unit action costs — the paper's footnote 1.

"In reality, the energy expenditure for sending, listening, and jamming might
differ, but they are often in the same order. ... allowing costs of different
actions to be different constants will not affect the correctness of our
results."  We test both halves: the ledger arithmetic, and the preserved
conclusion (resource competitiveness up to the constants).
"""

import numpy as np
import pytest

from repro import BlanketJammer, MultiCast
from repro.sim.engine import RadioNetwork
from repro.sim.metrics import EnergyLedger


class TestWeightedLedger:
    def test_weights_applied(self):
        led = EnergyLedger(2, listen_cost=1.5, send_cost=3.0, jam_cost=0.5)
        led.charge_nodes(np.array([2, 0]), np.array([1, 4]))
        led.charge_adversary(10)
        np.testing.assert_allclose(led.node_cost, [2 * 1.5 + 1 * 3.0, 4 * 3.0])
        assert led.adversary_spend == 5.0
        assert led.max_node_cost == 12.0

    def test_unit_weights_stay_integral(self):
        led = EnergyLedger(2)
        led.charge_nodes(np.array([1, 2]), np.array([0, 1]))
        led.charge_adversary(3)
        assert led.node_cost.dtype.kind == "i"
        assert isinstance(led.adversary_spend, int)
        assert isinstance(led.max_node_cost, int)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            EnergyLedger(2, listen_cost=-1.0)

    def test_raw_slot_counts_unweighted(self):
        led = EnergyLedger(1, listen_cost=7.0)
        led.charge_nodes(np.array([3]), np.array([0]))
        assert led.listen_slots[0] == 3  # counts stay raw; weights at readout


class TestFootnoteOneConclusion:
    """Scaling the action costs by constants rescales the books but does not
    change who wins the energy war or whether the broadcast completes."""

    N = 32
    T = 600_000

    def _run(self, **weights):
        adv = BlanketJammer(budget=self.T, channels=0.9, placement="random", seed=4)
        adv.reset()
        net = RadioNetwork(self.N, adv, seed=9, **weights)
        return MultiCast(self.N, a=0.05).run(net), net

    def test_same_execution_different_books(self):
        r1, net1 = self._run()
        r2, net2 = self._run(listen_cost=2.0, send_cost=3.0, jam_cost=1.5)
        # identical execution (same seeds): same slots, same raw counts
        assert r1.slots == r2.slots
        np.testing.assert_array_equal(net1.energy.listen_slots, net2.energy.listen_slots)
        np.testing.assert_array_equal(net1.energy.send_slots, net2.energy.send_slots)
        # books scale within the min/max constant band
        assert (r2.node_energy >= 2.0 * r1.node_energy - 1e-9).all()
        assert (r2.node_energy <= 3.0 * r1.node_energy + 1e-9).all()
        assert r2.adversary_spend == pytest.approx(1.5 * r1.adversary_spend)

    def test_competitiveness_preserved(self):
        r, _ = self._run(listen_cost=2.0, send_cost=3.0, jam_cost=0.5)
        assert r.success
        # Eve still outspends every node by a huge factor even when her
        # action is the cheap one
        assert r.max_cost < 0.1 * r.adversary_spend
