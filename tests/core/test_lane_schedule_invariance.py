"""Schedule invariance: a trial's result never depends on lane scheduling.

The continuous-batching contract (DESIGN.md section 13): each trial's full
result row is a pure function of its (seed, adversary, max_slots) — running
it through one lane slot or eight, through lockstep fixed blocks or
compacted/refilled stream slots, serially or sharded, must produce the
byte-identical :class:`~repro.core.result.BroadcastResult`.  Not
statistically close: equal.

Structure
---------
* The fast subset (tier-1) pins every streaming protocol against the
  fixed-lane path across widths {1, 2, 8} under *staggered* per-trial slot
  caps — the workload compaction exists for, with refills guaranteed on
  every multi-slot width — plus direct scalar cross-checks, the
  ``run_trials`` backend triangle, the stream-entry fallback for protocols
  without a ``run_stream``, and a serial-vs-sharded campaign identity.
* The full protocol × oblivious-jammer matrix runs behind the ``slow``
  marker (the fixed path itself is pinned bit-identical to scalar per lane
  by ``test_batch_equivalence.py``, so fixed is a sound reference here).
"""

import numpy as np
import pytest

from repro.core import run_broadcast, run_broadcast_batch
from repro.core.batch import run_broadcast_stream
from repro.exp.registry import build_jammer, build_protocol, oblivious_jammer_names

N = 8
BUDGET = 2_000
BIG = 50_000_000
#: staggered per-trial caps: tiny truncations interleaved with full runs,
#: so every width > 1 sees early retirements and mid-stream refills
CAPS = [3_000, BIG, 7, BIG, 16, 150, BIG, 24]
SEEDS = [3, 7, 11, 19, 23, 31, 41, 57]
WIDTHS = (1, 2, 8)

ADV_FAST = dict(
    alpha=0.24, b=0.01, halt_noise_divisor=20.0, helper_wait=2.0, max_epochs=20
)

#: protocols with a run_stream, as (registry name -> factory)
STREAMING_PROTOCOLS = {
    "core": lambda: build_protocol("core", N, T=BUDGET),
    "multicast": lambda: build_protocol("multicast", N),
    "multicast_c": lambda: build_protocol("multicast_c", N, C=2),
    "adv": lambda: build_protocol("adv", N, knobs=ADV_FAST),
    "adv_c": lambda: build_protocol("adv_c", N, C=2, knobs=ADV_FAST),
}

#: batched (or scalar-only) protocols *without* a run_stream: the stream
#: entry point must route them through its fixed-block fallback unchanged
STREAMLESS_PROTOCOLS = {
    "decay": lambda: build_protocol("decay", N),
    "naive": lambda: build_protocol("naive", N),
    "single_channel": lambda: build_protocol("single_channel", N),
}


def assert_rows_equal(got, reference, context):
    __tracebackhide__ = True
    for attr in (
        "protocol",
        "n",
        "slots",
        "completed",
        "adversary_spend",
        "halted_uninformed",
        "periods",
    ):
        assert getattr(got, attr) == getattr(reference, attr), (context, attr)
    for attr in ("informed_slot", "halt_slot", "node_energy"):
        np.testing.assert_array_equal(
            getattr(got, attr), getattr(reference, attr), err_msg=f"{context}: {attr}"
        )
    assert got.extras.keys() == reference.extras.keys(), context
    for key, expected in reference.extras.items():
        if isinstance(expected, np.ndarray):
            np.testing.assert_array_equal(
                got.extras[key], expected, err_msg=f"{context}: extras[{key}]"
            )
        else:
            assert got.extras[key] == expected, (context, f"extras[{key}]")


def jammers_for(jammer_name, count):
    return [build_jammer(jammer_name, BUDGET, 100 + i, n=N) for i in range(count)]


def fixed_reference(factory, jammer_name, *, chunk=2):
    """The lockstep fixed-lane rows (pinned == scalar by the equivalence
    suite), chunked so the reference itself exercises multi-block caps."""
    advs = jammers_for(jammer_name, len(SEEDS))
    rows = []
    for k in range(0, len(SEEDS), chunk):
        rows.extend(
            run_broadcast_batch(
                factory(),
                N,
                advs[k : k + chunk],
                SEEDS[k : k + chunk],
                max_slots=np.asarray(CAPS[k : k + chunk]),
            )
        )
    return rows


@pytest.mark.parametrize("protocol_name", sorted(STREAMING_PROTOCOLS))
def test_stream_invariant_across_widths_and_refills(protocol_name):
    """Every width — including width 1 (pure serial through one slot) and
    width 8 (everything in flight at once) — reproduces the fixed-lane rows
    exactly, refills and all."""
    factory = STREAMING_PROTOCOLS[protocol_name]
    reference = fixed_reference(factory, "blanket")
    for width in WIDTHS:
        got = run_broadcast_stream(
            factory(),
            N,
            jammers_for("blanket", len(SEEDS)),
            SEEDS,
            max_slots=np.asarray(CAPS),
            lane_width=width,
        )
        assert len(got) == len(reference)
        for t, (g, r) in enumerate(zip(got, reference)):
            assert_rows_equal(g, r, (protocol_name, f"width={width}", f"trial={t}"))


@pytest.mark.parametrize("protocol_name", sorted(STREAMING_PROTOCOLS))
def test_stream_matches_scalar_directly(protocol_name):
    """Spot cross-check against the scalar engine itself (not via the fixed
    path): one full run and one cap-truncated run per protocol."""
    factory = STREAMING_PROTOCOLS[protocol_name]
    seeds, caps = SEEDS[:2], [BIG, 16]
    got = run_broadcast_stream(
        factory(),
        N,
        jammers_for("blanket", 2),
        seeds,
        max_slots=np.asarray(caps),
        lane_width=2,
    )
    for t, (seed, cap) in enumerate(zip(seeds, caps)):
        reference = run_broadcast(
            factory(),
            N,
            build_jammer("blanket", BUDGET, 100 + t, n=N),
            seed=seed,
            max_slots=cap,
        )
        assert_rows_equal(got[t], reference, (protocol_name, "scalar", f"trial={t}"))


@pytest.mark.parametrize("protocol_name", sorted(STREAMLESS_PROTOCOLS))
def test_streamless_protocols_fall_back_unchanged(protocol_name):
    """A protocol without run_stream routed through the stream entry point
    produces the fixed path's rows (including the scalar-fallback stamping
    for protocols without run_batch)."""
    factory = STREAMLESS_PROTOCOLS[protocol_name]
    seeds = SEEDS[:4]
    advs = jammers_for("blanket", 4)
    got = run_broadcast_stream(
        factory(), N, advs, seeds, max_slots=BIG, lane_width=2
    )
    reference = []
    for k in range(0, 4, 2):
        reference.extend(
            run_broadcast_batch(
                factory(),
                N,
                jammers_for("blanket", 4)[k : k + 2],
                seeds[k : k + 2],
                max_slots=BIG,
            )
        )
    for t, (g, r) in enumerate(zip(got, reference)):
        assert_rows_equal(g, r, (protocol_name, "fallback", f"trial={t}"))


def test_run_trials_backends_agree():
    """The stats-layer backend triangle: auto (stream), fixed (lockstep) and
    scalar all yield the identical TrialBatch."""
    from repro.analysis.stats import run_trials

    def batch(backend):
        return run_trials(
            STREAMING_PROTOCOLS["multicast"],
            N,
            lambda seed: build_jammer("blanket", BUDGET, seed, n=N),
            trials=5,
            base_seed=42,
            label="invariance",
            backend=backend,
        )

    stream, fixed, scalar = batch("batched"), batch("fixed"), batch("scalar")
    assert len(stream.results) == len(fixed.results) == len(scalar.results) == 5
    for t, (s, f, sc) in enumerate(
        zip(stream.results, fixed.results, scalar.results)
    ):
        assert_rows_equal(s, f, ("run_trials", "stream-vs-fixed", f"trial={t}"))
        assert_rows_equal(s, sc, ("run_trials", "stream-vs-scalar", f"trial={t}"))


def test_campaign_serial_vs_sharded_stream(tmp_path, monkeypatch):
    """One campaign, workers=1 vs workers=3: row-identical stores (up to
    wall_time, zeroed via REPRO_ZERO_WALL) even though the sharded run
    splits the trial list into per-worker lane streams."""
    from repro.exp import CampaignSpec, ResultStore, run_campaign
    from repro.exp.pool import ZERO_WALL_ENV

    monkeypatch.setenv(ZERO_WALL_ENV, "1")
    campaign = CampaignSpec(
        protocols=["multicast", "adv"],
        jammers=["blanket"],
        ns=[N],
        budget=BUDGET,
        trials=9,
        base_seed=5,
        protocol_knobs={"adv": dict(ADV_FAST)},
    )
    serial = tmp_path / "serial.jsonl"
    sharded = tmp_path / "sharded.jsonl"
    run_campaign(campaign, ResultStore(str(serial)), workers=1)
    run_campaign(campaign, ResultStore(str(sharded)), workers=3)
    assert serial.read_text() == sharded.read_text()


@pytest.mark.slow
@pytest.mark.parametrize("jammer_name", sorted(oblivious_jammer_names()))
@pytest.mark.parametrize("protocol_name", sorted(STREAMING_PROTOCOLS))
def test_full_matrix_stream_matches_fixed(protocol_name, jammer_name):
    """The full protocol × oblivious-jammer matrix, widths 1/2/8 with
    staggered caps, against the fixed path (itself pinned == scalar)."""
    factory = STREAMING_PROTOCOLS[protocol_name]
    reference = fixed_reference(factory, jammer_name, chunk=3)
    for width in WIDTHS:
        got = run_broadcast_stream(
            factory(),
            N,
            jammers_for(jammer_name, len(SEEDS)),
            SEEDS,
            max_slots=np.asarray(CAPS),
            lane_width=width,
        )
        for t, (g, r) in enumerate(zip(got, reference)):
            assert_rows_equal(
                g, r, (protocol_name, jammer_name, f"width={width}", f"trial={t}")
            )
