"""Batched execution must be bit-identical, per lane, to the scalar path.

This is the determinism contract of the lane axis (DESIGN.md section 6):
for every protocol with a ``run_batch`` and every jammer in the registry,
running B seeded trials through :func:`repro.core.batch.run_broadcast_batch`
yields exactly the results of B scalar :func:`repro.core.result.run_broadcast`
calls — same slots, statuses, event slots, energy books, periods, extras.
Not statistically close: equal.
"""

import numpy as np
import pytest

from repro.core import (
    MultiCast,
    MultiCastAdv,
    MultiCastAdvC,
    MultiCastCore,
    run_broadcast,
    run_broadcast_batch,
)
from repro.exp.registry import build_jammer, build_protocol, oblivious_jammer_names

N = 16
BUDGET = 4_000
SEEDS = [3, 7, 11, 19]

#: protocols with a batched runner, as (registry name, factory) pairs
BATCHED_PROTOCOLS = {
    "core": lambda: build_protocol("core", N, T=BUDGET),
    "multicast": lambda: build_protocol("multicast", N),
    "multicast_c": lambda: build_protocol("multicast_c", N, C=2),
    "single_channel": lambda: build_protocol("single_channel", N),
    "decay": lambda: build_protocol("decay", N),
    "naive": lambda: build_protocol("naive", N),
}

#: tier-1 laptop profile for the MultiCastAdv equivalence matrix: structural
#: constants untouched, scale knobs shrunk so the *scalar* side of every
#: case stays around a second (DESIGN.md section 2.2 / 9)
ADV_N = 8
ADV_BUDGET = 2_000
ADV_FAST = dict(alpha=0.24, b=0.01, halt_noise_divisor=20.0, helper_wait=2.0, max_epochs=20)


def assert_results_equal(batched, reference, context):
    __tracebackhide__ = True
    for attr in (
        "protocol",
        "n",
        "slots",
        "completed",
        "adversary_spend",
        "halted_uninformed",
        "periods",
    ):
        assert getattr(batched, attr) == getattr(reference, attr), (context, attr)
    for attr in ("informed_slot", "halt_slot", "node_energy"):
        np.testing.assert_array_equal(
            getattr(batched, attr),
            getattr(reference, attr),
            err_msg=f"{context}: {attr}",
        )
    # extras may hold per-node arrays (MultiCastAdv's status lattice), which
    # plain dict equality cannot compare
    assert batched.extras.keys() == reference.extras.keys(), context
    for key, expected in reference.extras.items():
        if isinstance(expected, np.ndarray):
            np.testing.assert_array_equal(
                batched.extras[key], expected, err_msg=f"{context}: extras[{key}]"
            )
        else:
            assert batched.extras[key] == expected, (context, f"extras[{key}]")


def run_both_ways(
    factory, jammer_name, *, budget=BUDGET, seeds=SEEDS, n=N, max_slots=50_000_000
):
    adversaries = [
        build_jammer(jammer_name, budget, 100 + i, n=n) for i in range(len(seeds))
    ]
    batched = run_broadcast_batch(factory(), n, adversaries, seeds, max_slots=max_slots)
    for i, seed in enumerate(seeds):
        reference = run_broadcast(
            factory(),
            n,
            build_jammer(jammer_name, budget, 100 + i, n=n),
            seed=seed,
            max_slots=max_slots,
        )
        assert_results_equal(batched[i], reference, (jammer_name, i))


@pytest.mark.parametrize("jammer_name", sorted(oblivious_jammer_names()))
@pytest.mark.parametrize("protocol_name", sorted(BATCHED_PROTOCOLS))
def test_batched_equals_scalar(protocol_name, jammer_name):
    """The acceptance matrix: every batched protocol x every *oblivious*
    registry jammer.  Reactive jammers never reach the lane engine — the
    dispatcher falls back to per-lane arena runs, covered by
    tests/arena/test_adaptive_flow.py — so batching them here would only
    re-time the arena against itself."""
    budget = 0 if jammer_name == "none" else BUDGET
    run_both_ways(BATCHED_PROTOCOLS[protocol_name], jammer_name, budget=budget)


class TestTruncationParity:
    """Per-lane slot-limit overruns must match the scalar SlotLimitExceeded
    path, including the quirk that informed_slot reflects the final partial
    block while informed-set-derived counters do not."""

    def test_multicast_truncated_mid_iteration(self):
        run_both_ways(
            lambda: build_protocol("multicast", N),
            "blackout",
            budget=100_000,
            max_slots=3_000,
        )

    def test_core_counts_partial_iteration(self):
        run_both_ways(
            lambda: build_protocol("core", N, T=50_000),
            "blackout",
            budget=100_000,
            max_slots=2_000,
        )

    def test_decay_truncated(self):
        run_both_ways(
            lambda: build_protocol("decay", N),
            "blackout",
            budget=100_000,
            max_slots=50,
        )

    def test_naive_truncated(self):
        run_both_ways(
            lambda: build_protocol("naive", N),
            "blackout",
            budget=2_000_000,
            max_slots=900,
        )

    def test_adv_truncated_mid_phase(self):
        """MultiCastAdv lanes overrun at different clocks; each must stop
        exactly where the scalar SlotLimitExceeded lands (statuses from the
        last committed phase, informed_slot from the final partial block)."""
        run_both_ways(
            lambda: MultiCastAdv(**ADV_FAST),
            "blackout",
            budget=100_000,
            n=ADV_N,
            max_slots=3_000,
        )
        run_both_ways(
            lambda: MultiCastAdv(**ADV_FAST),
            "blackout",
            budget=100_000,
            n=ADV_N,
            max_slots=40_000,
        )

    @pytest.mark.parametrize("max_slots", [7, 16, 24, 150, 700])
    def test_adv_truncated_in_step_two(self, max_slots):
        """Regression: a lane whose overrun lands in *step II* of a phase
        must keep its pre-phase statuses — the scalar SlotLimitExceeded
        aborts _run_phase before the step-I un->in promotions in its local
        status copy are returned, so the batch driver must defer its own
        status write-back to phase end.  These max_slots values land the
        overrun in step II of the earliest phases (the two cases above land
        it in step I or at phase boundaries and missed the window)."""
        run_both_ways(
            lambda: MultiCastAdv(**ADV_FAST),
            "none",
            budget=0,
            n=ADV_N,
            max_slots=max_slots,
        )

    def test_adv_max_epochs_cutoff(self):
        run_both_ways(
            lambda: MultiCastAdv(alpha=0.24, b=0.01, max_epochs=6),
            "none",
            budget=0,
            n=ADV_N,
        )

    def test_max_iterations_cutoff(self):
        adversaries = [build_jammer("blackout", 500_000, i) for i in range(3)]
        batched = run_broadcast_batch(
            MultiCast(N, max_iterations=2), N, adversaries, [5, 6, 7]
        )
        for i, seed in enumerate([5, 6, 7]):
            reference = run_broadcast(
                MultiCast(N, max_iterations=2),
                N,
                build_jammer("blackout", 500_000, i),
                seed=seed,
            )
            assert_results_equal(batched[i], reference, ("max_iterations", i))
            assert not batched[i].completed


class TestAdvEquivalence:
    """The Fig. 4/6 kernel (core/adv_batch.py) against the scalar engine:
    same acceptance matrix as the shared-coin protocols, at the tier-1
    laptop profile.  This parity case used to be feasible only at the `slow`
    marker's scale; the batched kernel makes the sub-second version real.
    The full-scale differential (registry gallery profile, minutes of
    scalar time) stays behind `slow` below."""

    @pytest.mark.parametrize("jammer_name", sorted(oblivious_jammer_names()))
    def test_adv_batched_equals_scalar(self, jammer_name):
        budget = 0 if jammer_name == "none" else ADV_BUDGET
        run_both_ways(
            lambda: MultiCastAdv(**ADV_FAST),
            jammer_name,
            budget=budget,
            n=ADV_N,
            seeds=SEEDS[:2],
        )

    @pytest.mark.parametrize("C", [2, 4])
    def test_adv_c_batched_equals_scalar(self, C):
        """The channel-capped variant, including the boundary phase j = lg C
        where the helper rule drops the N'_m ceiling."""
        run_both_ways(
            lambda: MultiCastAdvC(C, **ADV_FAST),
            "blanket",
            budget=ADV_BUDGET,
            n=ADV_N,
            seeds=SEEDS[:2],
        )

    def test_adv_c_unjammed(self):
        run_both_ways(
            lambda: MultiCastAdvC(2, **ADV_FAST),
            "none",
            budget=0,
            n=ADV_N,
            seeds=SEEDS[:2],
        )


@pytest.mark.slow
class TestAdvEquivalenceFullScale:
    """The committed-campaign profile (registry ADV_KNOBS, n=16, jammed):
    minutes of scalar wall-clock, so `slow`-marked like the reference-node
    differentials — the tier-1 matrix above covers the same code paths at
    the laptop profile."""

    def test_gallery_profile_jammed(self):
        from repro.exp.registry import ADV_KNOBS

        run_both_ways(
            lambda: MultiCastAdv(**ADV_KNOBS, max_epochs=32),
            "phase_targeted",
            budget=250_000,
            n=16,
            seeds=SEEDS[:2],
            max_slots=400_000_000,
        )


class TestDispatcher:
    def test_scalar_fallback_without_run_batch(self, capsys):
        """Protocols lacking run_batch run scalar per lane, same interface —
        but stamped ``backend="scalar-fallback"`` and warned about on
        stderr, so campaign logs show which cells didn't batch."""

        class ScalarOnly:
            def __init__(self):
                self._inner = MultiCastCore(N, BUDGET)
                self.n = N

            def run(self, net, *, trace=None):
                return self._inner.run(net, trace=trace)

        seeds = [1, 2]
        batched = run_broadcast_batch(ScalarOnly(), N, None, seeds)
        assert "scalar fallback" in capsys.readouterr().err
        for i, seed in enumerate(seeds):
            reference = run_broadcast(MultiCastCore(N, BUDGET), N, None, seed=seed)
            assert batched[i].extras.pop("backend") == "scalar-fallback"
            assert_results_equal(batched[i], reference, ("fallback", i))

    def test_adv_no_longer_falls_back(self, capsys):
        """MultiCastAdv batches natively now: no stamp, no warning."""
        (result,) = run_broadcast_batch(
            MultiCastAdv(**ADV_FAST), ADV_N, None, [42]
        )
        assert "backend" not in result.extras
        assert capsys.readouterr().err == ""

    def test_mixed_reactive_batch_stamps_the_scalar_lanes(self, capsys):
        """A reactive adversary anywhere in the batch forces the per-lane
        loop; the *oblivious* lanes then run the scalar block engine and
        must be stamped/warned, while the reactive lane carries the arena's
        own backend stamp (windowed here: trailing is latency 1)."""
        from repro.adversary.reactive import TrailingJammer

        reactive = TrailingJammer(500, k=2, seed=1)
        oblivious = build_jammer("blanket", BUDGET, 2)
        results = run_broadcast_batch(
            MultiCast(N), N, [reactive, oblivious], [1, 2]
        )
        assert results[0].extras["backend"] == "arena-window"
        assert results[1].extras["backend"] == "scalar-fallback"
        err = capsys.readouterr().err
        assert "mixed reactive/oblivious batch" in err
        assert "1 lane(s)" in err

    def test_lane_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            run_broadcast_batch(MultiCast(N), N, [None], [1, 2])

    def test_needs_at_least_one_lane(self):
        with pytest.raises(ValueError):
            run_broadcast_batch(MultiCast(N), N, [], [])

    def test_shared_adversary_instance_rejected(self):
        """One adversary object cannot serve two lanes — it carries state."""
        adv = build_jammer("blanket", BUDGET, 1)
        with pytest.raises(ValueError):
            run_broadcast_batch(MultiCast(N), N, [adv, adv], [1, 2])

    def test_single_lane_batch_matches_run_broadcast(self):
        (batched,) = run_broadcast_batch(MultiCast(N), N, None, [42])
        reference = run_broadcast(MultiCast(N), N, None, seed=42)
        assert_results_equal(batched, reference, ("single-lane", 0))


class TestTraceDispatch:
    """``trace=`` is scalar-only (the recorder captures ONE execution).

    A one-lane batch falls back to the scalar engine — stamped and noted,
    never silent — and a multi-lane batch raises instead of attaching the
    recorder to an arbitrary lane or dropping it, which is what the batched
    and windowed dispatch paths used to do.
    """

    def test_single_lane_trace_falls_back_scalar(self, capsys):
        from repro.core.batch import collect_fallback_notes
        from repro.sim.trace import TraceRecorder

        trace = TraceRecorder()
        with collect_fallback_notes() as notes:
            (traced,) = run_broadcast_batch(
                MultiCast(N), N, None, [42], trace=trace
            )
        assert traced.extras.pop("backend") == "scalar-fallback"
        reference = run_broadcast(MultiCast(N), N, None, seed=42)
        assert_results_equal(traced, reference, ("trace-fallback", 0))
        # the trace actually recorded the execution...
        assert trace.growth
        assert trace.growth[-1].informed == N
        # ...and the fallback was noted, once, with the trace-specific cause
        assert [
            (reason, lanes)
            for (_, reason), (lanes, _) in notes.counts.items()
        ] == [("trace= forces the scalar path", 1)]

    def test_multi_lane_trace_raises(self):
        from repro.sim.trace import TraceRecorder

        with pytest.raises(ValueError, match="trace recording is scalar-only"):
            run_broadcast_batch(
                MultiCast(N), N, None, [1, 2], trace=TraceRecorder()
            )

    def test_multi_lane_reactive_trace_raises_before_windowed_dispatch(self):
        """The windowed-arena dispatch path must not swallow trace= either."""
        from repro.adversary.reactive import ReactiveLatencyJammer
        from repro.sim.trace import TraceRecorder

        adversaries = [
            ReactiveLatencyJammer(500, latency=2, k=2, seed=s) for s in (1, 2)
        ]
        with pytest.raises(ValueError, match="trace recording is scalar-only"):
            run_broadcast_batch(
                MultiCast(N), N, adversaries, [1, 2], trace=TraceRecorder()
            )
