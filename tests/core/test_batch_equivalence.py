"""Batched execution must be bit-identical, per lane, to the scalar path.

This is the determinism contract of the lane axis (DESIGN.md section 6):
for every protocol with a ``run_batch`` and every jammer in the registry,
running B seeded trials through :func:`repro.core.batch.run_broadcast_batch`
yields exactly the results of B scalar :func:`repro.core.result.run_broadcast`
calls — same slots, statuses, event slots, energy books, periods, extras.
Not statistically close: equal.
"""

import numpy as np
import pytest

from repro.core import (
    MultiCast,
    MultiCastCore,
    run_broadcast,
    run_broadcast_batch,
)
from repro.exp.registry import build_jammer, build_protocol, oblivious_jammer_names

N = 16
BUDGET = 4_000
SEEDS = [3, 7, 11, 19]

#: protocols with a batched runner, as (registry name, factory) pairs
BATCHED_PROTOCOLS = {
    "core": lambda: build_protocol("core", N, T=BUDGET),
    "multicast": lambda: build_protocol("multicast", N),
    "multicast_c": lambda: build_protocol("multicast_c", N, C=2),
    "single_channel": lambda: build_protocol("single_channel", N),
    "decay": lambda: build_protocol("decay", N),
    "naive": lambda: build_protocol("naive", N),
}


def assert_results_equal(batched, reference, context):
    __tracebackhide__ = True
    for attr in (
        "protocol",
        "n",
        "slots",
        "completed",
        "adversary_spend",
        "halted_uninformed",
        "periods",
        "extras",
    ):
        assert getattr(batched, attr) == getattr(reference, attr), (context, attr)
    for attr in ("informed_slot", "halt_slot", "node_energy"):
        np.testing.assert_array_equal(
            getattr(batched, attr),
            getattr(reference, attr),
            err_msg=f"{context}: {attr}",
        )


def run_both_ways(factory, jammer_name, *, budget=BUDGET, seeds=SEEDS, max_slots=50_000_000):
    adversaries = [build_jammer(jammer_name, budget, 100 + i) for i in range(len(seeds))]
    batched = run_broadcast_batch(factory(), N, adversaries, seeds, max_slots=max_slots)
    for i, seed in enumerate(seeds):
        reference = run_broadcast(
            factory(),
            N,
            build_jammer(jammer_name, budget, 100 + i),
            seed=seed,
            max_slots=max_slots,
        )
        assert_results_equal(batched[i], reference, (jammer_name, i))


@pytest.mark.parametrize("jammer_name", sorted(oblivious_jammer_names()))
@pytest.mark.parametrize("protocol_name", sorted(BATCHED_PROTOCOLS))
def test_batched_equals_scalar(protocol_name, jammer_name):
    """The acceptance matrix: every batched protocol x every *oblivious*
    registry jammer.  Reactive jammers never reach the lane engine — the
    dispatcher falls back to per-lane arena runs, covered by
    tests/arena/test_adaptive_flow.py — so batching them here would only
    re-time the arena against itself."""
    budget = 0 if jammer_name == "none" else BUDGET
    run_both_ways(BATCHED_PROTOCOLS[protocol_name], jammer_name, budget=budget)


class TestTruncationParity:
    """Per-lane slot-limit overruns must match the scalar SlotLimitExceeded
    path, including the quirk that informed_slot reflects the final partial
    block while informed-set-derived counters do not."""

    def test_multicast_truncated_mid_iteration(self):
        run_both_ways(
            lambda: build_protocol("multicast", N),
            "blackout",
            budget=100_000,
            max_slots=3_000,
        )

    def test_core_counts_partial_iteration(self):
        run_both_ways(
            lambda: build_protocol("core", N, T=50_000),
            "blackout",
            budget=100_000,
            max_slots=2_000,
        )

    def test_decay_truncated(self):
        run_both_ways(
            lambda: build_protocol("decay", N),
            "blackout",
            budget=100_000,
            max_slots=50,
        )

    def test_naive_truncated(self):
        run_both_ways(
            lambda: build_protocol("naive", N),
            "blackout",
            budget=2_000_000,
            max_slots=900,
        )

    def test_max_iterations_cutoff(self):
        adversaries = [build_jammer("blackout", 500_000, i) for i in range(3)]
        batched = run_broadcast_batch(
            MultiCast(N, max_iterations=2), N, adversaries, [5, 6, 7]
        )
        for i, seed in enumerate([5, 6, 7]):
            reference = run_broadcast(
                MultiCast(N, max_iterations=2),
                N,
                build_jammer("blackout", 500_000, i),
                seed=seed,
            )
            assert_results_equal(batched[i], reference, ("max_iterations", i))
            assert not batched[i].completed


class TestDispatcher:
    def test_scalar_fallback_without_run_batch(self):
        """Protocols lacking run_batch run scalar per lane, same interface."""

        class ScalarOnly:
            def __init__(self):
                self._inner = MultiCastCore(N, BUDGET)
                self.n = N

            def run(self, net, *, trace=None):
                return self._inner.run(net, trace=trace)

        seeds = [1, 2]
        batched = run_broadcast_batch(ScalarOnly(), N, None, seeds)
        for i, seed in enumerate(seeds):
            reference = run_broadcast(MultiCastCore(N, BUDGET), N, None, seed=seed)
            assert_results_equal(batched[i], reference, ("fallback", i))

    def test_lane_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            run_broadcast_batch(MultiCast(N), N, [None], [1, 2])

    def test_needs_at_least_one_lane(self):
        with pytest.raises(ValueError):
            run_broadcast_batch(MultiCast(N), N, [], [])

    def test_shared_adversary_instance_rejected(self):
        """One adversary object cannot serve two lanes — it carries state."""
        adv = build_jammer("blanket", BUDGET, 1)
        with pytest.raises(ValueError):
            run_broadcast_batch(MultiCast(N), N, [adv, adv], [1, 2])

    def test_single_lane_batch_matches_run_broadcast(self):
        (batched,) = run_broadcast_batch(MultiCast(N), N, None, [42])
        reference = run_broadcast(MultiCast(N), N, None, seed=42)
        assert_results_equal(batched, reference, ("single-lane", 0))
