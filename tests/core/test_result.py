"""Tests for BroadcastResult derived properties and run_broadcast."""

import numpy as np
import pytest

from repro import BlanketJammer, MultiCastCore, run_broadcast
from repro.core.result import BroadcastResult


def make_result(**over):
    base = dict(
        protocol="X",
        n=3,
        slots=100,
        completed=True,
        informed_slot=np.array([0, 10, 20]),
        halt_slot=np.array([50, 60, 70]),
        node_energy=np.array([5, 9, 7]),
        adversary_spend=1000,
        halted_uninformed=0,
        periods=2,
    )
    base.update(over)
    return BroadcastResult(**base)


class TestDerivedProperties:
    def test_success_happy_path(self):
        assert make_result().success

    def test_success_requires_completion(self):
        assert not make_result(completed=False).success

    def test_success_requires_all_informed(self):
        r = make_result(informed_slot=np.array([0, -1, 20]))
        assert not r.all_informed
        assert not r.success

    def test_success_requires_no_violations(self):
        assert not make_result(halted_uninformed=1).success

    def test_max_and_mean_cost(self):
        r = make_result()
        assert r.max_cost == 9
        assert r.mean_cost == 7.0

    def test_dissemination_slot(self):
        assert make_result().dissemination_slot == 20
        assert make_result(informed_slot=np.array([0, -1, 20])).dissemination_slot is None

    def test_last_halt_slot(self):
        assert make_result().last_halt_slot == 70
        assert make_result(halt_slot=np.array([50, -1, 70])).last_halt_slot is None

    def test_competitive_ratio(self):
        assert make_result().competitive_ratio() == 9 / 1000
        assert make_result(adversary_spend=0).competitive_ratio() == float("inf")

    def test_str_contains_key_facts(self):
        s = str(make_result())
        assert "X" in s and "slots=100" in s


class TestRunBroadcast:
    def test_resets_adversary_between_runs(self):
        adv = BlanketJammer(budget=1000, channels=1.0)
        r1 = run_broadcast(MultiCastCore(n=8, T=1000, a=512.0), 8, adversary=adv, seed=1)
        r2 = run_broadcast(MultiCastCore(n=8, T=1000, a=512.0), 8, adversary=adv, seed=1)
        assert r1.adversary_spend == r2.adversary_spend == 1000

    def test_network_protocol_size_mismatch(self):
        with pytest.raises(ValueError, match="network has n="):
            run_broadcast(MultiCastCore(n=8, T=0), 16, seed=0)

    def test_max_slots_truncates_gracefully(self):
        # Unbounded jammer (no budget cap) blocks forever; the run must
        # return an incomplete result instead of hanging.
        adv = BlanketJammer(budget=None, channels=1.0)
        r = run_broadcast(
            MultiCastCore(n=8, T=64, a=256.0), 8, adversary=adv, seed=1, max_slots=20_000
        )
        assert not r.completed
        assert not r.success
        assert r.slots >= 20_000
