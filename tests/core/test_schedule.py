"""Tests for the protocol timetables — and that they match real executions.

The PhaseTargetedJammer relies on the timetable being *exactly* right, so the
strongest test here cross-checks computed spans against the slot boundaries a
traced execution actually produced.
"""

import pytest

from repro import MultiCast, MultiCastAdv, MultiCastC, MultiCastCore, run_broadcast
from repro.core.schedule import (
    multicast_adv_spans,
    multicast_core_spans,
    multicast_spans,
    phase_intervals,
)
from repro.sim.trace import TraceRecorder

ADV_FAST = dict(alpha=0.24, b=0.01, halt_noise_divisor=50.0, helper_wait=4.0)


class TestSpanArithmetic:
    def test_core_spans_contiguous(self):
        proto = MultiCastCore(n=16, T=1000, a=100.0)
        spans = multicast_core_spans(proto, 5)
        assert spans[0].start == 0
        for a, b in zip(spans, spans[1:]):
            assert a.end == b.start
        assert all(s.end - s.start == proto.iteration_slots for s in spans)

    def test_multicast_spans_grow(self):
        proto = MultiCast(n=64, a=0.05)
        spans = multicast_spans(proto, 4)
        lengths = [s.end - s.start for s in spans]
        assert lengths == [proto.iteration_length(i) for i in range(6, 10)]
        assert spans[0].p == 1 / 64

    def test_multicast_c_spans_scaled_physically(self):
        proto = MultiCastC(64, 8, a=0.05)
        spans = multicast_spans(proto, 3)
        assert spans[0].end - spans[0].start == proto.iteration_length(6) * 4
        assert spans[0].num_channels == 8

    def test_adv_spans_lattice(self):
        proto = MultiCastAdv(**ADV_FAST)
        spans = multicast_adv_spans(proto, 4)
        # epochs 1..4 have 1, 2, 3, 4 phases
        assert [(s.epoch, s.phase) for s in spans] == [
            (1, 0), (2, 0), (2, 1), (3, 0), (3, 1), (3, 2),
            (4, 0), (4, 1), (4, 2), (4, 3),
        ]
        for s in spans:
            assert s.step_boundary - s.start == s.R
            assert s.end - s.step_boundary == s.R
            assert s.num_channels == 2**s.phase

    def test_adv_spans_respect_channel_cap(self):
        proto = MultiCastAdv(channel_cap=4, **ADV_FAST)
        spans = multicast_adv_spans(proto, 6)
        assert max(s.phase for s in spans) == 2


class TestPhaseIntervals:
    def test_filter_by_phase(self):
        proto = MultiCastAdv(**ADV_FAST)
        spans = multicast_adv_spans(proto, 6)
        ivals = phase_intervals(spans, phase=2)
        assert len(ivals) == 4  # epochs 3, 4, 5, 6
        for (lo, hi), s in zip(ivals, [x for x in spans if x.phase == 2]):
            assert (lo, hi) == (s.start, s.end)

    def test_filter_by_step(self):
        proto = MultiCastAdv(**ADV_FAST)
        spans = multicast_adv_spans(proto, 3)
        step1 = phase_intervals(spans, phase=0, step=1)
        step2 = phase_intervals(spans, phase=0, step=2)
        for (a1, b1), (a2, b2) in zip(step1, step2):
            assert b1 == a2 and b1 - a1 == b2 - a2

    def test_predicate_filter(self):
        proto = MultiCastAdv(**ADV_FAST)
        spans = multicast_adv_spans(proto, 6)
        late = phase_intervals(spans, predicate=lambda s: s.epoch >= 5)
        assert all(lo >= spans[0].end for lo, hi in late)

    def test_invalid_step(self):
        proto = MultiCastAdv(**ADV_FAST)
        spans = multicast_adv_spans(proto, 2)
        with pytest.raises(ValueError):
            phase_intervals(spans, step=3)


class TestTimetableMatchesExecution:
    """The computed spans must coincide with traced period boundaries."""

    def test_multicast_core(self):
        proto = MultiCastCore(n=16, T=0, a=2048.0)
        tr = TraceRecorder()
        r = run_broadcast(proto, 16, seed=1, trace=tr)
        spans = multicast_core_spans(proto, r.periods)
        for span, period in zip(spans, tr.periods_of("iteration")):
            assert (span.start, span.end) == (period.start_slot, period.end_slot)

    def test_multicast(self):
        proto = MultiCast(n=16, a=0.05)
        tr = TraceRecorder()
        r = run_broadcast(proto, 16, seed=2, trace=tr)
        spans = multicast_spans(proto, r.periods)
        for span, period in zip(spans, tr.periods_of("iteration")):
            assert (span.start, span.end) == (period.start_slot, period.end_slot)
            assert span.index == period.index[0]

    def test_multicast_adv(self):
        proto = MultiCastAdv(max_epochs=6, **ADV_FAST)
        tr = TraceRecorder()
        r = run_broadcast(proto, 8, seed=3, trace=tr, max_slots=80_000_000)
        spans = multicast_adv_spans(proto, 6)
        periods = tr.periods_of("phase")
        assert len(spans) == len(periods)
        for span, period in zip(spans, periods):
            assert (span.epoch, span.phase) == period.index
            assert (span.start, span.end) == (period.start_slot, period.end_slot)

    def test_multicast_c(self):
        proto = MultiCastC(16, 2, a=0.05)
        tr = TraceRecorder()
        r = run_broadcast(proto, 16, seed=4, trace=tr)
        spans = multicast_spans(proto, r.periods)
        for span, period in zip(spans, tr.periods_of("iteration")):
            assert (span.start, span.end) == (period.start_slot, period.end_slot)
