"""Tests for MultiCast (paper Fig. 2 / Theorem 5.4)."""

import math

import numpy as np
import pytest

from repro import BlanketJammer, FractionalJammer, MultiCast, run_broadcast
from repro.sim.trace import TraceRecorder

FAST = dict(a=0.05)


class TestParameters:
    def test_iteration_length_formula(self):
        p = MultiCast(n=64, a=0.01)
        lg2 = math.log2(64) ** 2
        assert p.iteration_length(6) == math.ceil(0.01 * 6 * 4**6 * lg2)
        assert p.iteration_length(7) == math.ceil(0.01 * 7 * 4**7 * lg2)

    def test_iteration_length_grows_4x(self):
        p = MultiCast(n=64, a=1.0)
        ratio = p.iteration_length(10) / p.iteration_length(9)
        assert 4.0 < ratio < 4.6  # 4 * (i+1)/i

    def test_listen_prob_halves(self):
        p = MultiCast(n=64)
        assert p.listen_prob(6) == 1 / 64
        assert p.listen_prob(10) == 1 / 1024

    def test_starts_at_iteration_six(self):
        assert MultiCast(n=16).start_iteration == 6

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            MultiCast(n=2)
        with pytest.raises(ValueError):
            MultiCast(n=8, a=-1)
        with pytest.raises(ValueError):
            MultiCast(n=8, start_iteration=0)


class TestCleanChannel:
    def test_success_first_iteration(self):
        """Theorem 5.4 endnote: with T = 0 everything ends in iteration one,
        i.e. O(lg^2 n) time."""
        r = run_broadcast(MultiCast(n=64, **FAST), 64, seed=0)
        assert r.success
        assert r.periods == 1
        assert r.extras["last_iteration"] == 6

    def test_success_across_seeds_and_sizes(self):
        for n in (16, 64):
            ok = sum(
                run_broadcast(MultiCast(n=n, **FAST), n, seed=s).success
                for s in range(6)
            )
            assert ok == 6, f"n={n}"

    def test_cost_is_about_2p_R(self):
        proto = MultiCast(n=64, **FAST)
        r = run_broadcast(proto, 64, seed=1)
        expected = 2 * proto.listen_prob(6) * proto.iteration_length(6)
        assert 0.5 * expected < r.max_cost < 2.0 * expected

    def test_no_t_input_needed(self):
        """The whole point of MultiCast vs MultiCastCore: the constructor
        takes no adversary budget."""
        import inspect

        params = inspect.signature(MultiCast.__init__).parameters
        assert "T" not in params


class TestUnderJamming:
    def test_survives_heavy_blanket(self):
        adv = BlanketJammer(budget=1_000_000, channels=0.9, placement="random", seed=1)
        r = run_broadcast(MultiCast(n=64, **FAST), 64, adversary=adv, seed=2)
        assert r.success

    def test_iterations_extend_until_eve_broke(self):
        """Eve blocks halting only while she can pay >= ~20% of channels for
        ~20% of an iteration; growing iterations bankrupt her (Theorem 5.4
        proof structure: last blocked iteration l has cost >= 0.02 n R_l)."""
        proto = MultiCast(n=64, **FAST)
        adv = BlanketJammer(budget=2_000_000, channels=0.9, placement="random", seed=2)
        tr = TraceRecorder()
        r = run_broadcast(proto, 64, adversary=adv, seed=3, trace=tr)
        assert r.success
        assert r.periods >= 2  # budget forces at least one extra iteration
        iters = tr.periods_of("iteration")
        assert iters[0].active_after == 64  # iteration 6 fully jammed

    def test_sqrt_energy_vs_naive(self):
        """Under a budget T, per-node cost must be far below T (the paper's
        headline: O~(sqrt(T/n)))."""
        T = 2_000_000
        adv = BlanketJammer(budget=T, channels=0.9, placement="random", seed=4)
        r = run_broadcast(MultiCast(n=64, **FAST), 64, adversary=adv, seed=5)
        assert r.success
        assert r.max_cost < T / 100  # hugely sublinear
        assert r.adversary_spend == T

    def test_fractional_jammer_cannot_stop_broadcast(self):
        """Lemma 5.1 regime: 90% of channels for 90% of slots still lets the
        epidemic through."""
        adv = FractionalJammer(budget=600_000, slot_fraction=0.9, channel_fraction=0.9, seed=6)
        r = run_broadcast(MultiCast(n=64, **FAST), 64, adversary=adv, seed=7)
        assert r.success

    def test_incomplete_when_capped(self):
        proto = MultiCast(n=64, **FAST, max_iterations=1)
        adv = BlanketJammer(budget=3_000_000, channels=0.9, placement="random", seed=8)
        r = run_broadcast(proto, 64, adversary=adv, seed=9)
        assert not r.completed
        assert not r.success


class TestDeterminism:
    def test_same_seed_same_result(self):
        adv1 = BlanketJammer(budget=300_000, channels=0.5, placement="random", seed=11)
        adv2 = BlanketJammer(budget=300_000, channels=0.5, placement="random", seed=11)
        r1 = run_broadcast(MultiCast(n=32, **FAST), 32, adversary=adv1, seed=12)
        r2 = run_broadcast(MultiCast(n=32, **FAST), 32, adversary=adv2, seed=12)
        assert r1.slots == r2.slots
        np.testing.assert_array_equal(r1.node_energy, r2.node_energy)
        np.testing.assert_array_equal(r1.informed_slot, r2.informed_slot)
        np.testing.assert_array_equal(r1.halt_slot, r2.halt_slot)

    def test_different_seeds_differ(self):
        r1 = run_broadcast(MultiCast(n=32, **FAST), 32, seed=13)
        r2 = run_broadcast(MultiCast(n=32, **FAST), 32, seed=14)
        assert (r1.node_energy != r2.node_energy).any()
