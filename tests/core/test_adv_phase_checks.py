"""End-of-phase threshold boundaries, at exact equality, on every runtime.

The Fig. 4 checks compare integer counters against fractional thresholds
(N_m >= 1.5Rp², N_s >= 0.9Rp, N'_m <= 2.2Rp², N_n <= Rp/D) — an off-by-one
here (``>`` for ``>=``, ``<`` for ``<=``) would silently change halt
behaviour while every statistical test keeps passing.  These tests pin the
*inclusive* semantics at thresholds chosen to be exactly representable
integers, on all three implementations:

* :func:`repro.core.multicast_adv.apply_phase_checks` invoked the scalar
  runner's way (``(n,)`` arrays, int clock);
* the same function invoked the lane-batched runner's way (``(L, n)``
  arrays, per-lane clock column) — one implementation, two shapes, so the
  paths cannot diverge;
* the pseudocode-literal :class:`repro.core.reference.ScalarMultiCastAdvNode`
  oracle, which carries its own transcription of the checks.

A stub protocol pins ``R = 40, p = 0.5`` so every threshold is an exact
binary float: 1.5Rp² = 15, 0.9Rp = 18, 2.2Rp² = 22, and Rp/D = 5 with
D = 4.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multicast_adv import (
    STATUS_HALT,
    STATUS_HELPER,
    STATUS_IN,
    STATUS_UN,
    MultiCastAdv,
    apply_phase_checks,
)
from repro.core.reference import ScalarMultiCastAdvNode
from repro.sim.rng import RandomFabric

R, P = 40, 0.5
RP, RP2 = R * P, R * P * P  # 20.0, 10.0
HELPER_MSG = 15  # 1.5 * Rp²
HELPER_SILENCE = 18  # 0.9 * Rp
BEACON_CEIL = 22  # 2.2 * Rp²
HALT_NOISE = 5  # Rp / 4
EPOCH, PHASE = 5, 2


class StubProto(MultiCastAdv):
    """Real constants and check plumbing, pinned phase parameters."""

    def __init__(self, **kw):
        kw.setdefault("alpha", 0.2)
        kw.setdefault("halt_noise_divisor", 4.0)
        kw.setdefault("helper_wait", 2.0)
        super().__init__(**kw)

    def phase_length(self, i, j):
        return R

    def participation_prob(self, i, j):
        return P


def run_checks(
    proto,
    status,
    n_m,
    n_mb,
    n_noise,
    n_silence,
    *,
    helper_epoch=-1,
    helper_phase=-1,
    lanes=None,
    i=EPOCH,
    j=PHASE,
):
    """Drive apply_phase_checks the scalar way (lanes=None) or the batched
    way (lanes=L replicates the single-node scenario across L lanes), on a
    one-node network; returns (status, helper_epoch, helper_phase) of the
    node (lane 0 when batched; all lanes are asserted identical)."""
    shape = (1,) if lanes is None else (lanes, 1)
    arrays = dict(
        status=np.full(shape, status, dtype=np.int8),
        n_m=np.full(shape, n_m, dtype=np.int64),
        n_mb=np.full(shape, n_mb, dtype=np.int64),
        n_noise=np.full(shape, n_noise, dtype=np.int64),
        n_silence=np.full(shape, n_silence, dtype=np.int64),
        informed_slot=np.full(shape, -1, dtype=np.int64),
        halt_slot=np.full(shape, -1, dtype=np.int64),
        helper_epoch=np.full(shape, helper_epoch, dtype=np.int64),
        helper_phase=np.full(shape, helper_phase, dtype=np.int64),
    )
    clock = 1234 if lanes is None else np.full((lanes, 1), 1234, dtype=np.int64)
    apply_phase_checks(
        proto, i, j, active=np.ones(shape, dtype=bool), clock=clock, **arrays
    )
    for arr in arrays.values():
        assert (arr == arr.reshape(-1)[0]).all(), "lanes diverged"
    flat = {k: int(v.reshape(-1)[0]) for k, v in arrays.items()}
    return flat["status"], flat["helper_epoch"], flat["helper_phase"]


def run_node_checks(
    proto,
    status,
    n_m,
    n_mb,
    n_noise,
    n_silence,
    *,
    helper_epoch=-1,
    helper_phase=-1,
    i=EPOCH,
    j=PHASE,
):
    """The same scenario through the Fig. 4 reference node's own transcription
    of the checks (end of step two); returns the node's resulting status."""
    node = ScalarMultiCastAdvNode(
        proto, is_source=False, rng=RandomFabric(0).generator("node")
    )
    node.status = status
    node.i = i
    node.phase_seq = list(proto.phases_of_epoch(i))
    node.phase_idx = node.phase_seq.index(j)
    node.step = 2
    node.slot_in_step = R - 1  # _advance lands on the end-of-step-two checks
    node.n_m, node.n_mb, node.n_n, node.n_s = n_m, n_mb, n_noise, n_silence
    if helper_epoch >= 0:
        node.i_hat, node.j_hat = helper_epoch, helper_phase
    node._advance(slot=9999)
    return node.status


def everywhere(proto, *args, **kwargs):
    """Run one scenario through all three paths; statuses must agree."""
    scalar = run_checks(proto, *args, **kwargs)
    batched = run_checks(proto, *args, lanes=3, **kwargs)
    assert scalar == batched
    node_status = run_node_checks(proto, *args, **kwargs)
    assert node_status == scalar[0]
    return scalar


class TestHelperBoundary:
    def test_exact_equality_promotes(self):
        """N_m == 1.5Rp², N_s == 0.9Rp, N'_m == 2.2Rp² — all inclusive."""
        status, hep, hph = everywhere(
            StubProto(), STATUS_IN, HELPER_MSG, BEACON_CEIL, 0, HELPER_SILENCE
        )
        assert status == STATUS_HELPER
        assert (hep, hph) == (EPOCH, PHASE)

    def test_one_below_msg_threshold_fails(self):
        status, _, _ = everywhere(
            StubProto(), STATUS_IN, HELPER_MSG - 1, 0, 0, HELPER_SILENCE
        )
        assert status == STATUS_IN

    def test_one_below_silence_threshold_fails(self):
        status, _, _ = everywhere(
            StubProto(), STATUS_IN, HELPER_MSG, 0, 0, HELPER_SILENCE - 1
        )
        assert status == STATUS_IN

    def test_one_above_beacon_ceiling_fails(self):
        status, _, _ = everywhere(
            StubProto(), STATUS_IN, HELPER_MSG, BEACON_CEIL + 1, 0, HELPER_SILENCE
        )
        assert status == STATUS_IN

    def test_beacon_ceiling_dropped_at_cutoff_phase(self):
        """Fig. 6: at the boundary phase j = lg C the N'_m ceiling is gone."""
        proto = StubProto(channel_cap=2 **PHASE)  # max_phase == PHASE
        status, _, _ = everywhere(
            proto, STATUS_IN, HELPER_MSG, BEACON_CEIL + 999, 0, HELPER_SILENCE
        )
        assert status == STATUS_HELPER

    def test_informing_threshold_is_one_message(self):
        """Line 21: un with N_m == 1 informs; N_m == 0 does not."""
        status, _, _ = everywhere(StubProto(), STATUS_UN, 1, 0, 0, 0)
        assert status == STATUS_IN
        status, _, _ = everywhere(StubProto(), STATUS_UN, 0, 0, 0, 0)
        assert status == STATUS_UN


class TestHaltBoundary:
    def halt_case(self, **over):
        kw = dict(
            status=STATUS_HELPER,
            n_m=0,
            n_mb=0,
            n_noise=HALT_NOISE,
            n_silence=0,
            helper_epoch=EPOCH - 2,  # exactly helper_wait=2 epochs ago
            helper_phase=PHASE,
        )
        kw.update(over)
        args = (kw.pop("status"), kw.pop("n_m"), kw.pop("n_mb"),
                kw.pop("n_noise"), kw.pop("n_silence"))
        return everywhere(StubProto(), *args, **kw)

    def test_exact_noise_equality_halts(self):
        """N_n == Rp/D and i - î == helper_wait — both inclusive."""
        status, _, _ = self.halt_case()
        assert status == STATUS_HALT

    def test_one_above_noise_threshold_stays(self):
        status, _, _ = self.halt_case(n_noise=HALT_NOISE + 1)
        assert status == STATUS_HELPER

    def test_wait_one_epoch_short_stays(self):
        status, _, _ = self.halt_case(helper_epoch=EPOCH - 1)
        assert status == STATUS_HELPER

    def test_wrong_phase_stays(self):
        status, _, _ = self.halt_case(helper_phase=PHASE - 1)
        assert status == STATUS_HELPER

    def test_helper_promoted_this_phase_cannot_halt(self):
        """A node promoted to helper this very phase fails the wait (even
        with perfect noise), matching the sequential pseudocode."""
        status, hep, hph = everywhere(
            StubProto(),
            STATUS_IN,
            HELPER_MSG,
            BEACON_CEIL,
            0,  # noise 0 <= Rp/D: would halt if the wait were ignored
            HELPER_SILENCE,
        )
        assert status == STATUS_HELPER
        assert (hep, hph) == (EPOCH, PHASE)


@settings(max_examples=200, deadline=None)
@given(
    status=st.sampled_from([int(STATUS_UN), int(STATUS_IN), int(STATUS_HELPER)]),
    n_m=st.integers(0, 2 * HELPER_MSG),
    n_mb=st.integers(0, 2 * BEACON_CEIL),
    n_noise=st.integers(0, 2 * HALT_NOISE),
    n_silence=st.integers(0, 2 * HELPER_SILENCE),
    wait_ago=st.integers(0, 4),
    helper_phase=st.sampled_from([PHASE - 1, PHASE]),
    capped=st.booleans(),
)
def test_all_paths_agree_near_the_boundaries(
    status, n_m, n_mb, n_noise, n_silence, wait_ago, helper_phase, capped
):
    """Property: for any counters straddling the thresholds, the shared
    vectorized checks (both shapes) and the reference node transcription
    reach the same status and helper record."""
    proto = StubProto(channel_cap=2 **PHASE) if capped else StubProto()
    kwargs = {}
    if status == int(STATUS_HELPER):
        kwargs = dict(helper_epoch=EPOCH - wait_ago, helper_phase=helper_phase)
    scalar = run_checks(proto, np.int8(status), n_m, n_mb, n_noise, n_silence, **kwargs)
    batched = run_checks(
        proto, np.int8(status), n_m, n_mb, n_noise, n_silence, lanes=4, **kwargs
    )
    node = run_node_checks(
        proto, np.int8(status), n_m, n_mb, n_noise, n_silence, **kwargs
    )
    assert scalar == batched
    assert node == scalar[0]
