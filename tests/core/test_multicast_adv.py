"""Tests for MultiCastAdv (paper Fig. 4 / Theorem 6.10)."""

import math

import numpy as np
import pytest

from repro import BlanketJammer, MultiCastAdv, run_broadcast
from repro.core.multicast_adv import STATUS_HALT, STATUS_HELPER, STATUS_IN, STATUS_UN
from repro.sim.trace import TraceRecorder

# Laptop-scale tuning (see DESIGN.md 2.2): structural constants untouched,
# scale/width knobs reduced so runs finish in seconds.
FAST = dict(alpha=0.24, b=0.01, halt_noise_divisor=50.0, helper_wait=4.0)


def fast_proto(**over):
    kw = dict(FAST)
    kw.update(over)
    return MultiCastAdv(**kw)


class TestParameters:
    def test_phase_length_formula(self):
        p = MultiCastAdv(alpha=0.2, b=2.0)
        assert p.phase_length(10, 4) == math.ceil(2.0 * 2 ** (2 * 0.2 * 6) * 1000)

    def test_participation_prob_formula(self):
        p = MultiCastAdv(alpha=0.2)
        assert p.participation_prob(10, 4) == 2 ** (-0.2 * 6) / 2
        assert p.participation_prob(5, 5) == 0.5  # i == j

    def test_phase_channels(self):
        p = MultiCastAdv()
        assert p.phase_channels(0) == 1
        assert p.phase_channels(10) == 1024

    def test_phases_of_epoch_unlimited(self):
        p = MultiCastAdv()
        assert list(p.phases_of_epoch(4)) == [0, 1, 2, 3]

    def test_phases_of_epoch_with_cap(self):
        p = MultiCastAdv(channel_cap=8)  # lg C = 3
        assert list(p.phases_of_epoch(10)) == [0, 1, 2, 3]
        assert list(p.phases_of_epoch(2)) == [0, 1]

    def test_channel_cap_rounds_down_to_power_of_two(self):
        p = MultiCastAdv(channel_cap=12)
        assert p.max_phase == 3  # floor(lg 12)

    def test_helper_wait_default_is_two_over_alpha(self):
        p = MultiCastAdv(alpha=0.2)
        assert p.helper_wait == 10.0

    def test_alpha_range_enforced(self):
        with pytest.raises(ValueError):
            MultiCastAdv(alpha=0.25)
        with pytest.raises(ValueError):
            MultiCastAdv(alpha=0.0)

    def test_invalid_knobs(self):
        with pytest.raises(ValueError):
            MultiCastAdv(b=0)
        with pytest.raises(ValueError):
            MultiCastAdv(channel_cap=0)
        with pytest.raises(ValueError):
            MultiCastAdv(halt_noise_divisor=0)
        with pytest.raises(ValueError):
            MultiCastAdv(helper_wait=-1)

    def test_needs_neither_n_nor_t(self):
        import inspect

        params = inspect.signature(MultiCastAdv.__init__).parameters
        assert "n" not in params and "T" not in params


class TestCleanChannel:
    def test_success(self):
        r = run_broadcast(fast_proto(), 16, seed=1, max_slots=80_000_000)
        assert r.success

    def test_success_across_seeds(self):
        ok = 0
        for s in range(3):
            r = run_broadcast(fast_proto(), 16, seed=s, max_slots=80_000_000)
            ok += r.success
        assert ok == 3

    def test_status_lattice_in_result(self):
        r = run_broadcast(fast_proto(), 16, seed=1, max_slots=80_000_000)
        status = r.extras["final_status"]
        assert (status == STATUS_HALT).all()
        assert (r.extras["helper_epoch"] >= 0).all()

    def test_cost_far_below_time(self):
        """Participation probability is < 1, so cost << active slots."""
        r = run_broadcast(fast_proto(), 16, seed=2, max_slots=80_000_000)
        assert r.max_cost < r.slots / 5


class TestTwoStageTermination:
    def test_all_informed_before_first_helper(self):
        """Lemma 6.4's guarantee: when the first helper appears, everyone
        already knows m."""
        tr = TraceRecorder()
        r = run_broadcast(fast_proto(), 16, seed=3, trace=tr, max_slots=80_000_000)
        assert r.success
        first_helper_slot = None
        for ph in tr.periods_of("phase"):
            if ph.detail["new_helpers"] > 0:
                first_helper_slot = ph.end_slot
                break
        assert first_helper_slot is not None
        assert (r.informed_slot <= first_helper_slot).all()

    def test_halting_does_not_strand_others(self):
        """Lemma 6.5's functional consequence: early terminations must not
        prevent the remaining nodes from eventually halting (fewer active
        nodes -> less noise).  The paper's strict all-helpers-before-first-
        halt ordering needs the full-size constants (Rp² concentration);
        at the fast test scale we assert the part that matters — everyone
        halts, informed — plus a majority version of the ordering."""
        tr = TraceRecorder()
        r = run_broadcast(fast_proto(), 16, seed=4, trace=tr, max_slots=80_000_000)
        assert r.success  # nobody stranded, nobody uninformed
        first_halt_epoch = None
        for ph in tr.periods_of("phase"):
            if ph.detail["new_halts"] > 0:
                first_halt_epoch = ph.index[0]
                break
        assert first_halt_epoch is not None
        helpers_by_then = int((r.extras["helper_epoch"] <= first_halt_epoch).sum())
        assert helpers_by_then >= 8  # majority already progressed

    def test_helper_wait_respected(self):
        """A node may only halt >= helper_wait epochs after becoming helper,
        and only in its recorded phase j-hat."""
        tr = TraceRecorder()
        r = run_broadcast(fast_proto(), 16, seed=5, trace=tr, max_slots=80_000_000)
        assert r.success
        helper_epoch = r.extras["helper_epoch"]
        # reconstruct per-node halt epochs from the trace
        halt_epoch = np.full(16, -1)
        active_prev = None
        for ph in tr.periods_of("phase"):
            pass  # per-node halt epochs not in trace; use halt_slot mapping below
        spans = {(p.index[0], p.index[1]): (p.start_slot, p.end_slot) for p in tr.periods_of("phase")}
        for u in range(16):
            hs = r.halt_slot[u]
            epochs = [i for (i, j), (a, b) in spans.items() if a < hs <= b]
            assert epochs, f"halt slot {hs} not at a phase boundary"
            assert epochs[0] - helper_epoch[u] >= FAST["helper_wait"]

    def test_halt_phase_matches_helper_phase(self):
        tr = TraceRecorder()
        r = run_broadcast(fast_proto(), 16, seed=6, trace=tr, max_slots=80_000_000)
        assert r.success
        helper_phase = r.extras["helper_phase"]
        spans = {(p.index[0], p.index[1]): (p.start_slot, p.end_slot) for p in tr.periods_of("phase")}
        for u in range(16):
            hs = r.halt_slot[u]
            js = [j for (i, j), (a, b) in spans.items() if a < hs <= b]
            assert js[0] == helper_phase[u]


class TestUnderJamming:
    def test_survives_blanket_jam(self):
        """Correctness under a strong blanket jammer."""
        adv = BlanketJammer(budget=100_000, channels=0.9, placement="random", seed=1)
        r = run_broadcast(fast_proto(), 16, adversary=adv, seed=7, max_slots=80_000_000)
        assert r.success

    def test_cost_grows_sublinearly_in_budget(self):
        """Definition 3.1: max cost <= rho(T) + tau with rho in o(T).  The
        jam-free run measures tau; quadrupling T must grow the extra cost by
        well under 4x (the theorem says ~sqrt)."""
        r0 = run_broadcast(fast_proto(), 16, seed=7, max_slots=120_000_000)
        extras = []
        for T in (500_000, 2_000_000):
            adv = BlanketJammer(budget=T, channels=0.9, placement="random", seed=1)
            r = run_broadcast(fast_proto(), 16, adversary=adv, seed=7, max_slots=120_000_000)
            assert r.success
            extras.append(max(1, r.max_cost - r0.max_cost))
        assert extras[1] < 3.0 * extras[0]

    def test_budget_delays_termination(self):
        r0 = run_broadcast(fast_proto(), 16, seed=8, max_slots=120_000_000)
        adv = BlanketJammer(budget=3_000_000, channels=1.0, placement="prefix", seed=2)
        r1 = run_broadcast(fast_proto(), 16, adversary=adv, seed=8, max_slots=120_000_000)
        assert r0.success and r1.success
        assert r1.slots > r0.slots


class TestChannelCap:
    """Fig. 6 behaviour through the channel_cap knob (see also test_limited)."""

    def test_phase_cutoff_changes_name(self):
        assert MultiCastAdv(channel_cap=8).name == "MultiCastAdv(C=8)"

    def test_capped_run_success(self):
        proto = fast_proto(channel_cap=4)
        r = run_broadcast(proto, 16, seed=9, max_slots=120_000_000)
        assert r.success
        # helpers must have been recorded at phases j <= lg C
        assert (r.extras["helper_phase"] <= 2).all()
