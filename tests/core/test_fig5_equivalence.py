"""Exactness of the Fig. 5 round simulation.

The paper's claim about ``MultiCast(C)`` is that it *simulates* ``MultiCast``
perfectly: virtual channel k = q·C + c maps to physical (sub-slot q, channel
c), and a virtual channel is jammed iff its physical image is.  Because our
two implementations share the node coin stream, we can test this as an exact
equivalence: run ``MultiCastC`` against a physical jam schedule, and plain
``MultiCast`` against the *folded* schedule — every virtual-level observable
(energy, halt rounds, informedness) must match exactly, with physical time
scaled by n/(2C).
"""

import numpy as np
import pytest

from repro import MultiCast, MultiCastC, ScheduleJammer, run_broadcast
from repro.sim.rng import RandomFabric

N = 16
A = 0.05


def physical_schedule(phys_slots, C, seed):
    rng = RandomFabric(seed).generator("fig5")
    return rng.random((phys_slots, C)) < 0.15


@pytest.mark.parametrize("C", [1, 2, 4])
def test_physical_and_virtual_runs_agree_exactly(C):
    S = (N // 2) // C
    phys = physical_schedule(600_000, C, seed=9)
    # fold to virtual: physical slot r*S + q, channel c -> virtual slot r,
    # channel q*C + c  (row-major reshape)
    virt = phys[: (phys.shape[0] // S) * S].reshape(-1, S * C)

    r_phys = run_broadcast(
        MultiCastC(N, C, a=A), N,
        adversary=ScheduleJammer(budget=None, schedule=phys), seed=31,
    )
    r_virt = run_broadcast(
        MultiCast(N, a=A), N,
        adversary=ScheduleJammer(budget=None, schedule=virt), seed=31,
    )

    # the simulation claim is *identity of outcomes*, success or not
    assert r_phys.success == r_virt.success
    # physical time is exactly S times the virtual time
    assert r_phys.slots == S * r_virt.slots
    # identical virtual behaviour: energy, informedness, halting structure
    np.testing.assert_array_equal(r_phys.node_energy, r_virt.node_energy)
    np.testing.assert_array_equal(r_phys.halt_slot, S * r_virt.halt_slot)
    np.testing.assert_array_equal(
        r_phys.informed_slot >= 0, r_virt.informed_slot >= 0
    )
    # adversary spend differs only by the schedule tail truncation
    assert r_phys.adversary_spend == phys[: r_phys.slots].sum()
    assert r_virt.adversary_spend == virt[: r_virt.slots].sum()


def test_informed_slots_scale_with_rounds():
    C = 2
    S = (N // 2) // C
    phys = physical_schedule(400_000, C, seed=10)
    virt = phys.reshape(-1, S * C)
    r_phys = run_broadcast(
        MultiCastC(N, C, a=A), N,
        adversary=ScheduleJammer(budget=None, schedule=phys), seed=32,
    )
    r_virt = run_broadcast(
        MultiCast(N, a=A), N,
        adversary=ScheduleJammer(budget=None, schedule=virt), seed=32,
    )
    # each virtual informing event lands in the same round
    informed = r_virt.informed_slot >= 0
    np.testing.assert_array_equal(
        r_phys.informed_slot[informed] // S, r_virt.informed_slot[informed]
    )
