"""Unit tests for the shared block runner (action rules + event loop)."""

import numpy as np
import pytest

from repro.core.runner import (
    adv_step_one_actions,
    adv_step_two_actions,
    count_feedback,
    shared_coin_actions,
    spread_block,
)
from repro.sim.channel import (
    ACT_IDLE,
    ACT_LISTEN,
    ACT_SEND_BEACON,
    ACT_SEND_MSG,
    FB_BEACON,
    FB_MSG,
    FB_NOISE,
    FB_NONE,
    FB_SILENCE,
)
from repro.sim.jam import JamBlock
from repro.sim.trace import TraceRecorder


def coins_grid(*rows):
    return np.array(rows, dtype=np.float64)


class TestSharedCoinActions:
    """Figs. 1/2/5 rule: coin<p -> listen; p<=coin<2p -> broadcast iff informed."""

    def test_mapping(self):
        build = shared_coin_actions(0.25)
        coins = coins_grid([0.1, 0.1, 0.3, 0.3, 0.6])
        informed = np.array([True, False, True, False, True])
        active = np.ones(5, dtype=bool)
        acts = build(coins, informed, active)
        np.testing.assert_array_equal(
            acts[0], [ACT_LISTEN, ACT_LISTEN, ACT_SEND_MSG, ACT_IDLE, ACT_IDLE]
        )

    def test_inactive_always_idle(self):
        build = shared_coin_actions(0.25)
        coins = coins_grid([0.1, 0.3])
        acts = build(coins, np.array([True, True]), np.array([False, False]))
        assert (acts == ACT_IDLE).all()

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            shared_coin_actions(0.6)
        with pytest.raises(ValueError):
            shared_coin_actions(0.0)

    def test_empirical_probabilities(self, rng):
        p = 1 / 8
        build = shared_coin_actions(p)
        coins = rng.random((20_000, 1))
        informed = np.array([True])
        acts = build(coins, informed, np.array([True]))
        listen_rate = (acts == ACT_LISTEN).mean()
        send_rate = (acts == ACT_SEND_MSG).mean()
        assert abs(listen_rate - p) < 0.01
        assert abs(send_rate - p) < 0.01


class TestAdvStepOneActions:
    """Fig. 4 step I: coin<p -> listen if un, broadcast m otherwise."""

    def test_mapping(self):
        build = adv_step_one_actions(0.5)
        coins = coins_grid([0.2, 0.2, 0.9, 0.9])
        informed = np.array([False, True, False, True])
        acts = build(coins, informed, np.ones(4, dtype=bool))
        np.testing.assert_array_equal(
            acts[0], [ACT_LISTEN, ACT_SEND_MSG, ACT_IDLE, ACT_IDLE]
        )

    def test_informed_nodes_never_listen_in_step_one(self, rng):
        build = adv_step_one_actions(0.4)
        coins = rng.random((500, 3))
        informed = np.array([True, True, True])
        acts = build(coins, informed, np.ones(3, dtype=bool))
        assert not (acts == ACT_LISTEN).any()


class TestAdvStepTwoActions:
    """Fig. 4 step II: listen w.p. p, broadcast w.p. p; payload by status."""

    def test_mapping(self):
        build = adv_step_two_actions(0.25)
        coins = coins_grid([0.1, 0.1, 0.3, 0.3])
        informed = np.array([False, True, False, True])
        acts = build(coins, informed, np.ones(4, dtype=bool))
        np.testing.assert_array_equal(
            acts[0], [ACT_LISTEN, ACT_LISTEN, ACT_SEND_BEACON, ACT_SEND_MSG]
        )

    def test_uninformed_send_beacons_only(self, rng):
        build = adv_step_two_actions(0.3)
        coins = rng.random((500, 2))
        informed = np.array([False, False])
        acts = build(coins, informed, np.ones(2, dtype=bool))
        assert not (acts == ACT_SEND_MSG).any()
        assert (acts == ACT_SEND_BEACON).any()


class TestSpreadBlock:
    """Event-loop semantics: a node informed at slot t broadcasts from t+1."""

    def _one_channel_setup(self, K, n):
        channels = np.zeros((K, n), dtype=np.int64)
        jam = JamBlock.empty(K, 1)
        return channels, jam

    def test_infection_chain(self):
        """Node 0 informs node 1 at slot 0; node 1 then informs node 2 at
        slot 1 (which requires the tail re-resolution to kick in)."""
        K, n = 2, 3
        channels, jam = self._one_channel_setup(K, n)
        p = 0.25
        # slot 0: node0 sends (coin in [p, 2p)), node1 listens (coin < p), node2 idle
        # slot 1: node0 idle, node1 sends, node2 listens
        coins = coins_grid(
            [0.30, 0.10, 0.90],
            [0.90, 0.30, 0.10],
        )
        informed = np.array([True, False, False])
        active = np.ones(n, dtype=bool)
        informed_slot = np.full(n, -1, dtype=np.int64)
        out = spread_block(
            channels, coins, jam, informed, active,
            shared_coin_actions(p), slot0=100, informed_slot=informed_slot,
        )
        assert out.informed.all()
        assert informed_slot[1] == 100 and informed_slot[2] == 101
        # node 1's slot-1 action must be re-mapped to a broadcast
        assert out.actions[1, 1] == ACT_SEND_MSG
        assert out.feedback[1, 2] == FB_MSG

    def test_without_event_node_stays_uninformed(self):
        K, n = 2, 2
        channels, jam = self._one_channel_setup(K, n)
        coins = coins_grid([0.9, 0.9], [0.9, 0.9])  # everyone idle
        out = spread_block(
            channels, coins, jam,
            np.array([True, False]), np.ones(n, dtype=bool),
            shared_coin_actions(0.25),
        )
        np.testing.assert_array_equal(out.informed, [True, False])

    def test_jam_blocks_learning(self):
        K, n = 1, 2
        channels = np.zeros((K, n), dtype=np.int64)
        jam = JamBlock.from_dense(np.array([[True]]))
        coins = coins_grid([0.30, 0.10])  # node0 sends, node1 listens
        out = spread_block(
            channels, coins, jam,
            np.array([True, False]), np.ones(n, dtype=bool),
            shared_coin_actions(0.25),
        )
        np.testing.assert_array_equal(out.informed, [True, False])
        assert out.feedback[0, 1] == FB_NOISE

    def test_learn_false_freezes_status(self):
        """Fig. 4 step II: hearing m mid-step must not flip the status."""
        K, n = 2, 2
        channels, jam = self._one_channel_setup(K, n)
        coins = coins_grid([0.30, 0.10], [0.30, 0.10])
        out = spread_block(
            channels, coins, jam,
            np.array([True, False]), np.ones(n, dtype=bool),
            adv_step_two_actions(0.25), learn=False,
        )
        np.testing.assert_array_equal(out.informed, [True, False])
        # but the listener did hear m both slots (counted for N_m)
        assert (out.feedback[:, 1] == FB_MSG).all()

    def test_simultaneous_inform_on_different_channels(self):
        """Two uninformed nodes hearing m in the same slot both flip."""
        K, n = 1, 4
        channels = np.array([[0, 1, 0, 1]], dtype=np.int64)
        jam = JamBlock.empty(K, 2)
        coins = coins_grid([0.30, 0.30, 0.10, 0.10])  # 0,1 send; 2,3 listen
        out = spread_block(
            channels, coins, jam,
            np.array([True, True, False, False]), np.ones(n, dtype=bool),
            shared_coin_actions(0.25),
        )
        assert out.informed.all()

    def test_trace_growth_events(self):
        K, n = 2, 3
        channels, jam = self._one_channel_setup(K, n)
        coins = coins_grid([0.30, 0.10, 0.90], [0.90, 0.30, 0.10])
        tr = TraceRecorder()
        spread_block(
            channels, coins, jam,
            np.array([True, False, False]), np.ones(n, dtype=bool),
            shared_coin_actions(0.25), slot0=0, trace=tr,
        )
        slots, counts = tr.informed_curve()
        np.testing.assert_array_equal(slots, [0, 1])
        np.testing.assert_array_equal(counts, [2, 3])

    def test_slot_scale_applied_to_bookkeeping(self):
        K, n = 2, 2
        channels, jam = self._one_channel_setup(K, n)
        coins = coins_grid([0.9, 0.9], [0.30, 0.10])
        informed_slot = np.full(n, -1, dtype=np.int64)
        spread_block(
            channels, coins, jam,
            np.array([True, False]), np.ones(n, dtype=bool),
            shared_coin_actions(0.25),
            slot0=1000, slot_scale=8, informed_slot=informed_slot,
        )
        assert informed_slot[1] == 1000 + 1 * 8

    def test_input_statuses_not_mutated(self):
        K, n = 1, 2
        channels, jam = self._one_channel_setup(K, n)
        coins = coins_grid([0.30, 0.10])
        informed = np.array([True, False])
        spread_block(
            channels, coins, jam, informed, np.ones(n, dtype=bool),
            shared_coin_actions(0.25),
        )
        np.testing.assert_array_equal(informed, [True, False])


class TestCountFeedback:
    def test_counters(self):
        fb = np.array(
            [
                [FB_MSG, FB_NOISE, FB_NONE],
                [FB_BEACON, FB_SILENCE, FB_NONE],
                [FB_MSG, FB_NOISE, FB_SILENCE],
            ],
            dtype=np.int8,
        )
        c = count_feedback(fb)
        np.testing.assert_array_equal(c["msg"], [2, 0, 0])
        np.testing.assert_array_equal(c["msg_or_beacon"], [3, 0, 0])
        np.testing.assert_array_equal(c["noise"], [0, 2, 0])
        np.testing.assert_array_equal(c["silence"], [0, 1, 1])


class TestSpreadBlockFastPaths:
    """The no-learner fast path must shortcut the event machinery without
    changing a single output value."""

    def _random_case(self, rng, K=32, n=8, C=4):
        channels = rng.integers(0, C, size=(K, n)).astype(np.int64)
        coins = rng.random((K, n))
        jam = JamBlock.from_dense(rng.random((K, C)) < 0.2)
        return channels, coins, jam

    def test_all_informed_equals_frozen_statuses(self, rng):
        channels, coins, jam = self._random_case(rng)
        n = coins.shape[1]
        informed = np.ones(n, dtype=bool)
        active = np.ones(n, dtype=bool)
        build = shared_coin_actions(0.25)
        fast = spread_block(channels, coins, jam, informed, active, build)
        frozen = spread_block(
            channels, coins, jam, informed, active, build, learn=False
        )
        np.testing.assert_array_equal(fast.actions, frozen.actions)
        np.testing.assert_array_equal(fast.feedback, frozen.feedback)
        np.testing.assert_array_equal(fast.informed, frozen.informed)

    def test_no_active_uninformed_short_circuits(self, rng):
        """Uninformed-but-halted nodes cannot learn; still one resolve."""
        channels, coins, jam = self._random_case(rng)
        n = coins.shape[1]
        informed = np.zeros(n, dtype=bool)
        informed[0] = True
        active = informed.copy()  # every uninformed node already halted
        out = spread_block(
            channels, coins, jam, informed, active, shared_coin_actions(0.25)
        )
        np.testing.assert_array_equal(out.informed, informed)


from repro.core.runner import spread_block_batch  # noqa: E402


class TestSpreadBlockBatch:
    """Lane-batched spreading must equal per-lane scalar spreading exactly,
    events and all."""

    def _batch(self, rng, B=4, K=48, n=10, C=2):
        channels = rng.integers(0, C, size=(B, K, n)).astype(np.int64)
        coins = rng.random((B, K, n))
        masks = rng.random((B, K, C)) < 0.15
        return channels, coins, masks

    def test_matches_scalar_per_lane_with_events(self, rng):
        channels, coins, masks = self._batch(rng)
        B, K, n = coins.shape
        build = shared_coin_actions(0.5)  # dense actions -> many events
        informed = np.zeros((B, n), dtype=bool)
        informed[:, 0] = True
        active = np.ones((B, n), dtype=bool)
        informed_slot = np.full((B, n), -1, dtype=np.int64)
        informed_slot[:, 0] = 0
        slot0 = np.arange(B, dtype=np.int64) * 1_000
        stacked = JamBlock.stack([JamBlock.from_dense(m) for m in masks])
        out = spread_block_batch(
            channels, coins, stacked, informed, active, build,
            slot0=slot0, informed_slot=informed_slot,
        )
        any_events = False
        for b in range(B):
            ref_informed = np.zeros(n, dtype=bool)
            ref_informed[0] = True
            ref_slot = np.full(n, -1, dtype=np.int64)
            ref_slot[0] = 0
            ref = spread_block(
                channels[b], coins[b], masks[b], ref_informed,
                active[b], build, slot0=int(slot0[b]), informed_slot=ref_slot,
            )
            np.testing.assert_array_equal(out.actions[b], ref.actions)
            np.testing.assert_array_equal(out.feedback[b], ref.feedback)
            np.testing.assert_array_equal(out.informed[b], ref.informed)
            np.testing.assert_array_equal(informed_slot[b], ref_slot)
            any_events |= ref.informed.sum() > 1
        assert any_events, "test case never produced an informing event"

    def test_entry_statuses_not_mutated(self, rng):
        channels, coins, masks = self._batch(rng, B=2)
        B, K, n = coins.shape
        informed = np.zeros((B, n), dtype=bool)
        informed[:, 0] = True
        before = informed.copy()
        spread_block_batch(
            channels, coins, masks, informed, np.ones((B, n), dtype=bool),
            shared_coin_actions(0.5),
        )
        np.testing.assert_array_equal(informed, before)

    def test_jam_row_count_validated(self, rng):
        channels, coins, masks = self._batch(rng, B=2)
        bad = JamBlock.empty(coins.shape[1], masks.shape[2])  # one lane only
        with pytest.raises(ValueError):
            spread_block_batch(
                channels, coins, bad,
                np.ones(coins.shape[::2], dtype=bool),
                np.ones(coins.shape[::2], dtype=bool),
                shared_coin_actions(0.5),
            )


class TestCountFeedbackBatched:
    def test_lane_axis_counts(self):
        fb = np.array(
            [
                [[FB_MSG, FB_NOISE], [FB_SILENCE, FB_NOISE]],
                [[FB_NONE, FB_BEACON], [FB_MSG, FB_NONE]],
            ],
            dtype=np.int8,
        )
        c = count_feedback(fb)
        np.testing.assert_array_equal(c["noise"], [[0, 2], [0, 0]])
        np.testing.assert_array_equal(c["msg"], [[1, 0], [1, 0]])
        np.testing.assert_array_equal(c["msg_or_beacon"], [[1, 0], [1, 1]])
        np.testing.assert_array_equal(c["silence"], [[1, 0], [0, 0]])

    def test_lane_counts_match_per_lane(self, rng):
        fb = rng.integers(-1, 4, size=(3, 16, 5)).astype(np.int8)
        batched = count_feedback(fb)
        for b in range(3):
            single = count_feedback(fb[b])
            for key in batched:
                np.testing.assert_array_equal(batched[key][b], single[key])
