"""Tests for MultiCastCore (paper Fig. 1 / Theorem 4.4)."""

import math

import numpy as np
import pytest

from repro import BlanketJammer, FractionalJammer, FrontLoadedJammer, MultiCastCore, run_broadcast
from repro.sim.trace import TraceRecorder

FAST = dict(a=8192.0)  # default scale; iteration ~ 8192 * lg(T-hat)


class TestParameters:
    def test_iteration_length_formula(self):
        p = MultiCastCore(n=64, T=1024, a=10.0)
        assert p.iteration_slots == math.ceil(10.0 * math.log2(1024))

    def test_t_hat_uses_n_when_t_small(self):
        p = MultiCastCore(n=64, T=0, a=10.0)
        assert p.iteration_slots == math.ceil(10.0 * math.log2(64))

    def test_channel_count(self):
        assert MultiCastCore(n=64, T=0).num_channels == 32

    def test_structural_constants(self):
        assert MultiCastCore.LISTEN_PROB == 1 / 64
        assert MultiCastCore.NOISE_THRESHOLD == 1 / 128

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            MultiCastCore(n=2, T=0)
        with pytest.raises(ValueError):
            MultiCastCore(n=8, T=-1)
        with pytest.raises(ValueError):
            MultiCastCore(n=8, T=0, a=0)


class TestCleanChannel:
    def test_success_one_iteration(self):
        r = run_broadcast(MultiCastCore(n=64, T=0, **FAST), 64, seed=0)
        assert r.success
        assert r.periods == 1  # no jamming: everyone halts after iteration 1

    def test_success_across_seeds(self):
        ok = sum(
            run_broadcast(MultiCastCore(n=32, T=0, **FAST), 32, seed=s).success
            for s in range(10)
        )
        assert ok >= 9

    def test_all_halted_and_informed(self):
        r = run_broadcast(MultiCastCore(n=64, T=0, **FAST), 64, seed=1)
        assert (r.halt_slot >= 0).all()
        assert (r.informed_slot >= 0).all()
        assert r.halted_uninformed == 0

    def test_source_is_node_zero(self):
        r = run_broadcast(MultiCastCore(n=16, T=0, **FAST), 16, seed=2)
        assert r.informed_slot[0] == 0

    def test_energy_concentrates_at_2p_per_slot(self):
        """Each active node acts w.p. ~2p = 1/32 per slot (listen p + send p
        for informed nodes; uninformed pay slightly less)."""
        r = run_broadcast(MultiCastCore(n=64, T=0, **FAST), 64, seed=3)
        R = r.extras["iteration_slots"]
        expected = 2 * MultiCastCore.LISTEN_PROB * R
        assert 0.5 * expected < r.max_cost < 2.0 * expected

    def test_result_metadata(self):
        r = run_broadcast(MultiCastCore(n=16, T=100, **FAST), 16, seed=4)
        assert r.protocol == "MultiCastCore"
        assert r.extras["provisioned_T"] == 100
        assert r.extras["num_channels"] == 8


class TestUnderJamming:
    def test_survives_ninety_percent_blanket(self):
        """Lemma 4.1's regime: Eve jams 90% of channels every slot; the
        epidemic still completes and no node halts uninformed."""
        T = 100_000
        adv = BlanketJammer(budget=T, channels=0.9, placement="random", seed=1)
        r = run_broadcast(MultiCastCore(n=64, T=T, **FAST), 64, adversary=adv, seed=5)
        assert r.success

    def test_no_premature_halt_during_heavy_jam(self):
        """While Eve jams 90%+ of channels, noisy-slot counts stay above the
        threshold, so nodes do not halt in fully jammed iterations."""
        proto = MultiCastCore(n=64, T=50_000, **FAST)
        R = proto.iteration_slots
        # budget covers exactly 2 iterations of 90% jamming
        budget = int(2 * R * 0.9 * 32)
        adv = BlanketJammer(budget=budget, channels=0.9, placement="random", seed=2)
        tr = TraceRecorder()
        r = run_broadcast(proto, 64, adversary=adv, seed=6, trace=tr)
        assert r.success
        iters = tr.periods_of("iteration")
        # nobody halts in iterations 1-2 (jammed), everyone soon after
        assert iters[0].active_after == 64
        assert iters[1].active_after == 64
        assert r.periods <= 5

    def test_halts_quickly_after_eve_stops(self):
        """Section 4 remark: once Eve goes broke, remaining nodes finish
        within one iteration = Theta(lg T-hat) slots."""
        T = 200_000
        proto = MultiCastCore(n=64, T=T, **FAST)
        adv = FrontLoadedJammer(budget=T)
        r = run_broadcast(proto, 64, adversary=adv, seed=7)
        assert r.success
        blackout_slots = T // 32  # Eve jams all 32 channels until broke
        R = proto.iteration_slots
        # everyone halts within two iteration boundaries of the blackout end
        assert r.last_halt_slot <= (blackout_slots // R + 2) * R

    def test_violations_counted(self):
        """With a tiny a, iterations are too short for dissemination and
        nodes halt uninformed — the result must report it, not hide it."""
        r = run_broadcast(MultiCastCore(n=64, T=0, a=8.0), 64, seed=8)
        assert r.halted_uninformed > 0
        assert not r.success

    def test_time_grows_with_budget(self):
        times = []
        for T in (0, 400_000):
            adv = None if T == 0 else BlanketJammer(budget=T, channels=0.9, seed=3)
            r = run_broadcast(
                MultiCastCore(n=64, T=max(T, 64), **FAST), 64, adversary=adv, seed=9
            )
            assert r.success
            times.append(r.slots)
        assert times[1] > times[0]


class TestTraceIntegration:
    def test_growth_curve_recorded(self):
        tr = TraceRecorder()
        r = run_broadcast(MultiCastCore(n=64, T=0, **FAST), 64, seed=10, trace=tr)
        slots, counts = tr.informed_curve()
        assert counts[0] == 1
        assert counts[-1] == 64
        assert (np.diff(counts) > 0).all()
        assert r.dissemination_slot == slots[-1]
