"""Differential tests: pseudocode-literal scalar oracles vs. the vectorized
engine.

The two implementations share only the channel-resolution kernel; agreement
on behavioural statistics over seeds certifies the vectorized protocol logic
(action mapping, counters, halting rules).  RNG streams differ by design, so
comparisons are distributional, not bitwise.
"""

import numpy as np
import pytest

from repro import BlanketJammer, MultiCast, MultiCastAdv, MultiCastCore, run_broadcast
from repro.core.reference import (
    run_scalar_multicast,
    run_scalar_multicast_adv,
    run_scalar_multicast_core,
)

ADV_FAST = dict(alpha=0.24, b=0.01, halt_noise_divisor=50.0, helper_wait=4.0)


class TestScalarMultiCastCore:
    def test_clean_channel_success(self):
        r = run_scalar_multicast_core(16, T=0, a=4096.0, seed=1)
        assert r.success
        assert r.extras["scalar_reference"]

    def test_matches_vectorized_iteration_structure(self):
        """Same parameters: both implementations halt after one iteration on
        a clean channel, with the same iteration length."""
        scalar = run_scalar_multicast_core(16, T=0, a=4096.0, seed=2)
        vec = run_broadcast(MultiCastCore(n=16, T=0, a=4096.0), 16, seed=2)
        assert scalar.success and vec.success
        assert scalar.slots == vec.slots  # both exactly one iteration

    def test_energy_distribution_agrees(self):
        """Mean per-node cost ~ 2p * slots in both implementations."""
        scalar = run_scalar_multicast_core(16, T=0, a=4096.0, seed=3)
        vec = run_broadcast(MultiCastCore(n=16, T=0, a=4096.0), 16, seed=3)
        assert abs(scalar.mean_cost - vec.mean_cost) < 0.25 * max(scalar.mean_cost, vec.mean_cost)

    def test_jammed_noise_counting_agrees(self):
        """Under a deterministic blanket jam both implementations refuse to
        halt during the jam (noise above threshold)."""
        T = 30_000
        mk = lambda: BlanketJammer(budget=T, channels=1.0)
        scalar = run_scalar_multicast_core(16, T=T, a=4096.0, adversary=mk(), seed=4)
        vec = run_broadcast(MultiCastCore(n=16, T=T, a=4096.0), 16, adversary=mk(), seed=4)
        assert scalar.success and vec.success
        # blackout lasts T/8 slots on 8 channels; neither halts before that
        blackout = T // 8
        assert scalar.halt_slot.min() > blackout
        assert vec.halt_slot.min() > blackout
        assert scalar.periods == vec.periods


class TestScalarMultiCast:
    def test_clean_channel_success(self):
        r = run_scalar_multicast(16, a=0.05, seed=1)
        assert r.success

    def test_matches_vectorized_first_iteration(self):
        scalar = run_scalar_multicast(16, a=0.05, seed=2)
        vec = run_broadcast(MultiCast(16, a=0.05), 16, seed=2)
        assert scalar.success and vec.success
        assert scalar.slots == vec.slots  # both end after iteration 6

    def test_energy_agrees(self):
        scalar = run_scalar_multicast(16, a=0.05, seed=3)
        vec = run_broadcast(MultiCast(16, a=0.05), 16, seed=3)
        assert abs(scalar.mean_cost - vec.mean_cost) < 0.25 * max(scalar.mean_cost, vec.mean_cost)


@pytest.mark.slow
class TestScalarMultiCastAdv:
    """Minutes-long scalar MultiCastAdv end-to-end runs (the two slowest
    tests in the suite by an order of magnitude).  Marked ``slow`` so
    ``-m "not slow"`` gives a fast local loop; the tier-1 command runs them."""

    def test_small_run_success_and_arena_parity(self):
        """One scalar end-to-end run serves two assertions: the oracle
        succeeds, and the arena adapter reproduces it bit for bit through
        every phase up to and including the halts (the fast truncated
        parity in tests/arena/test_parity.py never reaches a halt).  Fused
        so the minutes-long scalar workload is paid once."""
        from repro.arena import run_broadcast_adaptive

        proto = MultiCastAdv(**ADV_FAST)
        r = run_scalar_multicast_adv(proto, 8, seed=1, max_slots=3_000_000)
        assert r.success
        arena = run_broadcast_adaptive(proto, 8, None, seed=1, max_slots=3_000_000)
        assert arena.success
        for attr in ("slots", "periods", "adversary_spend", "halted_uninformed"):
            assert getattr(r, attr) == getattr(arena, attr), attr
        for attr in ("informed_slot", "halt_slot", "node_energy"):
            np.testing.assert_array_equal(
                getattr(r, attr), getattr(arena, attr), err_msg=attr
            )

    def test_timetable_lockstep_with_vectorized(self):
        """Same protocol object: scalar and vectorized halts land at the
        same phase boundaries (timetables are deterministic)."""
        proto = MultiCastAdv(**ADV_FAST)
        scalar = run_scalar_multicast_adv(proto, 8, seed=2, max_slots=3_000_000)
        vec = run_broadcast(proto, 8, seed=2, max_slots=80_000_000)
        assert scalar.success and vec.success
        from repro.core.schedule import multicast_adv_spans

        spans = multicast_adv_spans(proto, 40)
        boundaries = {s.end for s in spans}
        for hs in np.concatenate([scalar.halt_slot, vec.halt_slot]):
            assert int(hs) in boundaries
