"""Tests for the channel-limited variants (paper Figs. 5/6, section 7)."""

import numpy as np
import pytest

from repro import BlanketJammer, MultiCast, MultiCastAdvC, MultiCastC, run_broadcast
from repro.core.limited import effective_channels

FAST = dict(a=0.05)
ADV_FAST = dict(alpha=0.24, b=0.01, halt_noise_divisor=50.0, helper_wait=4.0)


class TestEffectiveChannels:
    def test_divisor_kept(self):
        assert effective_channels(64, 8) == 8

    def test_rounded_down_to_divisor(self):
        assert effective_channels(64, 7) == 4  # divisors of 32: ... 4, 8
        assert effective_channels(64, 31) == 16

    def test_capped_at_half_n(self):
        assert effective_channels(64, 100) == 32

    def test_one_channel_always_valid(self):
        assert effective_channels(64, 1) == 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            effective_channels(5, 2)  # odd n
        with pytest.raises(ValueError):
            effective_channels(64, 0)


class TestMultiCastC:
    def test_rounds_structure(self):
        p = MultiCastC(64, 8, **FAST)
        assert p.C == 8
        assert p.slots_per_round == 4  # 32 / 8

    def test_full_channels_equals_multicast_time(self):
        """C = n/2 means 1 slot per round — identical behaviour to Fig. 2."""
        rc = run_broadcast(MultiCastC(64, 32, **FAST), 64, seed=1)
        rm = run_broadcast(MultiCast(64, **FAST), 64, seed=1)
        assert rc.slots == rm.slots
        np.testing.assert_array_equal(rc.node_energy, rm.node_energy)

    def test_clean_channel_success(self):
        for C in (1, 4, 16):
            r = run_broadcast(MultiCastC(64, C, **FAST), 64, seed=2)
            assert r.success, f"C={C}"

    def test_time_scales_inverse_c_cost_constant(self):
        """Corollary 7.1's shape: same iteration structure means exactly
        n/(2C) more physical slots, with per-node cost unchanged."""
        results = {
            C: run_broadcast(MultiCastC(64, C, **FAST), 64, seed=3) for C in (2, 8, 32)
        }
        assert results[2].slots == 4 * results[8].slots
        assert results[8].slots == 4 * results[32].slots
        # energy independent of C (same virtual coin sequence per seed)
        np.testing.assert_array_equal(results[2].node_energy, results[8].node_energy)

    def test_under_full_blanket_jam(self):
        """Eve can blanket C channels cheaply, but the protocol outlives T."""
        C = 4
        adv = BlanketJammer(budget=50_000, channels=1.0, seed=1)
        r = run_broadcast(MultiCastC(64, C, **FAST), 64, adversary=adv, seed=4)
        assert r.success
        assert r.adversary_spend == 50_000

    def test_physical_jam_maps_to_virtual_channel(self):
        """A jammer hitting physical channel 0 only affects virtual channels
        congruent to 0 mod C — check via energy books that the simulation
        still terminates and Eve was charged at physical granularity."""
        C = 2
        adv = BlanketJammer(budget=10_000, channels=1, seed=2)  # 1 of 2 channels
        r = run_broadcast(MultiCastC(64, C, **FAST), 64, adversary=adv, seed=5)
        assert r.success
        assert r.adversary_spend == 10_000

    def test_name_and_extras(self):
        r = run_broadcast(MultiCastC(64, 8, **FAST), 64, seed=6)
        assert r.protocol == "MultiCast(C=8)"
        assert r.extras["physical_channels"] == 8
        assert r.extras["slots_per_round"] == 4


class TestMultiCastAdvC:
    def test_constructor_mirrors_paper_naming(self):
        p = MultiCastAdvC(8, **ADV_FAST)
        assert p.channel_cap == 8
        assert p.max_phase == 3

    def test_rejects_channel_cap_kwarg(self):
        with pytest.raises(TypeError):
            MultiCastAdvC(8, channel_cap=4)

    def test_success_with_cap(self):
        r = run_broadcast(
            MultiCastAdvC(4, **ADV_FAST), 16, seed=1, max_slots=120_000_000
        )
        assert r.success

    def test_helpers_at_or_below_cutoff(self):
        r = run_broadcast(
            MultiCastAdvC(4, **ADV_FAST), 16, seed=2, max_slots=120_000_000
        )
        assert r.success
        assert (r.extras["helper_phase"] <= 2).all()  # j <= lg C = 2

    def test_large_cap_behaves_like_unlimited(self):
        """C > n/2: Theorem 7.2 case one — the good phases j = lg n - 1
        still exist, so behaviour matches plain MultiCastAdv."""
        from repro import MultiCastAdv

        r_cap = run_broadcast(
            MultiCastAdvC(1 << 20, **ADV_FAST), 16, seed=3, max_slots=120_000_000
        )
        assert r_cap.success
