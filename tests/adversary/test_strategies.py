"""Unit tests for the jammer strategy gallery."""

import numpy as np
import pytest

from repro.adversary import (
    BlanketJammer,
    FractionalJammer,
    FrontLoadedJammer,
    NoJammer,
    PeriodicBurstJammer,
    PhaseTargetedJammer,
    RandomJammer,
    ReplayJammer,
    ScheduleJammer,
    SweepJammer,
)


def dense(adv, start, K, C):
    return adv.jam_block(start, K, C).to_dense()


class TestNoJammer:
    def test_never_jams(self):
        adv = NoJammer()
        assert not dense(adv, 0, 20, 8).any()
        assert adv.spent == 0


class TestBlanketJammer:
    def test_prefix_placement(self):
        adv = BlanketJammer(budget=None, channels=3, placement="prefix")
        jam = dense(adv, 0, 5, 8)
        assert jam[:, :3].all() and not jam[:, 3:].any()

    def test_fraction_spec(self):
        adv = BlanketJammer(budget=None, channels=0.5)
        jam = dense(adv, 0, 4, 8)
        assert (jam.sum(axis=1) == 4).all()

    def test_random_placement_count_per_slot(self):
        adv = BlanketJammer(budget=None, channels=3, placement="random", seed=1)
        jam = dense(adv, 0, 50, 8)
        assert (jam.sum(axis=1) == 3).all()

    def test_random_placement_varies(self):
        adv = BlanketJammer(budget=None, channels=2, placement="random", seed=1)
        jam = dense(adv, 0, 50, 16)
        assert len({tuple(row) for row in jam}) > 1

    def test_budget_lifetime(self):
        adv = BlanketJammer(budget=10, channels=1.0)
        jam = dense(adv, 0, 10, 5)
        assert jam[:2].all() and not jam[2:].any()

    def test_invalid_placement(self):
        with pytest.raises(ValueError):
            BlanketJammer(budget=1, placement="middle")


class TestFractionalJammer:
    def test_duty_cycle_exact_over_any_window(self):
        adv = FractionalJammer(budget=None, slot_fraction=0.3, channel_fraction=1.0)
        jam = dense(adv, 0, 1000, 4)
        active = jam.any(axis=1)
        assert active.sum() == 300
        # exactness over sub-windows too (Bresenham property): any window of
        # w slots has floor/ceil(0.3 w) active slots
        for lo in (0, 123, 500):
            w = 200
            count = active[lo : lo + w].sum()
            assert 59 <= count <= 61

    def test_channel_fraction(self):
        adv = FractionalJammer(budget=None, slot_fraction=1.0, channel_fraction=0.9)
        jam = dense(adv, 0, 20, 10)
        assert (jam.sum(axis=1) == 9).all()

    def test_zero_fraction(self):
        adv = FractionalJammer(budget=None, slot_fraction=0.0, channel_fraction=1.0)
        assert not dense(adv, 0, 50, 4).any()

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            FractionalJammer(budget=None, slot_fraction=1.5, channel_fraction=1.0)


class TestFrontLoadedJammer:
    def test_blackout_then_silence(self):
        adv = FrontLoadedJammer(budget=12)
        jam = dense(adv, 0, 10, 4)
        assert jam[:3].all() and not jam[3:].any()
        assert adv.spent == 12

    def test_requires_budget(self):
        with pytest.raises((ValueError, TypeError)):
            FrontLoadedJammer(budget=None)

    def test_partial_slot_spend(self):
        adv = FrontLoadedJammer(budget=6)
        jam = dense(adv, 0, 3, 4)
        assert jam[0].sum() == 4 and jam[1].sum() == 2 and jam[2].sum() == 0


class TestPeriodicBurstJammer:
    def test_burst_pattern(self):
        adv = PeriodicBurstJammer(budget=None, period=5, burst=2, channels=1.0)
        jam = dense(adv, 0, 15, 2)
        on = jam.any(axis=1)
        expected = np.array([True, True, False, False, False] * 3)
        np.testing.assert_array_equal(on, expected)

    def test_phase_shift(self):
        adv = PeriodicBurstJammer(budget=None, period=4, burst=1, phase=2, channels=1.0)
        jam = dense(adv, 0, 8, 1)
        on = jam.any(axis=1)
        np.testing.assert_array_equal(on, [False, False, True, False] * 2)

    def test_pattern_consistent_across_blocks(self):
        adv = PeriodicBurstJammer(budget=None, period=7, burst=3, channels=1.0)
        a = dense(adv, 0, 10, 2)
        b = dense(adv, 10, 10, 2)
        adv.reset()
        whole = dense(adv, 0, 20, 2)
        np.testing.assert_array_equal(np.vstack([a, b]), whole)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            PeriodicBurstJammer(budget=None, period=0, burst=0)


class TestSweepJammer:
    def test_window_width(self):
        adv = SweepJammer(budget=None, width=3)
        jam = dense(adv, 0, 10, 8)
        assert (jam.sum(axis=1) == 3).all()

    def test_window_rotates(self):
        adv = SweepJammer(budget=None, width=1, dwell=1)
        jam = dense(adv, 0, 8, 8)
        np.testing.assert_array_equal(np.nonzero(jam)[1], np.arange(8))

    def test_dwell(self):
        adv = SweepJammer(budget=None, width=1, dwell=3)
        jam = dense(adv, 0, 6, 8)
        cols = np.nonzero(jam)[1]
        np.testing.assert_array_equal(cols, [0, 0, 0, 1, 1, 1])

    def test_wraparound(self):
        adv = SweepJammer(budget=None, width=3, dwell=1)
        jam = dense(adv, 0, 7, 8)  # at slot 6 the window is {6, 7, 0}
        np.testing.assert_array_equal(np.nonzero(jam[6])[0], [0, 6, 7])


class TestRandomJammer:
    def test_rate(self):
        adv = RandomJammer(budget=None, p=0.25, seed=2)
        jam = dense(adv, 0, 400, 10)
        assert abs(jam.mean() - 0.25) < 0.02

    def test_zero_rate(self):
        adv = RandomJammer(budget=None, p=0.0)
        assert not dense(adv, 0, 50, 4).any()

    def test_sparse_path_rate(self):
        """Large C route: Binomial counts + uniform subsets."""
        adv = RandomJammer(budget=None, p=0.001, seed=3)
        jam = adv.jam_block(0, 64, 1 << 20)
        mean = jam.total() / (64 * (1 << 20))
        assert 0.0005 < mean < 0.002

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            RandomJammer(budget=None, p=2.0)


class TestScheduleJammer:
    def test_table_replay_and_padding(self):
        table = np.zeros((4, 3), dtype=bool)
        table[1, 2] = True
        adv = ScheduleJammer(budget=None, schedule=table)
        jam = dense(adv, 0, 6, 3)
        assert jam[1, 2] and jam.sum() == 1  # quiet past the table end

    def test_channel_truncation(self):
        table = np.ones((2, 5), dtype=bool)
        adv = ScheduleJammer(budget=None, schedule=table)
        jam = dense(adv, 0, 2, 3)
        assert jam.shape == (2, 3) and jam.all()

    def test_callable_schedule(self):
        def fn(start, K, C):
            mask = np.zeros((K, C), dtype=bool)
            mask[:, 0] = (np.arange(start, start + K) % 2) == 0
            return mask

        adv = ScheduleJammer(budget=None, schedule=fn)
        jam = dense(adv, 0, 4, 2)
        np.testing.assert_array_equal(jam[:, 0], [True, False, True, False])

    def test_rejects_1d_schedule(self):
        with pytest.raises(ValueError):
            ScheduleJammer(budget=None, schedule=np.ones(4, dtype=bool))


class TestPhaseTargetedJammer:
    def test_jams_only_inside_intervals(self):
        adv = PhaseTargetedJammer(budget=None, intervals=[(5, 10), (20, 22)], channel_fraction=1.0)
        jam = dense(adv, 0, 30, 4)
        on = jam.any(axis=1)
        expected = np.zeros(30, dtype=bool)
        expected[5:10] = True
        expected[20:22] = True
        np.testing.assert_array_equal(on, expected)

    def test_interval_membership_across_blocks(self):
        adv = PhaseTargetedJammer(budget=None, intervals=[(8, 12)], channel_fraction=1.0)
        a = dense(adv, 0, 10, 2)
        b = dense(adv, 10, 10, 2)
        assert a[8:10].all() and b[:2].all() and not b[2:].any()

    def test_channel_fraction_inside(self):
        adv = PhaseTargetedJammer(budget=None, intervals=[(0, 50)], channel_fraction=0.5, seed=4)
        jam = dense(adv, 0, 50, 8)
        assert (jam.sum(axis=1) == 4).all()

    def test_duty_cycle_inside_interval(self):
        adv = PhaseTargetedJammer(
            budget=None, intervals=[(0, 100)], channel_fraction=1.0, slot_fraction=0.5
        )
        jam = dense(adv, 0, 100, 2)
        assert jam.any(axis=1).sum() == 50

    def test_empty_intervals(self):
        adv = PhaseTargetedJammer(budget=None, intervals=[])
        assert not dense(adv, 0, 10, 2).any()

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            PhaseTargetedJammer(budget=None, intervals=[(5, 3)])


class TestReplayJammer:
    def test_exact_replay(self, rng):
        recorded = rng.random((20, 6)) < 0.4
        adv = ReplayJammer(recorded)
        a = dense(adv, 0, 12, 6)
        b = dense(adv, 12, 12, 6)  # 4 rows past end -> quiet
        np.testing.assert_array_equal(a, recorded[:12])
        np.testing.assert_array_equal(b[:8], recorded[12:])
        assert not b[8:].any()

    def test_channel_mismatch_fails_loudly(self):
        adv = ReplayJammer(np.zeros((5, 4), dtype=bool))
        with pytest.raises(ValueError, match="channels"):
            adv.jam_block(0, 5, 8)


class TestHugeChannelCounts:
    """Strategies must never materialize dense masks at MultiCastAdv scale."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: NoJammer(),
            lambda: BlanketJammer(budget=1000, channels=4, placement="random"),
            lambda: BlanketJammer(budget=1000, channels=4, placement="prefix"),
            lambda: FractionalJammer(budget=1000, slot_fraction=0.5, channel_fraction=8),
            lambda: FrontLoadedJammer(budget=1000),
            lambda: PeriodicBurstJammer(budget=1000, period=10, burst=2, channels=4),
            lambda: SweepJammer(budget=1000, width=4),
            lambda: PhaseTargetedJammer(budget=1000, intervals=[(0, 100)], channel_fraction=4),
        ],
    )
    def test_sparse_at_2_to_26_channels(self, factory):
        adv = factory()
        jam = adv.jam_block(0, 256, 1 << 26)
        assert jam.K == 256 and jam.C == 1 << 26
        assert jam.total() <= 1000 or adv.budget is None

    def test_budget_respected_at_huge_c(self):
        adv = FrontLoadedJammer(budget=777)
        jam = adv.jam_block(0, 4, 1 << 26)
        assert jam.total() == 777
