"""Tests for the adaptive-jammer extension (paper section 8 future work)."""

import numpy as np
import pytest

from repro.adversary.reactive import (
    ReactiveJammer,
    ReactiveLatencyJammer,
    SniperJammer,
    TrailingJammer,
)
from repro.core.reference import run_scalar_multicast
from repro.sim.channel import ACT_IDLE, ACT_LISTEN, ACT_SEND_MSG, FB_MSG, FB_NOISE
from repro.sim.node import NodeProtocol, ScalarNetwork


class TestSniperJammer:
    def test_jams_only_busy_channels(self):
        adv = SniperJammer(budget=None, k=2, seed=1)
        busy = np.array([True, False, True, True, False])
        for _ in range(20):
            mask = adv.jam_slot(0, busy)
            assert mask.sum() <= 2
            assert not mask[~busy].any()

    def test_quiet_spectrum_no_spend(self):
        adv = SniperJammer(budget=10, k=3)
        mask = adv.jam_slot(0, np.zeros(4, dtype=bool))
        assert not mask.any()
        assert adv.spent == 0

    def test_budget_enforced(self):
        adv = SniperJammer(budget=3, k=2)
        busy = np.ones(4, dtype=bool)
        total = sum(adv.jam_slot(t, busy).sum() for t in range(5))
        assert total == 3
        assert adv.spent == 3

    def test_reset(self):
        adv = SniperJammer(budget=2, k=1, seed=5)
        adv.jam_slot(0, np.ones(3, dtype=bool))
        adv.reset()
        assert adv.spent == 0


class TestTrailingJammer:
    def test_first_slot_blind(self):
        adv = TrailingJammer(budget=None, k=1)
        assert not adv.jam_slot(0, np.array([True, True])).any()

    def test_jams_previous_slots_channels(self):
        adv = TrailingJammer(budget=None, k=4)
        adv.jam_slot(0, np.array([True, False, True]))
        mask = adv.jam_slot(1, np.array([False, True, False]))
        np.testing.assert_array_equal(mask, [True, False, True])

    def test_reset_clears_memory(self):
        adv = TrailingJammer(budget=None, k=4)
        adv.jam_slot(0, np.ones(2, dtype=bool))
        adv.reset()
        assert not adv.jam_slot(0, np.ones(2, dtype=bool)).any()


class TestReactiveLatencyJammer:
    def test_latency_zero_is_within_slot(self):
        adv = ReactiveLatencyJammer(budget=None, latency=0, k=2, seed=1)
        busy = np.array([True, False, True, False])
        mask = adv.jam_slot(0, busy)
        np.testing.assert_array_equal(mask, busy)

    def test_latency_delays_the_snapshot(self):
        adv = ReactiveLatencyJammer(budget=None, latency=2, k=4)
        first = np.array([True, False, False])
        # blind until `latency` snapshots have accumulated
        assert not adv.jam_slot(0, first).any()
        assert not adv.jam_slot(1, np.array([False, True, False])).any()
        mask = adv.jam_slot(2, np.array([False, False, True]))
        np.testing.assert_array_equal(mask, first)

    def test_latency_one_matches_trailing(self):
        lat = ReactiveLatencyJammer(budget=None, latency=1, k=2, seed=3)
        trail = TrailingJammer(budget=None, k=2, seed=3)
        rng = np.random.default_rng(0)
        for slot in range(30):
            busy = rng.random(6) < 0.4
            np.testing.assert_array_equal(
                lat.jam_slot(slot, busy), trail.jam_slot(slot, busy)
            )

    def test_channel_count_change_blanks_stale_snapshot(self):
        adv = ReactiveLatencyJammer(budget=None, latency=1, k=4)
        adv.jam_slot(0, np.ones(4, dtype=bool))
        assert not adv.jam_slot(1, np.ones(8, dtype=bool)).any()

    def test_budget_and_reset(self):
        adv = ReactiveLatencyJammer(budget=3, latency=0, k=4, seed=2)
        busy = np.ones(4, dtype=bool)
        total = sum(int(adv.jam_slot(t, busy).sum()) for t in range(3))
        assert total == 3 and adv.spent == 3
        adv.reset()
        assert adv.spent == 0
        assert adv.jam_slot(0, busy).sum() == 3  # clipped to budget again

    def test_k_subset_when_spectrum_is_wide(self):
        adv = ReactiveLatencyJammer(budget=None, latency=0, k=2, seed=5)
        busy = np.ones(10, dtype=bool)
        for slot in range(10):
            mask = adv.jam_slot(slot, busy)
            assert mask.sum() == 2
            assert not mask[~busy].any()

    def test_validation(self):
        with pytest.raises(ValueError):
            ReactiveLatencyJammer(budget=None, latency=-1)
        with pytest.raises(ValueError):
            ReactiveLatencyJammer(budget=None, k=-1)


class _Sender(NodeProtocol):
    def __init__(self, channel):
        self.channel = channel
        self.slots = 0

    def begin_slot(self, slot):
        return self.channel, ACT_SEND_MSG

    def end_slot(self, slot, feedback):
        self.slots += 1

    @property
    def halted(self):
        return self.slots >= 5


class _Listener(NodeProtocol):
    def __init__(self, channel):
        self.channel = channel
        self.feedbacks = []

    def begin_slot(self, slot):
        return self.channel, ACT_LISTEN

    def end_slot(self, slot, feedback):
        self.feedbacks.append(feedback)

    @property
    def halted(self):
        return len(self.feedbacks) >= 5


class TestScalarNetworkIntegration:
    def test_sniper_turns_delivery_into_noise(self):
        """Within-slot sensing: the sniper hits the live transmission every
        slot, so the listener only ever hears noise."""
        adv = SniperJammer(budget=None, k=1, seed=2)
        nodes = [_Sender(0), _Listener(0)]
        net = ScalarNetwork(nodes, adv)
        net.run(2)
        assert all(fb == FB_NOISE for fb in nodes[1].feedbacks)
        assert adv.spent == 5

    def test_trailing_jammer_misses_static_single_slot(self):
        """The trailing jammer always jams where the action was, one slot
        late; on a static channel it catches up from slot 1 onward."""
        adv = TrailingJammer(budget=None, k=1)
        nodes = [_Sender(1), _Listener(1)]
        net = ScalarNetwork(nodes, adv)
        net.run(2)
        assert nodes[1].feedbacks[0] == FB_MSG  # slot 0: blind
        assert all(fb == FB_NOISE for fb in nodes[1].feedbacks[1:])

    def test_within_slot_sniper_defeats_multicast(self):
        """Boundary of the model: a *within-slot* reactive sniper (strictly
        stronger than the paper's oblivious adversary and its section-8
        adaptive conjecture, which sees history only) kills every
        transmission at unit price — the epidemic never starts, nodes hear
        almost no noise, and they halt uninformed.  This measures exactly
        why the obliviousness assumption is load-bearing."""
        T = 3_000
        adv = SniperJammer(budget=T, k=4, seed=3)
        r = run_scalar_multicast(16, adversary=adv, a=0.05, seed=4, max_slots=500_000)
        assert not r.success
        assert r.halted_uninformed > 0
        # Eve pays ~one unit per transmission attempt — nowhere near T
        assert r.adversary_spend < T / 2

    def test_multicast_vs_trailing_is_barely_affected(self):
        """Uniform rehopping makes one-slot-stale information nearly
        worthless: time with a trailing jammer matches the jam-free run."""
        r_clean = run_scalar_multicast(16, a=0.05, seed=6, max_slots=500_000)
        adv = TrailingJammer(budget=50_000, k=4, seed=5)
        r_jam = run_scalar_multicast(16, adversary=adv, a=0.05, seed=6, max_slots=500_000)
        assert r_clean.success and r_jam.success
        assert r_jam.slots <= 2 * r_clean.slots
