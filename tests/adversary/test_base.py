"""Unit tests for adversary base machinery: budgets, cursor, channel specs."""

import numpy as np
import pytest

from repro.adversary.base import ObliviousJammer, resolve_channel_count
from repro.sim.jam import JamBlock


class GreedyJammer(ObliviousJammer):
    """Test double: wants to jam everything, everywhere."""

    def propose(self, start_slot, num_slots, num_channels):
        return np.ones((num_slots, num_channels), dtype=bool)


class TestBudgetEnforcement:
    def test_spend_never_exceeds_budget(self):
        adv = GreedyJammer(budget=25)
        total = 0
        for start in range(0, 100, 10):
            total += adv.jam_block(start, 10, 3).total()
        assert total == 25
        assert adv.spent == 25

    def test_truncation_is_time_ordered(self):
        adv = GreedyJammer(budget=5)
        jam = adv.jam_block(0, 3, 3).to_dense()
        # first 5 channel-slots row-major: all of slot 0, 2 of slot 1
        assert jam[0].sum() == 3 and jam[1].sum() == 2 and jam[2].sum() == 0

    def test_broke_adversary_returns_empty(self):
        adv = GreedyJammer(budget=3)
        adv.jam_block(0, 5, 1)
        jam = adv.jam_block(5, 5, 1)
        assert jam.total() == 0

    def test_unbounded_budget(self):
        adv = GreedyJammer(budget=None)
        assert adv.jam_block(0, 4, 4).total() == 16
        assert adv.remaining is None

    def test_zero_budget(self):
        adv = GreedyJammer(budget=0)
        assert adv.jam_block(0, 4, 4).total() == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            GreedyJammer(budget=-1)


class TestCursor:
    def test_non_contiguous_rejected(self):
        adv = GreedyJammer(budget=10)
        adv.jam_block(0, 5, 1)
        with pytest.raises(RuntimeError, match="non-contiguous"):
            adv.jam_block(9, 5, 1)

    def test_reset_restores_everything(self):
        adv = GreedyJammer(budget=10)
        adv.jam_block(0, 5, 2)
        adv.reset()
        assert adv.spent == 0
        jam = adv.jam_block(0, 5, 2)  # cursor back at 0
        assert jam.total() == 10

    def test_reset_restores_rng_stream(self):
        from repro.adversary import BlanketJammer

        adv = BlanketJammer(budget=50, channels=2, placement="random", seed=3)
        a = adv.jam_block(0, 10, 8).to_dense()
        adv.reset()
        b = adv.jam_block(0, 10, 8).to_dense()
        np.testing.assert_array_equal(a, b)

    def test_invalid_dimensions_rejected(self):
        adv = GreedyJammer(budget=10)
        with pytest.raises(ValueError):
            adv.jam_block(0, 0, 1)


class TestChannelSpec:
    def test_int_is_absolute(self):
        assert resolve_channel_count(3, 10) == 3

    def test_int_clipped_to_c(self):
        assert resolve_channel_count(30, 10) == 10

    def test_fraction_rounds_up(self):
        assert resolve_channel_count(0.25, 10) == 3  # ceil(2.5)

    def test_fraction_one_is_all(self):
        assert resolve_channel_count(1.0, 10) == 10

    def test_fraction_zero_is_none(self):
        assert resolve_channel_count(0.0, 10) == 0

    def test_out_of_range_fraction_rejected(self):
        with pytest.raises(ValueError):
            resolve_channel_count(1.5, 10)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            resolve_channel_count(-1, 10)


class TestShapeValidation:
    def test_bad_propose_shape_rejected(self):
        class BadJammer(ObliviousJammer):
            def propose(self, start_slot, num_slots, num_channels):
                return np.ones((num_slots + 1, num_channels), dtype=bool)

        adv = BadJammer(budget=10)
        with pytest.raises(ValueError, match="expected"):
            adv.jam_block(0, 4, 2)

    def test_propose_may_return_jamblock(self):
        class SparseJammer(ObliviousJammer):
            def propose(self, start_slot, num_slots, num_channels):
                return JamBlock.from_rows(
                    num_slots, num_channels, np.array([0]), [np.array([0])]
                )

        adv = SparseJammer(budget=10)
        assert adv.jam_block(0, 4, 2).total() == 1
