"""API-surface contract: everything advertised is importable and documented."""

import importlib
import inspect

import pytest

import repro


PUBLIC_MODULES = [
    "repro",
    "repro.sim",
    "repro.sim.channel",
    "repro.sim.engine",
    "repro.sim.jam",
    "repro.sim.metrics",
    "repro.sim.node",
    "repro.sim.rng",
    "repro.sim.trace",
    "repro.adversary",
    "repro.adversary.base",
    "repro.adversary.strategies",
    "repro.adversary.reactive",
    "repro.core",
    "repro.core.batch",
    "repro.core.multicast_core",
    "repro.core.multicast",
    "repro.core.multicast_adv",
    "repro.core.limited",
    "repro.core.schedule",
    "repro.core.reference",
    "repro.core.result",
    "repro.core.runner",
    "repro.arena",
    "repro.arena.network",
    "repro.arena.columns",
    "repro.arena.run",
    "repro.baselines",
    "repro.baselines.decay",
    "repro.baselines.naive",
    "repro.baselines.single_channel",
    "repro.analysis",
    "repro.cli",
]


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_module_importable_and_documented(name):
    mod = importlib.import_module(name)
    assert mod.__doc__ and len(mod.__doc__.strip()) > 20, f"{name} lacks a docstring"


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize(
    "name",
    [n for n in dir(repro) if not n.startswith("_") and inspect.isclass(getattr(repro, n))],
)
def test_public_classes_documented(name):
    cls = getattr(repro, name)
    assert cls.__doc__ and len(cls.__doc__.strip()) > 10, f"{name} lacks a docstring"


def test_version_string():
    assert repro.__version__ == "1.0.0"
