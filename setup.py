"""Setup shim for environments without the `wheel` package (offline CI).

`pip install -e . --no-use-pep517` uses this; all metadata lives in
pyproject.toml and is mirrored here only as far as the legacy path needs.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
