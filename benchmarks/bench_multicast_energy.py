"""EXP-T5.4e — MultiCast per-node energy vs T (Theorem 5.4b, the headline).

Claim: each node's cost is O(sqrt(T/n) · sqrt(lg T) · lg n + lg²n) — i.e.
resource-competitive with rho(T) ~ sqrt(T): Eve must spend quadratically
more than any node to keep the channel hot.

Regenerated as: budget sweep at n = 64; fit the log-log slope of the max
per-node cost over the jammed range (expect ~0.5, far from the slope-1 a
non-competitive protocol like NaiveEpidemic shows — measured in EXP-CMP),
and check the competitive ratio max_cost/T falls monotonically.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro import BlanketJammer, MultiCast
from repro.analysis import fit_loglog_slope, render_table, sweep, theory

N = 64
BUDGETS = [500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000, 16_000_000]


def experiment():
    sw = sweep(
        "T",
        BUDGETS,
        lambda T: MultiCast(N, a=0.05),
        lambda T: N,
        lambda T, seed: BlanketJammer(
            budget=int(T), channels=0.9, placement="random", seed=seed
        ),
        trials=3,
        base_seed=64,
    )
    pred = theory.normalize_to(theory.multicast_cost(sw.values, N), sw.means("max_cost"))
    rows = [
        [
            p.value,
            p.mean("max_cost"),
            pred[i],
            p.mean("max_cost") / p.value,
            p.batch.success_rate,
        ]
        for i, p in enumerate(sw)
    ]
    print()
    print(
        render_table(
            ["T", "max cost (meas)", "Thm 5.4b shape", "cost/T", "success"],
            rows,
            title=f"EXP-T5.4e  MultiCast energy vs budget, n={N}",
        )
    )
    return sw, pred


@pytest.mark.benchmark(group="EXP-T5.4")
def test_multicast_energy_sqrt_law(benchmark):
    sw, pred = run_once(benchmark, experiment)
    assert (sw.success_rates == 1.0).all()
    fit = fit_loglog_slope(sw.values, sw.means("max_cost"))
    # sqrt law: slope ~0.5 (with polylog drift), decisively below linear
    assert 0.3 < fit.exponent < 0.75, fit
    # competitive ratio vanishes with T
    ratios = sw.means("max_cost") / sw.values
    assert ratios[-1] < ratios[0] / 2
    # within a constant band of the theorem shape
    band = sw.means("max_cost") / pred
    assert band.max() / band.min() < 4.0
