"""EXP-ARENA — adaptive-arena throughput vs. the scalar reference loop.

The arena runtime (:mod:`repro.arena`) exists so adaptive-adversary
experiments can be *swept*: same slot-stepped semantics as
:class:`repro.sim.node.ScalarNetwork` (bit-identical results — asserted here
before any timing), but the node population advances as numpy columns.  This
bench regenerates the acceptance figure: ``MultiCast`` at gallery scale
(n = 64) through both runtimes, unjammed and under the reactive jammers, with
the committed ``benchmarks/BENCH_arena.json`` recording the >= 10x headline
speedup on the 1-core reference box.

``REPRO_BENCH_JSON=<dir> pytest benchmarks/bench_arena.py -s`` regenerates
the baseline; ``REPRO_BENCH_SMOKE=1`` shrinks the workload to CI size.  The
in-test assertion is a loose floor so a loaded CI runner cannot flake.
"""

import time

import pytest

from benchmarks.conftest import run_once, smoke_mode
from repro import MultiCast
from repro.adversary.reactive import SniperJammer, TrailingJammer
from repro.arena import run_broadcast_adaptive
from repro.core.reference import run_scalar_multicast


def jammer_factories(budget):
    return {
        "none": lambda: None,
        "sniper": lambda: SniperJammer(budget, k=4, seed=9),
        "trailing": lambda: TrailingJammer(budget, k=4, seed=9),
    }


@pytest.mark.benchmark(group="EXP-ARENA")
def test_arena_vs_scalar_runtime(benchmark, bench_json):
    """The acceptance figure: ArenaNetwork vs ScalarNetwork on the gallery
    protocol, per adversary matchup.  The headline (unjammed) figure is the
    pure runtime-vs-runtime comparison — per-slot jammer work is third-party
    cost both runtimes pay identically, so the jammed rows sit a little
    lower; all three are recorded."""
    n = 16 if smoke_mode() else 64
    a = 0.005 if smoke_mode() else 0.05
    budget = 100_000
    seed = 2

    def experiment():
        figures = {}
        for name, factory in jammer_factories(budget).items():
            t0 = time.perf_counter()
            scalar = run_scalar_multicast(n, adversary=factory(), a=a, seed=seed)
            scalar_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            arena = run_broadcast_adaptive(
                MultiCast(n, a=a), n, factory(), seed=seed
            )
            arena_s = time.perf_counter() - t0
            # bit-identity first: the timing means nothing otherwise
            assert scalar.slots == arena.slots
            assert scalar.adversary_spend == arena.adversary_spend
            assert (scalar.node_energy == arena.node_energy).all()
            assert (scalar.informed_slot == arena.informed_slot).all()
            assert (scalar.halt_slot == arena.halt_slot).all()
            figures[name] = {
                "scalar_s": round(scalar_s, 3),
                "arena_s": round(arena_s, 3),
                "speedup": round(scalar_s / arena_s, 2),
                "slots": int(arena.slots),
                "slots_per_s_arena": round(arena.slots / arena_s),
            }
        return figures

    figures = run_once(benchmark, experiment)
    # the unjammed row is the headline (pure runtime-vs-runtime) and carries
    # the regression floor; jammed rows sit lower (third-party jammer work)
    # and get a proportionally looser floor
    recorded = {
        name: bench_json.record_speedup(
            name,
            baseline_s=f["scalar_s"],
            fast_s=f["arena_s"],
            floor=3.0 if name == "none" else 1.5,
            slots=f["slots"],
            slots_per_s_arena=f["slots_per_s_arena"],
        )
        for name, f in figures.items()
    }
    bench_json.record(
        config={"protocol": "multicast", "n": n, "a": a, "budget": budget, "seed": seed},
        headline_speedup=recorded["none"]["speedup"],
    )
    print(
        f"\n  [EXP-ARENA] arena vs scalar (multicast, n={n}): "
        + ", ".join(f"{k}: {v['speedup']}x" for k, v in recorded.items())
    )
    # headline acceptance lives in the committed full-scale BENCH_arena.json
    # (>= 10x on the reference box); these floors only guard against gross
    # regressions without flaking a loaded CI runner
    for name, f in recorded.items():
        assert f["speedup"] > f["floor"], (name, f)


@pytest.mark.benchmark(group="EXP-ARENA latency ladder")
def test_reactive_latency_ladder(benchmark, bench_json):
    """The section-8 probe in bench form: success as a function of Eve's
    sensing latency (0 = within-slot, larger = staler), one seed per rung.
    Shape assertion only: latency 0 defeats MultiCast, latency >= 1 does
    not."""
    from repro.adversary.reactive import ReactiveLatencyJammer

    n = 16
    # no smoke shrink: at a = 0.005 MultiCast's own per-iteration error rate
    # drowns the shape being asserted, and the full a = 0.05 run is ~1 s
    a = 0.05
    budget = 50_000

    def experiment():
        rungs = {}
        for latency in (0, 1, 2, 4):
            r = run_broadcast_adaptive(
                MultiCast(n, a=a),
                n,
                ReactiveLatencyJammer(budget, latency=latency, k=4, seed=9),
                seed=5,
            )
            rungs[f"latency_{latency}"] = {
                "success": bool(r.success),
                "slots": int(r.slots),
                "eve_spend": int(r.adversary_spend),
                "bad_halts": int(r.halted_uninformed),
            }
        return rungs

    rungs = run_once(benchmark, experiment)
    bench_json.record(config={"protocol": "multicast", "n": n, "a": a}, **rungs)
    print(
        "\n  [EXP-ARENA] latency ladder: "
        + ", ".join(f"L={k.split('_')[1]}: {'ok' if v['success'] else 'DEFEATED'}"
                    for k, v in rungs.items())
    )
    assert not rungs["latency_0"]["success"], "within-slot sniper should win"
    assert rungs["latency_1"]["success"] and rungs["latency_2"]["success"], (
        "latency >= 1 should leave MultiCast standing (the paper's conjecture)"
    )
