"""EXP-RHO — the (rho, tau) envelope over the strategy gallery (Def. 3.1).

Scale note: this bench uses a = 0.1 (twice the default iteration length) so
the epidemic completes with margin even under 2/3-duty blackouts — at small
a, a ~50% duty blanket can park the noise estimate exactly on the R·p/2
threshold while dissemination is still in flight, a finite-scale artifact of
the "sufficiently large a" the paper assumes.

Claim: resource competitiveness quantifies over *arbitrary* oblivious
strategies: max_u cost(u) <= rho(T(pi)) + tau for every execution pi.

Regenerated as: every gallery strategy at a common budget against
``MultiCast``; tau is measured on the jam-free run; the envelope check is
that every strategy's extra cost stays a small fraction of her actual spend
(and the broadcast always completes).  This is the closest executable
statement of Definition 3.1 the simulation allows.
"""

import pytest

from benchmarks.conftest import run_once
from repro import (
    BlanketJammer,
    FractionalJammer,
    FrontLoadedJammer,
    MultiCast,
    PeriodicBurstJammer,
    RandomJammer,
    SweepJammer,
    run_broadcast,
)
from repro.analysis import render_table

N = 64
T = 2_000_000

GALLERY = {
    "blanket 90% rnd": lambda seed: BlanketJammer(T, channels=0.9, placement="random", seed=seed),
    "blanket all": lambda seed: BlanketJammer(T, channels=1.0, seed=seed),
    "fractional 80/90": lambda seed: FractionalJammer(T, 0.8, 0.9, seed=seed),
    "front-loaded": lambda seed: FrontLoadedJammer(T),
    "bursts 60/90": lambda seed: PeriodicBurstJammer(T, period=90, burst=60, channels=1.0, seed=seed),
    "sweep w=24": lambda seed: SweepJammer(T, width=24, seed=seed),
    "random p=.8": lambda seed: RandomJammer(T, 0.8, seed=seed),
}


def experiment():
    tau_run = run_broadcast(MultiCast(N, a=0.1), N, seed=31)
    tau = tau_run.max_cost
    rows = [["(none)", "yes", tau_run.slots, 0, tau, 0, float("nan")]]
    out = []
    for name, make in GALLERY.items():
        r = run_broadcast(MultiCast(N, a=0.1), N, adversary=make(97), seed=31)
        extra = r.max_cost - tau
        ratio = extra / r.adversary_spend if r.adversary_spend else float("nan")
        rows.append(
            [name, "yes" if r.success else "NO", r.slots, r.adversary_spend, r.max_cost, extra, ratio]
        )
        out.append((name, r, extra, ratio))
    print()
    print(
        render_table(
            ["strategy", "ok", "slots", "T(pi)", "max cost", "extra (rho)", "extra/T"],
            rows,
            title=f"EXP-RHO  Definition 3.1 envelope, MultiCast n={N}, budget {T:,}",
        )
    )
    return out


@pytest.mark.benchmark(group="EXP-RHO")
def test_envelope_over_gallery(benchmark):
    out = run_once(benchmark, experiment)
    for name, r, extra, ratio in out:
        assert r.success, name
        # rho(T)/T small uniformly over the gallery: Eve never gets even a
        # 5% exchange rate on her energy
        if r.adversary_spend > 0:
            assert extra <= 0.05 * r.adversary_spend, (name, extra, r.adversary_spend)
