"""EXP-T4.4 — MultiCastCore time and cost vs T (Theorem 4.4).

Claim: with n/2 channels, every node receives the message, and each node's
cost and active period is O(T/n + max{lg T, lg n}).

Regenerated as: sweep Eve's budget T with a 90%-blanket jammer at n = 16 and
check (a) all runs succeed, (b) both time and per-node cost grow ~linearly in
T (slope ~1 on the jammed range), and (c) time stays within a constant of the
theorem's T/n + lg T-hat shape normalized at the largest point.

Scale note: n = 16 with a = 4096 keeps the additive a·lg T-hat term small
enough that the sweep actually reaches the T/n-dominated regime (blocking one
iteration costs Eve ~0.2 · (n/2) · 0.2 · R; budgets are chosen to block 1-12
iterations).
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro import BlanketJammer, MultiCastCore
from repro.analysis import fit_loglog_slope, render_table, sweep, theory

N = 16
BUDGETS = [0, 1_000_000, 2_000_000, 4_000_000, 8_000_000]


def experiment():
    sw = sweep(
        "T",
        BUDGETS,
        lambda T: MultiCastCore(n=N, T=max(int(T), N), a=4096.0),
        lambda T: N,
        lambda T, seed: (
            BlanketJammer(budget=int(T), channels=0.9, placement="random", seed=seed)
            if T
            else None
        ),
        trials=3,
        base_seed=44,
    )
    pred = theory.normalize_to(
        theory.multicast_core_time(np.maximum(sw.values, 1), N), sw.means("slots")
    )
    rows = [
        [p.value, p.mean("slots"), pred[i], p.mean("max_cost"), p.batch.success_rate]
        for i, p in enumerate(sw)
    ]
    print()
    print(
        render_table(
            ["T", "slots (meas)", "slots (Thm 4.4 shape)", "max cost", "success"],
            rows,
            title=f"EXP-T4.4  MultiCastCore, n={N}, blanket 90% jammer",
        )
    )
    return sw, pred


@pytest.mark.benchmark(group="EXP-T4.4")
def test_multicast_core_linear_in_budget(benchmark):
    sw, pred = run_once(benchmark, experiment)
    assert (sw.success_rates == 1.0).all()
    assert sw.total_violations == 0
    jammed = sw.values > 0
    time_fit = fit_loglog_slope(sw.values[jammed], sw.means("slots")[jammed])
    cost_fit = fit_loglog_slope(sw.values[jammed], sw.means("max_cost")[jammed])
    # linear-in-T shape (iteration quantization makes measured slopes step,
    # hence the loose band around 1)
    assert 0.5 < time_fit.exponent < 1.4, time_fit
    assert 0.5 < cost_fit.exponent < 1.4, cost_fit
    # measured curve within a constant of the theorem shape across the
    # T-dominated range (the T = 0 additive term carries the protocol's
    # a-scale, which the normalized shape deliberately does not model)
    ratio = sw.means("slots")[jammed] / pred[jammed]
    assert ratio.max() / ratio.min() < 6.0
