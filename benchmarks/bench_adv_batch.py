"""EXP-ADV-BATCH — the lane-batched MultiCastAdv/MultiCastAdvC kernel.

Engineering baseline, not a paper claim (the DESIGN.md section 9 analogue of
``bench_engine.py``'s section-6 figure): ``run_trials`` over the batched
Fig. 4/6 kernel (``repro.core.adv_batch``) vs. the scalar per-lane loop, at
the laptop profile the committed campaigns use.  The kernel's acceptance bar
is **>= 5x** on the uncapped ``adv`` case — the family that was genuinely
minutes-per-trial on the scalar path (huge channel spaces force its sparse
resolver) — recorded in the committed ``benchmarks/BENCH_adv_batch.json``;
the in-test assertion is a loose floor so a loaded CI runner cannot flake
the suite.  The channel-capped ``adv_c`` case lands lower (~2.5x): at
C <= 8 the scalar dense-grid resolver was never the bottleneck, and both
backends converge on the per-lane RNG draw floor (DESIGN.md section 6.3's
"draws are the floor" applies verbatim).  End-to-end trial sets include
the halt-race straggler (the slowest lane finishes its last epochs with
the batch mostly drained), so these figures are what campaigns actually
see, not a best-case kernel number.

The backends must agree bit for bit before timing means anything — the same
contract ``tests/core/test_batch_equivalence.py`` enforces — so each case
re-asserts per-trial equality here too.

Regenerate the baseline with::

    REPRO_BENCH_JSON=benchmarks PYTHONPATH=src pytest benchmarks/bench_adv_batch.py -q -s

``REPRO_BENCH_SMOKE=1`` shrinks the workload to CI size.
"""

import time

import pytest

from benchmarks.conftest import run_once, smoke_mode
from repro import MultiCastAdv
from repro.analysis import render_table
from repro.analysis.stats import run_trials
from repro.core.limited import MultiCastAdvC
from repro.exp.registry import build_jammer

N = 8
BUDGET = 100_000
BASE_SEED = 1  # a pinned all-complete trial set (benches pin seeds anyway)
#: laptop-scale knobs (DESIGN.md section 2.2); structural constants are the
#: paper's.  max_epochs caps a (rare) stranded run like the campaign profile.
KNOBS = dict(alpha=0.24, b=0.01, halt_noise_divisor=50.0, helper_wait=4.0, max_epochs=30)
#: trials per kernel pass — the adv kernel amortizes per-block overhead
#: across lanes, and at n = 16 the per-lane working set is small, so wider
#: lanes win (unlike the n = 64 shared-coin kernel's cache-bound width 2)
LANE_WIDTH = 8


def _assert_bit_identical(scalar_batch, batched_batch):
    for a, b in zip(scalar_batch.results, batched_batch.results):
        assert a.slots == b.slots
        assert (a.node_energy == b.node_energy).all()
        assert (a.informed_slot == b.informed_slot).all()
        assert (a.halt_slot == b.halt_slot).all()


@pytest.mark.benchmark(group="EXP-ADV-BATCH")
def test_adv_batched_vs_scalar(benchmark, bench_json):
    """The acceptance figure: jammed MultiCastAdv and MultiCastAdvC trials
    through the lane-batched kernel vs. the scalar loop."""
    trials = 4 if smoke_mode() else 8

    def jammer_factory(seed):
        return build_jammer("blanket", BUDGET, seed, n=N)

    cases = {
        "adv": lambda: MultiCastAdv(**KNOBS),
        "adv_c(C=4)": lambda: MultiCastAdvC(4, **KNOBS),
    }

    def experiment():
        figures = {}
        rows = []
        for name, factory in cases.items():
            timings = {}
            batches = {}
            for backend in ("scalar", "batched"):
                t0 = time.perf_counter()
                batches[backend] = run_trials(
                    factory,
                    N,
                    jammer_factory,
                    trials=trials,
                    base_seed=BASE_SEED,
                    label="bench-adv-batch",
                    backend=backend,
                    lane_width=LANE_WIDTH,
                    max_slots=400_000_000,
                )
                timings[backend] = time.perf_counter() - t0
            _assert_bit_identical(batches["scalar"], batches["batched"])
            total_slots = int(batches["batched"].slots.sum())
            figures[name] = {
                "scalar_s": round(timings["scalar"], 3),
                "batched_s": round(timings["batched"], 3),
                "speedup": round(timings["scalar"] / timings["batched"], 2),
                "trials_per_s_scalar": round(trials / timings["scalar"], 2),
                "trials_per_s_batched": round(trials / timings["batched"], 2),
                "slots_per_s_batched": round(total_slots / timings["batched"]),
                "success_rate": batches["batched"].success_rate,
            }
            rows.append(
                [
                    name,
                    f"{timings['scalar']:.2f}",
                    f"{timings['batched']:.2f}",
                    f"{figures[name]['speedup']:.2f}x",
                    f"{batches['batched'].success_rate:.0%}",
                ]
            )
        print()
        print(
            render_table(
                ["protocol", "scalar (s)", "batched (s)", "speedup", "ok"],
                rows,
                title=(
                    f"EXP-ADV-BATCH  batched vs scalar MultiCastAdv kernel "
                    f"(n={N}, k={trials}, blanket T={BUDGET:,}, lanes={LANE_WIDTH})"
                ),
            )
        )
        return figures

    figures = run_once(benchmark, experiment)
    bench_json.record(
        config={
            "n": N,
            "trials": trials,
            "base_seed": BASE_SEED,
            "budget": BUDGET,
            "jammer": "blanket",
            "lane_width": LANE_WIDTH,
            "knobs": KNOBS,
        },
    )
    floors = {"adv": 2.5, "adv_c(C=4)": 1.3}  # loose CI floors; the
    # committed baseline records adv >= 5x (the acceptance bar) and the
    # draws-floor-bound adv_c ~2.5x
    for name, f in figures.items():
        entry = bench_json.record_speedup(
            name,
            baseline_s=f["scalar_s"],
            fast_s=f["batched_s"],
            floor=floors[name],
            trials_per_s_scalar=f["trials_per_s_scalar"],
            trials_per_s_batched=f["trials_per_s_batched"],
            slots_per_s_batched=f["slots_per_s_batched"],
            success_rate=f["success_rate"],
        )
        assert entry["speedup"] > entry["floor"], (name, entry)
        assert entry["success_rate"] == 1.0, (name, entry)
