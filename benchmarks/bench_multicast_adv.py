"""EXP-T6.10 — MultiCastAdv vs a timetable-targeting Eve (Theorem 6.10).

Claim: without knowing n or T, all nodes receive the message and terminate
within Õ(T/n^{1−2α} + n^{2α}) slots at per-node cost Õ(√(T/n^{1−2α}) + n^{2α}).

Eve's best play (section 6.1): she knows the public timetable, so she burns
her budget exactly inside the "good" phases j = lg n − 1 where the channel
guess is right.  Regenerated as: budget sweep with a ``PhaseTargetedJammer``
on those phases at n = 16; checks (a) success everywhere, (b) time and cost
grow sublinearly-in-T but monotonically, (c) cost grows distinctly slower
than time (the √ separation), and (d) a jam-free α comparison: larger α pays
a larger additive n^{2α} term.

Scale note: laptop-scale knobs (b, halt divisor, helper wait) per DESIGN.md
section 2.2; structural constants are the paper's.
"""

import pytest

from benchmarks.conftest import run_once
from repro import MultiCastAdv, PhaseTargetedJammer, run_broadcast
from repro.analysis import fit_loglog_slope, render_table, run_trials
from repro.core.schedule import multicast_adv_spans, phase_intervals

N = 16
GOOD_PHASE = 3  # lg n - 1
KNOBS = dict(alpha=0.24, b=0.05, halt_noise_divisor=50.0, helper_wait=4.0)
BUDGETS = [0, 250_000, 1_000_000, 4_000_000]
MAX_EPOCHS = 30  # ends a (rare) stranded run in minutes instead of hours


def make_adversary(T, seed):
    if not T:
        return None
    proto = MultiCastAdv(**KNOBS)  # timetable only; epochs cap not relevant
    intervals = phase_intervals(multicast_adv_spans(proto, 40), phase=GOOD_PHASE)
    return PhaseTargetedJammer(
        budget=int(T), intervals=intervals, channel_fraction=1.0, seed=seed
    )


def experiment():
    rows = []
    series = []
    for T in BUDGETS:
        batch = run_trials(
            lambda: MultiCastAdv(**KNOBS, max_epochs=MAX_EPOCHS),
            N,
            (lambda seed, T=T: make_adversary(T, seed)),
            trials=2,
            base_seed=84,
            max_slots=400_000_000,
            label=f"T={T}",
        )
        rows.append(
            [
                T,
                batch.summary("slots").mean,
                batch.summary("max_cost").mean,
                batch.summary("adversary_spend").mean,
                batch.success_rate,
            ]
        )
        series.append((T, batch))
    print()
    print(
        render_table(
            ["T (budget)", "slots", "max cost", "Eve spent", "success"],
            rows,
            title=f"EXP-T6.10  MultiCastAdv (alpha={KNOBS['alpha']}) vs good-phase jammer, n={N}",
        )
    )
    return series


@pytest.mark.benchmark(group="EXP-T6.10")
def test_multicast_adv_budget_sweep(benchmark):
    series = run_once(benchmark, experiment)
    for T, batch in series:
        assert batch.success_rate == 1.0, f"T={T}"
        assert batch.violations == 0
    slots = [b.summary("slots").mean for _, b in series]
    costs = [b.summary("max_cost").mean for _, b in series]
    # (b) monotone in budget over the jammed range.  (The T = 0 anchor is
    # excluded from ordering claims: jam-free termination is dominated by
    # *when the last straggler acquires helper status*, a heavy-tailed race
    # at laptop-scale concentration — a single late trial can push the
    # jam-free mean past small-budget jammed runs.)
    assert slots[1] < slots[2] < slots[3]
    assert costs[1] < costs[2] < costs[3]
    # (c) the sqrt separation: over the jammed range, cost exponent is
    # clearly below the time exponent
    jam_T = [float(T) for T, _ in series[1:]]
    t_fit = fit_loglog_slope(jam_T, slots[1:])
    c_fit = fit_loglog_slope(jam_T, costs[1:])
    assert c_fit.exponent < t_fit.exponent
    # (competitiveness) cost grows ~sqrt in the budget: a 16x budget
    # increase raises the max node cost by well under 16x
    assert costs[-1] / costs[1] < 8.0


@pytest.mark.benchmark(group="EXP-T6.10")
def test_alpha_tradeoff_jam_free(benchmark):
    """Theorem 6.10's additive term n^{2α}·lg³n: with no jamming, larger α
    should not make the protocol cheaper (the exponent trades against the
    hidden constant; at fixed scale knobs the additive term dominates)."""

    def run():
        out = {}
        for alpha in (0.18, 0.24):
            knobs = dict(KNOBS)
            knobs["alpha"] = alpha
            batch = run_trials(
                lambda: MultiCastAdv(**knobs, max_epochs=MAX_EPOCHS),
                N,
                trials=2,
                base_seed=94,
                max_slots=400_000_000,
                label=f"alpha={alpha}",
            )
            out[alpha] = batch
        rows = [
            [a, b.summary("slots").mean, b.summary("max_cost").mean, b.success_rate]
            for a, b in out.items()
        ]
        print()
        print(
            render_table(
                ["alpha", "slots", "max cost", "success"],
                rows,
                title="EXP-T6.10  jam-free additive term vs alpha",
            )
        )
        return out

    out = run_once(benchmark, run)
    for alpha, batch in out.items():
        assert batch.success_rate == 1.0, f"alpha={alpha}"
