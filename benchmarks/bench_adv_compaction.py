"""EXP-ADV-COMPACTION — continuous lane batching vs fixed lockstep blocks.

Engineering baseline for DESIGN.md section 13: the adv stream driver
(``run_adv_stream``, compaction + refill) against the fixed-block driver
(``run_broadcast_batch`` in ``batch_lane_width``-sized chunks) on a
staggered-exit workload — per eight trials, seven truncate at a small slot
cap and one runs to completion.

The two drivers do the *same* per-lane work (the per-lane RNG draws are a
pure function of each trial's seed — that is the schedule-invariance
contract), so what the bench measures is batching economics: the fixed
path retires lanes mid-block but cannot admit new ones, so its kernel
passes run ever narrower and the per-pass overhead stops amortizing;
the stream refills freed slots from the pending queue and merges many
lanes per pass.  Compaction is also what makes *wide* widths viable —
``MultiCastAdv.stream_lane_width`` (32) vs its lockstep
``batch_lane_width`` (8) — so the bench compares the two drivers at their
advertised production widths.  The workload runs the protocol in its
small-phase regime (b = 1e-4), where per-pass overhead dominates per-row
kernel work and the pass count is the bill: the stream covers the same
trials in ~5x fewer kernel passes.

The committed ``benchmarks/BENCH_adv_compaction.json`` records the
acceptance figures: **>= 1.5x** end-to-end on this workload, the straggler
telemetry (``adv_batch.solo_slots`` — slots simulated with the batch
drained to one lane) collapsing under compaction, and the stream's
lane-occupancy fraction.  The in-test floors are looser (a loaded CI
runner must not flake): speedup > 1.2, solo slots at most half the fixed
path's, occupancy fraction >= 0.4.

Both paths must agree bit for bit before timing means anything — the
contract ``tests/core/test_lane_schedule_invariance.py`` proves in general
is re-asserted here on the exact workload being timed.

Regenerate the baseline with::

    REPRO_BENCH_JSON=benchmarks PYTHONPATH=src pytest benchmarks/bench_adv_compaction.py -q -s

``REPRO_BENCH_SMOKE=1`` shrinks the workload to CI size.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import run_once, smoke_mode
from repro import MultiCastAdv
from repro.analysis import render_table
from repro.core import run_broadcast_batch
from repro.core.batch import run_broadcast_stream
from repro.exp.registry import build_jammer
from repro.obs import collect_telemetry

N = 8
BUDGET = 100_000
BASE_SEED = 1
#: small-phase regime: R(i, j) stays near 1 for many epochs, so kernel
#: passes are overhead-bound and batching width is what pays
KNOBS = dict(alpha=0.24, b=0.0001, halt_noise_divisor=50.0, helper_wait=4.0, max_epochs=30)
FIXED_WIDTH = MultiCastAdv(**KNOBS).batch_lane_width
STREAM_WIDTH = MultiCastAdv(**KNOBS).stream_lane_width
#: staggered-exit stripe: 7 budget-truncated trials + 1 full run per eight
SHORT_CAP = 1_000
LONG_CAP = 400_000_000


def _workload(trials):
    seeds = [BASE_SEED + t for t in range(trials)]
    caps = [LONG_CAP if t % 8 == 7 else SHORT_CAP for t in range(trials)]
    return seeds, caps


def _jammers(trials):
    return [build_jammer("blanket", BUDGET, 1000 + t, n=N) for t in range(trials)]


def _assert_bit_identical(stream_rows, fixed_rows):
    assert len(stream_rows) == len(fixed_rows)
    for a, b in zip(stream_rows, fixed_rows):
        assert a.slots == b.slots
        assert a.completed == b.completed
        assert (a.node_energy == b.node_energy).all()
        assert (a.informed_slot == b.informed_slot).all()
        assert (a.halt_slot == b.halt_slot).all()


@pytest.mark.benchmark(group="EXP-ADV-COMPACTION")
def test_compaction_beats_fixed_blocks_on_staggered_exits(benchmark, bench_json):
    trials = 40 if smoke_mode() else 64
    seeds, caps = _workload(trials)

    def run_fixed():
        rows = []
        for k in range(0, trials, FIXED_WIDTH):
            rows.extend(
                run_broadcast_batch(
                    MultiCastAdv(**KNOBS),
                    N,
                    _jammers(trials)[k : k + FIXED_WIDTH],
                    seeds[k : k + FIXED_WIDTH],
                    max_slots=np.asarray(caps[k : k + FIXED_WIDTH]),
                )
            )
        return rows

    def run_stream():
        return run_broadcast_stream(
            MultiCastAdv(**KNOBS),
            N,
            _jammers(trials),
            seeds,
            max_slots=np.asarray(caps),
            lane_width=STREAM_WIDTH,
        )

    def timed(fn):
        with collect_telemetry() as tel:
            t0 = time.perf_counter()
            rows = fn()
            wall = time.perf_counter() - t0
            counters = tel.take_aggregates()["counters"]
        return rows, wall, counters

    def experiment():
        fixed_rows, fixed_s, fixed_c = timed(run_fixed)
        stream_rows, stream_s, stream_c = timed(run_stream)
        _assert_bit_identical(stream_rows, fixed_rows)
        assert stream_c["adv_batch.lanes"] == trials
        lane = stream_c["adv_batch.lane_passes"]
        idle = stream_c.get("adv_batch.idle_lane_passes", 0)
        figures = {
            "fixed_s": round(fixed_s, 3),
            "stream_s": round(stream_s, 3),
            "speedup": round(fixed_s / stream_s, 2),
            "fixed_passes": int(fixed_c["adv_batch.kernel_passes"]),
            "stream_passes": int(stream_c["adv_batch.kernel_passes"]),
            "fixed_solo_slots": int(fixed_c.get("adv_batch.solo_slots", 0)),
            "stream_solo_slots": int(stream_c.get("adv_batch.solo_slots", 0)),
            "fixed_straggler_slots": int(fixed_c.get("adv_batch.straggler_slots", 0)),
            "stream_refills": int(stream_c.get("adv_batch.refills", 0)),
            "stream_occupancy_fraction": round(lane / (lane + idle), 3),
        }
        print()
        print(
            render_table(
                ["driver", "wall (s)", "kernel passes", "solo slots", "occupancy"],
                [
                    [
                        f"fixed blocks (w={FIXED_WIDTH})",
                        f"{fixed_s:.2f}",
                        f"{figures['fixed_passes']:,}",
                        f"{figures['fixed_solo_slots']:,}",
                        "-",
                    ],
                    [
                        f"lane stream (w={STREAM_WIDTH})",
                        f"{stream_s:.2f}",
                        f"{figures['stream_passes']:,}",
                        f"{figures['stream_solo_slots']:,}",
                        f"{figures['stream_occupancy_fraction']:.0%}",
                    ],
                ],
                title=(
                    f"EXP-ADV-COMPACTION  stream vs fixed MultiCastAdv "
                    f"(n={N}, k={trials}, 7-short/1-long stripes, "
                    f"speedup {figures['speedup']:.2f}x)"
                ),
            )
        )
        return figures

    figures = run_once(benchmark, experiment)
    bench_json.record(
        config={
            "n": N,
            "trials": trials,
            "base_seed": BASE_SEED,
            "budget": BUDGET,
            "jammer": "blanket",
            "fixed_lane_width": FIXED_WIDTH,
            "stream_lane_width": STREAM_WIDTH,
            "short_cap": SHORT_CAP,
            "long_cap": LONG_CAP,
            "knobs": KNOBS,
        },
    )
    entry = bench_json.record_speedup(
        "adv staggered exits",
        baseline_s=figures["fixed_s"],
        fast_s=figures["stream_s"],
        floor=1.2,  # loose CI floor; the committed baseline records >= 1.5x
        fixed_passes=figures["fixed_passes"],
        stream_passes=figures["stream_passes"],
        fixed_solo_slots=figures["fixed_solo_slots"],
        stream_solo_slots=figures["stream_solo_slots"],
        fixed_straggler_slots=figures["fixed_straggler_slots"],
        stream_refills=figures["stream_refills"],
        stream_occupancy_fraction=figures["stream_occupancy_fraction"],
    )
    assert entry["speedup"] > entry["floor"], entry
    # the whole point of compaction: the straggler tail stops running solo
    assert (
        figures["stream_solo_slots"] <= figures["fixed_solo_slots"] / 2
    ), figures
    # refilled slots keep the kernel wide while trials remain
    assert figures["stream_occupancy_fraction"] >= 0.4, figures
    assert figures["stream_refills"] == trials - min(STREAM_WIDTH, trials)
    # merging is the mechanism: the stream must cover the same lane work
    # in far fewer kernel passes
    assert figures["stream_passes"] * 2 <= figures["fixed_passes"], figures
