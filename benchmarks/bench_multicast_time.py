"""EXP-T5.4t — MultiCast running time vs T (Theorem 5.4a).

Claim: all nodes receive the message and terminate within O(T/n + lg²n)
slots, w.h.p.

Regenerated as: budget sweep at n = 64 under a 90%-blanket jammer.  Checks:
(a) every run succeeds; (b) time grows ~linearly in T over the jammed range;
(c) the time/(T/n) ratio is bounded by a constant once T dominates the
additive lg²n term.
"""

import pytest

from benchmarks.conftest import run_once
from repro import BlanketJammer, MultiCast
from repro.analysis import fit_loglog_slope, render_table, sweep

N = 64
BUDGETS = [0, 500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000, 16_000_000]


def experiment():
    sw = sweep(
        "T",
        BUDGETS,
        lambda T: MultiCast(N, a=0.05),
        lambda T: N,
        lambda T, seed: (
            BlanketJammer(budget=int(T), channels=0.9, placement="random", seed=seed)
            if T
            else None
        ),
        trials=3,
        base_seed=54,
    )
    rows = [
        [
            p.value,
            p.mean("slots"),
            (p.mean("slots") / (p.value / N)) if p.value else float("nan"),
            p.mean("dissemination_slots"),
            p.batch.success_rate,
        ]
        for p in sw
    ]
    print()
    print(
        render_table(
            ["T", "slots", "slots/(T/n)", "disseminated by", "success"],
            rows,
            title=f"EXP-T5.4t  MultiCast time vs budget, n={N}",
        )
    )
    return sw


@pytest.mark.benchmark(group="EXP-T5.4")
def test_multicast_time_linear_in_budget(benchmark):
    sw = run_once(benchmark, experiment)
    assert (sw.success_rates == 1.0).all()
    assert sw.total_violations == 0
    jammed = sw.values >= 1_000_000
    fit = fit_loglog_slope(sw.values[jammed], sw.means("slots")[jammed])
    assert 0.5 < fit.exponent < 1.4, fit
    # constant-bounded ratio to T/n on the T-dominated range
    ratios = sw.means("slots")[jammed] / (sw.values[jammed] / N)
    assert ratios.max() / ratios.min() < 6.0
    # monotone: more budget never speeds the broadcast up
    slots = sw.means("slots")
    assert all(slots[i] <= slots[i + 1] + 1e-9 for i in range(len(slots) - 1))
