"""EXP-SHARD — memory-bounded streaming aggregation at million-row scale.

Claim (DESIGN.md section 10.2): :func:`repro.exp.store.stream_aggregate`
reduces a sharded million-trial store in memory proportional to the numeric
payload — tens of bytes per row for exact-quantile statistics — where the
materializing path (:class:`ResultStore` + :func:`aggregate`) costs a full
Python record object per row.  The store format is the bottleneck a 10^6-row
campaign actually hits: the trials themselves are embarrassingly parallel,
but the reduction has to run somewhere, once, on one machine.

Regenerated as: a synthetic store of ``ROWS`` JSONL trial records over a
24-cell grid (seeded numpy draws; the aggregation layer cannot tell them
from real trials), streamed through ``stream_aggregate`` under
``tracemalloc``, against the materializing path on a capped slice of the
same store (materializing the full million would defeat the point).  The
shape assertions pin bytes-per-row bounds and the streaming-vs-materialized
ratio, never absolute wall times.
"""

import json
import os
import tracemalloc

import numpy as np
import pytest

from benchmarks.conftest import run_once, smoke_mode
from repro.analysis import render_table
from repro.exp import ResultStore, aggregate, merge_shards, shard_path
from repro.exp.store import stream_aggregate

#: full scale demonstrates the million-row claim; smoke keeps CI in seconds
ROWS = 60_000 if smoke_mode() else 1_000_000
#: the materializing comparison is capped — record objects at 10^6 rows
#: would need gigabytes, which is exactly the failure mode under test
MATERIALIZE_CAP = 20_000 if smoke_mode() else 100_000

PROTOCOLS = ("core", "multicast", "multicast_c", "adv")
JAMMERS = ("none", "blanket", "bursts", "sweep", "random", "phase_targeted")
CELLS = [(p, j, 64, 100_000) for p in PROTOCOLS for j in JAMMERS]


def write_synthetic_store(path: str, rows: int, seed: int = 0) -> None:
    """``rows`` trial records round-robined over the cell grid, written as
    raw JSONL (same dialect ``ResultStore.append`` produces)."""
    rng = np.random.default_rng(seed)
    slots = rng.integers(1_000, 2_000_000, size=rows)
    max_cost = rng.integers(10, 400, size=rows)
    mean_cost = rng.uniform(5.0, 200.0, size=rows)
    spend = rng.integers(0, 100_000, size=rows)
    success = rng.random(size=rows) < 0.98
    with open(path, "w") as fh:
        for i in range(rows):
            protocol, jammer, n, budget = CELLS[i % len(CELLS)]
            trial = i // len(CELLS)
            diss = int(slots[i]) - 50 if success[i] else None
            fh.write(
                json.dumps(
                    {
                        "key": f"{protocol}/{jammer}/n{n}/T{budget}/s0/t{trial}",
                        "protocol": protocol,
                        "jammer": jammer,
                        "n": n,
                        "budget": budget,
                        "trial": trial,
                        "success": bool(success[i]),
                        "slots": int(slots[i]),
                        "max_cost": int(max_cost[i]),
                        "mean_cost": float(mean_cost[i]),
                        "adversary_spend": int(spend[i]),
                        "dissemination_slot": diss,
                        "halted_uninformed": 0,
                        "periods": 3,
                        "channels": None,
                        "protocol_label": "",
                        "wall_time": 0.0,
                    },
                    sort_keys=True,
                )
                + "\n"
            )


def peak_bytes(fn):
    """(result, tracemalloc peak) of one call."""
    tracemalloc.start()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


@pytest.mark.benchmark(group="shard")
def test_streaming_aggregation_is_memory_bounded(benchmark, bench_json, tmp_path):
    store_path = str(tmp_path / "million.jsonl")
    cap_path = str(tmp_path / "capped.jsonl")

    def experiment():
        write_synthetic_store(store_path, ROWS)
        cells, stream_peak = peak_bytes(lambda: stream_aggregate(store_path))

        # the materializing path, on a row count it can afford
        write_synthetic_store(cap_path, MATERIALIZE_CAP)
        mat_cells, mat_peak = peak_bytes(
            lambda: aggregate(ResultStore(cap_path).records())
        )
        stream_cap_cells, stream_cap_peak = peak_bytes(
            lambda: stream_aggregate(cap_path)
        )
        return cells, stream_peak, mat_cells, mat_peak, stream_cap_cells, stream_cap_peak

    cells, stream_peak, mat_cells, mat_peak, stream_cap_cells, stream_cap_peak = (
        run_once(benchmark, experiment)
    )
    stream_bpr = stream_peak / ROWS
    mat_bpr = mat_peak / MATERIALIZE_CAP
    stream_cap_bpr = stream_cap_peak / MATERIALIZE_CAP

    print()
    print(
        render_table(
            ["path", "rows", "peak MiB", "bytes/row"],
            [
                ["stream_aggregate", ROWS, f"{stream_peak / 2**20:.1f}", f"{stream_bpr:.0f}"],
                [
                    "stream_aggregate (capped)",
                    MATERIALIZE_CAP,
                    f"{stream_cap_peak / 2**20:.1f}",
                    f"{stream_cap_bpr:.0f}",
                ],
                [
                    "records() + aggregate",
                    MATERIALIZE_CAP,
                    f"{mat_peak / 2**20:.1f}",
                    f"{mat_bpr:.0f}",
                ],
            ],
            title=f"store reduction peak memory, {len(CELLS)} cells",
        )
    )
    bench_json.record(
        config={"rows": ROWS, "materialize_cap": MATERIALIZE_CAP, "cells": len(CELLS)},
        stream_peak_bytes=stream_peak,
        stream_bytes_per_row=round(stream_bpr, 1),
        materialized_peak_bytes=mat_peak,
        materialized_bytes_per_row=round(mat_bpr, 1),
        stream_capped_peak_bytes=stream_cap_peak,
        memory_ratio_at_cap=round(mat_bpr / stream_cap_bpr, 1),
    )

    # the claim: streaming holds tens of bytes per row (5 metrics x 8 bytes
    # plus buffer-growth slack), the materializing path pays a record object
    assert len(cells) == len(CELLS)
    assert sum(c.trials for c in cells) == ROWS
    assert stream_bpr < 150, f"streaming peak {stream_bpr:.0f} B/row"
    assert mat_bpr > 4 * stream_cap_bpr, (
        f"materialized {mat_bpr:.0f} B/row vs streamed {stream_cap_bpr:.0f} B/row"
    )

    # and both reductions agree (exact counts, float-tolerance summaries)
    assert [c.cell for c in mat_cells] == [c.cell for c in stream_cap_cells]
    for a, b in zip(mat_cells, stream_cap_cells):
        assert a.trials == b.trials
        for metric in ("slots", "max_cost", "mean_cost"):
            assert a.summaries[metric].mean == pytest.approx(
                b.summaries[metric].mean, rel=1e-9
            )
            assert a.summaries[metric].median == b.summaries[metric].median


@pytest.mark.benchmark(group="shard")
def test_shard_merge_throughput(benchmark, bench_json, tmp_path):
    """Merging worker shards is a deterministic key-sorted pass; at a tenth
    of the full scale it must stay comfortably in the seconds range."""
    rows = ROWS // 10
    workers = 4
    store_path = str(tmp_path / "merged.jsonl")
    scratch = str(tmp_path / "scratch.jsonl")
    write_synthetic_store(scratch, rows)
    with open(scratch) as fh:
        lines = fh.read().splitlines()
    os.remove(scratch)
    for worker in range(workers):
        with open(shard_path(store_path, worker), "w") as fh:
            fh.write("\n".join(lines[worker::workers]) + "\n")

    def experiment():
        store = ResultStore(store_path, materialize=False)
        merged = merge_shards(store)
        store.close()
        return merged

    merged = run_once(benchmark, experiment)
    assert merged == rows
    keys = [json.loads(line)["key"] for line in open(store_path)]
    assert keys == sorted(keys), "merge must write canonical key order"
    bench_json.record(config={"rows": rows, "workers": workers}, merged=merged)
