"""EXP-T7.2 — MultiCastAdv(C): the cut-off variant (Theorem 7.2).

Claim: with C channels, all nodes receive the message and terminate within
Õ(T/C^{1−2α} + n^{2+2α}/C^{2−2α}) slots at cost Õ(√(T/C^{1−2α}) + ...) — Eve
must now only beat the j = lg C phases, so both terms degrade as C shrinks,
but correctness and competitiveness survive at any C >= 1.

Regenerated as: C sweep at n = 16 with a fixed-budget jammer targeting the
boundary phases j = lg C (Eve's best play per Definition C.3); plus the
C > n/2 case, which must match plain ``MultiCastAdv`` (Theorem 7.2 case 1).
Checks: (a) success at every C; (b) helpers form at the cut-off phase
j = lg C when C <= n/2; (c) jam-free time grows as C shrinks (the
n^{2+2α}/C^{2−2α} additive term).
"""

import math

import pytest

from benchmarks.conftest import run_once
from repro import MultiCastAdvC, PhaseTargetedJammer, run_broadcast
from repro.analysis import render_table, run_trials
from repro.core.schedule import multicast_adv_spans, phase_intervals

N = 16
T = 150_000
KNOBS = dict(alpha=0.24, b=0.05, halt_noise_divisor=50.0, helper_wait=4.0)
MAX_EPOCHS = 32
CHANNELS = [2, 4, 8, 64]  # 64 > n/2: the "same as unlimited" case


def make_adversary(C, seed):
    proto = MultiCastAdvC(C, **KNOBS)
    target = proto.max_phase if C <= N // 2 else int(math.log2(N)) - 1
    intervals = phase_intervals(multicast_adv_spans(proto, 40), phase=target)
    return PhaseTargetedJammer(budget=T, intervals=intervals, channel_fraction=1.0, seed=seed)


def experiment():
    rows = []
    out = []
    for C in CHANNELS:
        batch = run_trials(
            lambda C=C: MultiCastAdvC(C, **KNOBS, max_epochs=MAX_EPOCHS),
            N,
            (lambda seed, C=C: make_adversary(C, seed)),
            trials=2,
            base_seed=114,
            max_slots=600_000_000,
            label=f"C={C}",
        )
        helper_phases = set()
        for r in batch.results:
            helper_phases |= set(r.extras["helper_phase"].tolist())
        rows.append(
            [
                C,
                batch.summary("slots").mean,
                batch.summary("max_cost").mean,
                batch.success_rate,
                sorted(helper_phases),
            ]
        )
        out.append((C, batch, helper_phases))
    print()
    print(
        render_table(
            ["C", "slots", "max cost", "success", "helper phases ĵ"],
            rows,
            title=f"EXP-T7.2  MultiCastAdv(C), n={N}, boundary-phase jammer T={T:,}",
        )
    )
    return out


@pytest.mark.benchmark(group="EXP-T7.2")
def test_limited_adv_cutoff(benchmark):
    out = run_once(benchmark, experiment)
    slots = {}
    for C, batch, helper_phases in out:
        assert batch.success_rate == 1.0, f"C={C}"
        assert batch.violations == 0
        slots[C] = batch.summary("slots").mean
        if C <= N // 2:
            # (b) helpers only at/below the cut-off; concentrated at j = lg C
            cutoff = int(math.log2(C))
            assert max(helper_phases) <= cutoff
    # (c) fewer channels -> more time (the C^{2-2a} divisor in the additive
    # term): strictly decreasing in C over the capped range
    assert slots[2] > slots[4] > slots[8]
