"""EXP-ARENA-WINDOW — the block-stepped arena vs the slot-stepped oracle.

The windowed driver (:mod:`repro.arena.window`) exists to make reactive
grids as cheap as oblivious ones: a latency-L jammer (L >= 1) cannot see
inside an L-slot window, so the arena advances whole speculative windows
through one batched kernel pass instead of paying per-slot Python.  This
bench regenerates the acceptance figure — a sensing-latency ladder
(L in {0, 1, 2, 4, 8}) run slot-stepped *and* windowed at gallery scale,
asserting bit-identity before any timing.

Two protocol rungs, because the attainable speedup is protocol-shaped:

* ``multicast_c`` (Thm 7.1's C-channel protocol, C = 4): nodes draw one
  virtual slot per *round*, so per-slot RNG cost is tiny and window stepping
  removes nearly all per-slot overhead — the committed full-scale figure is
  the >= 10x headline at every L >= 1.
* ``multicast`` (Fig. 2): nodes draw channel + coin *every slot*; those
  draws are the PeriodDraws contract (bit-identity to the scalar oracle) and
  are paid identically by both backends, so the windowed floor is the raw
  generator fill rate — a ~6-8x speedup, recorded honestly alongside.

L = 0 rungs are the negative control: within-slot sensing cannot be
windowed, ``backend="auto"`` falls back to slot stepping, and the row
records the fallback instead of a speedup.

``REPRO_BENCH_JSON=<dir> pytest benchmarks/bench_arena_windowed.py -s``
regenerates ``BENCH_arena_windowed.json``; ``REPRO_BENCH_SMOKE=1`` shrinks
the workload to CI size.  In-test floors are loose (a loaded CI runner must
not flake); the >= 10x acceptance lives in the committed full-scale JSON.
"""

import time

import pytest

from benchmarks.conftest import run_once, smoke_mode
from repro import MultiCast, MultiCastC
from repro.adversary.reactive import ReactiveLatencyJammer
from repro.arena import run_broadcast_adaptive

LADDER = (0, 1, 2, 4, 8)


def _ladder(make_protocol, n, budget, seed):
    """Run the latency ladder through both backends; return per-rung figures."""
    rungs = {}
    for latency in LADDER:
        jammer = ReactiveLatencyJammer(budget, latency=latency, k=4, seed=9)
        t0 = time.perf_counter()
        slot = run_broadcast_adaptive(
            make_protocol(), n, jammer, seed=seed, backend="slot"
        )
        slot_s = time.perf_counter() - t0
        row = {
            "slot_s": round(slot_s, 3),
            "slots": int(slot.slots),
            "slots_per_s_slot": round(slot.slots / slot_s),
        }
        if latency == 0:
            # within-slot sensing: windowing is unsound, auto must fall back
            auto = run_broadcast_adaptive(
                make_protocol(), n,
                ReactiveLatencyJammer(budget, latency=0, k=4, seed=9),
                seed=seed,
            )
            assert auto.extras["backend"] == "arena-slot"
            row["windowed"] = "unsound (slot fallback)"
        else:
            jammer = ReactiveLatencyJammer(budget, latency=latency, k=4, seed=9)
            t0 = time.perf_counter()
            windowed = run_broadcast_adaptive(
                make_protocol(), n, jammer, seed=seed, backend="window"
            )
            window_s = time.perf_counter() - t0
            # bit-identity first: the timing means nothing otherwise
            assert windowed.slots == slot.slots
            assert windowed.adversary_spend == slot.adversary_spend
            assert (windowed.node_energy == slot.node_energy).all()
            assert (windowed.informed_slot == slot.informed_slot).all()
            assert (windowed.halt_slot == slot.halt_slot).all()
            row.update(
                window_s=round(window_s, 3),
                speedup=round(slot_s / window_s, 2),
                slots_per_s_window=round(windowed.slots / window_s),
            )
        rungs[f"latency_{latency}"] = row
    return rungs


def _record_ladder(bench_json, rungs, floor):
    """Route each windowed rung through the unified speedup schema; the L=0
    fallback rung (no windowed timing) stays a plain shape record."""
    recorded = {}
    for name, row in rungs.items():
        if "window_s" in row:
            recorded[name] = bench_json.record_speedup(
                name,
                baseline_s=row["slot_s"],
                fast_s=row["window_s"],
                floor=floor,
                slots=row["slots"],
                slots_per_s_slot=row["slots_per_s_slot"],
                slots_per_s_window=row["slots_per_s_window"],
            )
        else:
            bench_json.record(**{name: row})
    return recorded


@pytest.mark.benchmark(group="EXP-ARENA-WINDOW")
def test_window_ladder_multicast_c(benchmark, bench_json):
    """The acceptance figure: Thm 7.1's C-channel protocol at gallery scale,
    slot vs windowed across the sensing-latency ladder."""
    n = 16 if smoke_mode() else 64
    a = 0.005 if smoke_mode() else 0.05
    budget = 5_000 if smoke_mode() else 100_000
    seed = 2

    rungs = run_once(
        benchmark, lambda: _ladder(lambda: MultiCastC(n, C=4, a=a), n, budget, seed)
    )
    bench_json.record(
        config={"protocol": "multicast_c", "n": n, "C": 4, "a": a,
                "budget": budget, "seed": seed},
    )
    recorded = _record_ladder(bench_json, rungs, floor=3.0)
    print(
        f"\n  [EXP-ARENA-WINDOW] multicast_c (n={n}, C=4) ladder: "
        + ", ".join(
            f"L={k.split('_')[1]}: {recorded[k]['speedup']}x"
            if k in recorded else f"L={k.split('_')[1]}: slot-only"
            for k in rungs
        )
    )
    # the >= 10x acceptance is pinned by the committed full-scale JSON; this
    # floor only guards against gross regressions on a loaded CI runner
    for name, row in recorded.items():
        assert row["speedup"] > row["floor"], (name, row)


@pytest.mark.benchmark(group="EXP-ARENA-WINDOW")
def test_window_ladder_multicast(benchmark, bench_json):
    """The per-slot-draw protocol: windowing pays the PeriodDraws generator
    floor, so the recorded speedup sits lower — the honest companion row."""
    n = 16 if smoke_mode() else 64
    a = 0.005 if smoke_mode() else 0.05
    budget = 5_000 if smoke_mode() else 100_000
    seed = 2

    rungs = run_once(
        benchmark, lambda: _ladder(lambda: MultiCast(n, a=a), n, budget, seed)
    )
    bench_json.record(
        config={"protocol": "multicast", "n": n, "a": a, "budget": budget,
                "seed": seed},
    )
    recorded = _record_ladder(bench_json, rungs, floor=2.0)
    print(
        f"\n  [EXP-ARENA-WINDOW] multicast (n={n}) ladder: "
        + ", ".join(
            f"L={k.split('_')[1]}: {recorded[k]['speedup']}x"
            if k in recorded else f"L={k.split('_')[1]}: slot-only"
            for k in rungs
        )
    )
    for name, row in recorded.items():
        assert row["speedup"] > row["floor"], (name, row)
