"""Shared helpers for the benchmark harness.

Every bench regenerates one experiment from EXPERIMENTS.md: it runs the
workload once inside ``benchmark.pedantic`` (so pytest-benchmark reports the
wall-clock of the whole experiment without re-running a multi-minute
simulation), prints the paper-style result table to stdout, and asserts the
*shape* of the claim (who wins, slopes, crossovers) — never absolute numbers.

Run:  pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under the benchmark timer and return its
    result.  Simulations here run seconds-to-minutes; statistical timing
    rounds would multiply that for no insight (the experiment's randomness is
    controlled by seeds, not by the clock)."""
    box = {}

    def wrapper():
        box["result"] = fn()

    benchmark.pedantic(wrapper, rounds=1, iterations=1, warmup_rounds=0)
    return box["result"]
