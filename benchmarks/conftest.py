"""Shared helpers for the benchmark harness.

Every bench regenerates one experiment from EXPERIMENTS.md: it runs the
workload once inside ``benchmark.pedantic`` (so pytest-benchmark reports the
wall-clock of the whole experiment without re-running a multi-minute
simulation), prints the paper-style result table to stdout, and asserts the
*shape* of the claim (who wins, slopes, crossovers) — never absolute numbers.

Run:  pytest benchmarks/ --benchmark-only -s

Machine-readable mode
---------------------
Set ``REPRO_BENCH_JSON=<dir>`` to make every bench test emit its wall time —
plus whatever extra figures it records via the ``bench_json`` fixture — into
``<dir>/BENCH_<name>.json`` (one file per bench module, merged across tests).
The committed ``benchmarks/BENCH_engine.json`` baseline and the CI
benchmark-smoke artifacts are produced exactly this way.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the workloads (CI-sized: seconds, not
minutes) — benches read the flag through :func:`smoke_mode` and scale their
grids; the JSON notes ``"smoke": true`` so baselines and smoke artifacts are
never confused.

pytest-benchmark is optional: without the plugin a minimal ``benchmark``
fixture stands in (single-shot execution, no statistics), so the smoke run
only needs numpy + pytest.
"""

from __future__ import annotations

import json
import os
import time
from datetime import datetime, timezone
from pathlib import Path

import pytest

#: env var naming the output directory for BENCH_<name>.json files
BENCH_JSON_ENV = "REPRO_BENCH_JSON"
#: env var (any non-empty value) selecting the reduced CI-sized workloads
BENCH_SMOKE_ENV = "REPRO_BENCH_SMOKE"


def smoke_mode() -> bool:
    """True when benches should run their reduced (CI smoke) workloads."""
    return bool(os.environ.get(BENCH_SMOKE_ENV))


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under the benchmark timer and return its
    result.  Simulations here run seconds-to-minutes; statistical timing
    rounds would multiply that for no insight (the experiment's randomness is
    controlled by seeds, not by the clock)."""
    box = {}

    def wrapper():
        box["result"] = fn()

    benchmark.pedantic(wrapper, rounds=1, iterations=1, warmup_rounds=0)
    return box["result"]


class BenchRecorder:
    """Per-test payload collector behind the ``bench_json`` fixture."""

    def __init__(self):
        self.payload = {}

    def record(self, **fields) -> None:
        """Attach figures (config, wall times, slots/sec, ...) to this
        test's entry in the module's BENCH_<name>.json."""
        self.payload.update(fields)

    def record_speedup(
        self, case: str, *, baseline_s: float, fast_s: float, floor: float, **extra
    ) -> dict:
        """Record one baseline-vs-fast comparison in the unified speedup
        schema that ``repro obs --check-bench`` validates:
        ``results[<test>]["speedups"][<case>]`` with ``baseline_s``,
        ``fast_s``, the derived ``speedup``, and the bench's own loose
        ``floor`` (the scale-robust bound it also asserts in-test).  Extra
        keyword figures (throughputs, success rates) ride along unvalidated.
        Returns the entry so the caller can assert on the same numbers it
        recorded."""
        entry = {
            "baseline_s": round(float(baseline_s), 3),
            "fast_s": round(float(fast_s), 3),
            "speedup": round(float(baseline_s) / float(fast_s), 2),
            "floor": float(floor),
            **extra,
        }
        self.payload.setdefault("speedups", {})[case] = entry
        return entry


def _bench_name(module_path: Path) -> str:
    name = module_path.stem
    return name[len("bench_") :] if name.startswith("bench_") else name


def _bench_file(module_path: Path) -> Path:
    out_dir = Path(os.environ[BENCH_JSON_ENV])
    out_dir.mkdir(parents=True, exist_ok=True)
    return out_dir / f"BENCH_{_bench_name(module_path)}.json"


def _merge_result(module_path: Path, test_name: str, payload: dict) -> None:
    path = _bench_file(module_path)
    if path.exists():
        data = json.loads(path.read_text())
    else:
        data = {"bench": _bench_name(module_path), "results": {}}
    data["schema"] = 1  # repro.obs.bench.SCHEMA_VERSION — the check-bench contract
    data["updated"] = datetime.now(timezone.utc).isoformat(timespec="seconds")
    data["smoke"] = smoke_mode()
    data["results"][test_name] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


@pytest.fixture(autouse=True)
def bench_json(request):
    """Autouse recorder: times every bench test, and (when REPRO_BENCH_JSON
    is set) merges ``{wall_time_s, **recorded fields}`` into the module's
    ``BENCH_<name>.json``.  Benches wanting richer entries accept the fixture
    and call ``bench_json.record(...)``."""
    recorder = BenchRecorder()
    start = time.perf_counter()
    yield recorder
    wall = time.perf_counter() - start
    if os.environ.get(BENCH_JSON_ENV):
        _merge_result(
            Path(request.node.fspath),
            request.node.name,
            {"wall_time_s": round(wall, 4), **recorder.payload},
        )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "benchmark: pytest-benchmark grouping (inert without the plugin)"
    )


try:  # pragma: no cover - exercised only where the plugin is absent
    import pytest_benchmark  # noqa: F401
except ImportError:  # pragma: no cover
    class _FallbackBenchmark:
        """Single-shot stand-in for the pytest-benchmark fixture."""

        def __call__(self, fn, *args, **kwargs):
            return fn(*args, **kwargs)

        def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1, warmup_rounds=0):
            return fn(*args, **(kwargs or {}))

    @pytest.fixture
    def benchmark():
        return _FallbackBenchmark()
