"""EXP-T5.4z — the jam-free additive term (Theorem 5.4, closing remark).

Claim: when Eve is absent (T = 0), all nodes terminate by the end of the
first iteration, at O(lg²n) time and energy per node.

Regenerated as: n sweep with no adversary.  Checks: (a) success everywhere;
(b) every run ends after exactly one iteration; (c) time and cost track lg²n
within a constant band (measured/lg²n ratio stays flat as n quadruples).
"""

import math

import pytest

from benchmarks.conftest import run_once
from repro import MultiCast
from repro.analysis import render_table, run_trials

SIZES = [16, 32, 64, 128, 256]


def experiment():
    rows = []
    out = []
    for n in SIZES:
        batch = run_trials(
            lambda n=n: MultiCast(n, a=0.05), n, trials=3, base_seed=74, label=f"n={n}"
        )
        lg2 = math.log2(n) ** 2
        slots = batch.summary("slots").mean
        cost = batch.summary("max_cost").mean
        periods = [r.periods for r in batch.results]
        rows.append([n, slots, slots / lg2, cost, cost / lg2, batch.success_rate])
        out.append((n, slots / lg2, cost / lg2, periods, batch))
    print()
    print(
        render_table(
            ["n", "slots", "slots/lg²n", "max cost", "cost/lg²n", "success"],
            rows,
            title="EXP-T5.4z  MultiCast with no jamming (T = 0)",
        )
    )
    return out


@pytest.mark.benchmark(group="EXP-T5.4")
def test_no_jamming_costs_polylog(benchmark):
    out = run_once(benchmark, experiment)
    slot_ratios = [x[1] for x in out]
    cost_ratios = [x[2] for x in out]
    for n, _, _, periods, batch in out:
        assert batch.success_rate == 1.0, f"n={n}"
        assert all(p == 1 for p in periods), f"n={n}: not all runs ended in iteration one"
    # lg²n shape: the normalized ratio varies by a bounded constant while
    # n varies by 16x
    assert max(slot_ratios) / min(slot_ratios) < 4.0
    assert max(cost_ratios) / min(cost_ratios) < 4.0
