"""EXP-FAST — MultiCastCore's fast shutdown once Eve stops (section 4 remark).

Claim: "once Eve stops disrupting protocol execution, all remaining active
nodes will learn m (if still uninformed) and then halt, within one iteration
— that is, within Theta(lg T-hat) slots.  Existing resource-competitive
algorithms usually demand at least ~T slots for such scenario."

Regenerated as: a front-loaded jammer blacks out the spectrum until broke at
several budgets; we measure the gap between blackout end and the last node's
halt, in iterations, and contrast with ``MultiCast`` (growing iterations =
slower reaction, the paper's own comparison point).
"""

import pytest

from benchmarks.conftest import run_once
from repro import FrontLoadedJammer, MultiCast, MultiCastCore, run_broadcast
from repro.analysis import render_table

N = 64
BUDGETS = [320_000, 1_280_000, 5_120_000]


def experiment():
    rows = []
    out = []
    for T in BUDGETS:
        proto = MultiCastCore(n=N, T=T, a=8192.0)
        r = run_broadcast(proto, N, adversary=FrontLoadedJammer(budget=T), seed=5)
        assert r.success
        blackout = T // (N // 2)  # Eve jams all n/2 channels until broke
        R = proto.iteration_slots
        gap_core = r.last_halt_slot - blackout
        rm = run_broadcast(MultiCast(N, a=0.05), N, adversary=FrontLoadedJammer(budget=T), seed=5)
        assert rm.success
        gap_mc = rm.last_halt_slot - blackout
        rows.append([T, blackout, R, gap_core, round(gap_core / R, 2), gap_mc])
        out.append((gap_core, R, gap_mc))
    print()
    print(
        render_table(
            ["T", "blackout slots", "iter R", "Core gap", "gap/R", "MultiCast gap"],
            rows,
            title="EXP-FAST  slots from Eve-goes-broke to last halt",
        )
    )
    return out


@pytest.mark.benchmark(group="EXP-FAST")
def test_fast_shutdown_after_blackout(benchmark):
    out = run_once(benchmark, experiment)
    for gap_core, R, gap_mc in out:
        # Theta(lg T-hat): within two iteration lengths of the blackout end
        # (the blackout can end mid-iteration, costing up to one extra R).
        assert gap_core <= 2 * R + 1
    # the growing-iteration protocol reacts slower at the largest budget
    gap_core_big, R_big, gap_mc_big = out[-1]
    assert gap_mc_big > gap_core_big
