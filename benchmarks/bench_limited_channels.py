"""EXP-C7.1 — MultiCast(C) under channel scarcity (Corollary 7.1).

Claim: with 1 <= C <= n/2 channels, all nodes receive the message and
terminate within O(T/C + (n/C)·lg²n) slots, and each node's cost is unchanged
from the full-spectrum protocol — "the more channels we have, the faster we
can be", at zero energy premium.

Regenerated as: C sweep at n = 64 against a full-blanket jammer with fixed
budget.  Checks: (a) success at every C; (b) time ~ C^-1 (log-log slope);
(c) per-node cost flat across the sweep (within a small band); (d) the C = 1
row (the single-channel state of the art, [14]) is ~n/2 times slower at the
same energy.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro import BlanketJammer, MultiCastC
from repro.analysis import fit_loglog_slope, render_table, sweep

N = 64
T = 250_000
CHANNELS = [1, 2, 4, 8, 16, 32]


def experiment():
    sw = sweep(
        "C",
        CHANNELS,
        lambda C: MultiCastC(N, int(C), a=0.05),
        lambda C: N,
        lambda C, seed: BlanketJammer(budget=T, channels=1.0, seed=seed),
        trials=3,
        base_seed=104,
    )
    rows = [
        [
            int(p.value),
            p.mean("slots"),
            p.mean("slots") * p.value,  # ~constant if time ~ 1/C
            p.mean("max_cost"),
            p.batch.success_rate,
        ]
        for p in sw
    ]
    print()
    print(
        render_table(
            ["C", "slots", "slots x C", "max cost", "success"],
            rows,
            title=f"EXP-C7.1  MultiCast(C), n={N}, full-blanket jammer T={T:,}",
        )
    )
    return sw


@pytest.mark.benchmark(group="EXP-C7.1")
def test_limited_channels_time_inverse_c(benchmark):
    sw = run_once(benchmark, experiment)
    assert (sw.success_rates == 1.0).all()
    assert sw.total_violations == 0
    fit = fit_loglog_slope(sw.values, sw.means("slots"))
    assert -1.1 < fit.exponent < -0.85, fit  # time ~ 1/C
    costs = sw.means("max_cost")
    assert costs.max() / costs.min() < 1.5  # energy flat in C
    # the [14] single-channel comparison: ~n/2x slower at C = 1
    speedup = sw.means("slots")[0] / sw.means("slots")[-1]
    assert 0.5 * (N / 2) < speedup < 2.0 * (N / 2)
