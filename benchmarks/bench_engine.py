"""EXP-ENG — simulator throughput (engineering baseline, not a paper claim).

Timed kernels, with pytest-benchmark doing real statistical rounds here
(they are microseconds-to-milliseconds, unlike the experiment benches):

* dense block resolution (the Figs. 1/2/5 hot path);
* sparse block resolution at 2^26 channels (the Fig. 4 hot path);
* a full MultiCast broadcast end to end (slots/second figure of merit);
* the lane-batched trial backend vs. the scalar loop — the figure the
  committed ``BENCH_engine.json`` baseline tracks (DESIGN.md section 6).

``REPRO_BENCH_JSON=<dir> pytest benchmarks/bench_engine.py`` regenerates the
baseline; ``REPRO_BENCH_SMOKE=1`` shrinks everything to CI size.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import run_once, smoke_mode
from repro import MultiCast, run_broadcast
from repro.analysis.stats import run_trials
from repro.core.runner import shared_coin_actions, spread_block
from repro.exp.registry import build_jammer
from repro.sim.channel import resolve_block
from repro.sim.jam import JamBlock
from repro.sim.rng import RandomFabric


def make_case(K, n, C, p, seed=0):
    rng = RandomFabric(seed).generator("bench")
    channels = rng.integers(0, C, size=(K, n), dtype=np.int64)
    coins = rng.random((K, n))
    informed = rng.random(n) < 0.5
    informed[0] = True
    actions = shared_coin_actions(p)(coins, informed, np.ones(n, dtype=bool))
    return channels, actions


@pytest.mark.benchmark(group="EXP-ENG dense")
@pytest.mark.parametrize("n", [64, 256])
def test_dense_resolution_throughput(benchmark, n):
    K, C = 4096, n // 2
    channels, actions = make_case(K, n, C, p=1 / 64)
    jam = JamBlock.from_dense(
        RandomFabric(1).generator("jam").random((K, C)) < 0.3
    )
    result = benchmark(lambda: resolve_block(channels, actions, jam))
    assert result.shape == (K, n)


@pytest.mark.benchmark(group="EXP-ENG sparse")
def test_sparse_resolution_huge_channel_space(benchmark):
    K, n, C = (512 if smoke_mode() else 4096), 64, 1 << 26
    channels, actions = make_case(K, n, C, p=1 / 8)
    jam = JamBlock.from_rows(
        K, C, np.arange(0, K, 7, dtype=np.int64),
        [np.arange(50, dtype=np.int64)] * len(range(0, K, 7)),
    )
    result = benchmark(lambda: resolve_block(channels, actions, jam))
    assert result.shape == (K, n)


@pytest.mark.benchmark(group="EXP-ENG spread")
def test_spread_block_event_loop(benchmark):
    """The event-driven spreading path with a growing informed set."""
    K, n, C = 2048, 128, 64
    rng = RandomFabric(2).generator("spread")

    def run():
        channels = rng.integers(0, C, size=(K, n), dtype=np.int64)
        coins = rng.random((K, n))
        informed = np.zeros(n, dtype=bool)
        informed[0] = True
        return spread_block(
            channels, coins, JamBlock.empty(K, C), informed,
            np.ones(n, dtype=bool), shared_coin_actions(1 / 64),
        )

    out = benchmark(run)
    assert out.informed.shape == (n,)


@pytest.mark.benchmark(group="EXP-ENG end-to-end")
def test_full_broadcast_slots_per_second(benchmark):
    def run():
        return run_broadcast(MultiCast(64, a=0.05), 64, seed=3)

    rounds = 1 if smoke_mode() else 3
    result = benchmark.pedantic(run, rounds=rounds, iterations=1, warmup_rounds=0 if smoke_mode() else 1)
    assert result.success
    # figure of merit for the README: ~44k slots per run
    print(f"\n  [EXP-ENG] end-to-end run = {result.slots:,} slots")


@pytest.mark.benchmark(group="EXP-ENG batched")
def test_run_trials_batched_vs_scalar(benchmark, bench_json):
    """The PR-2 acceptance figure: ``run_trials`` over the lane-batched
    backend vs. the scalar loop at the gallery scale (``multicast``, n=64,
    k=32 trials), unjammed and under the gallery's blanket jammer.

    The committed ``benchmarks/BENCH_engine.json`` baseline demonstrates the
    >= 3x speedup on the 1-core reference box; the in-test assertion is a
    loose sanity floor so a loaded CI runner cannot flake the suite.
    """
    n = 64
    trials = 8 if smoke_mode() else 32
    budget = 100_000

    def jammer_factory(name):
        if name == "none":
            return None
        return lambda seed: build_jammer(name, budget, seed)

    def experiment():
        figures = {}
        for jammer in ("none", "blanket"):
            timings = {}
            batches = {}
            for backend in ("scalar", "batched"):
                t0 = time.perf_counter()
                batches[backend] = run_trials(
                    lambda: MultiCast(n),
                    n,
                    jammer_factory(jammer),
                    trials=trials,
                    base_seed=1,
                    label="bench-engine",
                    backend=backend,
                )
                timings[backend] = time.perf_counter() - t0
            # the backends must agree bit for bit before timing means anything
            for a, b in zip(batches["scalar"].results, batches["batched"].results):
                assert a.slots == b.slots
                assert (a.node_energy == b.node_energy).all()
                assert (a.informed_slot == b.informed_slot).all()
            total_slots = int(batches["batched"].slots.sum())
            figures[jammer] = {
                "scalar_s": round(timings["scalar"], 3),
                "batched_s": round(timings["batched"], 3),
                "speedup": round(timings["scalar"] / timings["batched"], 2),
                "trials_per_s_scalar": round(trials / timings["scalar"], 2),
                "trials_per_s_batched": round(trials / timings["batched"], 2),
                "slots_per_s_batched": round(total_slots / timings["batched"]),
            }
        return figures

    figures = run_once(benchmark, experiment)
    bench_json.record(
        config={"protocol": "multicast", "n": n, "trials": trials, "budget": budget},
    )
    recorded = {
        jammer: bench_json.record_speedup(
            jammer,
            baseline_s=f["scalar_s"],
            fast_s=f["batched_s"],
            floor=1.2,
            trials_per_s_scalar=f["trials_per_s_scalar"],
            trials_per_s_batched=f["trials_per_s_batched"],
            slots_per_s_batched=f["slots_per_s_batched"],
        )
        for jammer, f in figures.items()
    }
    print("\n  [EXP-ENG] batched vs scalar run_trials "
          f"(n={n}, k={trials}): " + ", ".join(
              f"{j}: {f['speedup']}x" for j, f in recorded.items()))
    for jammer, f in recorded.items():
        assert f["speedup"] > f["floor"], (jammer, f)
