"""EXP-ENG — simulator throughput (engineering baseline, not a paper claim).

Timed kernels, with pytest-benchmark doing real statistical rounds here
(they are microseconds-to-milliseconds, unlike the experiment benches):

* dense block resolution (the Figs. 1/2/5 hot path);
* sparse block resolution at 2^26 channels (the Fig. 4 hot path);
* a full MultiCast broadcast end to end (slots/second figure of merit).
"""

import numpy as np
import pytest

from repro import MultiCast, run_broadcast
from repro.core.runner import shared_coin_actions, spread_block
from repro.sim.channel import resolve_block
from repro.sim.jam import JamBlock
from repro.sim.rng import RandomFabric


def make_case(K, n, C, p, seed=0):
    rng = RandomFabric(seed).generator("bench")
    channels = rng.integers(0, C, size=(K, n), dtype=np.int64)
    coins = rng.random((K, n))
    informed = rng.random(n) < 0.5
    informed[0] = True
    actions = shared_coin_actions(p)(coins, informed, np.ones(n, dtype=bool))
    return channels, actions


@pytest.mark.benchmark(group="EXP-ENG dense")
@pytest.mark.parametrize("n", [64, 256])
def test_dense_resolution_throughput(benchmark, n):
    K, C = 4096, n // 2
    channels, actions = make_case(K, n, C, p=1 / 64)
    jam = JamBlock.from_dense(
        RandomFabric(1).generator("jam").random((K, C)) < 0.3
    )
    result = benchmark(lambda: resolve_block(channels, actions, jam))
    assert result.shape == (K, n)


@pytest.mark.benchmark(group="EXP-ENG sparse")
def test_sparse_resolution_huge_channel_space(benchmark):
    K, n, C = 4096, 64, 1 << 26
    channels, actions = make_case(K, n, C, p=1 / 8)
    jam = JamBlock.from_rows(
        K, C, np.arange(0, K, 7, dtype=np.int64),
        [np.arange(50, dtype=np.int64)] * len(range(0, K, 7)),
    )
    result = benchmark(lambda: resolve_block(channels, actions, jam))
    assert result.shape == (K, n)


@pytest.mark.benchmark(group="EXP-ENG spread")
def test_spread_block_event_loop(benchmark):
    """The event-driven spreading path with a growing informed set."""
    K, n, C = 2048, 128, 64
    rng = RandomFabric(2).generator("spread")

    def run():
        channels = rng.integers(0, C, size=(K, n), dtype=np.int64)
        coins = rng.random((K, n))
        informed = np.zeros(n, dtype=bool)
        informed[0] = True
        return spread_block(
            channels, coins, JamBlock.empty(K, C), informed,
            np.ones(n, dtype=bool), shared_coin_actions(1 / 64),
        )

    out = benchmark(run)
    assert out.informed.shape == (n,)


@pytest.mark.benchmark(group="EXP-ENG end-to-end")
def test_full_broadcast_slots_per_second(benchmark):
    def run():
        return run_broadcast(MultiCast(64, a=0.05), 64, seed=3)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert result.success
    # figure of merit for the README: ~44k slots per run
    print(f"\n  [EXP-ENG] end-to-end run = {result.slots:,} slots")
