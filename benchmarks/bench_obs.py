"""EXP-OBS — the telemetry no-op contract: disabled instrumentation is free.

``repro.obs`` promises that with no recorder installed every instrumentation
site costs one function call plus an ``is None`` test.  This bench turns
that promise into a measured bound on the two hot layers the ISSUE names:

* the lane-batched shared-coin kernel (``core/batch.py``, the
  ``bench_engine.py`` workload), and
* the window-stepped reactive arena (``arena/window.py``, the
  ``bench_arena_windowed.py`` workload).

Direct A/B timing of "instrumented code, telemetry off" against
"un-instrumented code" would need a second checkout, so the bound is built
from observables instead: one *enabled* run counts how often the hot loop
actually reaches an instrumentation site (``batch.kernel_passes`` /
``window.passes`` — everything else in those loops is per-pass too, within
a small constant factor), a microbenchmark prices the disabled site
(``active()`` + ``is None``), and the product over the disabled wall time
is the worst-case overhead fraction.  The assertion is the ISSUE's
acceptance bar: **< 2%**.  The enabled/disabled wall-time ratio is recorded
alongside as an informative figure (not asserted — it measures recorder
work, which telemetry users opt into).

``REPRO_BENCH_SMOKE=1`` shrinks the workloads to CI size as usual.
"""

import time

import pytest

from benchmarks.conftest import smoke_mode
from repro import MultiCast, MultiCastC
from repro.adversary.reactive import ReactiveLatencyJammer
from repro.analysis.stats import run_trials
from repro.arena import run_broadcast_adaptive
from repro.obs.recorder import active, collect_telemetry

#: conservative instrumentation sites touched per counted kernel pass (the
#: per-pass blocks in batch.py / window.py hold a handful of guarded calls;
#: 16 over-counts every one of them plus the per-batch constants)
SITES_PER_PASS = 16
#: the acceptance bar: disabled telemetry must cost < 2% of the hot loop
OVERHEAD_BAR = 0.02


def _disabled_site_cost_s(reps: int = 200_000) -> float:
    """Seconds per disabled instrumentation site: ``active()`` + ``is None``."""
    assert active() is None, "bench needs telemetry off for the microbench"
    t0 = time.perf_counter()
    for _ in range(reps):
        tel = active()
        if tel is not None:  # pragma: no cover - telemetry is off
            tel.count("unreachable")
    return (time.perf_counter() - t0) / reps


def _bound(workload, passes_counter, bench_json, case):
    """Run ``workload`` disabled and enabled, price the disabled sites, and
    record + assert the overhead bound for ``case``."""
    # interleave reps so cache/turbo drift hits both arms; min is the honest
    # per-arm figure (noise only ever adds time)
    disabled_s = enabled_s = float("inf")
    passes = 0
    for _ in range(2):
        t0 = time.perf_counter()
        workload()
        disabled_s = min(disabled_s, time.perf_counter() - t0)
        with collect_telemetry() as tel:
            t0 = time.perf_counter()
            workload()
            enabled_s = min(enabled_s, time.perf_counter() - t0)
            passes = max(passes, tel.counters.get(passes_counter, 0))
    assert passes > 0, f"enabled run never hit {passes_counter}"
    site_s = _disabled_site_cost_s()
    bound = (passes * SITES_PER_PASS * site_s) / disabled_s
    bench_json.record(**{case: {
        "disabled_s": round(disabled_s, 4),
        "enabled_s": round(enabled_s, 4),
        "enabled_ratio": round(enabled_s / disabled_s, 3),
        "kernel_passes": passes,
        "site_ns": round(site_s * 1e9, 1),
        "overhead_bound": round(bound, 6),
    }})
    print(f"\n  [EXP-OBS] {case}: {passes} passes x {SITES_PER_PASS} sites x "
          f"{site_s * 1e9:.0f}ns = {bound:.4%} of {disabled_s:.3f}s "
          f"(bar {OVERHEAD_BAR:.0%}); enabled ratio {enabled_s / disabled_s:.2f}x")
    assert bound < OVERHEAD_BAR, (case, bound)


@pytest.mark.benchmark(group="EXP-OBS")
def test_disabled_overhead_batched_engine(bench_json):
    """The ``bench_engine.py`` workload: lane-batched ``run_trials``."""
    n = 16 if smoke_mode() else 64
    trials = 4 if smoke_mode() else 16

    def workload():
        run_trials(
            lambda: MultiCast(n), n, None,
            trials=trials, base_seed=1, label="bench-obs", backend="batched",
        )

    _bound(workload, "batch.kernel_passes", bench_json, "batched_engine")


@pytest.mark.benchmark(group="EXP-OBS")
def test_disabled_overhead_windowed_arena(bench_json):
    """The ``bench_arena_windowed.py`` workload: window-stepped MultiCastC
    under a latency-2 reactive jammer."""
    n = 16 if smoke_mode() else 64
    a = 0.005 if smoke_mode() else 0.05
    budget = 5_000 if smoke_mode() else 100_000

    def workload():
        run_broadcast_adaptive(
            MultiCastC(n, C=4, a=a), n,
            ReactiveLatencyJammer(budget, latency=2, k=4, seed=9),
            seed=2, backend="window",
        )

    _bound(workload, "window.passes", bench_json, "windowed_arena")
