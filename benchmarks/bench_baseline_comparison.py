"""EXP-CMP — the paper's positioning table: MultiCast vs prior art.

Claims regenerated (paper sections 1-2 and 7):

* vs the single-channel state of the art ([14] / ``SingleChannelCompetitive``):
  same per-node energy, ~n/2-fold faster — the multi-channel dividend;
* vs the always-on epidemic (``NaiveEpidemic``): comparable dissemination
  speed unjammed, but per-node energy Theta(blackout time) under jamming —
  not resource-competitive;
* vs classic ``Decay``: a budget as small as Decay's own runtime wipes it out.

One table, same network, same budget, every protocol.
"""

import pytest

from benchmarks.conftest import run_once
from repro import BlanketJammer, MultiCast, run_broadcast
from repro.analysis import render_table
from repro.baselines import DecayBroadcast, NaiveEpidemic, SingleChannelCompetitive

N = 64
T = 640_000  # blankets 32 channels for 20k slots


def contenders():
    return {
        "MultiCast": MultiCast(N, a=0.05),
        "SingleChannel [14]": SingleChannelCompetitive(N, a=0.05),
        "NaiveEpidemic": NaiveEpidemic(N, max_slots_budget=2_000_000),
        "Decay": DecayBroadcast(N),
    }


def experiment():
    rows = []
    out = {}
    for name, proto in contenders().items():
        adv = BlanketJammer(budget=T, channels=1.0, seed=7)
        r = run_broadcast(proto, N, adversary=adv, seed=13)
        out[name] = r
        rows.append(
            [
                name,
                "yes" if r.success else "NO",
                r.slots,
                r.max_cost,
                f"{r.max_cost / T:.4f}",
            ]
        )
    print()
    print(
        render_table(
            ["protocol", "ok", "slots", "max node cost", "cost/T"],
            rows,
            title=f"EXP-CMP  full-blanket jammer, n={N}, T={T:,}",
        )
    )
    return out


@pytest.mark.benchmark(group="EXP-CMP")
def test_positioning_table(benchmark):
    out = run_once(benchmark, experiment)
    mc, sc, naive, decay = (
        out["MultiCast"],
        out["SingleChannel [14]"],
        out["NaiveEpidemic"],
        out["Decay"],
    )
    # the competitive protocols both survive
    assert mc.success and sc.success
    # multi-channel dividend: ~n/2 speedup at (near-)equal energy
    speedup = sc.slots / mc.slots
    assert speedup > N / 8, f"speedup only {speedup}"
    assert sc.max_cost < 2 * mc.max_cost
    # naive epidemic survives but pays Theta(blackout) per node
    blackout = T // (N // 2)
    assert naive.success
    assert naive.max_cost >= blackout
    assert naive.max_cost > 3 * mc.max_cost
    # Decay is wiped out by a fraction of the budget
    assert not decay.success


@pytest.mark.benchmark(group="EXP-CMP")
def test_clean_channel_speed_ranking(benchmark):
    """Unjammed: naive is fastest (p = 1), MultiCast within polylog of it,
    single-channel ~n/2 slower; everyone succeeds."""

    def run():
        rows = {}
        for name, proto in contenders().items():
            rows[name] = run_broadcast(proto, N, seed=21)
        print()
        print(
            render_table(
                ["protocol", "ok", "disseminated by", "slots", "max cost"],
                [
                    [k, "yes" if r.success else "NO", r.dissemination_slot, r.slots, r.max_cost]
                    for k, r in rows.items()
                ],
                title="EXP-CMP  clean spectrum",
            )
        )
        return rows

    rows = run_once(benchmark, run)
    assert all(r.success for r in rows.values())
    assert rows["NaiveEpidemic"].dissemination_slot < rows["MultiCast"].dissemination_slot
    assert rows["MultiCast"].slots < rows["SingleChannel [14]"].slots
