"""EXP-L4.1 — epidemic growth under heavy jamming (Lemmas 4.1 / 5.1).

Claim: with n/2 channels, the informed population grows geometrically per
segment of slots even when Eve jams 90% of the channels for 90% of the slots;
jamming shifts the doubling time by a constant factor only.

Regenerated here as: informed-population curves for clean vs 90/90-jammed
``MultiCastCore`` runs at several n; we report slots-to-half / slots-to-all
and check (a) every run completes, (b) the jammed slowdown factor is bounded
by a constant (<< what stopping the epidemic would need), and (c) growth is
superlinear (doubling segments, not additive trickle).
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro import FractionalJammer, MultiCastCore, run_broadcast
from repro.analysis import render_table
from repro.sim.trace import TraceRecorder


def growth_stats(n, jammed, seed):
    trace = TraceRecorder()
    adv = (
        FractionalJammer(budget=None, slot_fraction=0.9, channel_fraction=0.9, seed=seed)
        if jammed
        else None
    )
    proto = MultiCastCore(n=n, T=10_000_000, a=8192.0, max_iterations=1)
    run_broadcast(proto, n, adversary=adv, seed=seed, trace=trace)
    slots, counts = trace.informed_curve()
    assert counts[-1] == n, "epidemic must complete within one iteration"
    half = int(slots[np.searchsorted(counts, n // 2)])
    return {"half": half, "all": int(slots[-1]), "slots": slots, "counts": counts}


def experiment():
    rows = []
    out = {}
    for n in (64, 128, 256):
        clean = growth_stats(n, jammed=False, seed=3)
        jam = growth_stats(n, jammed=True, seed=3)
        out[n] = (clean, jam)
        rows.append(
            [
                n,
                clean["half"],
                clean["all"],
                jam["half"],
                jam["all"],
                round(jam["all"] / clean["all"], 2),
            ]
        )
    print()
    print(
        render_table(
            ["n", "clean: half", "clean: all", "90/90: half", "90/90: all", "slowdown"],
            rows,
            title="EXP-L4.1  epidemic broadcast vs FractionalJammer(0.9, 0.9)",
        )
    )
    return out


@pytest.mark.benchmark(group="EXP-L4.1")
def test_epidemic_growth_survives_heavy_jamming(benchmark):
    out = run_once(benchmark, experiment)
    for n, (clean, jam) in out.items():
        # (b) bounded constant slowdown: un-jammed channel fraction is 10%
        # in 90% of slots => effective rate ~0.19 of clean; allow slack.
        slowdown = jam["all"] / clean["all"]
        assert slowdown < 12.0, f"n={n}: slowdown {slowdown} not a constant factor"
        # (c) geometric growth: the second half of the population is reached
        # in a comparable number of slots as the first half (exponential),
        # not n/2 times slower (linear trickle).
        for stats in (clean, jam):
            first_half = stats["half"]
            second_half = stats["all"] - stats["half"]
            assert second_half < 4 * first_half + 2000
