"""EXP-L6.x — the "good phase" estimator (Lemmas 6.1–6.3).

Claim: while all nodes are active, nodes only reach helper status in phases
with i > lg n and j = lg n − 1 — the counters (N_m, N_s, N'_m) jointly
identify the one phase family whose channel-count guess matches n.

Regenerated as: traced jam-free ``MultiCastAdv`` runs at a *larger* scale
knob b (the estimator is a concentration phenomenon; see DESIGN.md 2.2) and
two network sizes; we tabulate where helpers appeared.  Checks: (a) no
helper in epochs i <= lg n (Lemma 6.1); (b) none at j >= lg n (Lemma 6.2);
(c) the modal helper phase is exactly lg n − 1, with a large majority of
nodes there (Lemma 6.3 at finite scale).
"""

import math

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro import MultiCastAdv, run_broadcast
from repro.analysis import render_table

KNOBS = dict(alpha=0.24, b=0.2, halt_noise_divisor=50.0, helper_wait=4.0)


def experiment():
    rows = []
    out = {}
    for n in (8, 16):
        phases = []
        epochs = []
        for seed in (1, 2):
            r = run_broadcast(
                MultiCastAdv(**KNOBS, max_epochs=30), n, seed=seed, max_slots=600_000_000
            )
            assert r.success or r.completed is False
            hp = r.extras["helper_phase"]
            he = r.extras["helper_epoch"]
            phases.extend(hp[hp >= 0].tolist())
            epochs.extend(he[he >= 0].tolist())
        phases = np.array(phases)
        epochs = np.array(epochs)
        good = int(math.log2(n)) - 1
        frac_good = float((phases == good).mean())
        rows.append(
            [n, good, dict(zip(*np.unique(phases, return_counts=True))), round(frac_good, 2), int(epochs.min())]
        )
        out[n] = (phases, epochs, frac_good)
    print()
    print(
        render_table(
            ["n", "lg n - 1", "helper ĵ histogram", "frac at good ĵ", "earliest î"],
            rows,
            title=f"EXP-L6.x  where helpers form (jam-free, b={KNOBS['b']})",
        )
    )
    return out


@pytest.mark.benchmark(group="EXP-L6.x")
def test_helpers_form_in_good_phases(benchmark):
    out = run_once(benchmark, experiment)
    for n, (phases, epochs, frac_good) in out.items():
        lgn = int(math.log2(n))
        # Lemma 6.1: no helper during the first lg n epochs
        assert epochs.min() > lgn
        # Lemma 6.2: never at j >= lg n
        assert phases.max() < lgn
        # Lemma 6.3 (finite-scale form): the good phase dominates
        assert frac_good >= 0.6, (n, frac_good)
        values, counts = np.unique(phases, return_counts=True)
        assert values[np.argmax(counts)] == lgn - 1
