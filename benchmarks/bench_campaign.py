"""EXP-CAMPAIGN — the Monte Carlo gallery campaign (EXPERIMENTS.md section 2).

Claim: across the jammer gallery, the paper's protocols succeed in every
seeded trial while spending per-node energy that is a small fraction of
Eve's budget (Definition 3.1's competitiveness, measured as a rate over
seeds rather than a single execution), whereas the non-robust Decay
baseline cannot survive jamming.

Regenerated as: a reduced-trial `repro.exp` campaign — the same pipeline
(spec -> pool -> store -> aggregate) behind `python -m repro sweep` and the
committed record in `experiments/` — followed by shape assertions on the
per-cell aggregates.
"""

import pytest

from benchmarks.conftest import run_once, smoke_mode
from repro.analysis import render_table
from repro.exp import CampaignSpec, aggregate, run_campaign

N = 64
T = 100_000
#: the committed record uses 20; the bench trades CI width for speed, and
#: smoke mode (REPRO_BENCH_SMOKE=1) shrinks further to CI size
TRIALS = 2 if smoke_mode() else 5


def experiment():
    campaign = CampaignSpec(
        protocols=["core", "multicast", "multicast_c", "decay"],
        jammers=["none", "blanket", "bursts", "sweep"],
        ns=[N],
        budget=T,
        trials=TRIALS,
        base_seed=1,
    )
    records = run_campaign(campaign, workers=0)
    cells = aggregate(records)
    rows = [
        [
            c.protocol,
            c.jammer,
            f"{c.success_rate:.0%}",
            f"{c.summary('slots').mean:.3g}",
            f"{c.summary('max_cost').mean:.3g}",
            f"{c.competitiveness:.4f}" if c.competitiveness != float("inf") else "inf",
        ]
        for c in cells
    ]
    print()
    print(
        render_table(
            ["protocol", "jammer", "ok", "slots", "max cost", "cost/T"],
            rows,
            title=f"gallery campaign: n={N}, T={T:,}, {TRIALS} trials/cell",
        )
    )
    return cells


@pytest.mark.benchmark(group="campaign")
def test_gallery_campaign(benchmark, bench_json):
    cells = run_once(benchmark, experiment)
    bench_json.record(
        config={"n": N, "budget": T, "trials_per_cell": TRIALS},
        cells=len(cells),
        success_rates={
            f"{c.protocol}/{c.jammer}": c.success_rate for c in cells
        },
    )
    by_cell = {(c.protocol, c.jammer): c for c in cells}

    jammed = [j for j in ("blanket", "bursts", "sweep")]
    for protocol in ("core", "multicast", "multicast_c"):
        for jammer in ("none", *jammed):
            cell = by_cell[(protocol, jammer)]
            assert cell.success_rate == 1.0, (protocol, jammer)
            assert cell.violations == 0, (protocol, jammer)
        for jammer in jammed:
            # competitiveness: Eve outspends the busiest node by a wide margin
            assert by_cell[(protocol, jammer)].competitiveness < 0.25, (protocol, jammer)

    # the non-robust baseline completes unjammed but dies under sustained
    # jamming (bursts can miss its 144-slot window, so no claim there)
    assert by_cell[("decay", "none")].success_rate == 1.0
    for jammer in ("blanket", "sweep"):
        assert by_cell[("decay", jammer)].success_rate == 0.0, jammer
