#!/usr/bin/env bash
# Regenerate the committed campaign record behind EXPERIMENTS.md.
#
# Every campaign is resumable: interrupting this script and re-running it
# skips trials already in the .jsonl stores. Delete a store to re-measure
# from scratch. Seeds live in the .spec.json files, so the statistics
# reproduce exactly (wall_time fields aside) on any machine.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

run() {
  echo "== $1"
  python -m repro sweep --spec "experiments/$1.spec.json" \
    --store "experiments/$2.jsonl" --workers "${WORKERS:-2}" --quiet
}

run gallery gallery
run scaling_n scaling_n
run budget_T50000 budget
run budget_T200000 budget
run budget_T800000 budget
run budget_T3200000 budget
run channels_C1 channels
run channels_C2 channels
run channels_C4 channels
run channels_C8 channels
run channels_C16 channels
# oblivious vs adaptive (EXPERIMENTS.md section 8); reactive cells run on
# the arena runtime — single-process is fine, they are seconds per trial
WORKERS=1 run arena arena
# the windowed reactive ladder (EXPERIMENTS.md section 8b): latency >= 1
# cells run lane-batched on the block-stepped arena driver and reproduce
# the slot-stepped section-8 rows byte for byte
WORKERS=1 run arena_windowed arena_windowed
# Thm 4.4 grid (EXPERIMENTS.md section 9)
run core_scaling_T25000 core_scaling
run core_scaling_T100000 core_scaling
run core_scaling_T400000 core_scaling
run core_scaling_T1600000 core_scaling
# unjammed MultiCastAdv additive term (EXPERIMENTS.md section 10); a few
# ten-million-slot trials — the longest cells of the whole record
WORKERS=1 run adv_unjammed adv_unjammed
# jammed MultiCastAdvC across channel caps (EXPERIMENTS.md section 11,
# Thm 7.2) — the first committed jammed unknown-n campaign, feasible only
# on the batched Fig. 4/6 kernel (DESIGN.md section 9), which WORKERS=1
# selects automatically
WORKERS=1 run limited_adv_C2 limited_adv
WORKERS=1 run limited_adv_C4 limited_adv
WORKERS=1 run limited_adv_C8 limited_adv
# adaptive stopping demo (EXPERIMENTS.md section 12): trial counts are an
# output here — cells run seed waves until the max_cost CI target is hit,
# and the stopping decisions land in the store next to the trial rows
run adaptive adaptive

# the record is only done when the published docs match it: regenerate the
# EXPERIMENTS.md tables, CLAIMS.md and figures in memory and diff them
# against the committed files (exit 1 = the docs drifted from the data)
echo "== repro report --check"
python -m repro report --check
