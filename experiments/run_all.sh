#!/usr/bin/env bash
# Regenerate the committed campaign record behind EXPERIMENTS.md.
#
# Every campaign is resumable: interrupting this script and re-running it
# skips trials already in the .jsonl stores. Delete a store to re-measure
# from scratch. Seeds live in the .spec.json files, so the statistics
# reproduce exactly (wall_time fields aside) on any machine.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

run() {
  echo "== $1"
  python -m repro sweep --spec "experiments/$1.spec.json" \
    --store "experiments/$2.jsonl" --workers "${WORKERS:-2}" --quiet
}

run gallery gallery
run scaling_n scaling_n
run budget_T50000 budget
run budget_T200000 budget
run budget_T800000 budget
run budget_T3200000 budget
run channels_C1 channels
run channels_C2 channels
run channels_C4 channels
run channels_C8 channels
run channels_C16 channels
# oblivious vs adaptive (EXPERIMENTS.md section 8); reactive cells run on
# the arena runtime — single-process is fine, they are seconds per trial
WORKERS=1 run arena arena
