#!/usr/bin/env python
"""Render the EXPERIMENTS.md tables from the committed campaign stores.

Run after ``experiments/run_all.sh``::

    PYTHONPATH=src python experiments/report.py

Everything quoted in EXPERIMENTS.md comes out of this script verbatim, so
"regenerate the record" is: run_all.sh, then this, then diff.
"""

from __future__ import annotations

import os
import sys

import numpy as np

from repro.analysis import fit_loglog_slope, render_table
from repro.analysis.theory import multicast_time, normalize_to
from repro.exp import ResultStore, aggregate

HERE = os.path.dirname(os.path.abspath(__file__))


def load(name):
    path = os.path.join(HERE, f"{name}.jsonl")
    if not os.path.exists(path):
        sys.exit(f"missing {path} — run experiments/run_all.sh first")
    return ResultStore(path).records()


def fmt_pm(s, digits=3):
    return f"{s.mean:.{digits}g} ±{s.ci95:.2g}"


def gallery_table():
    cells = aggregate(load("gallery"))
    rows = []
    for c in cells:
        ratio = c.competitiveness
        rows.append(
            [
                c.protocol,
                c.jammer,
                f"{c.success_rate:.0%}",
                fmt_pm(c.summary("slots")),
                fmt_pm(c.summary("max_cost")),
                f"{c.summary('adversary_spend').mean:.3g}",
                "inf" if ratio == float("inf") else f"{ratio:.4f}",
            ]
        )
    return render_table(
        ["protocol", "jammer", "ok", "slots", "max cost", "Eve spend", "cost/T"],
        rows,
        title="gallery campaign: n=64, T=100,000, 20 trials/cell, base seed 1",
    )


def scaling_table():
    cells = aggregate(load("scaling_n"))
    cells.sort(key=lambda c: c.n)
    ns = np.array([c.n for c in cells], dtype=float)
    measured = np.array([c.summary("slots").mean for c in cells])
    shape = np.array([float(multicast_time(100_000, int(n))) for n in ns])
    predicted = normalize_to(shape, measured)
    rows = [
        [
            c.n,
            f"{c.success_rate:.0%}",
            fmt_pm(c.summary("dissemination_slot")),
            fmt_pm(c.summary("slots")),
            f"{p:.3g}",
            fmt_pm(c.summary("max_cost")),
        ]
        for c, p in zip(cells, predicted)
    ]
    return render_table(
        ["n", "ok", "all informed by", "completed at", "Thm 5.4a shape", "max cost"],
        rows,
        title=(
            "scaling campaign: MultiCast (a=0.1) vs blanket, T=100,000, "
            "10 trials/cell, base seed 2"
        ),
    )


def channels_table():
    cells = sorted(aggregate(load("channels")), key=lambda c: c.channels)
    rows = [
        [
            c.channels,
            f"{c.success_rate:.0%}",
            fmt_pm(c.summary("slots")),
            fmt_pm(c.summary("max_cost")),
        ]
        for c in cells
    ]
    fit = fit_loglog_slope(
        [c.channels for c in cells], [c.summary("slots").mean for c in cells]
    )
    table = render_table(
        ["C", "ok", "slots", "max cost"],
        rows,
        title=(
            "channel-scarcity campaign: MultiCast(C) vs blackout, n=64, "
            "T=100,000, 10 trials/cell, base seed 4"
        ),
    )
    return table + f"\nslots ~ C^{fit.exponent:.2f} (r²={fit.r2:.3f}); Cor 7.1 predicts C^-1"


def budget_table():
    cells = aggregate(load("budget"))
    rows, lines = [], []
    for protocol in ("core", "multicast"):
        series = sorted(
            (c for c in cells if c.protocol == protocol), key=lambda c: c.budget
        )
        for c in series:
            rows.append(
                [
                    protocol,
                    f"{c.budget:,}",
                    f"{c.success_rate:.0%}",
                    fmt_pm(c.summary("slots")),
                    fmt_pm(c.summary("max_cost")),
                ]
            )
        fit = fit_loglog_slope(
            [c.budget for c in series],
            [c.summary("max_cost").mean for c in series],
        )
        lines.append(f"max_cost ~ T^{fit.exponent:.2f} for {protocol} (r²={fit.r2:.3f})")
    table = render_table(
        ["protocol", "T", "ok", "slots", "max cost"],
        rows,
        title="budget campaign: vs blanket, n=64, 10 trials/cell, base seed 3",
    )
    return table + "\n" + "\n".join(lines)


if __name__ == "__main__":
    for section in (gallery_table, scaling_table, channels_table, budget_table):
        print(section())
        print()
