#!/usr/bin/env python
"""Spectrum scarcity: how much does each extra channel buy?

Sweeps ``MultiCast(C)`` (paper Fig. 5) from a single channel up to the full
n/2, against a fixed-budget blanket jammer.  Corollary 7.1 says time scales
as ~1/C while per-node energy stays flat — "the more channels we have, the
faster we can be", at no energy premium.  The C = 1 row doubles as the
single-channel state of the art (Gilbert et al. SPAA'14) for comparison.

Run:  python examples/spectrum_scarcity.py   (~20 s)
"""

from repro import BlanketJammer, MultiCastC, run_broadcast
from repro.analysis import fit_loglog_slope, render_table

N = 64
T = 200_000


def main():
    rows = []
    slots, channels = [], []
    for C in (1, 2, 4, 8, 16, 32):
        eve = BlanketJammer(budget=T, channels=1.0, seed=5)
        r = run_broadcast(MultiCastC(N, C), N, adversary=eve, seed=9)
        rows.append([C, "yes" if r.success else "NO", r.slots, r.max_cost, r.adversary_spend])
        slots.append(r.slots)
        channels.append(C)
    print(
        render_table(
            ["C", "ok", "slots", "max node cost", "Eve spend"],
            rows,
            title=f"MultiCast(C) on n={N} nodes, blanket jammer T={T:,}",
        )
    )
    fit = fit_loglog_slope(channels, slots)
    print(
        f"\ntime ~ C^{fit.exponent:.2f}  (Corollary 7.1 predicts ~ C^-1); "
        "node cost is flat across the sweep."
    )


if __name__ == "__main__":
    main()
