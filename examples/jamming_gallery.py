#!/usr/bin/env python
"""Jamming-strategy gallery: one protocol, every attacker.

The resource-competitive guarantee quantifies over *arbitrary* oblivious
strategies — Eve's only limit is her budget.  This example throws the whole
strategy gallery (blanket, duty-cycled, front-loaded, bursty, sweeping,
random) at ``MultiCast`` with the same budget and tabulates the outcome:
whoever she plays, the broadcast completes and the per-node cost stays a tiny
fraction of her spend.

Run:  python examples/jamming_gallery.py   (~30 s)
"""

from repro import (
    BlanketJammer,
    FractionalJammer,
    FrontLoadedJammer,
    MultiCast,
    PeriodicBurstJammer,
    RandomJammer,
    SweepJammer,
    run_broadcast,
)
from repro.analysis import render_table

N = 64
T = 2_000_000

GALLERY = {
    "none": lambda: None,
    "blanket 90%": lambda: BlanketJammer(T, channels=0.9, placement="random", seed=1),
    "blanket 100%": lambda: BlanketJammer(T, channels=1.0, seed=2),
    "fractional 50/80": lambda: FractionalJammer(T, 0.5, 0.8, seed=3),
    "front-loaded": lambda: FrontLoadedJammer(T),
    "bursts 25/50": lambda: PeriodicBurstJammer(T, period=50, burst=25, channels=0.9, seed=4),
    "sweep w=8": lambda: SweepJammer(T, width=8, seed=5),
    "random p=.4": lambda: RandomJammer(T, 0.4, seed=6),
}


def main():
    rows = []
    baseline_cost = None
    for name, make in GALLERY.items():
        r = run_broadcast(MultiCast(N), N, adversary=make(), seed=11)
        if name == "none":
            baseline_cost = r.max_cost
        extra = r.max_cost - baseline_cost
        rows.append(
            [
                name,
                "yes" if r.success else "NO",
                r.slots,
                r.adversary_spend,
                r.max_cost,
                extra,
                (extra / r.adversary_spend) if r.adversary_spend else float("nan"),
            ]
        )
    print(
        render_table(
            ["strategy", "ok", "slots", "Eve spend", "max cost", "extra cost", "extra/T"],
            rows,
            title=f"MultiCast (n={N}) vs the oblivious-jammer gallery, T={T:,}",
        )
    )
    print(
        "\n'extra cost' is each node's spend beyond the jam-free baseline "
        "(the tau of Definition 3.1);\n'extra/T' is the resource-competitive "
        "ratio — small means Eve is losing the energy war."
    )


if __name__ == "__main__":
    main()
