#!/usr/bin/env python
"""Quickstart: broadcast a message through a jammed multi-channel network.

Runs the paper's headline protocol (``MultiCast``, Fig. 2) on a 64-node
single-hop network, first on a clean spectrum and then against a jammer
spending half a million energy units, and prints the resource-competitiveness
arithmetic (Definition 3.1): Eve outspends every honest node by orders of
magnitude and still fails to block the broadcast.

Run:  python examples/quickstart.py
"""

from repro import BlanketJammer, MultiCast, run_broadcast

N = 64  # nodes; node 0 is the source
EVE_BUDGET = 2_000_000  # T — Eve's total energy


def describe(tag, result):
    print(f"--- {tag} ---")
    print(f"  success          : {result.success}")
    print(f"  slots elapsed    : {result.slots:,}")
    print(f"  all informed by  : slot {result.dissemination_slot:,}")
    print(f"  max node cost    : {result.max_cost:,} energy units")
    print(f"  Eve's spend      : {result.adversary_spend:,}")
    if result.adversary_spend:
        print(f"  cost ratio       : {result.competitive_ratio():.4f} (node/Eve)")
    print()


def main():
    # A clean spectrum: everything finishes inside the first iteration,
    # O(lg^2 n) time and energy (Theorem 5.4, T = 0 case).
    clean = run_broadcast(MultiCast(N), N, seed=7)
    describe("no jamming", clean)

    # Eve jams 90% of the 32 channels every slot until her budget is gone.
    eve = BlanketJammer(budget=EVE_BUDGET, channels=0.9, placement="random", seed=1)
    jammed = run_broadcast(MultiCast(N), N, adversary=eve, seed=7)
    describe(f"blanket jamming, T = {EVE_BUDGET:,}", jammed)

    assert clean.success and jammed.success
    extra = jammed.max_cost - clean.max_cost
    print(
        f"Verdict: Eve burned {jammed.adversary_spend:,} units to delay the "
        f"broadcast by {jammed.slots - clean.slots:,} slots,\nwhile the most "
        f"any node paid over the jam-free baseline was {extra:,} units "
        f"(~sqrt(T/n) — Theorem 5.4)."
    )


if __name__ == "__main__":
    main()
