#!/usr/bin/env python
"""Watch the epidemic: exponential growth of the informed population —
even with 90% of the spectrum jammed 90% of the time.

Lemma 4.1 is the paper's engine room: on n/2 channels, the number of informed
nodes grows geometrically per "segment" of slots as long as Eve leaves a
constant fraction of channels un-jammed a constant fraction of the time.
This example traces ``MultiCastCore`` runs with and without a
``FractionalJammer(0.9, 0.9)`` and draws the two informed-population curves
as an ASCII chart: same shape, jammed just ~an order slower.

Run:  python examples/epidemic_growth.py
"""

import numpy as np

from repro import FractionalJammer, MultiCastCore, run_broadcast
from repro.sim.trace import TraceRecorder

N = 256
WIDTH = 68


def informed_curve(adversary, seed):
    trace = TraceRecorder()
    proto = MultiCastCore(n=N, T=10_000_000, a=8192.0, max_iterations=1)
    run_broadcast(proto, N, adversary=adversary, seed=seed, trace=trace)
    return trace.informed_curve()


def ascii_chart(series, width=WIDTH, height=16):
    """series: dict name -> (slots, counts); log-x chart of informed counts."""
    xmax = max(s[-1] for s, _ in series.values())
    grid = [[" "] * width for _ in range(height)]
    marks = "ox*+"
    for k, (name, (slots, counts)) in enumerate(series.items()):
        for s, c in zip(slots, counts):
            x = int(np.log1p(s) / np.log1p(xmax) * (width - 1))
            y = int((c - 1) / (N - 1) * (height - 1))
            grid[height - 1 - y][x] = marks[k % len(marks)]
    print(f"informed nodes (1 -> {N}), log-scaled slot axis (0 -> {xmax:,})")
    for row in grid:
        print("|" + "".join(row))
    print("+" + "-" * width)
    for k, name in enumerate(series):
        print(f"  '{marks[k % len(marks)]}' = {name}")


def main():
    series = {
        "clean spectrum": informed_curve(None, seed=5),
        "90% channels jammed 90% of slots": informed_curve(
            FractionalJammer(budget=None, slot_fraction=0.9, channel_fraction=0.9, seed=2),
            seed=5,
        ),
    }
    ascii_chart(series)
    for name, (slots, counts) in series.items():
        halfway = slots[np.searchsorted(counts, N // 2)]
        print(f"{name}: half informed by slot {halfway:,}, all by {slots[-1]:,}")
    print(
        "\nBoth curves are exponentials — jamming 90/90 shifts the doubling "
        "time by a constant, exactly Lemma 4.1's claim.  To stop the epidemic "
        "Eve must jam ~all channels, paying Theta(n) per slot."
    )


if __name__ == "__main__":
    main()
