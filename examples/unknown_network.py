#!/usr/bin/env python
"""Ad-hoc deployment: broadcasting when nobody knows the network size.

``MultiCastAdv`` (paper Fig. 4) guesses n through an epoch/phase lattice:
phase j of epoch i bets n ~ 2^{j+1} and runs an epidemic broadcast on 2^j
channels, with a two-stage informed -> helper -> halt termination mechanism
driven by the four counters N_m, N'_m, N_n, N_s.  This example traces a run
and prints the status timeline: when the message actually spread, when nodes
decided the estimate was right (helper), and when they dared to halt.

Run:  python examples/unknown_network.py   (~15 s)
"""

from repro import MultiCastAdv, run_broadcast
from repro.analysis import render_table
from repro.sim.trace import TraceRecorder

N = 16  # the protocol does NOT receive this value
# Laptop-scale knobs (structural constants are the paper's; see DESIGN.md 2.2)
PROTO = dict(alpha=0.24, b=0.01, halt_noise_divisor=50.0, helper_wait=4.0)


def main():
    trace = TraceRecorder()
    r = run_broadcast(MultiCastAdv(**PROTO), N, seed=3, trace=trace, max_slots=120_000_000)

    print(f"success={r.success}  slots={r.slots:,}  epochs={r.periods}  max cost={r.max_cost:,}\n")

    slots, counts = trace.informed_curve()
    print(f"message fully disseminated by slot {r.dissemination_slot:,} "
          f"(epoch boundaries are far later — termination is the hard part)\n")

    rows = []
    helpers = halts = 0
    for ph in trace.periods_of("phase"):
        if ph.detail["new_helpers"] or ph.detail["new_halts"]:
            helpers += ph.detail["new_helpers"]
            halts += ph.detail["new_halts"]
            i, j = ph.index
            rows.append(
                [f"({i},{j})", 2**j, ph.detail["new_helpers"], ph.detail["new_halts"],
                 helpers, halts, ph.end_slot]
            )
    print(
        render_table(
            ["phase (i,j)", "channels", "+helpers", "+halts", "helpers", "halted", "slot"],
            rows,
            title="status-transition timeline (phases with activity only)",
        )
    )
    hp = r.extras["helper_phase"]
    print(
        f"\nnodes promoted to helper at phases j in {sorted(set(hp.tolist()))} "
        f"(the paper's 'good' guess for n={N} is j = lg n - 1 = {N.bit_length() - 2}; "
        "scatter shrinks as the scale knob b grows)"
    )


if __name__ == "__main__":
    main()
