"""Predictors for the paper's bounds, used as reference curves.

These return the *shape* each theorem predicts, up to the unknown constant —
benches normalize both curves at one anchor point and compare shapes, never
absolute values (the paper's constants are for analysis, not prediction).

================  ======================================================
function          paper claim
================  ======================================================
multicast_core_*  Thm 4.4:  time, cost = O(T/n + max{lg T, lg n})
multicast_time    Thm 5.4a: O(T/n + lg^2 n)
multicast_cost    Thm 5.4b: O(sqrt(T/n) * sqrt(lg T) * lg n + lg^2 n)
adv_time          Thm 6.10b: O~(T / n^{1-2a} + n^{2a})
adv_cost          Thm 6.10c: O~(sqrt(T / n^{1-2a}) + n^{2a})
limited_time      Cor 7.1:  O(T/C + (n/C) lg^2 n)
limited_adv_time  Thm 7.2:  O~(T / C^{1-2a} + n^{2+2a} / C^{2-2a})
================  ======================================================
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "PREDICTORS",
    "multicast_core_time",
    "multicast_time",
    "multicast_cost",
    "adv_time",
    "adv_cost",
    "limited_time",
    "limited_adv_time",
    "normalize_to",
]

#: Every predictor name mapped to the theorem it encodes.  This is the
#: coverage contract of the claims ledger: ``repro.report.ledger`` must
#: declare exactly one row per entry (UNTESTED rows included, so gaps are
#: visible), and ``tests/test_docs.py`` requires every name to appear in
#: the generated CLAIMS.md.
PREDICTORS = {
    "multicast_core_time": "Theorem 4.4",
    "multicast_time": "Theorem 5.4(a)",
    "multicast_cost": "Theorem 5.4(b)",
    "adv_time": "Theorem 6.10(b)",
    "adv_cost": "Theorem 6.10(c)",
    "limited_time": "Corollary 7.1",
    "limited_adv_time": "Theorem 7.2",
}


def _lg(x) -> np.ndarray:
    return np.log2(np.maximum(2.0, np.asarray(x, dtype=np.float64)))


def multicast_core_time(T, n) -> np.ndarray:
    """Theorem 4.4: O(T/n + max{lg T, lg n}) — also the cost bound."""
    T = np.asarray(T, dtype=np.float64)
    n = np.asarray(n, dtype=np.float64)
    return T / n + np.maximum(_lg(T), np.log2(n))


def multicast_time(T, n) -> np.ndarray:
    """Theorem 5.4(a): O(T/n + lg^2 n)."""
    T = np.asarray(T, dtype=np.float64)
    n = np.asarray(n, dtype=np.float64)
    return T / n + np.log2(n) ** 2


def multicast_cost(T, n) -> np.ndarray:
    """Theorem 5.4(b): O(sqrt(T/n) * sqrt(lg T) * lg n + lg^2 n)."""
    T = np.asarray(T, dtype=np.float64)
    n = np.asarray(n, dtype=np.float64)
    return np.sqrt(T / n) * np.sqrt(_lg(T)) * np.log2(n) + np.log2(n) ** 2


def adv_time(T, n, alpha) -> np.ndarray:
    """Theorem 6.10(b): O(T / n^{1-2a} * lg^3 T + n^{2a} * lg^3 n)."""
    T = np.asarray(T, dtype=np.float64)
    n = np.asarray(n, dtype=np.float64)
    return T / n ** (1 - 2 * alpha) * _lg(T) ** 3 + n ** (2 * alpha) * np.log2(n) ** 3


def adv_cost(T, n, alpha) -> np.ndarray:
    """Theorem 6.10(c): O(sqrt(T / n^{1-2a}) * lg^3 T + n^{2a} * lg^3 n)."""
    T = np.asarray(T, dtype=np.float64)
    n = np.asarray(n, dtype=np.float64)
    return (
        np.sqrt(T / n ** (1 - 2 * alpha)) * _lg(T) ** 3
        + n ** (2 * alpha) * np.log2(n) ** 3
    )


def limited_time(T, n, C) -> np.ndarray:
    """Corollary 7.1: O(T/C + (n/C) * lg^2 n)."""
    T = np.asarray(T, dtype=np.float64)
    n = np.asarray(n, dtype=np.float64)
    C = np.asarray(C, dtype=np.float64)
    return T / C + (n / C) * np.log2(n) ** 2


def limited_adv_time(T, n, C, alpha) -> np.ndarray:
    """Theorem 7.2: O~(T / C^{1-2a} + n^{2+2a} / C^{2-2a})."""
    T = np.asarray(T, dtype=np.float64)
    n = np.asarray(n, dtype=np.float64)
    C = np.asarray(C, dtype=np.float64)
    return T / C ** (1 - 2 * alpha) + n ** (2 + 2 * alpha) / C ** (2 - 2 * alpha)


def normalize_to(prediction: np.ndarray, measured: np.ndarray, anchor: int = -1) -> np.ndarray:
    """Scale a predicted curve so it matches the measurement at one anchor
    index (default: the last, largest-parameter point).  Shape comparison
    only — the paper's hidden constants are not reproducible."""
    prediction = np.asarray(prediction, dtype=np.float64)
    scale = measured[anchor] / prediction[anchor]
    return prediction * scale
