"""Scaling-law fits.

The theorem-shape experiments reduce to two questions about a measured curve
y(x):

* is it linear in x (time vs. T for fixed n — Theorems 4.4/5.4)?  ->
  :func:`fit_linear` and check the relative residual;
* what power law does it follow (cost vs. T — the sqrt in Theorem 5.4(b))?
  -> :func:`fit_loglog_slope` and compare the exponent.

Both are tiny least-squares wrappers; they exist so benches and tests state
their acceptance criteria in one line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "LinearFit",
    "PowerFit",
    "fit_linear",
    "fit_loglog_slope",
    "max_relative_residual",
]


@dataclass(frozen=True)
class LinearFit:
    """y ~ slope * x + intercept."""

    slope: float
    intercept: float
    r2: float


@dataclass(frozen=True)
class PowerFit:
    """y ~ scale * x^exponent (fit in log-log space)."""

    exponent: float
    scale: float
    r2: float


def _r2(y: np.ndarray, yhat: np.ndarray) -> float:
    ss_res = float(((y - yhat) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def fit_linear(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Ordinary least squares line through (x, y)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size < 2:
        raise ValueError("need at least two points")
    slope, intercept = np.polyfit(x, y, 1)
    return LinearFit(float(slope), float(intercept), _r2(y, slope * x + intercept))


def fit_loglog_slope(x: Sequence[float], y: Sequence[float]) -> PowerFit:
    """Power-law exponent via least squares on (log x, log y).

    Points with non-positive coordinates are rejected (they indicate a bug in
    the caller's sweep, not a fitting concern).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size < 2:
        raise ValueError("need at least two points")
    if (x <= 0).any() or (y <= 0).any():
        raise ValueError("log-log fit needs strictly positive data")
    lx, ly = np.log(x), np.log(y)
    slope, intercept = np.polyfit(lx, ly, 1)
    return PowerFit(float(slope), float(np.exp(intercept)), _r2(ly, slope * lx + intercept))


def max_relative_residual(expected: Sequence[float], measured: Sequence[float]) -> float:
    """Worst pointwise ``|measured - expected| / expected`` of two curves.

    The shape-comparison acceptance number: after
    :func:`repro.analysis.theory.normalize_to` anchors a predicted curve to a
    measurement, this says how far the worst point strays (0.4 = 40 % off).
    """
    expected = np.asarray(expected, dtype=np.float64)
    measured = np.asarray(measured, dtype=np.float64)
    if expected.shape != measured.shape or expected.size == 0:
        raise ValueError("need two equal-length, non-empty curves")
    if (expected <= 0).any():
        raise ValueError("expected curve must be strictly positive")
    return float(np.max(np.abs(measured - expected) / expected))
