"""Experiment harness: trials, sweeps, fits, theory predictors, tables.

The benchmark modules (``benchmarks/``) are thin: all reusable machinery —
running seeded trial batches, sweeping a parameter, fitting log-log slopes,
predicting the paper's bounds, and rendering the paper-style ASCII tables —
lives here so examples and tests can use it too.
"""

from repro.analysis.fits import fit_loglog_slope, fit_linear, max_relative_residual
from repro.analysis.stats import Summary, TrialBatch, run_trials, summarize
from repro.analysis.sweeps import SweepPoint, SweepResult, sweep
from repro.analysis.tables import render_markdown_table, render_table
from repro.analysis import theory

__all__ = [
    "Summary",
    "SweepPoint",
    "SweepResult",
    "TrialBatch",
    "fit_linear",
    "fit_loglog_slope",
    "max_relative_residual",
    "render_markdown_table",
    "render_table",
    "run_trials",
    "summarize",
    "sweep",
    "theory",
]
