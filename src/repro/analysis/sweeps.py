"""Parameter sweeps: one trial batch per parameter value, tabulated.

A sweep is the backbone of every bench: vary T (or C, n, alpha), run a seeded
batch at each value, and collect (value, batch) pairs with convenient metric
extraction for fitting and table rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.analysis.stats import Summary, TrialBatch, run_trials

__all__ = ["SweepPoint", "SweepResult", "sweep"]


@dataclass
class SweepPoint:
    """One sweep coordinate: the parameter value and its trial batch."""

    value: float
    batch: TrialBatch

    def mean(self, metric: str) -> float:
        return self.batch.summary(metric).mean

    def precision(self, metric: str) -> float:
        """Relative 95% CI half-width (ci95 / |mean|) of one metric."""
        return self.batch.summary(metric).rel_ci95


@dataclass
class SweepResult:
    """All points of one sweep, in parameter order."""

    parameter: str
    points: List[SweepPoint] = field(default_factory=list)

    @property
    def values(self) -> np.ndarray:
        return np.array([p.value for p in self.points], dtype=np.float64)

    def means(self, metric: str) -> np.ndarray:
        return np.array([p.mean(metric) for p in self.points], dtype=np.float64)

    def summaries(self, metric: str) -> List[Summary]:
        return [p.batch.summary(metric) for p in self.points]

    @property
    def success_rates(self) -> np.ndarray:
        return np.array([p.batch.success_rate for p in self.points], dtype=np.float64)

    @property
    def total_violations(self) -> int:
        return sum(p.batch.violations for p in self.points)

    def __iter__(self):
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)


def sweep(
    parameter: str,
    values: Sequence[float],
    protocol_factory: Callable[[float], object],
    n_of: Callable[[float], int],
    adversary_factory: Optional[Callable[[float, int], object]] = None,
    *,
    trials: int = 5,
    base_seed: int = 0,
    max_slots: int = 50_000_000,
    workers: int = 1,
    ci_target: Optional[float] = None,
    ci_metric: str = "slots",
    max_trials: Optional[int] = None,
) -> SweepResult:
    """Run a batch at every parameter value.

    ``protocol_factory(v)`` builds the protocol for value ``v``;
    ``n_of(v)`` gives the network size (usually constant);
    ``adversary_factory(v, seed)`` builds Eve for value ``v``.
    ``workers`` fans each batch's trials across processes via
    :func:`repro.exp.pool.fork_map`; results are independent of the worker
    count (trial seeds derive from ``(base_seed, label, t)``, never from
    scheduling).

    With ``ci_target`` set, each point runs adaptive seed *waves* of
    ``trials`` executions until the relative 95% CI half-width of
    ``ci_metric`` (``ci95 / |mean|``) drops to the target or the batch
    reaches ``max_trials`` (default ``10 * trials``) — the in-memory twin of
    campaign-level adaptive stopping (DESIGN.md section 10).  Trial indices
    extend contiguously across waves, so a point that stopped after ``k``
    trials is a bit-identical prefix of the fixed ``trials=k`` batch.
    """
    result = SweepResult(parameter)
    if max_trials is None:
        max_trials = 10 * trials
    for v in values:
        batch = TrialBatch()
        while True:
            wave = run_trials(
                lambda v=v: protocol_factory(v),
                n_of(v),
                None if adversary_factory is None else (lambda seed, v=v: adversary_factory(v, seed)),
                trials=min(trials, max(0, max_trials - len(batch)))
                if ci_target is not None
                else trials,
                base_seed=base_seed,
                max_slots=max_slots,
                label=f"{parameter}={v}",
                workers=workers,
                first_trial=len(batch),
            )
            batch.results.extend(wave.results)
            if ci_target is None or len(batch) >= max_trials:
                break
            # a single trial has ci95 = 0 by construction — never "precise"
            if len(batch) >= 2 and batch.summary(ci_metric).rel_ci95 <= ci_target:
                break
        result.points.append(SweepPoint(float(v), batch))
    return result
