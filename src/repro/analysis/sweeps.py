"""Parameter sweeps: one trial batch per parameter value, tabulated.

A sweep is the backbone of every bench: vary T (or C, n, alpha), run a seeded
batch at each value, and collect (value, batch) pairs with convenient metric
extraction for fitting and table rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.analysis.stats import Summary, TrialBatch, run_trials

__all__ = ["SweepPoint", "SweepResult", "sweep"]


@dataclass
class SweepPoint:
    """One sweep coordinate: the parameter value and its trial batch."""

    value: float
    batch: TrialBatch

    def mean(self, metric: str) -> float:
        return self.batch.summary(metric).mean


@dataclass
class SweepResult:
    """All points of one sweep, in parameter order."""

    parameter: str
    points: List[SweepPoint] = field(default_factory=list)

    @property
    def values(self) -> np.ndarray:
        return np.array([p.value for p in self.points], dtype=np.float64)

    def means(self, metric: str) -> np.ndarray:
        return np.array([p.mean(metric) for p in self.points], dtype=np.float64)

    def summaries(self, metric: str) -> List[Summary]:
        return [p.batch.summary(metric) for p in self.points]

    @property
    def success_rates(self) -> np.ndarray:
        return np.array([p.batch.success_rate for p in self.points], dtype=np.float64)

    @property
    def total_violations(self) -> int:
        return sum(p.batch.violations for p in self.points)

    def __iter__(self):
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)


def sweep(
    parameter: str,
    values: Sequence[float],
    protocol_factory: Callable[[float], object],
    n_of: Callable[[float], int],
    adversary_factory: Optional[Callable[[float, int], object]] = None,
    *,
    trials: int = 5,
    base_seed: int = 0,
    max_slots: int = 50_000_000,
    workers: int = 1,
) -> SweepResult:
    """Run a batch at every parameter value.

    ``protocol_factory(v)`` builds the protocol for value ``v``;
    ``n_of(v)`` gives the network size (usually constant);
    ``adversary_factory(v, seed)`` builds Eve for value ``v``.
    ``workers`` fans each batch's trials across processes via
    :func:`repro.exp.pool.fork_map`; results are independent of the worker
    count (trial seeds derive from ``(base_seed, label, t)``, never from
    scheduling).
    """
    result = SweepResult(parameter)
    for v in values:
        batch = run_trials(
            lambda v=v: protocol_factory(v),
            n_of(v),
            None if adversary_factory is None else (lambda seed, v=v: adversary_factory(v, seed)),
            trials=trials,
            base_seed=base_seed,
            max_slots=max_slots,
            label=f"{parameter}={v}",
            workers=workers,
        )
        result.points.append(SweepPoint(float(v), batch))
    return result
