"""Seeded trial batches and summary statistics.

The paper's guarantees are "with high probability" statements; at laptop
scale we measure success *rates* and cost/time distributions over many
independently seeded executions.  :func:`run_trials` is the single entry
point: protocol and adversary are built fresh per trial from factories so no
state leaks between trials, and every trial is reproducible from
``(base_seed, trial_index)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.result import BroadcastResult, run_broadcast
from repro.sim.rng import derive_seed

__all__ = ["TrialBatch", "Summary", "run_trials", "summarize"]


@dataclass
class Summary:
    """Five-number-ish summary of one metric over a trial batch."""

    mean: float
    std: float
    median: float
    lo: float  #: min
    hi: float  #: max
    ci95: float  #: 1.96 * std / sqrt(k) — half-width of the normal 95% CI

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            nan = float("nan")
            return cls(nan, nan, nan, nan, nan, nan)
        std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
        return cls(
            mean=float(arr.mean()),
            std=std,
            median=float(np.median(arr)),
            lo=float(arr.min()),
            hi=float(arr.max()),
            ci95=1.96 * std / math.sqrt(arr.size),
        )

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.mean:.4g} ± {self.ci95:.2g}"


@dataclass
class TrialBatch:
    """Results of k independent executions of one configuration."""

    results: List[BroadcastResult] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.results)

    # -- vectors ------------------------------------------------------------------
    @property
    def slots(self) -> np.ndarray:
        return np.array([r.slots for r in self.results], dtype=np.float64)

    @property
    def max_cost(self) -> np.ndarray:
        return np.array([r.max_cost for r in self.results], dtype=np.float64)

    @property
    def mean_cost(self) -> np.ndarray:
        return np.array([r.mean_cost for r in self.results], dtype=np.float64)

    @property
    def adversary_spend(self) -> np.ndarray:
        return np.array([r.adversary_spend for r in self.results], dtype=np.float64)

    @property
    def dissemination_slots(self) -> np.ndarray:
        """Slot of full dissemination per trial (NaN where incomplete)."""
        return np.array(
            [
                float("nan") if r.dissemination_slot is None else r.dissemination_slot
                for r in self.results
            ],
            dtype=np.float64,
        )

    # -- aggregates ---------------------------------------------------------------
    @property
    def success_rate(self) -> float:
        return sum(r.success for r in self.results) / max(1, len(self.results))

    @property
    def violations(self) -> int:
        """Total halted-while-uninformed nodes across the batch."""
        return sum(r.halted_uninformed for r in self.results)

    def summary(self, metric: str) -> Summary:
        return Summary.of(getattr(self, metric))


def run_trials(
    protocol_factory: Callable[[], object],
    n: int,
    adversary_factory: Optional[Callable[[int], object]] = None,
    *,
    trials: int = 10,
    base_seed: int = 0,
    max_slots: int = 50_000_000,
    label: str = "",
    workers: int = 1,
) -> TrialBatch:
    """Run ``trials`` fresh executions and collect the results.

    Parameters
    ----------
    protocol_factory:
        Zero-argument callable building a fresh protocol object (cheap; the
        protocol classes are stateless across runs, but a factory keeps the
        contract obvious).
    adversary_factory:
        Callable ``seed -> adversary`` (or ``None`` for no jamming).  Each
        trial gets a derived, independent adversary seed.
    trials, base_seed:
        Batch size and root seed; trial t runs with node seed
        ``derive_seed(base_seed, label, "net", t)``.
    workers:
        Process count for :func:`repro.exp.pool.fork_map`; every trial's
        seeds derive from ``(base_seed, label, t)`` alone and results come
        back in trial order, so any worker count produces the identical
        batch (1 = in-process serial loop).
    """

    def one(t: int):
        adversary = (
            None
            if adversary_factory is None
            else adversary_factory(derive_seed(base_seed, label, "eve", t))
        )
        return run_broadcast(
            protocol_factory(),
            n,
            adversary,
            seed=derive_seed(base_seed, label, "net", t),
            max_slots=max_slots,
        )

    from repro.exp.pool import fork_map  # local: repro.exp.store imports Summary

    return TrialBatch(results=fork_map(one, range(trials), workers=workers))


def summarize(batch: TrialBatch, metric: str) -> Summary:
    """Shorthand for ``batch.summary(metric)``."""
    return batch.summary(metric)
