"""Seeded trial batches and summary statistics.

The paper's guarantees are "with high probability" statements; at laptop
scale we measure success *rates* and cost/time distributions over many
independently seeded executions.  :func:`run_trials` is the single entry
point: protocol and adversary are built fresh per trial from factories so no
state leaks between trials, and every trial is reproducible from
``(base_seed, trial_index)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.result import BroadcastResult, run_broadcast
from repro.sim.rng import derive_seed

__all__ = ["TrialBatch", "Summary", "RunningStat", "run_trials", "summarize"]


@dataclass
class Summary:
    """Five-number-ish summary of one metric over a trial batch."""

    mean: float
    std: float
    median: float
    lo: float  #: min
    hi: float  #: max
    ci95: float  #: 1.96 * std / sqrt(k) — half-width of the normal 95% CI

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            nan = float("nan")
            return cls(nan, nan, nan, nan, nan, nan)
        std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
        return cls(
            mean=float(arr.mean()),
            std=std,
            median=float(np.median(arr)),
            lo=float(arr.min()),
            hi=float(arr.max()),
            ci95=1.96 * std / math.sqrt(arr.size),
        )

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.mean:.4g} ± {self.ci95:.2g}"

    @property
    def rel_ci95(self) -> float:
        """ci95 / |mean| — the relative precision adaptive stopping targets.

        0/0 (a constant-zero metric) counts as perfectly precise; any other
        zero-mean spread is infinitely imprecise.  NaN propagates, so a cell
        with undefined values (e.g. ``dissemination_slot`` of failed trials)
        can never satisfy a precision target by accident.
        """
        if math.isnan(self.mean) or math.isnan(self.ci95):
            return float("nan")
        if self.mean == 0.0:
            return 0.0 if self.ci95 == 0.0 else float("inf")
        return self.ci95 / abs(self.mean)


class RunningStat:
    """Welford online accumulator: mean/std/ci95/min/max in O(1) memory.

    The streaming counterpart of :meth:`Summary.of` for pipelines that must
    not hold the value vector — shard merges, million-row store reductions,
    per-cell precision tracking during adaptive stopping.  Mean and variance
    match the batch computation to float tolerance (the update order differs
    from NumPy's pairwise summation in the last ulps); the median is *not*
    tracked (exact streaming medians need the values), so :meth:`summary`
    reports it as NaN.  Exact-median streaming aggregation lives in
    :class:`repro.exp.store.StreamAggregator`, which keeps compact per-cell
    value buffers instead.
    """

    __slots__ = ("count", "mean", "_m2", "lo", "hi", "_nan")

    def __init__(self):
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.lo = float("inf")
        self.hi = float("-inf")
        self._nan = 0

    def push(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            # one NaN poisons the batch statistics; mirror that
            self._nan += 1
            self.count += 1
            return
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.lo = min(self.lo, value)
        self.hi = max(self.hi, value)

    def extend(self, values: Sequence[float]) -> "RunningStat":
        for v in values:
            self.push(v)
        return self

    @property
    def std(self) -> float:
        if self._nan:
            return float("nan")
        if self.count < 2:
            return 0.0 if self.count else float("nan")
        return math.sqrt(self._m2 / (self.count - 1))

    @property
    def ci95(self) -> float:
        if not self.count:
            return float("nan")
        return 1.96 * self.std / math.sqrt(self.count)

    def summary(self) -> Summary:
        """The :class:`Summary` of everything pushed so far (median = NaN)."""
        nan = float("nan")
        if not self.count:
            return Summary(nan, nan, nan, nan, nan, nan)
        if self._nan:
            return Summary(nan, nan, nan, nan, nan, nan)
        return Summary(
            mean=self.mean, std=self.std, median=nan, lo=self.lo, hi=self.hi,
            ci95=self.ci95,
        )


@dataclass
class TrialBatch:
    """Results of k independent executions of one configuration."""

    results: List[BroadcastResult] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.results)

    # -- vectors ------------------------------------------------------------------
    @property
    def slots(self) -> np.ndarray:
        return np.array([r.slots for r in self.results], dtype=np.float64)

    @property
    def max_cost(self) -> np.ndarray:
        return np.array([r.max_cost for r in self.results], dtype=np.float64)

    @property
    def mean_cost(self) -> np.ndarray:
        return np.array([r.mean_cost for r in self.results], dtype=np.float64)

    @property
    def adversary_spend(self) -> np.ndarray:
        return np.array([r.adversary_spend for r in self.results], dtype=np.float64)

    @property
    def dissemination_slots(self) -> np.ndarray:
        """Slot of full dissemination per trial (NaN where incomplete)."""
        return np.array(
            [
                float("nan") if r.dissemination_slot is None else r.dissemination_slot
                for r in self.results
            ],
            dtype=np.float64,
        )

    # -- aggregates ---------------------------------------------------------------
    @property
    def success_rate(self) -> float:
        return sum(r.success for r in self.results) / max(1, len(self.results))

    @property
    def violations(self) -> int:
        """Total halted-while-uninformed nodes across the batch."""
        return sum(r.halted_uninformed for r in self.results)

    def summary(self, metric: str) -> Summary:
        return Summary.of(getattr(self, metric))


#: Default trials per lane-batched kernel pass.  The sender-keyed block
#: kernel does most of the amortizing on its own, so the remaining trade is
#: cache residency: each lane adds ``block_slots * n`` coin doubles to the
#: per-block working set, and on the 1-core reference box small widths win
#: (measured in BENCH_engine.json).  Raise on machines with room.
DEFAULT_LANE_WIDTH = 2


def run_trials(
    protocol_factory: Callable[[], object],
    n: int,
    adversary_factory: Optional[Callable[[int], object]] = None,
    *,
    trials: int = 10,
    base_seed: int = 0,
    max_slots: int = 50_000_000,
    label: str = "",
    workers: int = 1,
    backend: str = "auto",
    lane_width: Optional[int] = None,
    first_trial: int = 0,
) -> TrialBatch:
    """Run ``trials`` fresh executions and collect the results.

    Parameters
    ----------
    protocol_factory:
        Zero-argument callable building a fresh protocol object (cheap; the
        protocol classes are stateless across runs, but a factory keeps the
        contract obvious).
    adversary_factory:
        Callable ``seed -> adversary`` (or ``None`` for no jamming).  Each
        trial gets a derived, independent adversary seed.
    trials, base_seed:
        Batch size and root seed; trial t runs with node seed
        ``derive_seed(base_seed, label, "net", t)``.
    workers:
        Process count for :func:`repro.exp.pool.fork_map`; every trial's
        seeds derive from ``(base_seed, label, t)`` alone and results come
        back in trial order, so any worker count produces the identical
        batch (1 = in-process serial loop).
    backend:
        ``"auto"`` (default) runs trials through the continuous-batching
        lane engine (:func:`repro.core.batch.run_broadcast_stream`)
        whenever ``workers <= 1`` — on a single core, batching is the fast
        path and multiprocessing buys nothing.  ``"batched"`` forces it;
        ``"fixed"`` forces the lockstep chunked engine
        (:func:`repro.core.batch.run_broadcast_batch`, the pre-compaction
        schedule — kept addressable as the baseline the compaction bench
        and the schedule-invariance suite compare against); ``"scalar"``
        forces the per-trial loop / process pool.  Every backend produces
        the identical batch: trial seeds depend only on
        ``(base_seed, label, t)`` and both batched engines are
        bit-identical per trial (DESIGN.md sections 6 and 13).  Reactive
        adversaries (the adaptive arena's jammers, DESIGN.md section 7)
        are legal under every backend: the dispatchers route such trials
        to the arena runtime per lane, so the adversary-model axis needs
        no call-site changes.
    lane_width:
        Trials per batched kernel pass (memory/throughput knob; no effect
        on results).  ``None`` (default) uses the protocol's advertised
        preference: streaming backends take ``stream_lane_width`` first
        (compaction keeps wide batches occupied, so ``MultiCastAdv``
        streams wider than its lockstep blocks), then
        ``batch_lane_width``, then :data:`DEFAULT_LANE_WIDTH`.
    first_trial:
        Index of the first trial to run: the batch covers trial indices
        ``[first_trial, first_trial + trials)``.  Because every trial's
        seeds derive from its *index*, running ``trials=10`` equals running
        ``trials=5`` followed by ``trials=5, first_trial=5`` — the
        seed-wave primitive adaptive stopping is built on
        (:mod:`repro.exp.adaptive`).
    """
    if backend not in ("auto", "scalar", "batched", "fixed"):
        raise ValueError(f"unknown backend {backend!r} (auto, scalar, batched, fixed)")

    def adversary_for(t: int):
        if adversary_factory is None:
            return None
        return adversary_factory(derive_seed(base_seed, label, "eve", t))

    def net_seed(t: int) -> int:
        return derive_seed(base_seed, label, "net", t)

    stop = first_trial + trials
    if backend in ("batched", "fixed") or (backend == "auto" and workers <= 1):
        from repro.core.batch import run_broadcast_batch, run_broadcast_stream

        probe = protocol_factory() if lane_width is None else None
        trial_ids = range(first_trial, stop)
        if backend != "fixed":
            # continuous batching: one lane stream over the whole trial
            # list, compacting/refilling as trials retire (DESIGN.md §13);
            # streams prefer the wider stream_lane_width because refill
            # keeps wide batches occupied
            if lane_width is None:
                lane_width = getattr(
                    probe,
                    "stream_lane_width",
                    getattr(probe, "batch_lane_width", DEFAULT_LANE_WIDTH),
                )
            return TrialBatch(
                results=run_broadcast_stream(
                    protocol_factory(),
                    n,
                    [adversary_for(t) for t in trial_ids],
                    [net_seed(t) for t in trial_ids],
                    max_slots=max_slots,
                    lane_width=max(1, int(lane_width)),
                )
            )
        if lane_width is None:
            lane_width = getattr(probe, "batch_lane_width", DEFAULT_LANE_WIDTH)
        lane_width = max(1, int(lane_width))
        results: List[BroadcastResult] = []
        for start in range(first_trial, stop, lane_width):
            chunk = range(start, min(start + lane_width, stop))
            results.extend(
                run_broadcast_batch(
                    protocol_factory(),
                    n,
                    [adversary_for(t) for t in chunk],
                    [net_seed(t) for t in chunk],
                    max_slots=max_slots,
                )
            )
        return TrialBatch(results=results)

    def one(t: int):
        return run_broadcast(
            protocol_factory(),
            n,
            adversary_for(t),
            seed=net_seed(t),
            max_slots=max_slots,
        )

    from repro.exp.pool import fork_map  # local: repro.exp.store imports Summary

    return TrialBatch(results=fork_map(one, range(first_trial, stop), workers=workers))


def summarize(batch: TrialBatch, metric: str) -> Summary:
    """Shorthand for ``batch.summary(metric)``."""
    return batch.summary(metric)
