"""ASCII table rendering for bench output.

The benches print paper-style result tables to stdout (captured in
``bench_output.txt`` and quoted in EXPERIMENTS.md).  One tiny renderer keeps
them uniform.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

__all__ = ["render_table", "render_markdown_table"]


def _fmt(x: Any) -> str:
    if isinstance(x, float):
        if x != x:  # NaN
            return "—"
        if x == 0:
            return "0"
        if abs(x) >= 1000 or abs(x) < 0.01:
            return f"{x:.3g}"
        return f"{x:.3f}".rstrip("0").rstrip(".")
    return str(x)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width ASCII table (right-aligned numeric-ish cells)."""
    srows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(r) for r in srows)
    return "\n".join(out)


def render_markdown_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render a GitHub-style pipe table (right-aligned columns).

    The report pipeline uses this where EXPERIMENTS.md wants native markdown
    tables instead of fenced ASCII blocks; the cell formatting matches
    :func:`render_table` so the two styles quote numbers identically.
    """
    srows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.rjust(w) for c, w in zip(cells, widths)) + " |"

    # delimiter cells need >= one hyphen to parse as a pipe table, so a
    # width-1 column widens to "-:" instead of a bare ":"
    out = [line(headers), line(["-" * max(1, w - 1) + ":" for w in widths])]
    out.extend(line(r) for r in srows)
    return "\n".join(out)
