"""Parallel, reproducible experiment campaigns.

Monte Carlo confidence on the paper's theorem-level claims takes hundreds of
seeded trials per (protocol x jammer x n) cell; this package turns that from
a hand-rolled loop into a declarative, resumable, parallel pipeline:

1. :mod:`~repro.exp.spec` — declare the grid (:class:`CampaignSpec`) as
   JSON-friendly data; every trial's seeds derive from its identity.
2. :mod:`~repro.exp.pool` — fan per-cell *lane blocks* across worker
   processes (:func:`run_campaign`), each worker lane-batching its blocks
   and writing its own shard file; the single-process fallback is
   bit-identical to the sharded run.
3. :mod:`~repro.exp.store` — stream records to an append-only JSONL store
   (:class:`ResultStore`); re-running the same campaign resumes by skipping
   stored trial keys (after :func:`merge_shards` folds in crash leftovers);
   :func:`aggregate` reduces records to per-cell confidence intervals and
   :func:`stream_aggregate` does the same memory-bounded for million-row
   stores.
4. :mod:`~repro.exp.adaptive` — precision-targeted stopping: with
   ``ci_target`` set on the spec, each cell runs seed waves until its 95%
   CI is tight enough (or ``max_trials``), recording the decision in the
   store.

The ``python -m repro sweep`` CLI wraps exactly this pipeline, and
``repro.analysis`` delegates its trial batches to the same pool.  See
DESIGN.md section 3 for the architecture and EXPERIMENTS.md for the measured
record produced with it.

Example::

    from repro.exp import CampaignSpec, ResultStore, aggregate, run_campaign

    campaign = CampaignSpec(protocols=["multicast", "core"],
                            jammers=["blanket", "sweep"],
                            budget=100_000, trials=20, base_seed=1)
    records = run_campaign(campaign, ResultStore("results.jsonl"), workers=0)
    for cell in aggregate(records):
        print(cell.protocol, cell.jammer, cell.success_rate,
              cell.summary("max_cost"))
"""

from repro.exp.adaptive import AdaptiveController, StoppingRule
from repro.exp.pool import (
    CampaignInterrupted,
    default_workers,
    fork_map,
    run_campaign,
    run_trial,
    run_trial_batch,
)
from repro.exp.registry import (
    UnknownNameError,
    build_jammer,
    build_protocol,
    canonical_jammer,
    canonical_protocol,
    is_reactive_jammer,
    jammer_names,
    oblivious_jammer_names,
    protocol_lane_width,
    protocol_names,
    reactive_jammer_names,
)
from repro.exp.shard import merge_shards, shard_path, shard_paths
from repro.exp.spec import CampaignSpec, TrialSpec
from repro.exp.store import (
    CellStats,
    ResultStore,
    StoppingRecord,
    StoreWriteError,
    StreamAggregator,
    TrialRecord,
    aggregate,
    stream_aggregate,
)
from repro.exp.supervisor import (
    QuarantineRecord,
    RecoveryLog,
    Supervisor,
    SupervisorPolicy,
    quarantine_path,
    read_quarantine,
    remaining_quarantined,
)

__all__ = [
    "AdaptiveController",
    "CampaignInterrupted",
    "CampaignSpec",
    "CellStats",
    "QuarantineRecord",
    "RecoveryLog",
    "ResultStore",
    "StoppingRecord",
    "StoppingRule",
    "StoreWriteError",
    "StreamAggregator",
    "Supervisor",
    "SupervisorPolicy",
    "TrialRecord",
    "TrialSpec",
    "UnknownNameError",
    "aggregate",
    "build_jammer",
    "build_protocol",
    "canonical_jammer",
    "canonical_protocol",
    "default_workers",
    "fork_map",
    "is_reactive_jammer",
    "jammer_names",
    "merge_shards",
    "oblivious_jammer_names",
    "protocol_lane_width",
    "protocol_names",
    "quarantine_path",
    "reactive_jammer_names",
    "read_quarantine",
    "remaining_quarantined",
    "run_campaign",
    "run_trial",
    "run_trial_batch",
    "shard_path",
    "shard_paths",
    "stream_aggregate",
]
