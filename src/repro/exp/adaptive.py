"""Adaptive stopping: seed waves per cell until a precision target is hit.

A fixed-trial campaign spends the same number of seeds on every cell no
matter how tight that cell's confidence interval already is.  Adaptive
stopping turns the trial count into a dependent variable: each cell runs
*waves* of ``trials`` seeds and stops at the first wave boundary where the
relative 95% CI half-width (``ci95 / |mean|``) of the target metric reaches
``ci_target`` — or at the ``max_trials`` cap.  That is what turns "k seeds
per cell" into a precision SLO: tight cells stop early, noisy cells get the
budget, and the total trial count is an output, not an input.

Determinism is the load-bearing property.  A trial's seeds derive from its
identity, so the values observed at a wave boundary are a pure function of
the spec — which makes the stopping decision, and therefore the *set* of
trials run, a pure function of the spec too.  Decisions are only taken on
complete prefixes ``[0, k)`` at wave boundaries ``k`` (never on whatever
subset happens to be in the store), evaluated in trial order via
:meth:`Summary.of`, so an interrupted-and-resumed campaign walks the exact
boundary sequence of an uninterrupted one and stops at the same trial count.
Each decision is recorded in the store as a
:class:`~repro.exp.store.StoppingRecord` whose key embeds the rule — resume
trusts a recorded decision only under the same rule.

A single trial has ``ci95 = 0`` by construction, so no cell may stop before
:data:`MIN_TRIALS` seeds.  Metrics that are undefined for some trials
(``dissemination_slot`` of a failed trial) yield NaN half-widths, which
never satisfy the target: such cells run to the cap rather than stopping on
vacuous precision.  See DESIGN.md section 10.3 for the statistics.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.analysis.stats import Summary
from repro.exp.store import METRICS, ResultStore, StoppingRecord, TrialRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (spec is data-only)
    from repro.exp.spec import CampaignSpec, TrialSpec

__all__ = ["MIN_TRIALS", "StoppingRule", "AdaptiveController", "metric_value"]

#: No stopping decision before this many seeds: one trial's CI half-width is
#: zero by construction and two is the smallest sample with a variance.
MIN_TRIALS = 2


def metric_value(record: TrialRecord, metric: str) -> float:
    """One record's value of ``metric`` as a float (``None`` -> NaN)."""
    value = getattr(record, metric)
    return float("nan") if value is None else float(value)


@dataclass(frozen=True)
class StoppingRule:
    """When a cell may stop: the precision target and the wave geometry."""

    metric: str  #: which TrialRecord metric the CI target applies to
    target: float  #: relative 95% CI half-width to reach (ci95 / |mean|)
    wave: int  #: seeds scheduled per wave (the campaign's ``trials``)
    max_trials: int  #: hard seed cap per cell

    def __post_init__(self):
        if self.metric not in METRICS:
            raise ValueError(
                f"unknown ci metric {self.metric!r} (one of {', '.join(METRICS)})"
            )
        if not (self.target > 0):
            raise ValueError(f"ci target must be positive, got {self.target!r}")
        if self.wave < 1:
            raise ValueError("wave size must be at least 1")
        if self.max_trials < self.wave:
            raise ValueError(
                f"max_trials {self.max_trials} is below the wave size {self.wave}"
            )

    def boundaries(self) -> List[int]:
        """The trial counts at which decisions are taken: wave multiples,
        capped by (and always including) ``max_trials``."""
        out = []
        k = self.wave
        while k < self.max_trials:
            out.append(k)
            k += self.wave
        out.append(self.max_trials)
        return out

    def suffix(self) -> str:
        """The rule's identity inside a stopping key (stable formatting)."""
        return f"stop[{self.metric}<={self.target:g}/w{self.wave}/m{self.max_trials}]"

    @classmethod
    def of_campaign(cls, campaign: "CampaignSpec") -> "StoppingRule":
        return cls(
            metric=campaign.ci_metric,
            target=float(campaign.ci_target),
            wave=int(campaign.trials),
            max_trials=int(campaign.resolved_max_trials()),
        )


@dataclass
class _Decision:
    reason: str  #: "ci-target" | "max-trials"
    achieved: float
    mean: float
    trials: int


class _CellPlan:
    """One cell's observed metric values, keyed by trial index."""

    __slots__ = ("template", "values", "decision", "recorded", "poisoned")

    def __init__(self, template: "TrialSpec"):
        self.template = template  #: the cell's trial-0 spec
        self.values: Dict[int, float] = {}
        self.decision: Optional[_Decision] = None
        self.recorded = False  #: a StoppingRecord for this rule is in the store
        self.poisoned = False  #: a trial was quarantined; the cell is abandoned

    def cell_key(self) -> str:
        return self.template.key().rsplit("/", 1)[0]  # drop the trailing /t0


class AdaptiveController:
    """Schedules seed waves for one campaign until every cell stops.

    The driver loop in :func:`repro.exp.pool.run_campaign` alternates
    :meth:`next_wave` (which also takes any decisions that are already due)
    with executing the returned specs and feeding the records back through
    :meth:`observe`; :meth:`take_decisions` returns the stopping records the
    caller must append to the store.
    """

    def __init__(self, campaign: "CampaignSpec", store: ResultStore):
        self.rule = StoppingRule.of_campaign(campaign)
        self.plans: List[_CellPlan] = [
            _CellPlan(template) for template in campaign.cell_templates()
        ]
        self._by_key: Dict[str, tuple] = {}
        for plan in self.plans:
            for t in range(self.rule.max_trials):
                key = dataclasses.replace(plan.template, trial=t).key()
                self._by_key[key] = (plan, t)
        stop_keys = store.stopping_keys()
        for plan in self.plans:
            if f"{plan.cell_key()}/{self.rule.suffix()}" in stop_keys:
                plan.recorded = True
        for record in store.iter_records():
            self.observe(record)

    def observe(self, record: TrialRecord) -> None:
        """Fold one completed trial into its cell (unknown keys are other
        campaigns sharing the store; ignored)."""
        hit = self._by_key.get(record.key)
        if hit is not None:
            plan, t = hit
            plan.values[t] = metric_value(record, self.rule.metric)

    def _decide(self, plan: _CellPlan) -> Optional[_Decision]:
        """The decision at the largest complete wave boundary, walking the
        boundary sequence exactly as an uninterrupted run would."""
        for k in self.rule.boundaries():
            if any(t not in plan.values for t in range(k)):
                return None  # prefix incomplete: the wave is still running
            summary = Summary.of([plan.values[t] for t in range(k)])
            achieved = summary.rel_ci95
            if k >= MIN_TRIALS and achieved <= self.rule.target:
                return _Decision("ci-target", achieved, summary.mean, k)
            if k >= self.rule.max_trials:
                return _Decision("max-trials", achieved, summary.mean, k)
        return None

    def abandon(self, key: str) -> None:
        """Mark the cell owning trial ``key`` poisoned: no further waves, no
        stopping decision.  Called when the supervisor quarantines a trial —
        the cell's complete-prefix invariant can never hold again, so
        continuing to schedule it would re-run the poison trial forever.
        Unknown keys (other campaigns sharing the store) are ignored."""
        hit = self._by_key.get(key)
        if hit is not None:
            hit[0].poisoned = True

    def take_decisions(self) -> List[StoppingRecord]:
        """Decide every cell that is due, returning the fresh stopping
        records (append them to the store; idempotent across calls).
        Poisoned cells never decide — their value prefix has a permanent
        hole, and a decision computed around it would be a lie."""
        fresh = []
        for plan in self.plans:
            if plan.decision is None and not plan.recorded and not plan.poisoned:
                plan.decision = self._decide(plan)
                if plan.decision is not None:
                    fresh.append(self._record(plan, plan.decision))
        return fresh

    def _record(self, plan: _CellPlan, decision: _Decision) -> StoppingRecord:
        t = plan.template
        return StoppingRecord(
            key=f"{plan.cell_key()}/{self.rule.suffix()}",
            protocol=t.protocol,
            jammer=t.jammer,
            n=t.n,
            budget=t.budget,
            channels=t.channels,
            metric=self.rule.metric,
            target=self.rule.target,
            achieved=float(decision.achieved),
            mean=float(decision.mean),
            trials=decision.trials,
            reason=decision.reason,
        )

    def next_wave(self) -> List["TrialSpec"]:
        """Specs of every trial the next wave needs (empty when all cells
        are done).  Call :meth:`take_decisions` first so freshly-satisfied
        cells do not get another wave."""
        pending = []
        for plan in self.plans:
            if plan.decision is not None or plan.recorded or plan.poisoned:
                continue
            # an undecided cell always has an incomplete boundary (a complete
            # final boundary forces a max-trials decision); the smallest one
            # is the wave goal
            goal = next(
                k
                for k in self.rule.boundaries()
                if any(t not in plan.values for t in range(k))
            )
            for t in range(goal):
                if t not in plan.values:
                    pending.append(dataclasses.replace(plan.template, trial=t))
        return pending

    def precision_snapshot(self) -> Dict[str, float]:
        """Per-open-cell achieved relative CI95 half-width at the largest
        complete wave boundary — the telemetry wave-trajectory payload.
        Cells already decided (or without a complete boundary of at least
        :data:`MIN_TRIALS` seeds) report nothing; non-finite half-widths
        (NaN metrics, zero mean) are omitted rather than serialized."""
        out: Dict[str, float] = {}
        for plan in self.plans:
            if plan.decision is not None or plan.recorded or plan.poisoned:
                continue
            best = None
            for k in self.rule.boundaries():
                if any(t not in plan.values for t in range(k)):
                    break
                best = k
            if best is not None and best >= MIN_TRIALS:
                summary = Summary.of([plan.values[t] for t in range(best)])
                achieved = float(summary.rel_ci95)
                if math.isfinite(achieved):
                    out[plan.cell_key()] = achieved
        return out

    def scheduled_keys(self) -> List[str]:
        """Keys of every trial the campaign actually owns: observed values
        plus recorded decisions define the per-cell trial counts."""
        keys = []
        for plan in self.plans:
            if plan.decision is not None:
                count = plan.decision.trials
            elif plan.values:
                # no decision (interrupted, or abandoned with a hole where
                # the quarantined trial would sit): own every index up to
                # the largest observed, so completed neighbors still report
                count = max(plan.values) + 1
            else:
                count = 0
            for t in range(count):
                keys.append(dataclasses.replace(plan.template, trial=t).key())
        return keys

    @property
    def done(self) -> bool:
        return all(
            plan.decision is not None or plan.recorded or plan.poisoned
            for plan in self.plans
        )
