"""Name registries for protocols and jammers.

Campaign specs (and the CLI) refer to protocols and adversaries by short
string names so a trial is described entirely by picklable, JSON-friendly
data and can be rebuilt inside a worker process.  This module is the single
source of truth for those names: :mod:`repro.cli` delegates here, so the CLI
and :mod:`repro.exp` always accept the same vocabulary and unknown names
fail with the same "here is what exists" message everywhere.

Each registry maps a canonical name to a builder plus aliases.  Builders take
only JSON-representable arguments (ints, floats, dicts) — never live objects.

Two jammer entries deserve a note:

* ``phase_targeted`` — Eve's best oblivious play against ``MultiCastAdv``
  (she knows the public timetable and burns her budget exactly in the
  phases whose channel-count guess matches n); its intervals are computed
  here from the registry's own ``ADV_KNOBS`` profile, so the name is fully
  JSON-friendly.  Builders receive the trial's ``n`` for this.
* the *reactive* family — ``sniper`` and ``trailing`` plus the parametric
  ``reactive:<latency>`` names (e.g. ``reactive:0``, ``reactive:3``).
  Reactive jammers run on the arena runtime (:mod:`repro.arena`);
  :func:`repro.core.result.run_broadcast` dispatches there automatically,
  so the same campaign grid can mix oblivious and adaptive cells.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.adversary import (
    BlanketJammer,
    FractionalJammer,
    FrontLoadedJammer,
    PeriodicBurstJammer,
    PhaseTargetedJammer,
    RandomJammer,
    ReactiveLatencyJammer,
    SniperJammer,
    SweepJammer,
    TrailingJammer,
)
from repro.baselines import DecayBroadcast, NaiveEpidemic, SingleChannelCompetitive
from repro.core import (
    MultiCast,
    MultiCastAdv,
    MultiCastAdvC,
    MultiCastC,
    MultiCastCore,
    multicast_adv_spans,
    phase_intervals,
)

__all__ = [
    "UnknownNameError",
    "protocol_names",
    "jammer_names",
    "oblivious_jammer_names",
    "reactive_jammer_names",
    "is_reactive_jammer",
    "canonical_protocol",
    "canonical_jammer",
    "build_protocol",
    "build_jammer",
    "protocol_lane_width",
]

#: MultiCastAdv laptop-scale profile shared by the CLI and campaigns
#: (see DESIGN.md section 2.2).
ADV_KNOBS = dict(alpha=0.24, b=0.05, halt_noise_divisor=50.0, helper_wait=4.0)


class UnknownNameError(ValueError):
    """An unregistered protocol/jammer name, with the valid choices attached."""

    def __init__(self, kind: str, name: str, choices: List[str]):
        self.kind = kind
        self.name = name
        self.choices = choices
        super().__init__(
            f"unknown {kind} {name!r} (valid choices: {', '.join(choices)})"
        )


@dataclass(frozen=True)
class _Entry:
    build: Callable
    aliases: tuple = ()
    #: True for sense-then-jam (reactive) jammers, which need the arena
    #: runtime; the derived name lists below read this flag, so a new entry
    #: cannot be miscategorized by forgetting a parallel list.
    reactive: bool = False


def _mk_adv(**overrides):
    knobs = dict(ADV_KNOBS, max_epochs=32)
    knobs.update(overrides)
    return knobs


_PROTOCOLS: Dict[str, _Entry] = {
    "core": _Entry(
        lambda n, T, C, knobs: MultiCastCore(n=n, T=max(T, n), **knobs),
        aliases=("multicastcore",),
    ),
    "multicast": _Entry(
        lambda n, T, C, knobs: MultiCast(n, **knobs),
        aliases=("mc",),
    ),
    "multicast_c": _Entry(
        lambda n, T, C, knobs: MultiCastC(n, C if C is not None else max(1, n // 8), **knobs),
        aliases=("mcc",),
    ),
    "adv": _Entry(
        lambda n, T, C, knobs: MultiCastAdv(**_mk_adv(**knobs)),
        aliases=("multicastadv",),
    ),
    "adv_c": _Entry(
        lambda n, T, C, knobs: MultiCastAdvC(
            C if C is not None else 8, **_mk_adv(**knobs)
        ),
        aliases=("multicastadvc",),
    ),
    "decay": _Entry(lambda n, T, C, knobs: DecayBroadcast(n, **knobs)),
    "naive": _Entry(lambda n, T, C, knobs: NaiveEpidemic(n, **knobs)),
    "single_channel": _Entry(
        lambda n, T, C, knobs: SingleChannelCompetitive(n, **knobs),
        aliases=("sc",),
    ),
}

#: Channels a reactive jammer hits per slot by default: enough to cover the
#: few simultaneous transmissions of a gallery-scale slot (override with
#: ``{"k": ...}`` in ``jammer_knobs``).
REACTIVE_K = 4


def _build_phase_targeted(budget, seed, knobs, n):
    """Targeted intervals from the registry's own ``MultiCastAdv`` profile:
    every (i, j)-phase with j = lg n − 1 (the "good" guess), over the same
    epoch horizon the ``adv`` entry runs."""
    knobs = dict(knobs)
    n_eff = 64 if n is None else int(n)
    phase = knobs.pop("phase", max(0, int(math.log2(max(2, n_eff))) - 1))
    epochs = int(knobs.pop("epochs", 32))
    proto = MultiCastAdv(**_mk_adv())
    intervals = phase_intervals(multicast_adv_spans(proto, epochs), phase=phase)
    return PhaseTargetedJammer(
        budget, intervals, **{"channel_fraction": 1.0, "seed": seed, **knobs}
    )


_JAMMERS: Dict[str, _Entry] = {
    "none": _Entry(lambda budget, seed, knobs, n: None),
    "blanket": _Entry(
        lambda budget, seed, knobs, n: BlanketJammer(
            budget, **{"channels": 0.9, "placement": "random", "seed": seed, **knobs}
        )
    ),
    "blackout": _Entry(
        lambda budget, seed, knobs, n: BlanketJammer(
            budget, **{"channels": 1.0, "seed": seed, **knobs}
        )
    ),
    "fractional": _Entry(
        lambda budget, seed, knobs, n: FractionalJammer(budget, 0.9, 0.9, seed=seed, **knobs)
    ),
    "frontloaded": _Entry(lambda budget, seed, knobs, n: FrontLoadedJammer(budget, **knobs)),
    "bursts": _Entry(
        lambda budget, seed, knobs, n: PeriodicBurstJammer(
            budget, **{"period": 90, "burst": 60, "channels": 1.0, "seed": seed, **knobs}
        )
    ),
    "sweep": _Entry(
        lambda budget, seed, knobs, n: SweepJammer(budget, **{"width": 8, "seed": seed, **knobs})
    ),
    "random": _Entry(
        lambda budget, seed, knobs, n: RandomJammer(budget, 0.5, seed=seed, **knobs)
    ),
    "phase_targeted": _Entry(_build_phase_targeted, aliases=("phase",)),
    # -- reactive (adaptive) jammers: run on the arena runtime ----------------
    "sniper": _Entry(
        lambda budget, seed, knobs, n: SniperJammer(
            budget, **{"k": REACTIVE_K, "seed": seed, **knobs}
        ),
        reactive=True,
    ),
    "trailing": _Entry(
        lambda budget, seed, knobs, n: TrailingJammer(
            budget, **{"k": REACTIVE_K, "seed": seed, **knobs}
        ),
        reactive=True,
    ),
}

#: Prefix of the parametric reactive family: ``reactive:<latency>`` builds a
#: :class:`repro.adversary.reactive.ReactiveLatencyJammer` with that sensing
#: latency (``reactive:0`` = within-slot, ``reactive:1`` = trailing).
REACTIVE_PREFIX = "reactive:"


def protocol_names() -> List[str]:
    """Canonical protocol names, in registry order."""
    return list(_PROTOCOLS)


def jammer_names() -> List[str]:
    """Canonical jammer names, in registry order (the parametric
    ``reactive:<latency>`` family is additionally accepted by
    :func:`canonical_jammer`)."""
    return list(_JAMMERS)


def oblivious_jammer_names() -> List[str]:
    """Registry jammers expressible on the oblivious block engine."""
    return [name for name, entry in _JAMMERS.items() if not entry.reactive]


def reactive_jammer_names() -> List[str]:
    """Registry jammers that need the arena runtime (excludes the parametric
    ``reactive:<latency>`` family, which is reactive by construction)."""
    return [name for name, entry in _JAMMERS.items() if entry.reactive]


def is_reactive_jammer(name: str) -> bool:
    """True iff the (canonicalized) name builds a reactive jammer."""
    canon = canonical_jammer(name)
    if canon.startswith(REACTIVE_PREFIX):
        return True
    return _JAMMERS[canon].reactive


def _resolve(kind: str, table: Dict[str, _Entry], name: str) -> str:
    key = name.lower()
    if key in table:
        return key
    for canon, entry in table.items():
        if key in entry.aliases:
            return canon
    choices = list(table)
    if kind == "jammer":
        choices.append("reactive:<latency>")
    raise UnknownNameError(kind, name, choices)


def canonical_protocol(name: str) -> str:
    """Resolve a protocol name or alias to its canonical registry name."""
    return _resolve("protocol", _PROTOCOLS, name)


def canonical_jammer(name: str) -> str:
    """Resolve a jammer name or alias to its canonical registry name.

    Besides the fixed table, accepts the parametric family
    ``reactive:<latency>`` for any non-negative integer latency.
    """
    key = name.lower()
    if key.startswith(REACTIVE_PREFIX):
        suffix = key[len(REACTIVE_PREFIX):]
        try:
            latency = int(suffix)
        except ValueError:
            latency = -1
        if latency < 0:
            raise UnknownNameError(
                "jammer", name, [*_JAMMERS, "reactive:<latency>"]
            )
        return f"{REACTIVE_PREFIX}{latency}"
    return _resolve("jammer", _JAMMERS, name)


def build_protocol(
    name: str,
    n: int,
    *,
    T: int = 0,
    C: Optional[int] = None,
    knobs: Optional[dict] = None,
):
    """Build a fresh protocol object by registry name.

    ``T`` is the adversary budget (only ``core`` needs it), ``C`` the channel
    cap for the limited variants, ``knobs`` extra constructor overrides.
    """
    entry = _PROTOCOLS[canonical_protocol(name)]
    return entry.build(int(n), int(T), C, dict(knobs or {}))


def protocol_lane_width(
    name: str,
    n: int,
    *,
    T: int = 0,
    C: Optional[int] = None,
    knobs: Optional[dict] = None,
    default: Optional[int] = None,
):
    """A protocol's advertised ``batch_lane_width``, by registry name.

    Builds a throwaway probe (protocol construction is cheap and stateless)
    so schedulers — the campaign runner sizing per-worker lane blocks, the
    trial loop sizing kernel passes — can read the width without keeping the
    object.  ``default`` is returned when the protocol advertises nothing.
    """
    probe = build_protocol(name, n, T=T, C=C, knobs=knobs)
    return getattr(probe, "batch_lane_width", default)


def build_jammer(
    name: str,
    budget: int,
    seed: int,
    *,
    knobs: Optional[dict] = None,
    n: Optional[int] = None,
):
    """Build a fresh jammer by registry name (``none`` or budget 0 -> None).

    ``n`` is the trial's network size; only timetable-aware strategies
    (``phase_targeted``) consult it, falling back to the gallery default 64
    when absent.
    """
    canon = canonical_jammer(name)
    if canon == "none" or budget == 0:
        return None
    if canon.startswith(REACTIVE_PREFIX):
        latency = int(canon[len(REACTIVE_PREFIX):])
        knobs = dict(knobs or {})
        # the latency is the name's identity — stores/tables key cells by it,
        # so a contradicting knob would record trials under the wrong cell
        if knobs.pop("latency", latency) != latency:
            raise ValueError(
                f"jammer {canon!r} carries its latency in the name; "
                "a conflicting 'latency' knob is not allowed"
            )
        return ReactiveLatencyJammer(
            int(budget),
            **{"latency": latency, "k": REACTIVE_K, "seed": int(seed), **knobs},
        )
    return _JAMMERS[canon].build(
        int(budget), int(seed), dict(knobs or {}), None if n is None else int(n)
    )
