"""Name registries for protocols and jammers.

Campaign specs (and the CLI) refer to protocols and adversaries by short
string names so a trial is described entirely by picklable, JSON-friendly
data and can be rebuilt inside a worker process.  This module is the single
source of truth for those names: :mod:`repro.cli` delegates here, so the CLI
and :mod:`repro.exp` always accept the same vocabulary and unknown names
fail with the same "here is what exists" message everywhere.

Each registry maps a canonical name to a builder plus aliases.  Builders take
only JSON-representable arguments (ints, floats, dicts) — never live objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.adversary import (
    BlanketJammer,
    FractionalJammer,
    FrontLoadedJammer,
    PeriodicBurstJammer,
    RandomJammer,
    SweepJammer,
)
from repro.baselines import DecayBroadcast, NaiveEpidemic, SingleChannelCompetitive
from repro.core import MultiCast, MultiCastAdv, MultiCastAdvC, MultiCastC, MultiCastCore

__all__ = [
    "UnknownNameError",
    "protocol_names",
    "jammer_names",
    "canonical_protocol",
    "canonical_jammer",
    "build_protocol",
    "build_jammer",
]

#: MultiCastAdv laptop-scale profile shared by the CLI and campaigns
#: (see DESIGN.md section 2.2).
ADV_KNOBS = dict(alpha=0.24, b=0.05, halt_noise_divisor=50.0, helper_wait=4.0)


class UnknownNameError(ValueError):
    """An unregistered protocol/jammer name, with the valid choices attached."""

    def __init__(self, kind: str, name: str, choices: List[str]):
        self.kind = kind
        self.name = name
        self.choices = choices
        super().__init__(
            f"unknown {kind} {name!r} (valid choices: {', '.join(choices)})"
        )


@dataclass(frozen=True)
class _Entry:
    build: Callable
    aliases: tuple = ()


def _mk_adv(**overrides):
    knobs = dict(ADV_KNOBS, max_epochs=32)
    knobs.update(overrides)
    return knobs


_PROTOCOLS: Dict[str, _Entry] = {
    "core": _Entry(
        lambda n, T, C, knobs: MultiCastCore(n=n, T=max(T, n), **knobs),
        aliases=("multicastcore",),
    ),
    "multicast": _Entry(
        lambda n, T, C, knobs: MultiCast(n, **knobs),
        aliases=("mc",),
    ),
    "multicast_c": _Entry(
        lambda n, T, C, knobs: MultiCastC(n, C if C is not None else max(1, n // 8), **knobs),
        aliases=("mcc",),
    ),
    "adv": _Entry(
        lambda n, T, C, knobs: MultiCastAdv(**_mk_adv(**knobs)),
        aliases=("multicastadv",),
    ),
    "adv_c": _Entry(
        lambda n, T, C, knobs: MultiCastAdvC(
            C if C is not None else 8, **_mk_adv(**knobs)
        ),
        aliases=("multicastadvc",),
    ),
    "decay": _Entry(lambda n, T, C, knobs: DecayBroadcast(n, **knobs)),
    "naive": _Entry(lambda n, T, C, knobs: NaiveEpidemic(n, **knobs)),
    "single_channel": _Entry(
        lambda n, T, C, knobs: SingleChannelCompetitive(n, **knobs),
        aliases=("sc",),
    ),
}

_JAMMERS: Dict[str, _Entry] = {
    "none": _Entry(lambda budget, seed, knobs: None),
    "blanket": _Entry(
        lambda budget, seed, knobs: BlanketJammer(
            budget, **{"channels": 0.9, "placement": "random", "seed": seed, **knobs}
        )
    ),
    "blackout": _Entry(
        lambda budget, seed, knobs: BlanketJammer(
            budget, **{"channels": 1.0, "seed": seed, **knobs}
        )
    ),
    "fractional": _Entry(
        lambda budget, seed, knobs: FractionalJammer(budget, 0.9, 0.9, seed=seed, **knobs)
    ),
    "frontloaded": _Entry(lambda budget, seed, knobs: FrontLoadedJammer(budget, **knobs)),
    "bursts": _Entry(
        lambda budget, seed, knobs: PeriodicBurstJammer(
            budget, **{"period": 90, "burst": 60, "channels": 1.0, "seed": seed, **knobs}
        )
    ),
    "sweep": _Entry(
        lambda budget, seed, knobs: SweepJammer(budget, **{"width": 8, "seed": seed, **knobs})
    ),
    "random": _Entry(
        lambda budget, seed, knobs: RandomJammer(budget, 0.5, seed=seed, **knobs)
    ),
}


def protocol_names() -> List[str]:
    """Canonical protocol names, in registry order."""
    return list(_PROTOCOLS)


def jammer_names() -> List[str]:
    """Canonical jammer names, in registry order."""
    return list(_JAMMERS)


def _resolve(kind: str, table: Dict[str, _Entry], name: str) -> str:
    key = name.lower()
    if key in table:
        return key
    for canon, entry in table.items():
        if key in entry.aliases:
            return canon
    raise UnknownNameError(kind, name, list(table))


def canonical_protocol(name: str) -> str:
    """Resolve a protocol name or alias to its canonical registry name."""
    return _resolve("protocol", _PROTOCOLS, name)


def canonical_jammer(name: str) -> str:
    """Resolve a jammer name or alias to its canonical registry name."""
    return _resolve("jammer", _JAMMERS, name)


def build_protocol(
    name: str,
    n: int,
    *,
    T: int = 0,
    C: Optional[int] = None,
    knobs: Optional[dict] = None,
):
    """Build a fresh protocol object by registry name.

    ``T`` is the adversary budget (only ``core`` needs it), ``C`` the channel
    cap for the limited variants, ``knobs`` extra constructor overrides.
    """
    entry = _PROTOCOLS[canonical_protocol(name)]
    return entry.build(int(n), int(T), C, dict(knobs or {}))


def build_jammer(
    name: str,
    budget: int,
    seed: int,
    *,
    knobs: Optional[dict] = None,
):
    """Build a fresh jammer by registry name (``none`` or budget 0 -> None)."""
    canon = canonical_jammer(name)
    if canon == "none" or budget == 0:
        return None
    return _JAMMERS[canon].build(int(budget), int(seed), dict(knobs or {}))
