"""Append-only JSONL result store with campaign resumption and aggregation.

One line per completed trial, flushed as soon as the trial finishes, so a
campaign killed at any point (SIGINT, OOM, power) loses at most the trials in
flight.  Re-running the same campaign against the same store skips every key
already present (:meth:`ResultStore.completed_keys`), which is the whole
resumption story — there is no separate checkpoint format.

Aggregation groups records by cell (protocol, jammer, n, budget) and reduces
each metric with the :class:`repro.analysis.stats.Summary` confidence-interval
helper.  Records are sorted by trial key before aggregating, so the numbers
are byte-identical whatever order the workers finished in.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Set, TextIO, Tuple

from repro.analysis.stats import Summary
from repro.core.result import BroadcastResult
from repro.exp.spec import TrialSpec

__all__ = ["TrialRecord", "ResultStore", "CellStats", "aggregate", "cells_where"]

#: Scalar metrics copied off a BroadcastResult into each record, and offered
#: for aggregation by name.  ``dissemination_slot`` is None on failed trials
#: and aggregates as NaN.
METRICS = ("slots", "max_cost", "mean_cost", "adversary_spend", "dissemination_slot")


@dataclass
class TrialRecord:
    """Scalar outcome of one trial, JSONL-serializable.

    Full per-node arrays stay in memory with the live ``BroadcastResult``;
    the store keeps only the scalars every aggregate and table needs, so a
    thousand-trial campaign is a few hundred KB of JSONL, not a pickle dump.
    """

    key: str
    protocol: str
    jammer: str
    n: int
    budget: int
    trial: int
    success: bool
    slots: int
    max_cost: int
    mean_cost: float
    adversary_spend: int
    dissemination_slot: Optional[int]
    halted_uninformed: int
    periods: int
    channels: Optional[int] = None  #: C of the channel-limited variants
    protocol_label: str = ""  #: the protocol object's self-description
    wall_time: float = 0.0  #: seconds of wall clock this trial took

    @classmethod
    def from_result(
        cls, spec: TrialSpec, result: BroadcastResult, *, wall_time: float = 0.0
    ) -> "TrialRecord":
        return cls(
            key=spec.key(),
            protocol=spec.protocol,
            jammer=spec.jammer,
            n=spec.n,
            budget=spec.budget,
            trial=spec.trial,
            success=bool(result.success),
            slots=int(result.slots),
            max_cost=int(result.max_cost),
            mean_cost=float(result.mean_cost),
            adversary_spend=int(result.adversary_spend),
            dissemination_slot=result.dissemination_slot,
            halted_uninformed=int(result.halted_uninformed),
            periods=int(result.periods),
            channels=spec.channels,
            protocol_label=str(result.protocol),
            wall_time=float(wall_time),
        )

    @property
    def cell(self) -> Tuple[str, str, int, int, Optional[int]]:
        return (self.protocol, self.jammer, self.n, self.budget, self.channels)

    def to_json_line(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "TrialRecord":
        return cls(**data)


class ResultStore:
    """JSONL trial records at ``path``; append-only, safe to re-open mid-campaign."""

    def __init__(self, path: Optional[str]):
        self.path = path
        self._records: List[TrialRecord] = []
        self._keys: Set[str] = set()
        self._fh: Optional[TextIO] = None
        if path is not None and os.path.exists(path):
            with open(path) as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    self._remember(TrialRecord.from_dict(json.loads(line)))

    def _remember(self, record: TrialRecord) -> None:
        if record.key not in self._keys:
            self._keys.add(record.key)
            self._records.append(record)

    def append(self, record: TrialRecord) -> None:
        """Persist one record immediately (line-buffered, flushed)."""
        if record.key in self._keys:
            return
        self._remember(record)
        if self.path is not None:
            if self._fh is None:
                self._fh = open(self.path, "a")
            self._fh.write(record.to_json_line() + "\n")
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def completed_keys(self) -> Set[str]:
        """Keys of every trial already on disk (the resume skip-set)."""
        return set(self._keys)

    def records(self) -> List[TrialRecord]:
        """All records, sorted by key for order-independent aggregation."""
        return sorted(self._records, key=lambda r: r.key)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._keys


@dataclass
class CellStats:
    """Aggregate statistics of one (protocol, jammer, n, budget, C) cell."""

    protocol: str
    jammer: str
    n: int
    budget: int
    trials: int
    success_rate: float
    violations: int  #: halted-while-uninformed nodes, summed over trials
    channels: Optional[int] = None  #: C of the channel-limited variants
    summaries: Dict[str, Summary] = field(default_factory=dict)

    @property
    def cell(self) -> Tuple[str, str, int, int, Optional[int]]:
        return (self.protocol, self.jammer, self.n, self.budget, self.channels)

    def summary(self, metric: str) -> Summary:
        return self.summaries[metric]

    @property
    def competitiveness(self) -> float:
        """mean(max_cost) / mean(adversary_spend) — < 1 means Eve outspends."""
        spend = self.summaries["adversary_spend"].mean
        if spend == 0:
            return float("inf")
        return self.summaries["max_cost"].mean / spend


def cells_where(cells: List[CellStats], **filters) -> List[CellStats]:
    """Cells whose attributes equal every given filter, original order kept.

    The report layer slices one store many ways (one protocol's budget
    series, one n's jammer rows); keyword equality on :class:`CellStats`
    attributes covers all of them without each caller re-writing the loop.
    """
    out = []
    for cell in cells:
        if all(getattr(cell, field) == value for field, value in filters.items()):
            out.append(cell)
    return out


def aggregate(records: List[TrialRecord]) -> List[CellStats]:
    """Reduce trial records to per-cell stats, in deterministic cell order.

    Records are grouped by cell and sorted by key within each group before
    any arithmetic, so the output is identical for any arrival order —
    parallel, serial, or resumed — of the same trial set.
    """
    by_cell: Dict[Tuple, List[TrialRecord]] = {}
    for record in sorted(records, key=lambda r: r.key):
        by_cell.setdefault(record.cell, []).append(record)
    out = []
    # unset C sorts as -1 so stores mixing limited and unlimited cells order
    for cell in sorted(by_cell, key=lambda c: tuple(-1 if x is None else x for x in c)):
        group = by_cell[cell]
        summaries = {
            metric: Summary.of(
                [
                    float("nan") if getattr(r, metric) is None else getattr(r, metric)
                    for r in group
                ]
            )
            for metric in METRICS
        }
        out.append(
            CellStats(
                protocol=cell[0],
                jammer=cell[1],
                n=cell[2],
                budget=cell[3],
                channels=cell[4],
                trials=len(group),
                success_rate=sum(r.success for r in group) / len(group),
                violations=sum(r.halted_uninformed for r in group),
                summaries=summaries,
            )
        )
    return out
