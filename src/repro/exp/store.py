"""Append-only JSONL result store with campaign resumption and aggregation.

One line per completed trial, flushed as soon as the trial finishes, so a
campaign killed at any point (SIGINT, OOM, power) loses at most the trials in
flight.  Re-running the same campaign against the same store skips every key
already present (:meth:`ResultStore.completed_keys`), which is the whole
resumption story — there is no separate checkpoint format.

Two record kinds share the file: trial records (one line per execution, no
``kind`` field — the committed stores predate the distinction) and adaptive
*stopping* records (``"kind": "stopping"``, one line per cell that an
adaptive campaign decided was precise enough; see :mod:`repro.exp.adaptive`).
:meth:`ResultStore.records` returns trials only; stopping decisions come
back via :meth:`ResultStore.stopping_records`.

Aggregation groups records by cell (protocol, jammer, n, budget) and reduces
each metric with the :class:`repro.analysis.stats.Summary` confidence-interval
helper.  Records are sorted by trial key before aggregating, so the numbers
are byte-identical whatever order the workers finished in.  Two reduction
paths share that grouping:

* :func:`aggregate` — the exact in-memory path the report layer uses on the
  committed (thousands-of-rows) stores;
* :func:`stream_aggregate` / :class:`StreamAggregator` — the memory-bounded
  path for sharded million-trial stores: records stream off disk one line at
  a time into compact per-cell ``float64`` buffers (~40 bytes/row instead of
  a ~2 KB materialized record), so quantiles stay *exact* while peak memory
  stays a small constant factor of the numeric payload.  Equal to
  :func:`aggregate` to float tolerance (summation order may differ), and
  pinned by ``tests/property/test_stream_aggregate.py``.

Crash tolerance: a worker killed mid-write can leave one truncated JSON line
at a shard's tail; readers skip undecodable lines rather than refuse the
whole store (the interrupted trial simply re-runs on resume).  Rows written
by this version additionally carry a CRC32 checksum field (``cs``) computed
over everything except ``wall_time`` — the one run-varying field — so silent
bit-rot is rejected *loudly* on read (:func:`row_intact`) instead of being
ingested, while logically identical rows keep identical checksums across
runs and worker counts.  Rows without ``cs`` (the committed stores predate
it) are accepted unchanged.  Write failures surface as
:class:`StoreWriteError` with an operator-actionable message (notably
ENOSPC).  See DESIGN.md section 14.
"""

from __future__ import annotations

import errno
import json
import os
import sys
import zlib
from array import array
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, TextIO, Tuple, Union

import numpy as np

from repro.analysis.stats import Summary
from repro.core.result import BroadcastResult
from repro.exp.spec import TrialSpec

__all__ = [
    "TrialRecord",
    "StoppingRecord",
    "ResultStore",
    "CellStats",
    "StoreWriteError",
    "StreamAggregator",
    "aggregate",
    "append_jsonl_line",
    "checksummed_line",
    "iter_jsonl_records",
    "row_intact",
    "stream_aggregate",
    "cells_where",
]

#: Scalar metrics copied off a BroadcastResult into each record, and offered
#: for aggregation by name.  ``dissemination_slot`` is None on failed trials
#: and aggregates as NaN.
METRICS = ("slots", "max_cost", "mean_cost", "adversary_spend", "dissemination_slot")


class StoreWriteError(OSError):
    """A store/shard/ledger append failed; the message says what to do next."""


def _raise_write_error(path: str, exc: OSError) -> "StoreWriteError":
    if exc.errno == errno.ENOSPC:
        err = StoreWriteError(
            f"disk full (ENOSPC) while appending to {path}; rows already "
            f"flushed are safe — free space and re-run the same command to "
            f"resume"
        )
    else:
        err = StoreWriteError(f"cannot append to {path}: {exc}")
    err.errno = exc.errno
    raise err from exc


def _row_checksum(body: dict) -> str:
    return format(zlib.crc32(json.dumps(body, sort_keys=True).encode()), "08x")


def checksummed_line(payload: dict) -> str:
    """Serialize ``payload`` as a canonical JSONL row carrying a ``cs``
    CRC32 field.

    The checksum covers every field except ``wall_time`` (the one physical,
    run-varying field of a trial row) and ``cs`` itself, so two runs that
    agree on everything-but-wall_time emit identical checksums — the
    byte-comparison contracts (``REPRO_ZERO_WALL``, shard equivalence, the
    telemetry never-in-trial-rows gate) hold unchanged.
    """
    body = {k: v for k, v in payload.items() if k not in ("cs", "wall_time")}
    return json.dumps({**payload, "cs": _row_checksum(body)}, sort_keys=True)


def row_intact(data: dict) -> bool:
    """Pop and verify a decoded row's ``cs`` checksum.

    Rows without one (the committed stores predate checksums) pass; a
    mismatch means the payload changed after it was checksummed — bit-rot,
    a torn rewrite, or a hand edit — and the row must not be ingested.
    """
    cs = data.pop("cs", None)
    if cs is None:
        return True
    return cs == _row_checksum({k: v for k, v in data.items() if k != "wall_time"})


def append_jsonl_line(path: str, line: str) -> None:
    """Append one line to a JSONL file (open/write/flush/close), wrapping
    write failures in :class:`StoreWriteError` — the hardened primitive the
    quarantine ledger uses."""
    try:
        with open(path, "a") as fh:
            fh.write(line + "\n")
            fh.flush()
    except OSError as exc:
        _raise_write_error(path, exc)


@dataclass
class TrialRecord:
    """Scalar outcome of one trial, JSONL-serializable.

    Full per-node arrays stay in memory with the live ``BroadcastResult``;
    the store keeps only the scalars every aggregate and table needs, so a
    thousand-trial campaign is a few hundred KB of JSONL, not a pickle dump.
    """

    key: str
    protocol: str
    jammer: str
    n: int
    budget: int
    trial: int
    success: bool
    slots: int
    max_cost: int
    mean_cost: float
    adversary_spend: int
    dissemination_slot: Optional[int]
    halted_uninformed: int
    periods: int
    channels: Optional[int] = None  #: C of the channel-limited variants
    protocol_label: str = ""  #: the protocol object's self-description
    wall_time: float = 0.0  #: seconds of wall clock this trial took

    @classmethod
    def from_result(
        cls, spec: TrialSpec, result: BroadcastResult, *, wall_time: float = 0.0
    ) -> "TrialRecord":
        return cls(
            key=spec.key(),
            protocol=spec.protocol,
            jammer=spec.jammer,
            n=spec.n,
            budget=spec.budget,
            trial=spec.trial,
            success=bool(result.success),
            slots=int(result.slots),
            max_cost=int(result.max_cost),
            mean_cost=float(result.mean_cost),
            adversary_spend=int(result.adversary_spend),
            dissemination_slot=result.dissemination_slot,
            halted_uninformed=int(result.halted_uninformed),
            periods=int(result.periods),
            channels=spec.channels,
            protocol_label=str(result.protocol),
            wall_time=float(wall_time),
        )

    @property
    def cell(self) -> Tuple[str, str, int, int, Optional[int]]:
        return (self.protocol, self.jammer, self.n, self.budget, self.channels)

    def to_json_line(self) -> str:
        return checksummed_line(asdict(self))

    @classmethod
    def from_dict(cls, data: dict) -> "TrialRecord":
        return cls(**data)


@dataclass
class StoppingRecord:
    """An adaptive campaign's per-cell stopping decision, JSONL-serializable.

    One line per cell the scheduler declared done — either the CI target was
    hit (``reason == "ci-target"``) or the seed cap was (``"max-trials"``).
    The key embeds the stopping rule, so re-running the same store under a
    *different* target records a fresh decision instead of trusting a stale
    one, while the trial rows themselves are shared across rules.
    """

    key: str
    protocol: str
    jammer: str
    n: int
    budget: int
    metric: str  #: the metric the CI target applies to
    target: float  #: requested relative 95% CI half-width (ci95 / |mean|)
    achieved: float  #: relative half-width at the stopping decision
    mean: float  #: the metric's mean over the trials used
    trials: int  #: seeds consumed when the cell stopped
    reason: str  #: "ci-target" | "max-trials"
    channels: Optional[int] = None
    kind: str = "stopping"  #: line discriminator (trial records carry none)

    @property
    def cell(self) -> Tuple[str, str, int, int, Optional[int]]:
        return (self.protocol, self.jammer, self.n, self.budget, self.channels)

    def to_json_line(self) -> str:
        return checksummed_line(asdict(self))

    @classmethod
    def from_dict(cls, data: dict) -> "StoppingRecord":
        return cls(**data)


def iter_jsonl_records(
    path: str,
) -> Iterator[Union[TrialRecord, StoppingRecord]]:
    """Stream one store file without materializing it: yield each decodable
    line as a :class:`TrialRecord` or :class:`StoppingRecord`.

    Blank lines are skipped silently.  Truncated/undecodable lines (a
    SIGKILLed worker can leave half a line at a shard's tail) and rows whose
    ``cs`` checksum no longer matches their payload (:func:`row_intact`) are
    skipped *loudly* — one stderr line naming the file, line number, and
    reason, plus a telemetry counter when a recorder is active — and the
    trial they belonged to simply re-runs on resume.  Duplicate keys are
    *not* filtered here: single-file stores never contain them, and
    cross-file dedupe belongs to the caller (:func:`stream_aggregate`,
    :func:`repro.exp.shard.merge_shards`) which must track keys across
    files anyway.
    """
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                _warn_skipped_row(path, lineno, "undecodable JSON (torn write)")
                continue
            if not row_intact(data):
                _warn_skipped_row(path, lineno, "checksum mismatch (corrupt row)")
                continue
            if data.get("kind") == "stopping":
                yield StoppingRecord.from_dict(data)
            else:
                yield TrialRecord.from_dict(data)


def _warn_skipped_row(path: str, lineno: int, reason: str) -> None:
    """Loud-skip notice: the row is dropped, its trial re-runs on resume."""
    print(
        f"store: skipping {path}:{lineno} — {reason}; its trial re-runs on "
        f"resume",
        file=sys.stderr,
    )
    # imported here, not at module top: obs depends on nothing, but keeping
    # store importable without obs preserves the layering for tools that
    # vendor the store alone
    from repro.obs.recorder import active as _obs_active

    tel = _obs_active()
    if tel is not None:
        tel.count(
            "store.corrupt_rows" if "checksum" in reason else "store.torn_rows"
        )


class ResultStore:
    """JSONL records at ``path``; append-only, safe to re-open mid-campaign.

    ``materialize=True`` (default) keeps every trial record in memory — the
    right mode for committed-record-sized stores, and what
    :meth:`records` serves from.  ``materialize=False`` keeps only the key
    set (the resume skip-set) plus the stopping records (one per cell):
    appends still persist and dedupe, but :meth:`records` refuses to run —
    reduce such stores with :func:`stream_aggregate` instead, which is the
    point of the mode (a 10^6-row store never loads whole; DESIGN.md
    section 10).
    """

    def __init__(self, path: Optional[str], *, materialize: bool = True):
        if path is None and not materialize:
            raise ValueError("a memory-only store cannot be non-materialized")
        self.path = path
        self.materialize = materialize
        self._records: List[TrialRecord] = []
        self._stopping: List[StoppingRecord] = []
        self._keys: Set[str] = set()
        self._stop_keys: Set[str] = set()
        self._fh: Optional[TextIO] = None
        if path is not None and os.path.exists(path):
            for record in iter_jsonl_records(path):
                self._remember(record)

    def _remember(self, record: Union[TrialRecord, StoppingRecord]) -> None:
        if isinstance(record, StoppingRecord):
            if record.key not in self._stop_keys:
                self._stop_keys.add(record.key)
                self._stopping.append(record)
            return
        if record.key not in self._keys:
            self._keys.add(record.key)
            if self.materialize:
                self._records.append(record)

    def append(self, record: TrialRecord) -> None:
        """Persist one trial record immediately (line-buffered, flushed)."""
        if record.key in self._keys:
            return
        self._remember(record)
        self._write_line(record.to_json_line())

    def append_stopping(self, record: StoppingRecord) -> None:
        """Persist one stopping decision (idempotent per stopping key)."""
        if record.key in self._stop_keys:
            return
        self._remember(record)
        self._write_line(record.to_json_line())

    def _write_line(self, line: str) -> None:
        if self.path is None:
            return
        try:
            if self._fh is None:
                self._fh = open(self.path, "a")
            self._fh.write(line + "\n")
            self._fh.flush()
        except OSError as exc:
            _raise_write_error(self.path, exc)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def completed_keys(self) -> Set[str]:
        """Keys of every trial already on disk (the resume skip-set)."""
        return set(self._keys)

    def stopping_keys(self) -> Set[str]:
        """Keys of every recorded stopping decision."""
        return set(self._stop_keys)

    def records(self) -> List[TrialRecord]:
        """All trial records, sorted by key for order-independent aggregation."""
        if not self.materialize:
            raise RuntimeError(
                "records() would materialize a streaming store — use "
                "iter_records() / stream_aggregate() on it instead"
            )
        return sorted(self._records, key=lambda r: r.key)

    def iter_records(self) -> Iterator[TrialRecord]:
        """Stream the trial records (unsorted); works in either mode."""
        if self.materialize or self.path is None:
            yield from self._records
            return
        for record in iter_jsonl_records(self.path):
            if isinstance(record, TrialRecord):
                yield record

    def stopping_records(self) -> List[StoppingRecord]:
        """All stopping decisions, sorted by key (always materialized —
        there is at most one per cell per rule)."""
        return sorted(self._stopping, key=lambda r: r.key)

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: str) -> bool:
        return key in self._keys


@dataclass
class CellStats:
    """Aggregate statistics of one (protocol, jammer, n, budget, C) cell."""

    protocol: str
    jammer: str
    n: int
    budget: int
    trials: int
    success_rate: float
    violations: int  #: halted-while-uninformed nodes, summed over trials
    channels: Optional[int] = None  #: C of the channel-limited variants
    summaries: Dict[str, Summary] = field(default_factory=dict)

    @property
    def cell(self) -> Tuple[str, str, int, int, Optional[int]]:
        return (self.protocol, self.jammer, self.n, self.budget, self.channels)

    def summary(self, metric: str) -> Summary:
        return self.summaries[metric]

    def precision(self, metric: str) -> float:
        """Relative 95% CI half-width (ci95 / |mean|) of one metric — what
        adaptive stopping targets and the report's precision column shows."""
        return self.summaries[metric].rel_ci95

    @property
    def competitiveness(self) -> float:
        """mean(max_cost) / mean(adversary_spend) — < 1 means Eve outspends."""
        spend = self.summaries["adversary_spend"].mean
        if spend == 0:
            return float("inf")
        return self.summaries["max_cost"].mean / spend


def cells_where(cells: List[CellStats], **filters) -> List[CellStats]:
    """Cells whose attributes equal every given filter, original order kept.

    The report layer slices one store many ways (one protocol's budget
    series, one n's jammer rows); keyword equality on :class:`CellStats`
    attributes covers all of them without each caller re-writing the loop.
    """
    out = []
    for cell in cells:
        if all(getattr(cell, field) == value for field, value in filters.items()):
            out.append(cell)
    return out


def aggregate(records: List[TrialRecord]) -> List[CellStats]:
    """Reduce trial records to per-cell stats, in deterministic cell order.

    Records are grouped by cell and sorted by key within each group before
    any arithmetic, so the output is identical for any arrival order —
    parallel, serial, or resumed — of the same trial set.
    """
    by_cell: Dict[Tuple, List[TrialRecord]] = {}
    for record in sorted(records, key=lambda r: r.key):
        by_cell.setdefault(record.cell, []).append(record)
    out = []
    # unset C sorts as -1 so stores mixing limited and unlimited cells order
    for cell in sorted(by_cell, key=lambda c: tuple(-1 if x is None else x for x in c)):
        group = by_cell[cell]
        summaries = {
            metric: Summary.of(
                [
                    float("nan") if getattr(r, metric) is None else getattr(r, metric)
                    for r in group
                ]
            )
            for metric in METRICS
        }
        out.append(
            CellStats(
                protocol=cell[0],
                jammer=cell[1],
                n=cell[2],
                budget=cell[3],
                channels=cell[4],
                trials=len(group),
                success_rate=sum(r.success for r in group) / len(group),
                violations=sum(r.halted_uninformed for r in group),
                summaries=summaries,
            )
        )
    return out


# -- streaming (memory-bounded) aggregation ---------------------------------------


class _CellAccumulator:
    """Compact per-cell state: counters plus one float64 buffer per metric.

    ``array('d')`` grows amortized and stores raw doubles — 8 bytes per value
    against the ~2 KB a materialized :class:`TrialRecord` costs — which is
    what keeps exact quantiles affordable at 10^6 rows (the buffers *are*
    the values, so :meth:`Summary.of` runs on them unchanged).
    """

    __slots__ = ("count", "successes", "violations", "values")

    def __init__(self):
        self.count = 0
        self.successes = 0
        self.violations = 0
        self.values = {metric: array("d") for metric in METRICS}


class StreamAggregator:
    """Incremental :func:`aggregate`: feed records one at a time, then
    :meth:`cells`.

    Equal to :func:`aggregate` to float tolerance — the only difference is
    summation order (records arrive in file order rather than key-sorted),
    which moves means and standard deviations by last-ulp amounts; medians,
    minima and maxima are exact.  Peak memory is the per-cell numeric
    payload (8 bytes x rows x metrics) plus the key set the caller keeps for
    dedupe, never the materialized records.
    """

    def __init__(self):
        self._cells: Dict[Tuple, _CellAccumulator] = {}

    def add(self, record: TrialRecord) -> None:
        acc = self._cells.get(record.cell)
        if acc is None:
            acc = self._cells[record.cell] = _CellAccumulator()
        acc.count += 1
        acc.successes += bool(record.success)
        acc.violations += record.halted_uninformed
        for metric, buf in acc.values.items():
            value = getattr(record, metric)
            buf.append(float("nan") if value is None else float(value))

    def __len__(self) -> int:
        return sum(acc.count for acc in self._cells.values())

    def cells(self) -> List[CellStats]:
        """The per-cell statistics so far, in :func:`aggregate`'s cell order."""
        out = []
        for cell in sorted(
            self._cells, key=lambda c: tuple(-1 if x is None else x for x in c)
        ):
            acc = self._cells[cell]
            summaries = {
                metric: Summary.of(np.frombuffer(buf, dtype=np.float64))
                for metric, buf in acc.values.items()
            }
            out.append(
                CellStats(
                    protocol=cell[0],
                    jammer=cell[1],
                    n=cell[2],
                    budget=cell[3],
                    channels=cell[4],
                    trials=acc.count,
                    success_rate=acc.successes / acc.count,
                    violations=acc.violations,
                    summaries=summaries,
                )
            )
        return out


def stream_aggregate(
    source: Union[str, ResultStore, Iterable[str]],
    *,
    keys: Optional[Set[str]] = None,
) -> List[CellStats]:
    """Reduce one store — or several shard files — without materializing it.

    ``source`` may be a store path, an opened :class:`ResultStore` (either
    mode), or an iterable of paths (e.g. a main store plus its unmerged
    shards).  Records stream through a :class:`StreamAggregator`; duplicate
    keys across files are counted once (first occurrence wins, matching
    :func:`repro.exp.shard.merge_shards`); stopping records are skipped.
    ``keys`` restricts the reduction to the given trial keys — the way a
    caller scopes a shared store down to one campaign.

    A *single* file needs no cross-file dedupe (the store dedupes by key on
    append), so the one-path case keeps no key set at all — peak memory is
    just the per-cell numeric buffers, which is what makes reducing a
    10^6-row store affordable (measured in ``benchmarks/bench_shard.py``).
    """
    if isinstance(source, ResultStore):
        paths: List[str] = []
        streams: Iterable[TrialRecord] = source.iter_records()
    elif isinstance(source, str):
        paths = [source]
        streams = None
    else:
        paths = list(source)
        streams = None
    agg = StreamAggregator()
    if streams is not None:
        for record in streams:
            if keys is not None and record.key not in keys:
                continue
            agg.add(record)
        return agg.cells()
    dedupe = len(paths) > 1
    seen: Set[str] = set()
    for path in paths:
        if not os.path.exists(path):
            continue
        for record in iter_jsonl_records(path):
            if isinstance(record, StoppingRecord):
                continue
            if dedupe:
                if record.key in seen:
                    continue
                seen.add(record.key)
            if keys is not None and record.key not in keys:
                continue
            agg.add(record)
    return agg.cells()
