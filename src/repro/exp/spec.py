"""Declarative experiment specs: what to run, not how to run it.

A campaign is a grid — protocols x jammers x network sizes x seeded trials —
described entirely by JSON-friendly data (names from :mod:`repro.exp.registry`
plus scalars).  The split matters for parallelism and for resumption:

* a :class:`TrialSpec` is picklable, so a worker process can rebuild and run
  the trial from the spec alone;
* a trial's RNG seeds are derived from its *identity* (``base_seed`` + cell
  coordinates + trial index) via :func:`repro.sim.rng.derive_seed`, never from
  execution order — running trials in any order, across any number of
  workers, or across separate resumed invocations yields identical results;
* :meth:`TrialSpec.key` is the stable identity string the result store uses
  to skip already-completed trials on resume.

See DESIGN.md section 3.1 for where specs sit in the campaign pipeline.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional

from repro.exp.registry import canonical_jammer, canonical_protocol
from repro.sim.rng import derive_seed

__all__ = ["TrialSpec", "CampaignSpec"]


@dataclass(frozen=True)
class TrialSpec:
    """One cell coordinate plus one trial index: a single seeded execution."""

    protocol: str
    jammer: str
    n: int
    budget: int
    trial: int  #: trial index within the (protocol, jammer, n) cell
    base_seed: int  #: campaign root seed the per-trial seeds derive from
    channels: Optional[int] = None  #: C for the channel-limited variants
    max_slots: int = 50_000_000
    protocol_knobs: Dict = field(default_factory=dict)
    jammer_knobs: Dict = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "protocol", canonical_protocol(self.protocol))
        object.__setattr__(self, "jammer", canonical_jammer(self.jammer))

    @property
    def cell(self) -> tuple:
        """The aggregation cell this trial belongs to."""
        return (self.protocol, self.jammer, self.n, self.budget)

    def key(self) -> str:
        """Stable identity string (store key; also the seed-derivation label).

        Every field that changes what a trial *measures* is part of the key —
        otherwise resumption would silently reuse results computed under
        different settings.  Non-default ``max_slots`` and knob dicts appear
        as extra components (a short hash for the knobs), so keys of plain
        campaigns stay short and stable.
        """
        parts = [self.protocol, self.jammer, f"n{self.n}", f"T{self.budget}"]
        if self.channels is not None:
            parts.append(f"C{self.channels}")
        if self.max_slots != 50_000_000:
            parts.append(f"m{self.max_slots}")
        if self.protocol_knobs or self.jammer_knobs:
            digest = hashlib.blake2b(
                json.dumps(
                    [self.protocol_knobs, self.jammer_knobs], sort_keys=True
                ).encode(),
                digest_size=4,
            ).hexdigest()
            parts.append(f"k{digest}")
        parts.append(f"s{self.base_seed}")
        parts.append(f"t{self.trial}")
        return "/".join(parts)

    def net_seed(self) -> int:
        """Seed for the honest nodes' randomness."""
        return derive_seed(self.base_seed, self.key(), "net")

    def jammer_seed(self) -> int:
        """Seed for the adversary's randomness (independent of the nodes')."""
        return derive_seed(self.base_seed, self.key(), "eve")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TrialSpec":
        return cls(**data)


@dataclass
class CampaignSpec:
    """A full campaign grid: every combination becomes one :class:`TrialSpec`.

    ``trials`` seeded executions run per (protocol, jammer, n) cell; trial
    ``t`` of every cell derives its seeds from ``(base_seed, cell, t)``, so
    the seed range of a campaign is implicit in ``base_seed`` + ``trials``.
    """

    protocols: List[str]
    jammers: List[str]
    ns: List[int] = field(default_factory=lambda: [64])
    budget: int = 100_000
    trials: int = 10
    base_seed: int = 0
    channels: Optional[int] = None
    max_slots: int = 50_000_000
    name: str = "campaign"
    protocol_knobs: Dict = field(default_factory=dict)  #: per-protocol-name overrides
    jammer_knobs: Dict = field(default_factory=dict)  #: per-jammer-name overrides
    #: Adaptive stopping (DESIGN.md section 10.3).  With ``ci_target`` set,
    #: ``trials`` becomes the seed *wave* size: each cell runs waves until
    #: the relative 95% CI half-width of ``ci_metric`` reaches the target or
    #: the cell hits ``max_trials`` (default ``10 * trials``).  ``None``
    #: keeps the classic fixed-trials grid.
    ci_target: Optional[float] = None
    ci_metric: str = "slots"
    max_trials: Optional[int] = None

    def __post_init__(self):
        self.protocols = [canonical_protocol(p) for p in self.protocols]
        self.jammers = [canonical_jammer(j) for j in self.jammers]
        # knob dicts are keyed by name too — canonicalize (and thereby
        # reject unknown names), else alias-keyed knobs would silently miss
        # the trial_specs() lookup and collide with the knob-free keys
        self.protocol_knobs = {
            canonical_protocol(k): v for k, v in self.protocol_knobs.items()
        }
        self.jammer_knobs = {canonical_jammer(k): v for k, v in self.jammer_knobs.items()}
        if not self.protocols or not self.jammers or not self.ns:
            raise ValueError("campaign needs at least one protocol, jammer, and n")
        if self.trials < 1:
            raise ValueError("campaign needs at least one trial per cell")
        if self.ci_target is not None and not (float(self.ci_target) > 0):
            raise ValueError(f"ci_target must be positive, got {self.ci_target!r}")
        if self.max_trials is not None and self.max_trials < self.trials:
            raise ValueError(
                f"max_trials {self.max_trials} is below the wave size {self.trials}"
            )

    @property
    def adaptive(self) -> bool:
        """Whether this campaign stops on precision rather than trial count."""
        return self.ci_target is not None

    def resolved_max_trials(self) -> int:
        """The per-cell seed cap an adaptive run enforces."""
        return self.max_trials if self.max_trials is not None else 10 * self.trials

    def cell_templates(self) -> List[TrialSpec]:
        """One trial-0 spec per grid cell, in canonical order — the handle
        adaptive scheduling extends trial-by-trial (``dataclasses.replace``
        with a new ``trial`` yields any other trial of the cell)."""
        templates = []
        for protocol in self.protocols:
            for jammer in self.jammers:
                for n in self.ns:
                    templates.append(
                        TrialSpec(
                            protocol=protocol,
                            jammer=jammer,
                            n=int(n),
                            budget=int(self.budget),
                            trial=0,
                            base_seed=int(self.base_seed),
                            channels=self.channels,
                            max_slots=int(self.max_slots),
                            protocol_knobs=dict(self.protocol_knobs.get(protocol, {})),
                            jammer_knobs=dict(self.jammer_knobs.get(jammer, {})),
                        )
                    )
        return templates

    def trial_specs(self) -> List[TrialSpec]:
        """The campaign's trials in canonical (deterministic) order."""
        return [
            replace(template, trial=t)
            for template in self.cell_templates()
            for t in range(self.trials)
        ]

    def __len__(self) -> int:
        return len(self.protocols) * len(self.jammers) * len(self.ns) * self.trials

    # -- JSON round-trip -----------------------------------------------------------
    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(asdict(self), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls(**json.loads(text))

    def save(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "CampaignSpec":
        with open(path) as fh:
            return cls.from_json(fh.read())
