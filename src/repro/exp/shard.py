"""Per-worker shard stores and their deterministic merge/compact step.

A sharded campaign (``workers > 1`` with an on-disk store) never lets two
processes write one file: worker ``k`` appends its finished lane blocks to
``<store>.shard-<k>.jsonl`` — same JSONL dialect as the main store, flushed
per kernel pass — and only the parent ever touches ``<store>`` itself, via
:func:`merge_shards`.  That split is the whole crash story:

* a SIGKILLed worker loses at most its in-flight lane block (plus possibly a
  truncated final line, which readers skip — see
  :func:`repro.exp.store.iter_jsonl_records`);
* everything the other workers flushed survives in their shards;
* the next ``run_campaign`` against the same store begins by merging the
  leftovers, so the resume skip-set sees every completed trial exactly once.

The merge is deterministic: new records are deduped by trial key — the
(cell, seed) identity — against the main store *and* each other, sorted by
key, and appended in that canonical order.  For a fixed completed trial set
the merged store therefore holds exactly one row per key regardless of which
worker ran what when, and is row-for-row identical (up to canonical sort and
``wall_time``) to the ``workers=1`` run — the contract
``tests/exp/test_shard_equivalence.py`` pins.  See DESIGN.md section 10.
"""

from __future__ import annotations

import glob
import os
import re
from typing import List, Union

from repro.exp.store import (
    ResultStore,
    StoppingRecord,
    TrialRecord,
    _raise_write_error,
    iter_jsonl_records,
)
from repro.obs.recorder import active as _obs_active

__all__ = ["shard_path", "shard_paths", "shard_append", "merge_shards"]

#: ``<store>.shard-<k>.jsonl`` — the per-worker sibling of a campaign store.
_SHARD_SUFFIX = re.compile(r"\.shard-(\d+)\.jsonl$")


def shard_path(store_path: str, worker: int) -> str:
    """The shard file worker ``worker`` owns for ``store_path``."""
    return f"{store_path}.shard-{worker}.jsonl"


def shard_append(fh, lines: List[str]) -> None:
    """Flush one block's serialized rows to an open shard handle, wrapping
    write failures (notably ENOSPC) in
    :class:`~repro.exp.store.StoreWriteError` so a worker that runs out of
    disk fails its block with an actionable message instead of a bare
    ``OSError`` — the supervisor retries or quarantines like any other
    block failure."""
    try:
        for line in lines:
            fh.write(line + "\n")
        fh.flush()
    except OSError as exc:
        _raise_write_error(getattr(fh, "name", "<shard>"), exc)


def shard_paths(store_path: str) -> List[str]:
    """Existing shard files of a store, in worker order (deterministic)."""
    found = []
    for path in glob.glob(f"{glob.escape(store_path)}.shard-*.jsonl"):
        match = _SHARD_SUFFIX.search(path)
        if match:
            found.append((int(match.group(1)), path))
    return [path for _, path in sorted(found)]


def merge_shards(store: ResultStore) -> int:
    """Fold every shard of ``store`` into it, then delete the shard files.

    Records already in the store (by key) are dropped; so are duplicates
    between shards (first key occurrence wins — and since a key is only ever
    scheduled on one worker per run, true conflicts cannot carry different
    payloads).  Torn and checksum-failing rows are loud-skipped by the
    reader (:func:`~repro.exp.store.iter_jsonl_records`) rather than
    ingested, so their trials re-run.  Survivors are appended in key-sorted
    order, trial records
    first, stopping records after (decisions logically follow the trials
    they judged).  Returns the number of records merged in.  A memory-only
    store has no shards and merges nothing.
    """
    if store.path is None:
        return 0
    paths = shard_paths(store.path)
    if not paths:
        return 0
    fresh: List[Union[TrialRecord, StoppingRecord]] = []
    seen_trials = store.completed_keys()
    seen_stops = store.stopping_keys()
    for path in paths:
        for record in iter_jsonl_records(path):
            seen = seen_stops if isinstance(record, StoppingRecord) else seen_trials
            if record.key in seen:
                continue
            seen.add(record.key)
            fresh.append(record)
    trials = sorted(
        (r for r in fresh if isinstance(r, TrialRecord)), key=lambda r: r.key
    )
    stops = sorted(
        (r for r in fresh if isinstance(r, StoppingRecord)), key=lambda r: r.key
    )
    for record in trials:
        store.append(record)
    for record in stops:
        store.append_stopping(record)
    for path in paths:
        os.remove(path)
    merged = len(trials) + len(stops)
    tel = _obs_active()
    if tel is not None and merged:
        # recovery visibility: rows that outlived a crashed/interrupted run
        # (the closing merge of a healthy campaign finds nothing to fold)
        tel.emit("shard_merge", records=merged, shards=len(paths))
    return merged
