"""Supervised execution of sharded campaign blocks (DESIGN.md section 14).

The plain sharded executor dies on the first disrupted worker; the
:class:`Supervisor` keeps the campaign going:

* **Block retry** — a block whose future raises an application exception is
  re-dispatched with capped exponential backoff
  (:meth:`SupervisorPolicy.backoff`), up to ``max_block_attempts``.
* **Pool respawn** — ``BrokenProcessPool`` (a worker SIGKILLed or OOMed)
  tears down the executor; the supervisor respawns a fresh pool and
  resubmits every unfinished block, up to ``max_pool_respawns``.
* **Watchdog / straggler re-dispatch** — with ``block_timeout`` set, a
  block that outlives the timeout gets a racing twin dispatched; whichever
  finishes first wins (results are identical by the determinism contract,
  so the race is free).
* **Poison quarantine** — a block that exhausts its retry budget is
  bisected *in the parent*: halves that run clean deliver their records
  (schedule invariance makes an in-parent rerun bit-identical to the
  worker's), and the culprit trial is recorded in the
  ``<store>.quarantine.jsonl`` ledger, after which the campaign continues
  without it.
* **Graceful degradation** — after ``max_pool_respawns`` pool deaths the
  remaining blocks run in-process (serial), trading throughput for
  completion.

Everything the supervisor does is *order-preserving*: futures are consumed
in submission (canonical) order and a block's records are only delivered
once, so the main store's row order — and therefore its bytes, under
``REPRO_ZERO_WALL`` — match the unsupervised, fault-free run.  Recovery
actions are tallied in a :class:`RecoveryLog` (the CLI's post-run summary)
and emitted as telemetry events/counters for the obs report's faults
section.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field
from typing import Callable, List, Optional, Sequence, Set

from repro.core.batch import FallbackNotes
from repro.exp.shard import merge_shards
from repro.exp.spec import TrialSpec
from repro.exp.store import (
    ResultStore,
    TrialRecord,
    append_jsonl_line,
    checksummed_line,
    row_intact,
)
from repro.faults.inject import active as _faults_active
from repro.obs.merge import merge_telemetry_shards
from repro.obs.recorder import active as _obs_active

__all__ = [
    "SupervisorPolicy",
    "RecoveryLog",
    "QuarantineRecord",
    "Supervisor",
    "quarantine_path",
    "read_quarantine",
    "remaining_quarantined",
]


def quarantine_path(store_path: str) -> str:
    """The quarantine ledger of a store: ``<store>.quarantine.jsonl``."""
    return f"{store_path}.quarantine.jsonl"


@dataclass
class QuarantineRecord:
    """One quarantined trial: its key, the exception that condemned it, and
    how many attempts it got (ledger JSONL row, checksummed like the store's)."""

    key: str
    error: str
    attempts: int
    kind: str = "quarantine"

    def to_json_line(self) -> str:
        return checksummed_line(asdict(self))


def read_quarantine(store_path: str) -> List["QuarantineRecord"]:
    """The quarantine ledger's rows (tolerant reader: torn or checksum-
    failing lines are dropped, matching the store's discipline)."""
    import json

    path = quarantine_path(store_path)
    out: List[QuarantineRecord] = []
    if not os.path.exists(path):
        return out
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not row_intact(data) or data.get("kind") != "quarantine":
                continue
            data.pop("kind", None)
            try:
                out.append(QuarantineRecord(**data))
            except TypeError:
                continue
    return out


def remaining_quarantined(store: ResultStore, keys: Set[str]) -> List[str]:
    """Quarantined trial keys of this campaign (``keys``) still missing
    from ``store`` — the set that should make ``repro sweep`` exit nonzero.
    A key that later completed (a transient fault resolved on a re-run)
    no longer counts; ledger entries are history, not state."""
    if store.path is None:
        return []
    done = store.completed_keys()
    seen: List[str] = []
    for q in read_quarantine(store.path):
        if q.key in keys and q.key not in done and q.key not in seen:
            seen.append(q.key)
    return seen


@dataclass
class SupervisorPolicy:
    """The supervision knobs: how hard to try before quarantining.

    ``max_block_attempts`` counts dispatches of one block (first try
    included); ``max_pool_respawns`` counts fresh executors after pool
    deaths; ``block_timeout`` (seconds, ``None`` = no watchdog) arms the
    straggler re-dispatch; backoff after the k-th failure is
    ``min(backoff_cap, backoff_base * 2**(k-1))`` seconds.
    """

    max_block_attempts: int = 3
    max_pool_respawns: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    block_timeout: Optional[float] = None

    def backoff(self, failures: int) -> float:
        """Seconds to sleep after the ``failures``-th failure (1-based)."""
        return min(self.backoff_cap, self.backoff_base * (2 ** max(0, failures - 1)))


@dataclass
class RecoveryLog:
    """Tally of every recovery action a campaign needed — the post-run
    summary ``repro sweep`` prints, and the tests' assertion surface."""

    retries: int = 0  #: block re-dispatches after an application exception
    respawns: int = 0  #: fresh pools after BrokenProcessPool
    redispatches: int = 0  #: watchdog straggler re-dispatches
    degraded: bool = False  #: fell back to in-process serial execution
    quarantined: List[QuarantineRecord] = field(default_factory=list)

    def any(self) -> bool:
        return bool(
            self.retries
            or self.respawns
            or self.redispatches
            or self.degraded
            or self.quarantined
        )

    def summary_lines(self) -> List[str]:
        lines = []
        if self.retries:
            lines.append(f"{self.retries} block retr{'y' if self.retries == 1 else 'ies'}")
        if self.respawns:
            lines.append(f"{self.respawns} pool respawn(s) after worker death")
        if self.redispatches:
            lines.append(f"{self.redispatches} straggler block(s) re-dispatched")
        if self.degraded:
            lines.append("degraded to serial execution after repeated pool failures")
        for q in self.quarantined:
            lines.append(f"quarantined {q.key} after {q.attempts} attempt(s): {q.error}")
        return lines


class _Block:
    """One lane block's supervision state: its specs, how many times it has
    been dispatched, and whether its records were delivered."""

    __slots__ = ("specs", "keys", "attempt", "done")

    def __init__(self, specs: List[TrialSpec]):
        self.specs = specs
        self.keys = [s.key() for s in specs]
        self.attempt = 0  #: next dispatch's attempt number (bumped on failure)
        self.done = False


class Supervisor:
    """Runs lane blocks through a process pool, surviving worker faults.

    One instance supervises one :func:`~repro.exp.pool._execute_sharded`
    call (a fixed campaign's pending set, or one adaptive wave).  The
    constructor takes the same collaborators the plain executor took, plus
    a :class:`SupervisorPolicy` and a :class:`RecoveryLog` to tally into.
    """

    def __init__(
        self,
        *,
        store: ResultStore,
        workers: int,
        backend: str,
        record_one: Callable[[TrialRecord], None],
        notes: FallbackNotes,
        policy: Optional[SupervisorPolicy] = None,
        recovery: Optional[RecoveryLog] = None,
    ):
        self.store = store
        self.workers = workers
        self.backend = backend
        self.record_one = record_one
        self.notes = notes
        self.policy = policy or SupervisorPolicy()
        self.recovery = recovery if recovery is not None else RecoveryLog()
        self._zombies: list = []  # losing straggler futures, drained per round

    def run(self, blocks: Sequence[List[TrialSpec]]) -> None:
        """Execute every block, in order, to completion or quarantine."""
        # imported at call time: pool imports this module at its top level
        from repro.exp import pool as _pool

        self._pool = _pool
        queue = [_Block(list(specs)) for specs in blocks]
        respawns = 0
        while queue:
            if respawns > self.policy.max_pool_respawns:
                self._degrade(queue)
                break
            try:
                self._pool_round(queue)
            except BrokenProcessPool:
                queue = [b for b in queue if not b.done]
                respawns += 1
                self.recovery.respawns += 1
                self._count("supervise.respawns")
                self._emit("respawn", respawns=respawns, blocks_left=len(queue))
                print(
                    f"supervisor: worker pool broke; respawning "
                    f"({respawns}/{self.policy.max_pool_respawns}), "
                    f"{len(queue)} block(s) outstanding",
                    file=sys.stderr,
                )
                for block in queue:
                    block.attempt += 1
                time.sleep(self.policy.backoff(respawns))
                continue
            queue = [b for b in queue if not b.done]
        self._finish_merges()

    # -- one executor's lifetime ---------------------------------------------------

    def _pool_round(self, queue: List[_Block]) -> None:
        """Submit every queued block to a fresh pool and consume the futures
        in submission order; raises ``BrokenProcessPool`` to the respawn
        loop, propagates interrupts after cancelling the backlog."""
        ctx = multiprocessing.get_context()
        counter = ctx.Value("i", 0)
        tel = _obs_active()
        executor = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=ctx,
            initializer=self._pool._shard_worker_init,
            initargs=(counter, self.store.path, tel is not None and self.store.path is not None),
        )
        try:
            pairs = [
                (executor.submit(
                    self._pool._run_shard_block, block.specs, self.backend, block.attempt
                ), block)
                for block in queue
            ]
            for i, (future, block) in enumerate(pairs):
                self._consume(executor, future, block, pending_after=len(pairs) - i - 1)
        except BaseException:
            executor.shutdown(wait=False, cancel_futures=True)
            raise
        executor.shutdown(wait=True)
        self._drain_zombies()

    def _consume(self, executor, future, block: _Block, *, pending_after: int) -> None:
        """Drive one block to delivery: wait (with the watchdog), retry on
        application failure, bisect-and-quarantine when retries run out."""
        candidates = [future]
        while True:
            done, _ = wait(
                candidates,
                timeout=self.policy.block_timeout,
                return_when=FIRST_COMPLETED,
            )
            if not done:
                # watchdog fired: race a twin against the straggler (results
                # are identical by construction, so first-home wins safely);
                # one twin only — a third copy would just pile on
                if (
                    len(candidates) == 1
                    and block.attempt + 1 < self.policy.max_block_attempts
                ):
                    block.attempt += 1
                    self.recovery.redispatches += 1
                    self._count("supervise.redispatches")
                    self._emit(
                        "straggler", block=block.keys[0], attempt=block.attempt
                    )
                    print(
                        f"supervisor: block {block.keys[0]}.. exceeded "
                        f"{self.policy.block_timeout}s; re-dispatching",
                        file=sys.stderr,
                    )
                    candidates.append(
                        executor.submit(
                            self._pool._run_shard_block,
                            block.specs,
                            self.backend,
                            block.attempt,
                        )
                    )
                continue
            fut = done.pop()
            candidates.remove(fut)
            try:
                records, counts, telem = fut.result()
            except (BrokenProcessPool, KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                if candidates:
                    continue  # the racing twin may still deliver
                block.attempt += 1
                self.recovery.retries += 1
                self._count("supervise.retries")
                self._emit(
                    "retry",
                    block=block.keys[0],
                    attempt=block.attempt,
                    error=_describe(exc),
                )
                if block.attempt >= self.policy.max_block_attempts:
                    self._bisect(block.specs, block.attempt, exc)
                    block.done = True
                    return
                time.sleep(self.policy.backoff(block.attempt))
                candidates = [
                    executor.submit(
                        self._pool._run_shard_block,
                        block.specs,
                        self.backend,
                        block.attempt,
                    )
                ]
                continue
            self._zombies.extend(candidates)  # losing twin, if any
            self._deliver(records, counts, telem, pending_after)
            block.done = True
            return

    def _deliver(self, records, counts, telem, pending_after: int) -> None:
        self.notes.merge(counts)
        tel = _obs_active()
        if tel is not None:
            if telem:
                tel.merge_aggregates(telem)
            tel.emit(
                "queue_depth",
                pending=pending_after,
                elapsed=round(time.perf_counter() - tel.t0, 6),
            )
        for record in records:
            self.record_one(record)

    def _drain_zombies(self) -> None:
        """Collect losing straggler twins after the round's shutdown; their
        outcome no longer matters (duplicates dedup by key in the merge)."""
        for future in self._zombies:
            try:
                future.result(timeout=0)
            except Exception:
                pass
        self._zombies = []

    # -- in-parent recovery paths --------------------------------------------------

    def _bisect(self, specs: List[TrialSpec], attempt: int, cause) -> None:
        """Resolve a repeatedly-failing block in the parent: run it, split
        on failure, quarantine singleton culprits, deliver everything else.

        In-parent execution is safe for the determinism contract: a trial's
        result depends only on its spec (schedule invariance, DESIGN.md
        section 13), so records computed here are bit-identical to the
        worker's — minus the shard flush, which the closing merge no longer
        needs for these keys because delivery appends them directly."""
        inj = _faults_active()
        keys = [s.key() for s in specs]
        try:
            if inj is not None:
                inj.check_trials(keys, attempt)
            if self.backend == "scalar":
                records = [self._pool.run_trial(s) for s in specs]
            else:
                records = list(self._pool.run_trial_batch(specs))
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            if len(specs) == 1:
                if attempt + 1 < self.policy.max_block_attempts:
                    self.recovery.retries += 1
                    self._count("supervise.retries")
                    self._emit(
                        "retry", block=keys[0], attempt=attempt + 1,
                        error=_describe(exc),
                    )
                    time.sleep(self.policy.backoff(attempt + 1))
                    self._bisect(specs, attempt + 1, exc)
                    return
                self._quarantine(specs[0], exc, attempt + 1)
                return
            mid = len(specs) // 2
            self._bisect(specs[:mid], attempt, exc)
            self._bisect(specs[mid:], attempt, exc)
            return
        for record in records:
            self.record_one(record)

    def _quarantine(self, spec: TrialSpec, exc: BaseException, attempts: int) -> None:
        q = QuarantineRecord(
            key=spec.key(), error=_describe(exc), attempts=attempts
        )
        self.recovery.quarantined.append(q)
        self._count("supervise.quarantined")
        self._emit("quarantine", key=q.key, error=q.error, attempts=attempts)
        print(
            f"supervisor: quarantined {q.key} after {attempts} attempt(s): "
            f"{q.error}",
            file=sys.stderr,
        )
        if self.store.path is not None:
            append_jsonl_line(quarantine_path(self.store.path), q.to_json_line())

    def _degrade(self, queue: List[_Block]) -> None:
        """Last resort after repeated pool deaths: run what's left in this
        process.  Shard rows the dead pools flushed are folded in first so
        only genuinely-lost trials re-run."""
        self.recovery.degraded = True
        self._count("supervise.degraded")
        self._emit("degrade", blocks=len(queue))
        print(
            "supervisor: worker pool keeps dying; finishing "
            f"{len(queue)} block(s) in-process (serial)",
            file=sys.stderr,
        )
        merge_shards(self.store)
        done_keys = self.store.completed_keys()
        for block in queue:
            specs = [s for s in block.specs if s.key() not in done_keys]
            if specs:
                self._bisect(specs, block.attempt, None)
            block.done = True

    def _finish_merges(self) -> None:
        merge_shards(self.store)
        if _obs_active() is not None and self.store.path is not None:
            merge_telemetry_shards(self.store.path)

    # -- telemetry plumbing --------------------------------------------------------

    def _count(self, name: str) -> None:
        tel = _obs_active()
        if tel is not None:
            tel.count(name)

    def _emit(self, event: str, **fields) -> None:
        tel = _obs_active()
        if tel is not None:
            tel.emit(event, **fields)


def _describe(exc) -> str:
    if exc is None:
        return "unknown failure"
    return f"{type(exc).__name__}: {exc}"[:500]
