"""Parallel trial execution: fan a campaign's trials out across processes.

Every execution path shares one contract — *identical results to a serial
loop* — because a trial's randomness derives from its spec, never from which
worker ran it or when:

* :func:`run_campaign` runs :class:`~repro.exp.spec.CampaignSpec` trials
  either in-process (``workers=1`` — the determinism-test fallback, lane
  batched by default) or *sharded* across a ``ProcessPoolExecutor``: pending
  trials are split into per-cell lane blocks of ``batch_lane_width *
  STREAM_BLOCK_FACTOR`` trials, each worker runs its blocks as
  continuously-refilled lane streams (compaction/refill, DESIGN.md
  section 13) and appends the finished records to its own
  ``<store>.shard-<k>.jsonl`` (single-writer per file, flushed per block),
  and the parent folds the shards back into the main store with a
  deterministic key-sorted merge (:func:`repro.exp.shard.merge_shards`).
  The merged store is row-for-row identical (up to canonical sort and
  ``wall_time``) to the ``workers=1`` run — ``tests/exp/
  test_shard_equivalence.py`` pins that across worker counts and backends.
* Adaptive campaigns (``ci_target`` set) run seed *waves* through the same
  machinery under :class:`repro.exp.adaptive.AdaptiveController`, recording
  one stopping decision per cell in the store.
* :func:`fork_map` parallelizes arbitrary *closures* (the existing
  ``analysis.stats.run_trials`` factories) by staging them in a module global
  before forking, since closures cannot be pickled.  On platforms without
  ``fork`` it silently degrades to a serial map.

Crash discipline: workers ignore SIGINT and SIGTERM; the parent catches the
first of either (SIGTERM is re-raised as ``KeyboardInterrupt`` for the
duration of a campaign, so container/CI termination gets the same resumable
exit), cancels the queued blocks, and raises :class:`CampaignInterrupted` —
blocks already running finish flushing into their shards.  A worker killed
outright (SIGKILL, OOM) surfaces as ``BrokenProcessPool`` and is *survived*:
the :class:`~repro.exp.supervisor.Supervisor` respawns the pool, retries
failing blocks with backoff, quarantines poison trials, and degrades to
serial execution if pools keep dying — all without changing a single result
byte (DESIGN.md section 14).  The next ``run_campaign`` against the same
store begins by merging leftover shards, so every completed trial is kept
exactly once and only genuinely-lost trials re-run.  See DESIGN.md
section 10.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set

from repro.analysis.stats import DEFAULT_LANE_WIDTH
from repro.core.batch import FallbackNotes, collect_fallback_notes, run_broadcast_stream
from repro.core.result import run_broadcast
from repro.exp.adaptive import AdaptiveController
from repro.exp.registry import build_jammer, build_protocol, protocol_lane_width
from repro.exp.shard import merge_shards, shard_append, shard_path
from repro.exp.spec import CampaignSpec, TrialSpec
from repro.exp.store import ResultStore, TrialRecord
from repro.exp.supervisor import RecoveryLog, Supervisor, SupervisorPolicy
from repro.faults.inject import (
    active as _faults_active,
    injector_from_env as _injector_from_env,
    install as _faults_install,
)
from repro.obs.merge import merge_telemetry_shards, telemetry_shard_path
from repro.obs.recorder import (
    Telemetry,
    _install as _obs_install,
    active as _obs_active,
    collect_telemetry,
    telemetry_path,
)

__all__ = [
    "CampaignInterrupted",
    "ProgressCallback",
    "run_trial",
    "run_trial_batch",
    "run_campaign",
    "fork_map",
    "default_workers",
]

#: Trials per lane-batched kernel pass in the batched campaign backend (a
#: cache/flush-granularity knob, not a semantic one — see run_trial_batch).
#: One knob for the whole stack: ``repro.analysis.stats.DEFAULT_LANE_WIDTH``
#: explains why it is small.
LANE_WIDTH = DEFAULT_LANE_WIDTH

#: Trials per lane slot in a sharded worker's block (``_lane_blocks``):
#: blocks carry ``batch_lane_width * STREAM_BLOCK_FACTOR`` trials so the
#: worker's lane stream has a pending queue to refill from — a freed slot
#: picks up the next trial instead of waiting for the block's straggler.
#: Larger factors amortize better but coarsen work-stealing granularity.
STREAM_BLOCK_FACTOR = 4

#: ``progress(done, total, record)`` — called after each newly completed
#: trial; ``done``/``total`` count this invocation's pending trials only.
ProgressCallback = Callable[[int, int, TrialRecord], None]


class CampaignInterrupted(KeyboardInterrupt):
    """SIGINT landed mid-campaign; completed trials are already in the store."""

    def __init__(self, done: int, total: int):
        self.done = done
        self.total = total
        super().__init__(f"campaign interrupted after {done}/{total} pending trials")


def default_workers() -> int:
    """Worker count for ``workers=0`` (auto): the CPU count, floor 1."""
    return max(1, os.cpu_count() or 1)


#: Deterministic-wall-time hook: with this env var set, every TrialRecord's
#: ``wall_time`` is stamped 0.0.  ``wall_time`` is the one physical
#: (non-derived) field in a trial row; zeroing it makes whole stores
#: byte-comparable across runs and worker counts — which is exactly how the
#: telemetry never-in-trial-rows contract is enforced
#: (``tests/obs/test_determinism.py``).  Environment variables survive both
#: fork and spawn, so the stamp is consistent across sharded workers.
ZERO_WALL_ENV = "REPRO_ZERO_WALL"


def _wall(seconds: float) -> float:
    return 0.0 if os.environ.get(ZERO_WALL_ENV) else seconds


def run_trial(spec: TrialSpec) -> TrialRecord:
    """Execute one trial from its spec (top-level, hence pool-picklable)."""
    protocol = build_protocol(
        spec.protocol, spec.n, T=spec.budget, C=spec.channels, knobs=spec.protocol_knobs
    )
    adversary = build_jammer(
        spec.jammer, spec.budget, spec.jammer_seed(), knobs=spec.jammer_knobs, n=spec.n
    )
    t0 = time.perf_counter()
    result = run_broadcast(
        protocol, spec.n, adversary, seed=spec.net_seed(), max_slots=spec.max_slots
    )
    return TrialRecord.from_result(spec, result, wall_time=_wall(time.perf_counter() - t0))


def run_trial_batch(
    specs: Sequence[TrialSpec], *, lane_width: Optional[int] = None
) -> Iterator[TrialRecord]:
    """Execute trials that share a cell through the lane-batched engine.

    All specs must agree on everything but their trial index (one protocol,
    one jammer, one n — the unit ``run_campaign`` groups by).  Yields records
    in spec order, streamed through ``lane_width`` continuously-refilled lane
    slots (:func:`repro.core.batch.run_broadcast_stream` — a spec whose
    trial retires frees its slot for the next pending spec instead of
    idling until a lockstep block drains), each record bit-identical to
    ``run_trial(spec)`` except for ``wall_time``, which is apportioned
    evenly across the stream's trials (the trials genuinely ran together;
    only their total is physical).  ``lane_width=None`` (default) honors
    the protocol's advertised ``stream_lane_width`` (falling back to
    ``batch_lane_width``, then :data:`LANE_WIDTH`) — ``MultiCastAdv``
    prefers wide streams since refill keeps wide batches occupied; neither
    the width nor the refill schedule ever changes results, only
    throughput.
    """
    specs = list(specs)
    if not specs:
        return
    first = specs[0]
    if any(_cell_identity(s) != _cell_identity(first) for s in specs):
        raise ValueError("run_trial_batch specs must share one campaign cell")
    if lane_width is None:
        probe = build_protocol(
            first.protocol, first.n, T=first.budget, C=first.channels,
            knobs=first.protocol_knobs,
        )
        # streams prefer the wider stream_lane_width when advertised:
        # refill keeps wide batches occupied (BENCH_adv_compaction.json)
        lane_width = getattr(
            probe, "stream_lane_width", getattr(probe, "batch_lane_width", LANE_WIDTH)
        )
    lane_width = max(1, int(lane_width))
    protocol = build_protocol(
        first.protocol, first.n, T=first.budget, C=first.channels,
        knobs=first.protocol_knobs,
    )
    adversaries = [
        build_jammer(s.jammer, s.budget, s.jammer_seed(), knobs=s.jammer_knobs, n=s.n)
        for s in specs
    ]
    t0 = time.perf_counter()
    results = run_broadcast_stream(
        protocol,
        first.n,
        adversaries,
        [s.net_seed() for s in specs],
        max_slots=[s.max_slots for s in specs],
        lane_width=lane_width,
    )
    block_s = time.perf_counter() - t0
    tel = _obs_active()
    if tel is not None:
        tel.heartbeat(
            trials=len(specs),
            block_s=round(block_s, 6),
            trials_per_s=round(len(specs) / block_s, 2) if block_s > 0 else 0.0,
        )
    wall = _wall(block_s) / len(specs)
    for spec, result in zip(specs, results):
        yield TrialRecord.from_result(spec, result, wall_time=wall)


def _cell_identity(spec: TrialSpec):
    """Everything that must agree for trials to share one batch — the whole
    spec except the trial index (the lanes' only degree of freedom)."""
    return dataclasses.replace(spec, trial=0)


def _group_by_cell(specs: Sequence[TrialSpec]) -> List[List[TrialSpec]]:
    """Split specs into per-cell runs (order-preserving; specs arrive in
    canonical campaign order, so each cell's trials are contiguous)."""
    groups: List[List[TrialSpec]] = []
    for spec in specs:
        if groups and _cell_identity(groups[-1][0]) == _cell_identity(spec):
            groups[-1].append(spec)
        else:
            groups.append([spec])
    return groups


def _ignore_sigint() -> None:
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _lane_blocks(pending: Sequence[TrialSpec]) -> List[List[TrialSpec]]:
    """Split pending specs into per-cell lane blocks — the sharded unit of
    work.  Block size is :data:`STREAM_BLOCK_FACTOR` times the protocol's
    advertised ``batch_lane_width`` (:data:`LANE_WIDTH` when it has none):
    each worker runs its block as one continuously-refilled lane stream
    (``run_trial_batch``), so a block carries several trials per slot to
    give the stream a pending queue to compact over; the split never
    crosses a cell boundary."""
    blocks: List[List[TrialSpec]] = []
    for group in _group_by_cell(pending):
        first = group[0]
        width = protocol_lane_width(
            first.protocol,
            first.n,
            T=first.budget,
            C=first.channels,
            knobs=first.protocol_knobs,
            default=LANE_WIDTH,
        )
        size = max(1, int(width)) * STREAM_BLOCK_FACTOR
        for start in range(0, len(group), size):
            blocks.append(group[start : start + size])
    return blocks


#: Worker-side shard state: the worker's own append handle, opened once by
#: the pool initializer (single writer per shard file, by construction).
_SHARD_STATE: dict = {"fh": None}


def _shard_worker_init(
    counter, store_path: Optional[str], telemetry: bool = False
) -> None:
    """Pool initializer: ignore SIGINT/SIGTERM (the parent owns interrupts
    and termination) and — for on-disk stores — claim the next shard index
    and open its file.

    The active telemetry recorder is always cleared first: under the fork
    start method a worker would otherwise inherit the parent's recorder —
    including its open handle on the *merged* telemetry file, breaking the
    single-writer-per-file rule.  With ``telemetry`` set the worker installs
    its own recorder on its own ``<store>.telemetry.shard-<k>.jsonl``.
    Similarly, any inherited fault injector is replaced by a *worker*-role
    one built from ``REPRO_FAULT_PLAN`` (or cleared, when the env var is
    unset) — worker-level faults must never fire in the parent and vice
    versa."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    _SHARD_STATE["fh"] = None
    _obs_install(None)
    _faults_install(_injector_from_env("worker"))
    if store_path is not None:
        with counter.get_lock():
            worker = int(counter.value)
            counter.value = worker + 1
        _SHARD_STATE["fh"] = open(shard_path(store_path, worker), "a")
        if telemetry:
            _obs_install(
                Telemetry(
                    telemetry_shard_path(store_path, worker),
                    source=f"worker-{worker}",
                )
            )


def _run_shard_block(specs: List[TrialSpec], backend: str, attempt: int = 0):
    """Execute one lane block inside a worker; flush it to the worker's
    shard; return the records plus the block's scalar-fallback tally and
    telemetry aggregates (both plain dicts — the worker -> parent
    transport; discrete events stream to the worker's telemetry shard).

    ``attempt`` is the supervisor's dispatch counter for this block — it
    does not change execution (seeds derive from specs alone), only which
    injected faults fire: a fault plan entry with ``times=k`` hits attempts
    ``0..k-1`` and then lets the retry succeed.  The shard flush happens
    only after the whole block ran clean, so a failed attempt contributes
    no rows and the retry cannot create duplicates."""
    keys = [s.key() for s in specs]
    inj = _faults_active()
    if inj is not None:
        inj.on_block_start(keys, attempt)
        inj.check_trials(keys, attempt)
    with collect_fallback_notes() as notes:
        if backend == "scalar":
            records = [run_trial(spec) for spec in specs]
        else:
            records = list(run_trial_batch(specs))
    fh = _SHARD_STATE["fh"]
    if fh is not None:
        lines = []
        for record in records:
            line = record.to_json_line()
            if inj is not None:
                line = inj.corrupt_line(record.key, attempt, line) or line
            lines.append(line)
        shard_append(fh, lines)
        tail = inj.torn_tail(keys, attempt) if inj is not None else None
        if tail is not None:
            fh.write(tail)
            fh.flush()
    tel = _obs_active()
    telem = tel.take_aggregates() if tel is not None else None
    return records, notes.snapshot(), telem


def _execute_sharded(
    pending: Sequence[TrialSpec],
    store: ResultStore,
    *,
    workers: int,
    backend: str,
    record_one: Callable[[TrialRecord], None],
    notes: FallbackNotes,
    policy: Optional[SupervisorPolicy] = None,
    recovery: Optional[RecoveryLog] = None,
) -> None:
    """Fan lane blocks across a *supervised* process pool; fold shards back.

    Futures are consumed in submission (canonical) order, so progress,
    parent-side accounting, and main-store row order are deterministic even
    though workers complete out of order — and the
    :class:`~repro.exp.supervisor.Supervisor` preserves that order through
    every recovery action (retry, pool respawn, straggler re-dispatch,
    quarantine bisect, serial degradation; DESIGN.md section 14).  Two
    writers never share a file: each worker appends to its own shard, and
    the parent — the main store's only writer — appends each block's
    records as its future lands.  The closing :func:`merge_shards`
    therefore normally finds nothing new and just deletes the shards; the
    shards earn their keep on failure — SIGINT/SIGTERM, a worker killed
    hard (``BrokenProcessPool``) — when consumed-but-unmerged rows are
    already in the main store and completed-but-unconsumed rows wait in the
    shards for a respawned pool's (or the next run's) opening merge."""
    Supervisor(
        store=store,
        workers=workers,
        backend=backend,
        record_one=record_one,
        notes=notes,
        policy=policy,
        recovery=recovery,
    ).run(_lane_blocks(pending))


def _collect(store: ResultStore, keys: Set[str]) -> List[TrialRecord]:
    """The campaign's records, key-sorted — or ``[]`` for a non-materialized
    store, whose whole point is that nobody loads it at once (reduce those
    with :func:`repro.exp.store.stream_aggregate` instead)."""
    if not store.materialize:
        return []
    return [r for r in store.records() if r.key in keys]


@contextmanager
def _sigterm_as_interrupt():
    """SIGTERM parity with SIGINT for the duration of a campaign: container
    and CI termination raises ``KeyboardInterrupt`` in the parent, which
    the campaign body converts to :class:`CampaignInterrupted` — shards
    flush, the exit is resumable, same path as an operator's ^C.  Signal
    handlers are process-global and main-thread-only, so off the main
    thread this is a no-op (such callers keep plain-SIGTERM semantics)."""
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    previous = signal.getsignal(signal.SIGTERM)

    def _handler(signum, frame):
        raise KeyboardInterrupt()

    signal.signal(signal.SIGTERM, _handler)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


@contextmanager
def _env_fault_injector():
    """Install a parent-role fault injector from ``REPRO_FAULT_PLAN`` for
    the campaign's duration — unless the caller already installed one
    (tests use :func:`repro.faults.plan_env`, which does both)."""
    if _faults_active() is not None:
        yield
        return
    injector = _injector_from_env("parent")
    if injector is None:
        yield
        return
    previous = _faults_install(injector)
    try:
        yield
    finally:
        _faults_install(previous)


def run_campaign(
    campaign: CampaignSpec,
    store: Optional[ResultStore] = None,
    *,
    workers: int = 0,
    progress: Optional[ProgressCallback] = None,
    backend: str = "auto",
    telemetry: bool = False,
    policy: Optional[SupervisorPolicy] = None,
    recovery: Optional[RecoveryLog] = None,
) -> List[TrialRecord]:
    """Run every not-yet-completed trial of ``campaign``; return all records.

    Parameters
    ----------
    campaign:
        The grid to run.  With ``ci_target`` set the grid is adaptive:
        ``trials`` becomes the per-wave seed count and each cell stops at
        its precision target or ``max_trials`` cap
        (:mod:`repro.exp.adaptive`), with one stopping record per cell
        appended to the store.
    store:
        Result sink; trials whose key is already in the store are skipped
        (resumption).  ``None`` uses a throwaway in-memory store.  Leftover
        shard files from a crashed sharded run are merged in before the
        skip-set is computed, so nothing completed ever re-runs.
    workers:
        ``0`` -> one per CPU; ``1`` -> in-process serial loop (no
        multiprocessing, the determinism-test fallback); ``>1`` -> sharded
        process pool: per-cell lane blocks, one shard file per worker, a
        deterministic merge at the end.
    progress:
        Optional per-completion callback (for adaptive campaigns ``total``
        is the work known so far and grows as waves are scheduled).
    backend:
        ``"auto"`` (default) and ``"batched"`` run every lane block through
        the lane engine (:func:`run_trial_batch`) — in-process when
        ``workers == 1``, inside each worker otherwise, so a sharded run no
        longer forfeits batching; ``"scalar"`` forces the one-trial-at-a-
        time loop (same sharding, scalar execution).  Aggregates are
        byte-identical across every (workers, backend) combination; only
        ``wall_time`` (not aggregated) reflects the execution shape.  The
        batched path flushes once per kernel pass instead of once per
        trial, so an interrupt can lose up to one lane block in flight.
    telemetry:
        Record run telemetry (:mod:`repro.obs`) to
        ``<store>.telemetry.jsonl`` — needs an on-disk store, since workers
        shard the telemetry stream alongside the trial shards.  Trial rows
        are untouched: the store is byte-identical with telemetry on and
        off (the never-in-trial-rows contract, ``tests/obs/``).
    policy:
        :class:`~repro.exp.supervisor.SupervisorPolicy` for the sharded
        path's fault handling (retry budget, respawn cap, backoff, block
        watchdog); ``None`` uses the defaults.  The ``workers=1`` serial
        loop is unsupervised — a raising trial propagates, which is the
        debuggability the serial fallback exists for.
    recovery:
        Optional :class:`~repro.exp.supervisor.RecoveryLog` the supervisor
        tallies retries/respawns/quarantines into — pass one to inspect
        what recovery the campaign needed (the CLI's post-run summary).

    Scalar-fallback warnings from the batch engine are collected once per
    campaign (one summary line per cause on stderr), not once per lane pass.

    Returns the records of *all* the campaign's trials — freshly run and
    previously stored — sorted by trial key.  Records the store holds for
    *other* campaigns (stores may be shared) are not returned; for a
    non-materialized store the list is empty by design (stream-aggregate
    such stores instead of materializing them).
    """
    if backend not in ("auto", "scalar", "batched"):
        raise ValueError(f"unknown backend {backend!r} (auto, scalar, batched)")
    if store is None:
        store = ResultStore(None)
    with _sigterm_as_interrupt(), _env_fault_injector():
        if telemetry:
            if store.path is None:
                raise ValueError(
                    "telemetry needs an on-disk store (its event stream shards "
                    "alongside the trial shards)"
                )
            with collect_telemetry(telemetry_path(store.path)):
                return _campaign_body(
                    campaign, store, workers=workers, progress=progress,
                    backend=backend, policy=policy, recovery=recovery,
                )
        return _campaign_body(
            campaign, store, workers=workers, progress=progress,
            backend=backend, policy=policy, recovery=recovery,
        )


def _campaign_body(
    campaign: CampaignSpec,
    store: ResultStore,
    *,
    workers: int,
    progress: Optional[ProgressCallback],
    backend: str,
    policy: Optional[SupervisorPolicy],
    recovery: Optional[RecoveryLog],
) -> List[TrialRecord]:
    t_start = time.perf_counter()
    merge_shards(store)  # crash leftovers count as completed before anything
    if store.path is not None:
        # orphaned telemetry shards from an aborted run are recovered here —
        # at campaign open, telemetry on or off — not only on the sharded
        # success path, so no worker's events are stranded forever
        merge_telemetry_shards(store.path)
    if campaign.adaptive:
        return _run_adaptive(
            campaign, store, workers=workers, progress=progress,
            backend=backend, policy=policy, recovery=recovery,
        )
    done_keys = store.completed_keys()
    specs = campaign.trial_specs()
    wanted = {s.key() for s in specs}
    pending = [s for s in specs if s.key() not in done_keys]
    workers = default_workers() if workers == 0 else max(1, int(workers))
    workers = min(workers, max(1, len(pending)))

    total = len(pending)
    done = 0

    def record_one(record: TrialRecord) -> None:
        nonlocal done
        store.append(record)
        done += 1
        if progress is not None:
            progress(done, total, record)

    with collect_fallback_notes() as notes:
        try:
            if workers == 1 or total == 0:
                if backend in ("auto", "batched"):
                    for group in _group_by_cell(pending):
                        for record in run_trial_batch(group):
                            record_one(record)
                else:
                    for spec in pending:
                        record_one(run_trial(spec))
            else:
                _execute_sharded(
                    pending,
                    store,
                    workers=workers,
                    backend=backend,
                    record_one=record_one,
                    notes=notes,
                    policy=policy,
                    recovery=recovery,
                )
        except KeyboardInterrupt:
            raise CampaignInterrupted(done, total) from None
    notes.emit()
    _emit_campaign_events(notes, trials=done, workers=workers, t_start=t_start)
    return _collect(store, wanted)


def _emit_campaign_events(
    notes: FallbackNotes, *, trials: int, workers: int, t_start: float
) -> None:
    """Parent-side end-of-campaign telemetry: one ``campaign`` event and —
    exactly once per campaign, mirroring the stderr summary — the merged
    fallback-note tally."""
    tel = _obs_active()
    if tel is None:
        return
    if notes:
        tel.emit(
            "fallback_notes",
            notes=[
                {"protocol": name, "reason": reason, "lanes": lanes,
                 "passes": passes}
                for (name, reason), (lanes, passes) in notes.counts.items()
            ],
        )
    tel.emit(
        "campaign",
        trials=trials,
        workers=workers,
        elapsed=round(time.perf_counter() - t_start, 6),
    )


def _run_adaptive(
    campaign: CampaignSpec,
    store: ResultStore,
    *,
    workers: int,
    progress: Optional[ProgressCallback],
    backend: str,
    policy: Optional[SupervisorPolicy],
    recovery: Optional[RecoveryLog],
) -> List[TrialRecord]:
    """Wave loop of an adaptive campaign: decide, schedule, execute, repeat.

    Each wave's pending specs go through exactly the machinery a fixed
    campaign uses (serial lane batching or the sharded pool), so adaptive
    stopping changes *which* trials run, never how any one trial runs.
    A trial the supervisor quarantines abandons its whole cell
    (:meth:`AdaptiveController.abandon`): the cell's prefix can never
    complete, so scheduling more waves for it would loop forever."""
    t_start = time.perf_counter()
    controller = AdaptiveController(campaign, store)
    recovery = recovery if recovery is not None else RecoveryLog()
    workers = default_workers() if workers == 0 else max(1, int(workers))
    done = 0
    total = 0
    wave_index = 0

    def record_one(record: TrialRecord) -> None:
        nonlocal done
        store.append(record)
        controller.observe(record)
        done += 1
        if progress is not None:
            progress(done, total, record)

    with collect_fallback_notes() as notes:
        try:
            while True:
                for decision in controller.take_decisions():
                    store.append_stopping(decision)
                wave = controller.next_wave()
                if not wave:
                    break
                total = done + len(wave)
                if workers == 1:
                    if backend in ("auto", "batched"):
                        for group in _group_by_cell(wave):
                            for record in run_trial_batch(group):
                                record_one(record)
                    else:
                        for spec in wave:
                            record_one(run_trial(spec))
                else:
                    quarantined_before = len(recovery.quarantined)
                    _execute_sharded(
                        wave,
                        store,
                        workers=min(workers, len(wave)),
                        backend=backend,
                        record_one=record_one,
                        notes=notes,
                        policy=policy,
                        recovery=recovery,
                    )
                    for q in recovery.quarantined[quarantined_before:]:
                        controller.abandon(q.key)
                wave_index += 1
                tel = _obs_active()
                if tel is not None:
                    # post-wave precision snapshot: the CI-width trajectory
                    # (cells whose decisions are now due still count as open
                    # — take_decisions runs at the top of the next loop)
                    tel.emit(
                        "wave",
                        wave=wave_index,
                        scheduled=len(wave),
                        cells_open=sum(
                            1
                            for plan in controller.plans
                            if plan.decision is None and not plan.recorded
                        ),
                        rel_ci=controller.precision_snapshot(),
                    )
        except KeyboardInterrupt:
            raise CampaignInterrupted(done, total) from None
    notes.emit()
    _emit_campaign_events(notes, trials=done, workers=workers, t_start=t_start)
    return _collect(store, set(controller.scheduled_keys()))


# -- closure-friendly parallel map ------------------------------------------------

#: Staged (fn, items) visible to forked children; see fork_map.
_FORK_STATE: dict = {}


def _fork_call(index: int):
    return _FORK_STATE["fn"](_FORK_STATE["items"][index])


def fork_map(fn: Callable, items: Sequence, *, workers: int = 1) -> List:
    """``[fn(x) for x in items]``, fanned across forked workers when possible.

    Unlike a pool ``map``, ``fn`` may be a closure or lambda: it is staged in
    a module global that forked children inherit by memory copy, and only the
    item *index* crosses the process boundary.  Falls back to a serial list
    comprehension when ``workers <= 1``, when there are fewer than two items,
    or when the platform lacks the ``fork`` start method.  Result order
    always matches ``items`` order.
    """
    workers = default_workers() if workers == 0 else int(workers)
    workers = min(workers, len(items))
    serial = workers <= 1 or "fork" not in multiprocessing.get_all_start_methods()
    if serial:
        return [fn(x) for x in items]
    ctx = multiprocessing.get_context("fork")
    _FORK_STATE["fn"] = fn
    _FORK_STATE["items"] = items
    try:
        with ctx.Pool(workers, initializer=_ignore_sigint) as pool:
            return pool.map(_fork_call, range(len(items)))
    finally:
        _FORK_STATE.clear()
