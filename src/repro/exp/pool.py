"""Parallel trial execution: fan a campaign's trials out across processes.

Two execution paths share one contract — *identical results to a serial
loop* — because every trial's randomness derives from its spec, never from
which worker ran it or when:

* :func:`run_campaign` runs :class:`~repro.exp.spec.CampaignSpec` trials on a
  ``multiprocessing`` pool.  Trials are picklable specs, rebuilt inside the
  worker via the name registry, so any start method works.  Results stream
  back unordered, get appended (and flushed) to the store as they land, and
  the final record list is re-sorted by trial key — aggregates are
  byte-identical across worker counts, including ``workers=1``, which runs a
  plain in-process loop with no multiprocessing at all (the determinism-test
  fallback).
* :func:`fork_map` parallelizes arbitrary *closures* (the existing
  ``analysis.stats.run_trials`` factories) by staging them in a module global
  before forking, since closures cannot be pickled.  On platforms without
  ``fork`` it silently degrades to a serial map.

SIGINT discipline: workers ignore SIGINT; the parent catches the first one,
drains nothing, terminates the pool, and raises :class:`CampaignInterrupted`.
Everything already flushed to the store survives, so re-running the same
command resumes where the interrupt landed.

See DESIGN.md section 3.2 for the worker-model rationale.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import time
from typing import Callable, Iterator, List, Optional, Sequence

from repro.analysis.stats import DEFAULT_LANE_WIDTH
from repro.core.batch import run_broadcast_batch
from repro.core.result import run_broadcast
from repro.exp.registry import build_jammer, build_protocol
from repro.exp.spec import CampaignSpec, TrialSpec
from repro.exp.store import ResultStore, TrialRecord

__all__ = [
    "CampaignInterrupted",
    "ProgressCallback",
    "run_trial",
    "run_trial_batch",
    "run_campaign",
    "fork_map",
    "default_workers",
]

#: Trials per lane-batched kernel pass in the batched campaign backend (a
#: cache/flush-granularity knob, not a semantic one — see run_trial_batch).
#: One knob for the whole stack: ``repro.analysis.stats.DEFAULT_LANE_WIDTH``
#: explains why it is small.
LANE_WIDTH = DEFAULT_LANE_WIDTH

#: ``progress(done, total, record)`` — called after each newly completed
#: trial; ``done``/``total`` count this invocation's pending trials only.
ProgressCallback = Callable[[int, int, TrialRecord], None]


class CampaignInterrupted(KeyboardInterrupt):
    """SIGINT landed mid-campaign; completed trials are already in the store."""

    def __init__(self, done: int, total: int):
        self.done = done
        self.total = total
        super().__init__(f"campaign interrupted after {done}/{total} pending trials")


def default_workers() -> int:
    """Worker count for ``workers=0`` (auto): the CPU count, floor 1."""
    return max(1, os.cpu_count() or 1)


def run_trial(spec: TrialSpec) -> TrialRecord:
    """Execute one trial from its spec (top-level, hence pool-picklable)."""
    protocol = build_protocol(
        spec.protocol, spec.n, T=spec.budget, C=spec.channels, knobs=spec.protocol_knobs
    )
    adversary = build_jammer(
        spec.jammer, spec.budget, spec.jammer_seed(), knobs=spec.jammer_knobs, n=spec.n
    )
    t0 = time.perf_counter()
    result = run_broadcast(
        protocol, spec.n, adversary, seed=spec.net_seed(), max_slots=spec.max_slots
    )
    return TrialRecord.from_result(spec, result, wall_time=time.perf_counter() - t0)


def run_trial_batch(
    specs: Sequence[TrialSpec], *, lane_width: Optional[int] = None
) -> Iterator[TrialRecord]:
    """Execute trials that share a cell through the lane-batched engine.

    All specs must agree on everything but their trial index (one protocol,
    one jammer, one n — the unit ``run_campaign`` groups by).  Yields records
    in spec order, ``lane_width`` trials per kernel pass, each record
    bit-identical to ``run_trial(spec)`` except for ``wall_time``, which is
    apportioned evenly across a pass's lanes (the lanes genuinely ran
    together; only their total is physical).  ``lane_width=None`` (default)
    honors the protocol's advertised ``batch_lane_width`` when it has one
    (``MultiCastAdv`` prefers wider lanes) and falls back to
    :data:`LANE_WIDTH`; the width never changes results, only throughput.
    """
    specs = list(specs)
    if not specs:
        return
    first = specs[0]
    if any(_cell_identity(s) != _cell_identity(first) for s in specs):
        raise ValueError("run_trial_batch specs must share one campaign cell")
    if lane_width is None:
        probe = build_protocol(
            first.protocol, first.n, T=first.budget, C=first.channels,
            knobs=first.protocol_knobs,
        )
        lane_width = getattr(probe, "batch_lane_width", LANE_WIDTH)
    lane_width = max(1, int(lane_width))
    for start in range(0, len(specs), lane_width):
        chunk = specs[start : start + lane_width]
        protocol = build_protocol(
            first.protocol, first.n, T=first.budget, C=first.channels,
            knobs=first.protocol_knobs,
        )
        adversaries = [
            build_jammer(s.jammer, s.budget, s.jammer_seed(), knobs=s.jammer_knobs, n=s.n)
            for s in chunk
        ]
        t0 = time.perf_counter()
        results = run_broadcast_batch(
            protocol,
            first.n,
            adversaries,
            [s.net_seed() for s in chunk],
            max_slots=first.max_slots,
        )
        wall = (time.perf_counter() - t0) / len(chunk)
        for spec, result in zip(chunk, results):
            yield TrialRecord.from_result(spec, result, wall_time=wall)


def _cell_identity(spec: TrialSpec):
    """Everything that must agree for trials to share one batch — the whole
    spec except the trial index (the lanes' only degree of freedom)."""
    return dataclasses.replace(spec, trial=0)


def _group_by_cell(specs: Sequence[TrialSpec]) -> List[List[TrialSpec]]:
    """Split specs into per-cell runs (order-preserving; specs arrive in
    canonical campaign order, so each cell's trials are contiguous)."""
    groups: List[List[TrialSpec]] = []
    for spec in specs:
        if groups and _cell_identity(groups[-1][0]) == _cell_identity(spec):
            groups[-1].append(spec)
        else:
            groups.append([spec])
    return groups


def _ignore_sigint() -> None:
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def run_campaign(
    campaign: CampaignSpec,
    store: Optional[ResultStore] = None,
    *,
    workers: int = 0,
    progress: Optional[ProgressCallback] = None,
    backend: str = "auto",
) -> List[TrialRecord]:
    """Run every not-yet-completed trial of ``campaign``; return all records.

    Parameters
    ----------
    campaign:
        The grid to run.
    store:
        Result sink; trials whose key is already in the store are skipped
        (resumption).  ``None`` uses a throwaway in-memory store.
    workers:
        ``0`` -> one per CPU; ``1`` -> in-process serial loop (no
        multiprocessing, the determinism-test fallback); ``>1`` -> pool.
    progress:
        Optional per-completion callback.
    backend:
        How the serial (``workers == 1``) path executes: ``"auto"``
        (default) and ``"batched"`` run each cell's pending trials through
        the lane engine (:func:`run_trial_batch`) — the fast path on a
        single core; ``"scalar"`` keeps the one-trial-at-a-time loop.
        Multi-worker runs ignore this (each worker runs scalar trials).
        Aggregates are byte-identical either way; only ``wall_time`` (not
        aggregated) reflects the execution shape, and the batched path
        flushes the store once per kernel pass instead of once per trial,
        so an interrupt can lose up to ``LANE_WIDTH`` in-flight trials.

    Returns the records of *all* the campaign's trials — freshly run and
    previously stored — sorted by trial key.  Records the store holds for
    *other* campaigns (stores may be shared) are not returned.
    """
    if backend not in ("auto", "scalar", "batched"):
        raise ValueError(f"unknown backend {backend!r} (auto, scalar, batched)")
    if store is None:
        store = ResultStore(None)
    done_keys = store.completed_keys()
    specs = campaign.trial_specs()
    wanted = {s.key() for s in specs}
    pending = [s for s in specs if s.key() not in done_keys]
    workers = default_workers() if workers == 0 else max(1, int(workers))
    workers = min(workers, max(1, len(pending)))

    total = len(pending)
    done = 0

    def record_one(record: TrialRecord) -> None:
        nonlocal done
        store.append(record)
        done += 1
        if progress is not None:
            progress(done, total, record)

    if workers == 1 or total == 0:
        try:
            if backend in ("auto", "batched"):
                for group in _group_by_cell(pending):
                    for record in run_trial_batch(group):
                        record_one(record)
            else:
                for spec in pending:
                    record_one(run_trial(spec))
        except KeyboardInterrupt:
            raise CampaignInterrupted(done, total) from None
        return [r for r in store.records() if r.key in wanted]

    # chunksize stays 1: trials run for seconds (IPC cost is noise), and a
    # bigger chunk would buffer completed results inside workers, breaking
    # the store's "loses at most the trials in flight" flush promise.
    ctx = multiprocessing.get_context()
    pool = ctx.Pool(workers, initializer=_ignore_sigint)
    try:
        for record in pool.imap_unordered(run_trial, pending, chunksize=1):
            record_one(record)
        pool.close()
        pool.join()
    except KeyboardInterrupt:
        pool.terminate()
        pool.join()
        raise CampaignInterrupted(done, total) from None
    except Exception:
        pool.terminate()
        pool.join()
        raise
    return [r for r in store.records() if r.key in wanted]


# -- closure-friendly parallel map ------------------------------------------------

#: Staged (fn, items) visible to forked children; see fork_map.
_FORK_STATE: dict = {}


def _fork_call(index: int):
    return _FORK_STATE["fn"](_FORK_STATE["items"][index])


def fork_map(fn: Callable, items: Sequence, *, workers: int = 1) -> List:
    """``[fn(x) for x in items]``, fanned across forked workers when possible.

    Unlike a pool ``map``, ``fn`` may be a closure or lambda: it is staged in
    a module global that forked children inherit by memory copy, and only the
    item *index* crosses the process boundary.  Falls back to a serial list
    comprehension when ``workers <= 1``, when there are fewer than two items,
    or when the platform lacks the ``fork`` start method.  Result order
    always matches ``items`` order.
    """
    workers = default_workers() if workers == 0 else int(workers)
    workers = min(workers, len(items))
    serial = workers <= 1 or "fork" not in multiprocessing.get_all_start_methods()
    if serial:
        return [fn(x) for x in items]
    ctx = multiprocessing.get_context("fork")
    _FORK_STATE["fn"] = fn
    _FORK_STATE["items"] = items
    try:
        with ctx.Pool(workers, initializer=_ignore_sigint) as pool:
            return pool.map(_fork_call, range(len(items)))
    finally:
        _FORK_STATE.clear()
