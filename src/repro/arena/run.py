"""One-call adaptive execution: lift a protocol, run it, return a result.

:func:`run_broadcast_adaptive` is the arena's analogue of
:func:`repro.core.result.run_broadcast` — same signature shape, same
:class:`~repro.core.result.BroadcastResult` out — so trial batches, campaign
workers, stores and tables treat adaptive runs exactly like oblivious ones.
:func:`repro.core.result.run_broadcast` itself dispatches here whenever the
adversary is reactive, which is what carries the adversary-model axis
through ``run_trials`` / ``CampaignSpec`` / ``repro sweep`` end to end.

Two execution backends share that entry point (``backend=``):

* ``"slot"`` — the original per-slot loop over :class:`ArenaNetwork`: one
  adversary query and one single-slot kernel pass per slot.  The oracle.
* ``"window"`` — the block-stepped driver of :mod:`repro.arena.window`:
  sound whenever the adversary senses with latency >= 1 (or there is no
  adversary), bit-identical to ``"slot"`` and ~an order of magnitude
  faster.  ``"auto"`` (the default) picks it exactly then; a reactive
  jammer that *requires* slot stepping (within-slot sensing, or no window
  interface) falls back with a once-per-campaign
  :class:`~repro.core.batch.FallbackNotes` entry.

:func:`run_broadcast_windowed_batch` is the lane-batched form behind
:func:`repro.core.batch.run_broadcast_batch`'s reactive routing.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.arena.columns import (
    ColumnProtocol,
    DecayColumns,
    MultiCastAdvColumns,
    MultiCastCColumns,
    MultiCastColumns,
    MultiCastCoreColumns,
    NaiveColumns,
)
from repro.arena.network import ArenaNetwork
from repro.baselines.decay import DecayBroadcast
from repro.baselines.naive import NaiveEpidemic
from repro.core.limited import MultiCastC
from repro.core.multicast import MultiCast
from repro.core.multicast_adv import MultiCastAdv
from repro.core.multicast_core import MultiCastCore
from repro.core.result import BroadcastResult

__all__ = [
    "lift_protocol",
    "run_broadcast_adaptive",
    "run_broadcast_windowed_batch",
    "supports_protocol",
]

#: Adapter dispatch table, most-derived type first (``MultiCastC`` — which
#: also covers ``SingleChannelCompetitive`` — before ``MultiCast``).
_ADAPTERS = (
    (MultiCastCore, lambda proto, n, seed: MultiCastCoreColumns(proto, n, seed)),
    (MultiCastC, lambda proto, n, seed: MultiCastCColumns(proto, seed)),
    (MultiCast, lambda proto, n, seed: MultiCastColumns(proto, n, seed)),
    (MultiCastAdv, lambda proto, n, seed: MultiCastAdvColumns(proto, n, seed)),
    (DecayBroadcast, lambda proto, n, seed: DecayColumns(proto, seed)),
    (NaiveEpidemic, lambda proto, n, seed: NaiveColumns(proto, seed)),
)


def supports_protocol(protocol) -> bool:
    """True iff :func:`lift_protocol` has a column adapter for this object
    (lets callers pre-validate without paying for adapter construction)."""
    return isinstance(protocol, tuple(cls for cls, _ in _ADAPTERS))


def lift_protocol(protocol, n: int, seed: int) -> ColumnProtocol:
    """Build the arena column adapter for a standard protocol object.

    Anything unknown fails loudly: an arena run silently falling back to a
    different protocol would corrupt a study.
    """
    for cls, make in _ADAPTERS:
        if isinstance(protocol, cls):
            return make(protocol, n, seed)
    raise TypeError(
        f"no arena column adapter for {type(protocol).__name__}; "
        "see repro.arena.columns for the supported protocols"
    )


def _note_slot_fallback(adversary, latency) -> None:
    """Record (once per campaign, via the active collector) that a reactive
    adversary forced slot stepping — mirrors ``run_broadcast_batch``'s
    scalar-fallback notes, so ``repro sweep`` surfaces the backend choice
    instead of silently running 10x slower."""
    from repro.core import batch as _batch
    from repro.obs.recorder import active as _obs_active

    tel = _obs_active()
    if tel is not None:
        tel.count("arena.slot_fallbacks")
    if _batch._FALLBACK_NOTES is None:
        return
    if latency == 0:
        reason = "senses within its own slot (latency 0) — windowing unsound"
    else:
        reason = "has no window-sensing interface"
    _batch._FALLBACK_NOTES.add(
        f"arena[{type(adversary).__name__}]", reason, 1
    )


def run_broadcast_adaptive(
    protocol,
    n: int,
    adversary=None,
    *,
    seed: int = 0,
    max_slots: int = 50_000_000,
    backend: str = "auto",
    window_cap: Optional[int] = None,
) -> BroadcastResult:
    """Run one execution on the arena runtime and return the result.

    ``adversary`` may be ``None``, any oblivious jammer, or any reactive
    jammer — the arena hosts all three behind one entry point, so a study
    can put oblivious and adaptive cells in the same table.  Reaching
    ``max_slots`` truncates the run (``completed`` False, overrun recorded
    in ``extras`` where the adapter keeps one) instead of raising, mirroring
    the batched engine's per-lane overrun handling.

    ``backend`` selects the execution path (see the module docstring):
    ``"auto"`` window-steps whenever that is sound, ``"slot"`` forces the
    per-slot oracle, ``"window"`` demands window stepping and raises when
    the adversary cannot be window-stepped (oblivious jammers and latency-0
    reactive jammers).  Either way ``extras["backend"]`` records the path
    actually taken.  ``window_cap`` overrides the windowed driver's
    speculative width ceiling (tests sweep it; leave ``None`` for the
    default).
    """
    if backend not in ("auto", "slot", "window"):
        raise ValueError(f"unknown arena backend {backend!r}")
    columns = lift_protocol(protocol, n, seed)
    reactive = adversary is not None and hasattr(adversary, "jam_slot")
    latency = getattr(adversary, "window_latency", None)
    windowable = columns.supports_windows and (
        adversary is None or (reactive and latency is not None and latency >= 1)
    )
    if backend == "window" and not windowable:
        raise ValueError(
            "backend='window' needs a window-capable adapter and either no "
            "adversary or a reactive jammer with window_latency >= 1"
        )
    if backend == "auto" and windowable:
        backend = "window"
    if backend == "window":
        from repro.arena.window import WINDOW_CAP, run_windowed

        result = run_windowed(
            [columns],
            [adversary],
            max_slots=max_slots,
            window_cap=WINDOW_CAP if window_cap is None else window_cap,
        )[0]
        result.extras["backend"] = "arena-window"
        return result
    if reactive and not windowable:
        _note_slot_fallback(adversary, latency)
    if adversary is not None:
        adversary.reset()
    net = ArenaNetwork(n, adversary, max_slots=max_slots)
    may_beacon = columns.emits_beacons
    clock = net.clock  # mirrors net.clock; a local int keeps the loop lean
    while not columns.done:
        if clock >= net.max_slots:
            net.overrun = True
            break
        channels, actions, has_listen, has_send = columns.begin_slot(clock)
        feedback = net.step(
            channels,
            actions,
            columns.current_channels(),
            may_beacon=may_beacon,
            has_listen=has_listen,
            has_send=has_send,
        )
        columns.end_slot(clock, feedback)
        clock += 1
    result = columns.result(net)
    result.extras["backend"] = "arena-slot"
    return result


def run_broadcast_windowed_batch(
    protocol,
    n: int,
    adversaries: Sequence[Optional[object]],
    seeds: Sequence[int],
    *,
    max_slots: int = 50_000_000,
) -> List[BroadcastResult]:
    """Window-step a lane batch of trials of one protocol in lockstep.

    The lane-batched arena entry behind
    :func:`repro.core.batch.run_broadcast_batch`: lane ``b`` runs
    ``(seed=seeds[b], adversary=adversaries[b])`` and is bit-identical to
    ``run_broadcast_adaptive(protocol, n, adversaries[b], seed=seeds[b])``
    — same trial seeds, same draws, same books — so batched campaigns match
    scalar ones byte for byte.  Every adversary must pass
    :func:`repro.arena.window.windowable_adversary` (callers route latency-0
    lanes to the slot path instead).
    """
    if len(adversaries) != len(seeds):
        raise ValueError("need one adversary entry per seed")
    from repro.arena.window import run_windowed

    columns = [lift_protocol(protocol, n, seed) for seed in seeds]
    results = run_windowed(columns, list(adversaries), max_slots=max_slots)
    for result in results:
        result.extras["backend"] = "arena-window"
    return results
