"""One-call adaptive execution: lift a protocol, run it, return a result.

:func:`run_broadcast_adaptive` is the arena's analogue of
:func:`repro.core.result.run_broadcast` — same signature shape, same
:class:`~repro.core.result.BroadcastResult` out — so trial batches, campaign
workers, stores and tables treat adaptive runs exactly like oblivious ones.
:func:`repro.core.result.run_broadcast` itself dispatches here whenever the
adversary is reactive, which is what carries the adversary-model axis
through ``run_trials`` / ``CampaignSpec`` / ``repro sweep`` end to end.
"""

from __future__ import annotations

from repro.arena.columns import (
    ColumnProtocol,
    DecayColumns,
    MultiCastAdvColumns,
    MultiCastCColumns,
    MultiCastColumns,
    MultiCastCoreColumns,
    NaiveColumns,
)
from repro.arena.network import ArenaNetwork
from repro.baselines.decay import DecayBroadcast
from repro.baselines.naive import NaiveEpidemic
from repro.core.limited import MultiCastC
from repro.core.multicast import MultiCast
from repro.core.multicast_adv import MultiCastAdv
from repro.core.multicast_core import MultiCastCore
from repro.core.result import BroadcastResult

__all__ = ["lift_protocol", "run_broadcast_adaptive", "supports_protocol"]

#: Adapter dispatch table, most-derived type first (``MultiCastC`` — which
#: also covers ``SingleChannelCompetitive`` — before ``MultiCast``).
_ADAPTERS = (
    (MultiCastCore, lambda proto, n, seed: MultiCastCoreColumns(proto, n, seed)),
    (MultiCastC, lambda proto, n, seed: MultiCastCColumns(proto, seed)),
    (MultiCast, lambda proto, n, seed: MultiCastColumns(proto, n, seed)),
    (MultiCastAdv, lambda proto, n, seed: MultiCastAdvColumns(proto, n, seed)),
    (DecayBroadcast, lambda proto, n, seed: DecayColumns(proto, seed)),
    (NaiveEpidemic, lambda proto, n, seed: NaiveColumns(proto, seed)),
)


def supports_protocol(protocol) -> bool:
    """True iff :func:`lift_protocol` has a column adapter for this object
    (lets callers pre-validate without paying for adapter construction)."""
    return isinstance(protocol, tuple(cls for cls, _ in _ADAPTERS))


def lift_protocol(protocol, n: int, seed: int) -> ColumnProtocol:
    """Build the arena column adapter for a standard protocol object.

    Anything unknown fails loudly: an arena run silently falling back to a
    different protocol would corrupt a study.
    """
    for cls, make in _ADAPTERS:
        if isinstance(protocol, cls):
            return make(protocol, n, seed)
    raise TypeError(
        f"no arena column adapter for {type(protocol).__name__}; "
        "see repro.arena.columns for the supported protocols"
    )


def run_broadcast_adaptive(
    protocol,
    n: int,
    adversary=None,
    *,
    seed: int = 0,
    max_slots: int = 50_000_000,
) -> BroadcastResult:
    """Run one execution on the arena runtime and return the result.

    ``adversary`` may be ``None``, any oblivious jammer, or any reactive
    jammer — the arena hosts all three behind one slot-stepped loop, so a
    study can put oblivious and adaptive cells in the same table.  Reaching
    ``max_slots`` truncates the run (``completed`` False, overrun recorded
    in ``extras`` where the adapter keeps one) instead of raising, mirroring
    the batched engine's per-lane overrun handling.
    """
    columns = lift_protocol(protocol, n, seed)
    if adversary is not None:
        adversary.reset()
    net = ArenaNetwork(n, adversary, max_slots=max_slots)
    may_beacon = columns.emits_beacons
    clock = net.clock  # mirrors net.clock; a local int keeps the loop lean
    while not columns.done:
        if clock >= net.max_slots:
            net.overrun = True
            break
        channels, actions, has_listen, has_send = columns.begin_slot(clock)
        feedback = net.step(
            channels,
            actions,
            columns.current_channels(),
            may_beacon=may_beacon,
            has_listen=has_listen,
            has_send=has_send,
        )
        columns.end_slot(clock, feedback)
        clock += 1
    return columns.result(net)
