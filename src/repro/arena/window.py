"""Block-stepped (windowed) arena driver: reactive runs at block-engine speed.

The slot-stepped arena pays one adversary query and one single-slot kernel
pass per slot because a reactive Eve *could* depend on the current slot.  A
latency-``L`` jammer (``L >= 1``) cannot: her view of slot ``t`` is the busy
mask of slot ``t - L``.  Two facts then make whole windows resolvable in one
batched pass, far beyond ``L`` slots at a time:

1. **Busy masks don't depend on jamming.**  ``busy[t]`` is derived from the
   nodes' channel/action columns alone; jamming corrupts *feedback*, never
   presence.  So for a window whose actions are fixed, every row's busy mask
   — and hence every jam target, via the committed-history ring for the
   first ``L`` rows and in-window rows after that — is known *before* Eve
   answers a single slot.
2. **Actions change rarely and detectably.**  Node actions are precomputed
   from status-independent draws (the ``PeriodDraws`` discipline) and only
   change at informing events (at most ``n - 1`` per run) and schedule
   boundaries adapters already clip windows to.  The driver therefore
   resolves a window *speculatively*, lets the adapter commit the prefix up
   to the first action-changing event (the event row's own feedback is
   final: it was computed from pre-event actions), rolls Eve's generator
   back to the window entry, replays her over exactly the committed prefix
   (identical targets, identical draws — see
   :meth:`~repro.adversary.reactive.ReactiveJammer.jam_window`), and
   re-windows from the event.  Draw-for-draw, the execution is the
   slot-stepped run — the differential suite
   (``tests/arena/test_window_equivalence.py``) asserts bit-identity.

On top of window stepping, the driver hosts a **trial-lane axis**: ``B``
independent trials of the same protocol stack their window rows lane-major
into one :func:`repro.sim.channel.resolve_block` call per pass (rows are
resolved independently, so lane stacking is exact), with per-lane books in
:class:`repro.arena.network.ArenaLanes` and finished lanes dropping out of
the live set.  ``B = 1`` is the single-trial windowed path behind
``run_broadcast_adaptive(backend="window")``.

See DESIGN.md section 11 for the soundness argument and the RNG rollback
discipline.
"""

from __future__ import annotations

import time
from collections import deque
from typing import List, Optional, Sequence

import numpy as np

from repro.arena.columns import ColumnProtocol
from repro.obs.recorder import active as _obs_active
from repro.arena.network import ArenaLanes
from repro.core.result import BroadcastResult
from repro.sim.channel import (
    ACT_LISTEN,
    ACT_SEND_MSG,
    DENSE_CELL_LIMIT,
    FB_MSG,
    FB_NOISE,
    FB_NONE,
    FB_SILENCE,
    _resolve_dense,
    resolve_block,
)

__all__ = ["WINDOW_CAP", "run_windowed", "windowable_adversary"]

#: Default ceiling on speculative window width (slots).  Windows are clipped
#: to schedule boundaries anyway; the cap bounds the per-pass working set and
#: the cost of a discarded suffix after an informing event.
WINDOW_CAP = 2048

#: Opening (and post-event) speculative width.  Informing events truncate the
#: window and discard the resolved suffix, so lanes probe with small windows
#: while events are dense (the spread phase) and double toward ``window_cap``
#: after every fully-committed pass.  Window size never affects results —
#: only how much speculative work an event throws away.
WINDOW_MIN = 64


def windowable_adversary(adversary) -> bool:
    """True when the windowed driver can host ``adversary``: no jamming at
    all, or a reactive jammer advertising sensing latency >= 1
    (:attr:`~repro.adversary.reactive.ReactiveJammer.window_latency`).
    Within-slot sensing (latency 0) and strategies without the window
    interface need the slot-stepped oracle."""
    if adversary is None:
        return True
    latency = getattr(adversary, "window_latency", None)
    return latency is not None and latency >= 1


def run_windowed(
    columns: Sequence[ColumnProtocol],
    adversaries: Sequence[Optional[object]],
    *,
    max_slots: int = 50_000_000,
    window_cap: int = WINDOW_CAP,
) -> List[BroadcastResult]:
    """Run ``B`` lanes window-stepped; lane ``b`` is bit-identical to the
    slot-stepped ``run_broadcast_adaptive(..., backend="slot")`` run of
    ``(columns[b], adversaries[b])``.

    ``columns`` are freshly-lifted adapters (one per lane, same protocol
    family and ``n``); ``adversaries`` entries are ``None`` or reactive
    jammers passing :func:`windowable_adversary` (they are ``reset()`` here,
    like the slot driver does via ``run_broadcast``'s contract).  Results
    carry the adapters' usual extras; the caller stamps ``extras["backend"]``.
    """
    B = len(columns)
    if len(adversaries) != B:
        raise ValueError("need one adversary entry per lane")
    if B == 0:
        return []
    if int(window_cap) < 1:
        raise ValueError("window_cap must be >= 1")
    n = columns[0].n
    for cols, adv in zip(columns, adversaries):
        if cols.n != n:
            raise ValueError("all lanes must share one population size")
        if not cols.supports_windows:
            raise ValueError(f"{type(cols).__name__} has no window interface")
        if not windowable_adversary(adv):
            raise ValueError(
                "adversary cannot be window-stepped (latency 0 or no window "
                "interface) — use the slot-stepped path"
            )
        if adv is not None:
            adv.reset()
    lanes = ArenaLanes(n, adversaries, max_slots=max_slots)
    latency = [0 if a is None else int(a.window_latency) for a in adversaries]
    # per-lane ring of the last L committed (C, busy_row) pairs — the
    # driver-side stand-in for the jammers' internal sensing history
    rings = [deque(maxlen=latency[b]) if latency[b] else None for b in range(B)]
    cap = int(window_cap)
    want = [min(WINDOW_MIN, cap)] * B  # adaptive per-lane speculative width
    any_beacons = any(cols.emits_beacons for cols in columns)
    live = list(range(B))
    tel = _obs_active()
    while live:
        # -- propose one window per live lane --------------------------------
        entries = []
        for b in live:
            cols = columns[b]
            clock = lanes.clock(b)
            limit = min(want[b], max_slots - clock)
            if limit <= 0:
                lanes.overrun[b] = True
                continue
            ch, act = cols.begin_window(clock, limit)
            entries.append((b, clock, cols.current_channels(), ch, act))
        if not entries:
            break
        # -- one lane-stacked kernel pass ------------------------------------
        if tel is not None:
            t0 = time.perf_counter()
        widths = [e[4].shape[0] for e in entries]
        rows = sum(widths)
        C_max = max(e[2] for e in entries)
        if len(entries) == 1:  # single live lane: serve the adapter's views
            channels, actions = entries[0][3], entries[0][4]
        else:
            channels = np.concatenate([e[3] for e in entries], axis=0)
            actions = np.concatenate([e[4] for e in entries], axis=0)
        busy = np.zeros((rows, C_max), dtype=bool)
        part_r, part_u = np.nonzero(actions)  # one scan for both classes
        acts = actions[part_r, part_u]
        sending = acts >= ACT_SEND_MSG
        send_r, send_u = part_r[sending], part_u[sending]
        listening = acts == ACT_LISTEN
        listen_r, listen_u = part_r[listening], part_u[listening]
        ch_send = channels[send_r, send_u]
        busy[send_r, ch_send] = True
        jam = np.zeros((rows, C_max), dtype=bool)
        specs = []  # per-entry (checkpoint, targets, valid) for rollback
        off = 0
        for i, (b, clock, C, ch, act) in enumerate(entries):
            W = widths[i]
            adv = adversaries[b]
            if adv is None:
                specs.append(None)
            else:
                L = latency[b]
                targets = np.zeros((W, C), dtype=bool)
                valid = np.zeros(W, dtype=bool)
                if W > L:
                    # in-window sensing: busy is jam-independent, so rows
                    # L.. see final masks even before Eve answers
                    targets[L:] = busy[off:off + W - L, :C]
                    valid[L:] = True
                ring = rings[b]
                m = len(ring)
                for t in range(min(L, W)):
                    idx = t - L + m  # ring[i] is busy at clock - m + i
                    if idx >= 0:
                        hist_C, hist_row = ring[idx]
                        if hist_C == C:
                            targets[t, :] = hist_row
                            valid[t] = True
                    # idx < 0: warm-up — the per-slot path jams nothing there
                ckpt = adv.checkpoint()
                jam[off:off + W, :C] = adv.jam_window(clock, targets, valid)
                specs.append((ckpt, targets, valid))
                if tel is not None:
                    tel.count("window.adv_queries")
            off += W
        if not any_beacons:
            # inline no-beacon resolution (same rules as _resolve_dense with
            # an empty beacon class), reusing the sender gather from the busy
            # scatter: all grid work is (rows, C), never (rows, n)
            counts = np.bincount(
                send_r * C_max + ch_send, minlength=rows * C_max
            ).reshape(rows, C_max)
            grid = np.full((rows, C_max), FB_SILENCE, dtype=np.int8)
            grid[counts == 1] = FB_MSG
            grid[jam | (counts >= 2)] = FB_NOISE
            feedback = np.full((rows, n), FB_NONE, dtype=np.int8)
            feedback[listen_r, listen_u] = grid[
                listen_r, channels[listen_r, listen_u]
            ]
        elif rows * C_max <= DENSE_CELL_LIMIT:
            # jam is already the dense (rows, C) mask resolve_block would
            # rebuild; skip its JamBlock round-trip and validation
            feedback = _resolve_dense(channels, actions, jam)
        else:
            feedback = resolve_block(channels, actions, jam)
        if tel is not None:
            tel.add_time("window.kernel_s", time.perf_counter() - t0)
            tel.count("window.passes")
            tel.observe("window.occupancy", len(entries))
        # -- commit per-lane prefixes ----------------------------------------
        next_live = []
        off = 0
        for i, (b, clock, C, ch, act) in enumerate(entries):
            W = widths[i]
            cols = columns[b]
            A = cols.absorb_window(clock, feedback[off:off + W])
            want[b] = min(want[b] * 2, cap) if A == W else min(WINDOW_MIN, cap)
            adv = adversaries[b]
            if tel is not None:
                tel.observe("window.proposed", W)
                tel.observe("window.committed", A)
                tel.count("window.slots_proposed", W)
                tel.count("window.slots_committed", A)
                if A < W:
                    tel.count("window.truncations")
            if adv is not None and A < W:
                # an event truncated the window: rewind Eve and replay her
                # over exactly the committed prefix (identical targets →
                # identical draws → identical masks and spend)
                ckpt, targets, valid = specs[i]
                adv.restore(ckpt)
                adv.jam_window(clock, targets[:A], valid[:A])
                if tel is not None:
                    tel.count("window.rollbacks")
                    tel.count("window.adv_queries")
                    tel.count("window.replayed_slots", A)
            lo = np.searchsorted(listen_r, off)
            hi = np.searchsorted(listen_r, off + A)
            listen_counts = np.bincount(listen_u[lo:hi], minlength=n)
            lo = np.searchsorted(send_r, off)
            hi = np.searchsorted(send_r, off + A)
            send_counts = np.bincount(send_u[lo:hi], minlength=n)
            lanes.commit(
                b,
                listen_counts,
                send_counts,
                int(jam[off:off + A].sum()),
                A,
            )
            ring = rings[b]
            if ring is not None:
                lane_busy = busy[off:off + W, :C]
                for t in range(max(0, A - latency[b]), A):
                    ring.append((C, lane_busy[t].copy()))
            off += W
            if not cols.done:
                next_live.append(b)
        live = next_live
    return [columns[b].result(lanes.view(b)) for b in range(B)]
