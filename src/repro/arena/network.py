"""The adaptive-adversary arena runtime: vectorized, slot-stepped.

The block engine (:mod:`repro.sim.engine`) enforces obliviousness by
construction — Eve only ever sees ``(start_slot, K, C)`` — so adaptive
jammers *cannot* be expressed on it.  The scalar runtime
(:class:`repro.sim.node.ScalarNetwork`) can host them, but it advances one
Python object per node per slot and is far too slow to sweep.

:class:`ArenaNetwork` is the middle path: time still advances one slot at a
time (the granularity adaptivity needs), but the whole node population moves
as numpy *columns* — one ``(n,)`` channel vector and one ``(n,)`` action
vector per slot, resolved by a dedicated single-slot kernel.  The step is
semantically identical to :meth:`ScalarNetwork.step <repro.sim.node.ScalarNetwork.step>`:
same adversary query order (reactive jammers see only the busy-channel mask
of the current slot; oblivious jammers are asked block-by-block for one
slot), same energy books, same feedback rules.  Protocol state lives in a
:class:`repro.arena.columns.ColumnProtocol`, whose randomness follows the
chunked per-node draw discipline of :class:`repro.core.reference.PeriodDraws`
— which is why arena runs are bit-identical to the scalar oracles (the arena
parity suite asserts exactly that).

What Eve can and cannot see here: the sensing interface is the boolean
busy-channel mask of the current slot (``busy[c]`` iff >= 1 transmission on
channel ``c``) — the standard reactive-jammer model of Richa et al.  She
never sees node identities, payloads, statuses, or coins.  Budget rules are
unchanged: one unit per jammed channel-slot, enforced by the same ledger.

See DESIGN.md section 7 for where this runtime sits in the architecture and
``benchmarks/bench_arena.py`` for the speedup over the scalar loop.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sim.channel import (
    ACT_LISTEN,
    ACT_SEND_BEACON,
    ACT_SEND_MSG,
    FB_BEACON,
    FB_MSG,
    FB_NOISE,
    FB_NONE,
    FB_SILENCE,
)
from repro.sim.jam import JamBlock
from repro.sim.metrics import EnergyLedger

__all__ = ["ArenaLanes", "ArenaNetwork", "resolve_columns"]


def resolve_columns(
    channels: np.ndarray,
    actions: np.ndarray,
    jam: Optional[np.ndarray],
    num_channels: int,
) -> np.ndarray:
    """Single-slot column resolution: the arena's inner kernel.

    Same model semantics as :func:`repro.sim.channel.resolve_slot` (one
    bincount per payload over the ``(C,)`` outcome grid instead of the block
    kernel's ``(K, C)`` machinery — cross-checked by tests), but built for
    the per-slot hot loop: no JamBlock coercion, no 2-D temporaries, and
    ``jam=None`` short-circuits the no-adversary case.  ``channels`` entries
    of idle nodes are never read, so stale values are harmless.
    """
    feedback = np.full(actions.shape, FB_NONE, dtype=np.int8)
    listen = actions == ACT_LISTEN
    if not listen.any():
        return feedback
    C = int(num_channels)
    send_msg = actions == ACT_SEND_MSG
    send_beacon = actions == ACT_SEND_BEACON
    grid = np.full(C, FB_SILENCE, dtype=np.int8)
    any_msg = send_msg.any()
    any_beacon = send_beacon.any()
    if any_msg or any_beacon:
        msg_counts = (
            np.bincount(channels[send_msg], minlength=C)
            if any_msg
            else np.zeros(C, dtype=np.int64)
        )
        if any_beacon:
            beacon_counts = np.bincount(channels[send_beacon], minlength=C)
            total = msg_counts + beacon_counts
            grid[(total == 1) & (beacon_counts == 1)] = FB_BEACON
        else:
            total = msg_counts
        grid[(total == 1) & (msg_counts == 1)] = FB_MSG
        noisy = total >= 2
        if jam is not None:
            noisy |= jam
        grid[noisy] = FB_NOISE
    elif jam is not None:
        grid[jam] = FB_NOISE
    feedback[listen] = grid[channels[listen]]
    return feedback


class ArenaNetwork:
    """Slot-stepped network whose per-slot state is numpy columns.

    Parameters mirror :class:`repro.sim.node.ScalarNetwork`: ``adversary``
    may be ``None``, any oblivious jammer (block API, queried one slot at a
    time), or any reactive jammer (``jam_slot`` API — sensing the current
    slot's busy mask).  Energy books are a plain
    :class:`repro.sim.metrics.EnergyLedger`, identical to the scalar
    runtime's.

    Like :meth:`ScalarNetwork.run <repro.sim.node.ScalarNetwork.run>`, a run
    that reaches ``max_slots`` with the protocol still active is truncated,
    never silent: drivers set :attr:`overrun` and report the result as not
    completed (the scalar/batched engines' overrun contract).
    """

    def __init__(
        self,
        n: int,
        adversary=None,
        *,
        max_slots: int = 50_000_000,
    ):
        if n < 2:
            raise ValueError("broadcast needs at least two nodes")
        self.n = int(n)
        self.adversary = adversary
        self.energy = EnergyLedger(self.n)
        self.max_slots = int(max_slots)
        #: True once a driver stopped the run at ``max_slots`` with the
        #: protocol still active (see class docstring).
        self.overrun = False
        self._reactive = adversary is not None and hasattr(adversary, "jam_slot")
        # per-slot scratch, reused across steps (the hot loop runs tens of
        # thousands of slots; two fresh allocations per slot are measurable)
        self._fb = np.empty(self.n, dtype=np.int8)
        self._grid = np.empty(0, dtype=np.int8)

    @property
    def clock(self) -> int:
        """Index of the next slot to be simulated."""
        return self.energy.slots

    def step(
        self,
        channels: np.ndarray,
        actions: np.ndarray,
        num_channels: int,
        *,
        may_beacon: bool = True,
        has_listen: Optional[bool] = None,
        has_send: Optional[bool] = None,
    ) -> Optional[np.ndarray]:
        """Simulate one slot from column vectors; return per-node feedback.

        ``channels``/``actions`` are ``(n,)`` columns (channel entries of
        idle nodes are ignored).  The adversary query order and the energy
        charges are exactly :meth:`repro.sim.node.ScalarNetwork.step`'s;
        the outcome rules are :func:`resolve_columns`'s (cross-checked by
        tests).  Hot-loop concessions: the return value is ``None`` when no
        node listened (every entry would be ``FB_NONE``); the returned
        array is a reused scratch buffer — consume it before the next step;
        ``may_beacon=False`` lets beacon-free protocols skip the payload
        split; and ``has_listen``/``has_send`` let adapters that already
        know their action columns (they precompute whole chunks) spare the
        per-slot reductions.  The hints may err on the side of True — a
        spurious True only costs time — but a False must be exact.
        """
        C = int(num_channels)
        listen = actions == ACT_LISTEN
        sending = actions >= ACT_SEND_MSG  # catches both payload codes (2, 3)
        if has_send is None:
            has_send = bool(sending.any())
        if self.adversary is None:
            jam = None
        elif self._reactive:
            busy = np.zeros(C, dtype=bool)
            if has_send:
                busy[channels[sending]] = True
            before = self.adversary.spent
            jam = np.asarray(self.adversary.jam_slot(self.clock, busy), dtype=bool)
            # the reactive base enforces the budget exactly, so its own spend
            # delta equals jam.sum() without a second reduction
            self.energy.charge_adversary(self.adversary.spent - before)
        else:
            block = JamBlock.coerce(self.adversary.jam_block(self.clock, 1, C))
            jam = block.to_dense()[0]
            self.energy.charge_adversary(int(jam.sum()))
        self.energy.charge_nodes(listen, sending)
        self.energy.advance(1)
        if has_listen is None:
            has_listen = bool(listen.any())
        if not has_listen:
            return None
        feedback = self._fb
        feedback.fill(FB_NONE)
        if not has_send and jam is None:
            feedback[listen] = FB_SILENCE
            return feedback
        if self._grid.shape[0] != C:
            self._grid = np.zeros(C, dtype=np.int8)
        else:
            self._grid.fill(FB_SILENCE)
        grid = self._grid
        if has_send:
            sender_channels = channels[sending]
            if may_beacon:
                beacon = actions[sending] == ACT_SEND_BEACON
                if beacon.any():
                    msg_counts = np.bincount(sender_channels[~beacon], minlength=C)
                    beacon_counts = np.bincount(sender_channels[beacon], minlength=C)
                    total = msg_counts + beacon_counts
                    grid[(total == 1) & (beacon_counts == 1)] = FB_BEACON
                    grid[(total == 1) & (msg_counts == 1)] = FB_MSG
                else:
                    total = np.bincount(sender_channels, minlength=C)
                    grid[total == 1] = FB_MSG
            else:
                total = np.bincount(sender_channels, minlength=C)
                grid[total == 1] = FB_MSG
            noisy = total >= 2
            if jam is not None:
                noisy |= jam
            grid[noisy] = FB_NOISE
        else:
            grid[jam] = FB_NOISE
        feedback[listen] = grid[channels[listen]]
        return feedback

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArenaNetwork(n={self.n}, clock={self.clock}, adversary={self.adversary!r})"


class _LaneNet:
    """One lane's network-shaped facade over :class:`ArenaLanes` books.

    Exposes exactly the surface :meth:`ColumnProtocol.result
    <repro.arena.columns.ColumnProtocol.result>` reads from
    :class:`ArenaNetwork` — ``clock``, ``overrun`` and the lane's
    :class:`~repro.sim.metrics.EnergyLedger` — so adapters assemble lane
    results without knowing they ran batched."""

    __slots__ = ("n", "energy", "_lanes", "_lane")

    def __init__(self, lanes: "ArenaLanes", lane: int):
        self.n = lanes.n
        self.energy = lanes.energy[lane]
        self._lanes = lanes
        self._lane = lane

    @property
    def clock(self) -> int:
        return self.energy.slots

    @property
    def overrun(self) -> bool:
        return bool(self._lanes.overrun[self._lane])


class ArenaLanes:
    """Trial-lane axis for the arena: ``B`` concurrent single-trial runs.

    Mirrors :class:`repro.sim.engine.BatchNetwork`'s lane bookkeeping in
    arena terms — per-lane adversary, per-lane
    :class:`~repro.sim.metrics.EnergyLedger` (so lane books are bit-identical
    to ``B`` independent :class:`ArenaNetwork` runs), per-lane clock and
    overrun flag, with finished lanes simply dropping out of the driver's
    live set.  The windowed driver (:mod:`repro.arena.window`) stacks all
    live lanes' window rows into one :func:`repro.sim.channel.resolve_block`
    call per pass; this class only keeps the books."""

    def __init__(self, n: int, adversaries, *, max_slots: int = 50_000_000):
        if n < 2:
            raise ValueError("broadcast needs at least two nodes")
        self.n = int(n)
        self.adversaries = list(adversaries)
        self.B = len(self.adversaries)
        if self.B == 0:
            raise ValueError("need at least one lane")
        self.max_slots = int(max_slots)
        self.energy = [EnergyLedger(self.n) for _ in range(self.B)]
        self.overrun = np.zeros(self.B, dtype=bool)

    def clock(self, lane: int) -> int:
        """Index of the lane's next unsimulated slot."""
        return self.energy[lane].slots

    def commit(
        self,
        lane: int,
        listen_counts: np.ndarray,
        send_counts: np.ndarray,
        jam_spend: int,
        slots: int,
    ) -> None:
        """Charge one lane's books for a committed window prefix."""
        ledger = self.energy[lane]
        ledger.charge_adversary(jam_spend)
        ledger.charge_nodes(listen_counts, send_counts)
        ledger.advance(slots)

    def view(self, lane: int) -> _LaneNet:
        """The lane's network facade for :meth:`ColumnProtocol.result`."""
        return _LaneNet(self, lane)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        clocks = [ledger.slots for ledger in self.energy]
        return f"ArenaLanes(n={self.n}, B={self.B}, clocks={clocks})"
