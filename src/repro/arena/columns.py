"""Column adapters: protocols lifted into the arena runtime.

Two families, two randomness oracles, one interface:

* **Reference-stream adapters** (``MultiCastCoreColumns``,
  ``MultiCastColumns``, ``MultiCastAdvColumns``) vectorize the paper's
  Figs. 1/2/4 exactly as the scalar oracles of :mod:`repro.core.reference`
  play them: one generator per node (``fabric.generator("node", u)``).  The
  Figs. 1/2 adapters consume it through the chunked period-draw discipline
  of :class:`repro.core.reference.PeriodDraws` (same chunk grid,
  channel-chunk then coin-chunk per node); the Fig. 4 adapter mirrors that
  node's original per-slot draws.  Arena runs are therefore
  **bit-identical** to :class:`repro.sim.node.ScalarNetwork` driving the
  reference nodes — the parity suite (``tests/arena/test_parity.py``)
  asserts equality of feedback-derived state, energy books and halt slots,
  oblivious and reactive jammers alike.

* **Engine-stream adapters** (``DecayColumns``, ``NaiveColumns``,
  ``MultiCastCColumns`` — the latter also serving ``SingleChannelCompetitive``)
  lift the baselines, which have no scalar oracle.  Their oracle is the
  block engine itself: they draw from the single ``generator("nodes")``
  stream in exactly the block sizes :func:`repro.core.result.run_broadcast`
  uses, so on jam-free runs (and under deterministic oblivious jammers) they
  reproduce the block engine's results bit for bit, while additionally
  accepting reactive jammers the block path cannot express.

``MultiCastCColumns`` steps the Fig. 5 round simulation at *physical* slot
granularity — each virtual slot is a round of ``S = n/(2C)`` physical
sub-slots, and a reactive Eve senses and jams individual physical slots,
which is precisely the capability the oblivious fold-based path cannot
model.

All adapters end in a standard :class:`repro.core.result.BroadcastResult`
(via :meth:`ColumnProtocol.result`), so analysis, stores and tables treat
adaptive runs exactly like oblivious ones.  See DESIGN.md section 7.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Tuple

import numpy as np

from repro.baselines.decay import DecayBroadcast
from repro.baselines.naive import NaiveEpidemic
from repro.core.limited import MultiCastC
from repro.core.multicast import MultiCast
from repro.core.multicast_adv import (
    MultiCastAdv,
    STATUS_HALT,
    STATUS_HELPER,
    STATUS_IN,
    STATUS_UN,
)
from repro.core.multicast_core import MultiCastCore
from repro.core.reference import DRAW_CHUNK
from repro.core.result import BroadcastResult
from repro.sim.channel import (
    ACT_LISTEN,
    ACT_SEND_BEACON,
    ACT_SEND_MSG,
    FB_BEACON,
    FB_MSG,
    FB_NOISE,
    FB_SILENCE,
)
from repro.sim.rng import RandomFabric

__all__ = [
    "ColumnProtocol",
    "MultiCastCoreColumns",
    "MultiCastColumns",
    "MultiCastAdvColumns",
    "DecayColumns",
    "NaiveColumns",
    "MultiCastCColumns",
]


class ColumnProtocol(ABC):
    """Vectorized whole-population protocol state for the arena runtime.

    The driver loop (:func:`repro.arena.run.run_broadcast_adaptive`) calls
    :meth:`begin_slot` / :meth:`end_slot` once per slot and stops when
    :attr:`done`; :meth:`result` assembles the standard
    :class:`~repro.core.result.BroadcastResult`.

    Hot-loop contract with :meth:`ArenaNetwork.step
    <repro.arena.network.ArenaNetwork.step>`: ``end_slot`` may receive
    ``None`` instead of a feedback column when nobody listened (all
    ``FB_NONE``), and a non-``None`` column is a scratch buffer only valid
    until the next step.  Adapters precompute chunk-sized *action matrices*
    and re-derive only the affected rows when a status changes (the same
    draws-are-status-independent property :func:`repro.core.runner.spread_block`
    exploits), so ``begin_slot`` is just two column slices.
    """

    n: int
    #: False lets the network kernel skip the beacon/message payload split
    #: (only Fig. 4's step II ever sends beacons).
    emits_beacons = True

    @abstractmethod
    def current_channels(self) -> int:
        """Channel count of the current slot (phase-dependent for Fig. 4)."""

    @abstractmethod
    def begin_slot(self, slot: int) -> Tuple[np.ndarray, np.ndarray, bool, bool]:
        """Return ``(channels, actions, has_listen, has_send)`` for this slot.

        The two booleans are the presence hints :meth:`ArenaNetwork.step
        <repro.arena.network.ArenaNetwork.step>` accepts — adapters read
        them off per-chunk column summaries instead of re-reducing the
        action column every slot.  They may be conservatively True (after a
        status change the summaries are only widened), never falsely False;
        ``None`` defers the reduction to the kernel (used by the Fig. 4
        adapter, which has no precomputed chunks).
        """

    @abstractmethod
    def end_slot(self, slot: int, feedback: np.ndarray) -> None:
        """Absorb the slot's ``(n,)`` feedback column."""

    @property
    @abstractmethod
    def done(self) -> bool:
        """True once the protocol has terminated (or hit its own caps)."""

    @abstractmethod
    def result(self, net) -> BroadcastResult:
        """Assemble the final result from protocol state and ``net``'s books."""


# -- reference-stream adapters (Figs. 1/2) ----------------------------------------


class _SharedCoinColumns(ColumnProtocol):
    """Common machinery of the Figs. 1/2 adapters: per-node streams, integer
    coins (1 = listen; 2 = broadcast if informed), iteration-boundary halting
    on a noisy-slot threshold.  Subclasses define the iteration schedule."""

    emits_beacons = False

    def __init__(self, n: int, seed: int, *, max_periods: Optional[int] = None):
        if n < 4:
            raise ValueError("need n >= 4 (n/2 >= 2 channels)")
        self.n = int(n)
        fabric = RandomFabric(seed)
        self.rngs = [fabric.generator("node", u) for u in range(self.n)]
        self.informed = np.zeros(self.n, dtype=bool)
        self.informed[0] = True
        self.halted = np.zeros(self.n, dtype=bool)
        self.informed_slot = np.full(self.n, -1, dtype=np.int64)
        self.informed_slot[0] = 0
        self.halt_slot = np.full(self.n, -1, dtype=np.int64)
        self.noisy = np.zeros(self.n, dtype=np.int64)
        self.t = 0  # slot within the iteration
        self.periods = 0
        self.max_periods = max_periods
        self.capped = False
        self._done = False
        self._start_period()

    # -- subclass hooks ---------------------------------------------------------
    @abstractmethod
    def _period_params(self) -> Tuple[int, int, float]:
        """Return the current iteration's ``(R, coin_high, halt_threshold)``."""

    def _advance_period(self) -> None:
        """Move the schedule to the next iteration (no-op for Fig. 1)."""

    # -- chunked per-node draws (the PeriodDraws contract) ----------------------
    def _start_period(self) -> None:
        self.R, self.coin_high, self.threshold = self._period_params()
        self._chunk_base = 0
        self._local = 0
        self._load_chunk()

    def _load_chunk(self) -> None:
        k = min(DRAW_CHUNK, self.R - self._chunk_base)
        C = self.n // 2
        self._ch = np.zeros((self.n, k), dtype=np.int64)
        self._coin = np.zeros((self.n, k), dtype=np.int64)
        for u in np.nonzero(~self.halted)[0]:
            rng = self.rngs[u]
            self._ch[u] = rng.integers(0, C, size=k)
            self._coin[u] = rng.integers(1, self.coin_high + 1, size=k)
        # Halted nodes keep all-zero coin rows, which map to idle below —
        # no per-slot liveness mask needed.
        act = np.zeros(self._coin.shape, dtype=np.int8)
        act[self._coin == 1] = ACT_LISTEN
        act[(self._coin == 2) & self.informed[:, None]] = ACT_SEND_MSG
        self._act = act
        self._listen_cols = (act == ACT_LISTEN).any(axis=0)
        self._send_cols = (act == ACT_SEND_MSG).any(axis=0)

    def current_channels(self) -> int:
        return self.n // 2

    def begin_slot(self, slot: int) -> Tuple[np.ndarray, np.ndarray, bool, bool]:
        if self._local == self._ch.shape[1]:
            self._chunk_base += self._ch.shape[1]
            self._local = 0
            self._load_chunk()
        local = self._local
        return (
            self._ch[:, local],
            self._act[:, local],
            bool(self._listen_cols[local]),
            bool(self._send_cols[local]),
        )

    def end_slot(self, slot: int, feedback: Optional[np.ndarray]) -> None:
        if feedback is not None:
            hear = (feedback == FB_MSG) & ~self.informed
            if hear.any():
                self.informed |= hear
                self.informed_slot[hear] = slot
                lo = self._local + 1
                if lo < self._coin.shape[1]:
                    for u in np.nonzero(hear)[0]:
                        tail = self._act[u, lo:]
                        hits = self._coin[u, lo:] == 2
                        tail[hits] = ACT_SEND_MSG
                        self._send_cols[lo:] |= hits
            self.noisy += feedback == FB_NOISE
        self._local += 1
        self.t += 1
        if self.t == self.R:  # end of iteration
            halt_now = ~self.halted & (self.noisy < self.threshold)
            self.halted |= halt_now
            self.halt_slot[halt_now] = slot + 1
            self.noisy[:] = 0
            self.t = 0
            self.periods += 1
            self._advance_period()
            if self.max_periods is not None and self.periods >= self.max_periods:
                self.capped = True
            if self.capped or self.halted.all():
                self._done = True
            else:
                self._start_period()

    @property
    def done(self) -> bool:
        return self._done

    def result(self, net) -> BroadcastResult:
        return BroadcastResult(
            protocol=self.name,
            n=self.n,
            slots=net.clock,
            completed=bool(self.halted.all()) and not self.capped,
            informed_slot=self.informed_slot.copy(),
            halt_slot=self.halt_slot.copy(),
            node_energy=net.energy.node_cost.copy(),
            adversary_spend=net.energy.adversary_spend,
            halted_uninformed=int((self.halted & (self.informed_slot < 0)).sum()),
            periods=self.periods,
            extras={"arena_runtime": True, "overrun": net.overrun},
        )


class MultiCastCoreColumns(_SharedCoinColumns):
    """Fig. 1 lifted into the arena: identical iterations of ``R`` slots,
    coin range 64, halt threshold R/128 — bit-identical to
    :class:`repro.core.reference.ScalarMultiCastCoreNode` populations."""

    def __init__(self, proto: MultiCastCore, n: int, seed: int):
        if n != proto.n:
            raise ValueError(f"protocol built for n={proto.n}, arena asked for n={n}")
        self._R = proto.iteration_slots
        self.name = proto.name + "[arena]"
        super().__init__(n, seed, max_periods=proto.max_iterations)

    def _period_params(self):
        return self._R, 64, self._R / 128


class MultiCastColumns(_SharedCoinColumns):
    """Fig. 2 lifted into the arena: growing iterations R_i, coin range 2^i,
    halt threshold R_i/2^{i+1} — bit-identical to
    :class:`repro.core.reference.ScalarMultiCastNode` populations."""

    def __init__(self, proto: MultiCast, n: int, seed: int):
        if n != proto.n:
            raise ValueError(f"protocol built for n={proto.n}, arena asked for n={n}")
        self.proto = proto
        self.i = proto.start_iteration
        self.name = proto.name + "[arena]"
        super().__init__(n, seed, max_periods=proto.max_iterations)

    def _period_params(self):
        R = self.proto.iteration_length(self.i)
        return R, 2**self.i, R / 2 ** (self.i + 1)

    def _advance_period(self):
        self.i += 1


# -- reference-stream adapter (Fig. 4) --------------------------------------------


class MultiCastAdvColumns(ColumnProtocol):
    """Fig. 4/6 lifted into the arena — bit-identical to
    :class:`repro.core.reference.ScalarMultiCastAdvNode` populations.

    The epoch/phase/step timetable is deterministic and shared by all nodes,
    so it is tracked once; statuses, the four counters and the (î, ĵ)
    helper records are ``(n,)`` columns.  Randomness mirrors the scalar
    node's original *per-slot* draw order (channel then coin, per node) —
    the committed w.h.p. tests pin that node's behaviour per seed, so this
    adapter pays a per-node Python loop each slot rather than move the node
    to the chunked discipline.  Phase channel counts reach 2^j and the runs
    are minutes-per-trial regardless — keep ``MultiCastAdv`` out of default
    arena grids (DESIGN.md 7).
    """

    def __init__(self, proto: MultiCastAdv, n: int, seed: int):
        self.proto = proto
        self.n = int(n)
        fabric = RandomFabric(seed)
        self.rngs = [fabric.generator("node", u) for u in range(self.n)]
        self.status = np.full(self.n, STATUS_UN, dtype=np.int8)
        self.status[0] = STATUS_IN
        self.informed_slot = np.full(self.n, -1, dtype=np.int64)
        self.informed_slot[0] = 0
        self.halt_slot = np.full(self.n, -1, dtype=np.int64)
        self.i_hat = np.full(self.n, -1, dtype=np.int64)
        self.j_hat = np.full(self.n, -1, dtype=np.int64)
        self.n_m = np.zeros(self.n, dtype=np.int64)
        self.n_mb = np.zeros(self.n, dtype=np.int64)
        self.n_n = np.zeros(self.n, dtype=np.int64)
        self.n_s = np.zeros(self.n, dtype=np.int64)
        self.i = proto.first_epoch
        self.phase_seq = list(proto.phases_of_epoch(self.i))
        self.phase_idx = 0
        self.step = 1
        self.t = 0
        self.epochs_run = 0
        self.capped = False
        self._done = False
        self.name = proto.name + "[arena]"
        self._start_step()

    @property
    def j(self) -> int:
        return self.phase_seq[self.phase_idx]

    def _start_step(self) -> None:
        self.R = self.proto.phase_length(self.i, self.j)
        self.p = self.proto.participation_prob(self.i, self.j)
        self.C = self.proto.phase_channels(self.j)

    def current_channels(self) -> int:
        return self.C

    def begin_slot(self, slot: int) -> Tuple[np.ndarray, np.ndarray, Optional[bool], Optional[bool]]:
        n = self.n
        ch = np.zeros(n, dtype=np.int64)
        # halted nodes keep coin 2.0, above every action threshold (p <= 1/2)
        coin = np.full(n, 2.0, dtype=np.float64)
        C = self.C
        status = self.status
        for u in range(n):
            if status[u] != STATUS_HALT:
                rng = self.rngs[u]
                ch[u] = rng.integers(0, C)
                coin[u] = rng.random()
        un = status == STATUS_UN
        actions = np.zeros(n, dtype=np.int8)
        p = self.p
        if self.step == 1:
            hit = coin < p
            actions[hit & un] = ACT_LISTEN
            actions[hit & ~un] = ACT_SEND_MSG
        else:
            actions[coin < p] = ACT_LISTEN
            send = (coin >= p) & (coin < 2 * p)
            actions[send & un] = ACT_SEND_BEACON
            actions[send & ~un] = ACT_SEND_MSG
        return ch, actions, None, None

    def end_slot(self, slot: int, feedback: Optional[np.ndarray]) -> None:
        if feedback is None:
            self._advance_timetable(slot)
            return
        if self.step == 1:
            promote = (feedback == FB_MSG) & (self.status == STATUS_UN)
            if promote.any():
                self.status[promote] = STATUS_IN
                self.informed_slot[promote] = slot
        else:
            self.n_m += feedback == FB_MSG
            self.n_mb += (feedback == FB_MSG) | (feedback == FB_BEACON)
            self.n_n += feedback == FB_NOISE
            self.n_s += feedback == FB_SILENCE
        self._advance_timetable(slot)

    def _advance_timetable(self, slot: int) -> None:
        self.t += 1
        if self.t < self.R:
            return
        self.t = 0
        if self.step == 1:
            self.step = 2
            self.n_m[:] = 0
            self.n_mb[:] = 0
            self.n_n[:] = 0
            self.n_s[:] = 0
            return
        # end of step two: the three checks, in pseudocode order
        proto = self.proto
        active = self.status != STATUS_HALT
        rp = self.R * self.p
        rp2 = self.R * self.p * self.p
        promote = active & (self.status == STATUS_UN) & (self.n_m >= 1)
        self.status[promote] = STATUS_IN
        self.informed_slot[promote] = slot + 1
        helper_cond = (
            active
            & (self.status == STATUS_IN)
            & (self.n_m >= proto.HELPER_MSG_FACTOR * rp2)
            & (self.n_s >= proto.HELPER_SILENCE_FACTOR * rp)
        )
        if not (proto.max_phase is not None and self.j == proto.max_phase):
            helper_cond &= self.n_mb <= proto.HELPER_BEACON_CEIL * rp2
        self.status[helper_cond] = STATUS_HELPER
        self.i_hat[helper_cond] = self.i
        self.j_hat[helper_cond] = self.j
        halt_cond = (
            active
            & (self.status == STATUS_HELPER)
            & (self.i - self.i_hat >= proto.helper_wait)
            & (self.j_hat == self.j)
            & (self.n_n <= rp / proto.halt_noise_divisor)
        )
        self.status[halt_cond] = STATUS_HALT
        self.halt_slot[halt_cond] = slot + 1
        # move to the next phase / epoch
        self.step = 1
        self.phase_idx += 1
        if self.phase_idx >= len(self.phase_seq):
            self.i += 1
            self.epochs_run += 1
            self.phase_seq = list(self.proto.phases_of_epoch(self.i))
            self.phase_idx = 0
            if self.proto.max_epochs is not None and self.epochs_run >= self.proto.max_epochs:
                self.capped = True
        if self.capped or (self.status == STATUS_HALT).all():
            self._done = True
        else:
            self._start_step()

    @property
    def done(self) -> bool:
        return self._done

    def result(self, net) -> BroadcastResult:
        halted = self.status == STATUS_HALT
        return BroadcastResult(
            protocol=self.name,
            n=self.n,
            slots=net.clock,
            completed=bool(halted.all()) and not self.capped,
            informed_slot=self.informed_slot.copy(),
            halt_slot=self.halt_slot.copy(),
            node_energy=net.energy.node_cost.copy(),
            adversary_spend=net.energy.adversary_spend,
            halted_uninformed=int((halted & (self.informed_slot < 0)).sum()),
            periods=self.i - self.proto.first_epoch,
            extras={
                "arena_runtime": True,
                "overrun": net.overrun,
                "final_status": self.status.copy(),
            },
        )


# -- engine-stream adapters (the baselines) ---------------------------------------


class DecayColumns(ColumnProtocol):
    """The Decay baseline lifted into the arena — bit-identical to
    :meth:`repro.baselines.decay.DecayBroadcast.run` on jam-free runs and
    under deterministic oblivious jammers (same ``generator("nodes")``
    stream, same per-round coin block)."""

    emits_beacons = False

    def __init__(self, proto: DecayBroadcast, seed: int):
        self.proto = proto
        self.n = proto.n
        self.rng = RandomFabric(seed).generator("nodes")
        self.L = proto.round_slots
        self._scale = 2.0 ** np.arange(self.L, dtype=np.float64)
        self.informed = np.zeros(self.n, dtype=bool)
        self.informed[0] = True
        self.informed_slot = np.full(self.n, -1, dtype=np.int64)
        self.informed_slot[0] = 0
        self._zero_channels = np.zeros(self.n, dtype=np.int64)
        self.t = 0
        self.epochs_run = 0
        self._load_round()

    def _load_round(self) -> None:
        self._coins = self.rng.random((self.L, self.n)) * self._scale[:, None]
        act = np.zeros((self.L, self.n), dtype=np.int8)
        act[:, ~self.informed] = ACT_LISTEN
        act[(self._coins < 1.0) & self.informed[None, :]] = ACT_SEND_MSG
        self._act = act
        self._has_listen = bool((~self.informed).any())
        self._send_rows = (act == ACT_SEND_MSG).any(axis=1)

    def current_channels(self) -> int:
        return 1

    def begin_slot(self, slot: int) -> Tuple[np.ndarray, np.ndarray, bool, bool]:
        return (
            self._zero_channels,
            self._act[self.t],
            self._has_listen,
            bool(self._send_rows[self.t]),
        )

    def end_slot(self, slot: int, feedback: Optional[np.ndarray]) -> None:
        if feedback is not None:
            hear = (feedback == FB_MSG) & ~self.informed
            if hear.any():
                self.informed |= hear
                self.informed_slot[hear] = slot
                lo = self.t + 1
                if lo < self.L:
                    for u in np.nonzero(hear)[0]:
                        col = self._act[lo:, u]
                        sends = self._coins[lo:, u] < 1.0
                        col[:] = np.where(sends, ACT_SEND_MSG, np.int8(0))
                        self._send_rows[lo:] |= sends
        self.t += 1
        if self.t == self.L:
            self.t = 0
            self.epochs_run += 1
            if self.epochs_run < self.proto.epochs:
                self._load_round()

    @property
    def done(self) -> bool:
        return self.epochs_run >= self.proto.epochs

    def result(self, net) -> BroadcastResult:
        return BroadcastResult(
            protocol=self.proto.name,
            n=self.n,
            slots=net.clock,
            completed=not net.overrun,
            informed_slot=self.informed_slot.copy(),
            halt_slot=np.full(self.n, net.clock, dtype=np.int64),
            node_energy=net.energy.node_cost.copy(),
            adversary_spend=net.energy.adversary_spend,
            halted_uninformed=int((~self.informed).sum()),
            periods=self.epochs_run,
            extras={"round_slots": self.L, "epochs": self.proto.epochs},
        )


class NaiveColumns(ColumnProtocol):
    """The always-on epidemic baseline lifted into the arena — bit-identical
    to :meth:`repro.baselines.naive.NaiveEpidemic.run` on jam-free runs and
    under deterministic oblivious jammers, including the oracle/linger
    termination, which only fires at the same block boundaries."""

    emits_beacons = False

    def __init__(self, proto: NaiveEpidemic, seed: int):
        self.proto = proto
        self.n = proto.n
        self.C = proto.num_channels
        self.rng = RandomFabric(seed).generator("nodes")
        self.informed = np.zeros(self.n, dtype=bool)
        self.informed[0] = True
        self.informed_slot = np.full(self.n, -1, dtype=np.int64)
        self.informed_slot[0] = 0
        self.blocks = 0
        self.completed = True
        self._linger_left: Optional[int] = None
        self._done = False
        self._bt = 0  # slot within the current block
        self._refresh_actions()
        self._begin_block(0)

    def _refresh_actions(self) -> None:
        # p = 1 and coins are ignored: the action column only depends on the
        # informed set, so one cached row serves until somebody learns m
        self._act_row = np.where(
            self.informed, ACT_SEND_MSG, ACT_LISTEN
        ).astype(np.int8)
        self._has_listen = not bool(self.informed.all())

    def _begin_block(self, clock: int) -> None:
        if clock >= self.proto.max_slots_budget:
            self.completed = False
            self._done = True
            return
        K = min(
            self.proto.block_slots,
            self.proto.max_slots_budget - clock,
            self._linger_left if self._linger_left is not None else self.proto.block_slots,
        )
        self._K = max(1, K)
        # the block engine draws (K, n) channels + coins per block; the coins
        # are never consulted (p = 1) but the stream consumption is part of
        # the parity contract
        self._channels = self.rng.integers(0, self.C, size=(self._K, self.n), dtype=np.int32)
        self.rng.random((self._K, self.n))
        self._bt = 0

    def current_channels(self) -> int:
        return self.C

    def begin_slot(self, slot: int) -> Tuple[np.ndarray, np.ndarray, bool, bool]:
        # the source is always informed, so a sender always exists
        return self._channels[self._bt], self._act_row, self._has_listen, True

    def end_slot(self, slot: int, feedback: Optional[np.ndarray]) -> None:
        if feedback is not None:
            hear = (feedback == FB_MSG) & ~self.informed
            if hear.any():
                self.informed |= hear
                self.informed_slot[hear] = slot
                self._refresh_actions()
        self._bt += 1
        if self._bt < self._K:
            return
        self.blocks += 1
        if self.informed.all():
            if self._linger_left is None:
                overshoot = (slot + 1) - int(self.informed_slot.max())
                self._linger_left = max(0, self.proto.linger - overshoot)
            else:
                self._linger_left -= self._K
            if self._linger_left <= 0:
                self._done = True
                return
        self._begin_block(slot + 1)

    @property
    def done(self) -> bool:
        return self._done

    def result(self, net) -> BroadcastResult:
        completed = self.completed and not net.overrun
        return BroadcastResult(
            protocol=self.proto.name,
            n=self.n,
            slots=net.clock,
            completed=completed,
            informed_slot=self.informed_slot.copy(),
            halt_slot=np.full(self.n, net.clock, dtype=np.int64),
            node_energy=net.energy.node_cost.copy(),
            adversary_spend=net.energy.adversary_spend,
            halted_uninformed=int((~self.informed).sum()) if not completed else 0,
            periods=self.blocks,
            extras={"num_channels": self.C, "oracle_termination": True},
        )


class MultiCastCColumns(ColumnProtocol):
    """Fig. 5 (``MultiCast(C)``, hence also the [14] single-channel baseline)
    lifted into the arena at physical-slot granularity.

    Virtual draws and the iteration schedule replicate the block engine's
    (``generator("nodes")``, blocks of ``block_slots`` virtual rows), so
    jam-free runs match :meth:`repro.core.limited.MultiCastC.run` bit for
    bit.  Each virtual slot is then *played out* as a round of ``S``
    physical sub-slots: a node whose virtual channel is ``k`` acts in
    sub-slot ``k // C`` on physical channel ``k % C`` — and a reactive Eve
    gets to sense and jam every physical slot individually, which the
    fold-based oblivious path cannot express.
    """

    emits_beacons = False

    def __init__(self, proto: MultiCastC, seed: int):
        self.proto = proto
        self.n = proto.n
        self.C_virt = proto.num_channels
        self.C_phys = proto.C
        self.S = proto.slots_per_round
        self.rng = RandomFabric(seed).generator("nodes")
        self.informed = np.zeros(self.n, dtype=bool)
        self.informed[0] = True
        self.active = np.ones(self.n, dtype=bool)
        self.informed_slot = np.full(self.n, -1, dtype=np.int64)
        self.informed_slot[0] = 0
        self.halt_slot = np.full(self.n, -1, dtype=np.int64)
        self.noisy = np.zeros(self.n, dtype=np.int64)
        self.halted_uninformed = 0
        self.i = proto.start_iteration
        self.iterations_run = 0
        self.capped = False
        self._done = False
        self._q = 0  # physical sub-slot within the round
        self._subslot_ids = np.arange(self.S, dtype=np.int64)[:, None]
        self._start_iteration()

    def _start_iteration(self) -> None:
        self.R = self.proto.iteration_length(self.i)
        self.p = self.proto.listen_prob(self.i)
        self.threshold = self.R * self.p * self.proto.NOISE_THRESHOLD
        self._remaining = self.R
        self._load_block()

    def _load_block(self) -> None:
        K = min(self.proto.block_slots, self._remaining)
        self._vch = self.rng.integers(0, self.C_virt, size=(K, self.n), dtype=np.int32)
        self._vcoin = self.rng.random((K, self.n))
        self._K = K
        self._r = 0  # virtual row within the block
        self._round_actions()

    def _round_actions(self) -> None:
        """Fix the round's virtual actions from the current informed set —
        the shared-coin rule of :func:`repro.core.runner.shared_coin_actions` —
        and expand them into one action column per physical sub-slot."""
        coin = self._vcoin[self._r]
        vact = np.zeros(self.n, dtype=np.int8)
        vact[(coin < self.p) & self.active] = ACT_LISTEN
        send = (coin >= self.p) & (coin < 2 * self.p) & self.informed & self.active
        vact[send] = ACT_SEND_MSG
        vch = self._vch[self._r].astype(np.int64)
        self._phys_ch = vch % self.C_phys
        subslot = vch // self.C_phys
        # (S, n): sub-slot q's column holds each node's action iff it acts in q
        self._sub_acts = np.where(
            subslot[None, :] == self._subslot_ids, vact[None, :], np.int8(0)
        )
        self._listen_subs = (self._sub_acts == ACT_LISTEN).any(axis=1)
        self._send_subs = (self._sub_acts == ACT_SEND_MSG).any(axis=1)

    def current_channels(self) -> int:
        return self.C_phys

    def begin_slot(self, slot: int) -> Tuple[np.ndarray, np.ndarray, bool, bool]:
        q = self._q
        return (
            self._phys_ch,
            self._sub_acts[q],
            bool(self._listen_subs[q]),
            bool(self._send_subs[q]),
        )

    def end_slot(self, slot: int, feedback: Optional[np.ndarray]) -> None:
        if feedback is not None:
            hear = (feedback == FB_MSG) & ~self.informed
            if hear.any():
                self.informed |= hear
                # virtual-slot semantics: the event is attributed to the round,
                # i.e. the physical slot the round started at (the block engine
                # records slot0 + row * S); actions of later rounds pick the
                # new informed set up in _round_actions
                self.informed_slot[hear] = slot - self._q
            self.noisy += feedback == FB_NOISE
        self._q += 1
        if self._q < self.S:
            return
        self._q = 0
        self._r += 1
        self._remaining -= 1
        if self._r < self._K:
            self._round_actions()
            return
        if self._remaining > 0:
            self._load_block()
            return
        # end of iteration
        halt_now = self.active & (self.noisy < self.threshold)
        self.halted_uninformed += int((halt_now & ~self.informed).sum())
        self.halt_slot[halt_now] = slot + 1
        self.active &= ~halt_now
        self.noisy[:] = 0
        self.iterations_run += 1
        self.i += 1
        if (
            self.proto.max_iterations is not None
            and self.iterations_run >= self.proto.max_iterations
        ):
            self.capped = True
        if self.capped or not self.active.any():
            self._done = True
        else:
            self._start_iteration()

    @property
    def done(self) -> bool:
        return self._done

    def result(self, net) -> BroadcastResult:
        completed = not self.capped and not net.overrun
        return BroadcastResult(
            protocol=self.proto.name,
            n=self.n,
            slots=net.clock,
            completed=completed and not self.active.any(),
            informed_slot=self.informed_slot.copy(),
            halt_slot=self.halt_slot.copy(),
            node_energy=net.energy.node_cost.copy(),
            adversary_spend=net.energy.adversary_spend,
            halted_uninformed=self.halted_uninformed,
            periods=self.iterations_run,
            extras={
                "num_channels": self.C_virt,
                "first_iteration": self.proto.start_iteration,
                "last_iteration": self.i - 1 if self.iterations_run else None,
                "physical_channels": self.C_phys,
                "slots_per_round": self.S,
            },
        )
