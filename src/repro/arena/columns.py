"""Column adapters: protocols lifted into the arena runtime.

Two families, two randomness oracles, one interface:

* **Reference-stream adapters** (``MultiCastCoreColumns``,
  ``MultiCastColumns``, ``MultiCastAdvColumns``) vectorize the paper's
  Figs. 1/2/4 exactly as the scalar oracles of :mod:`repro.core.reference`
  play them: one generator per node (``fabric.generator("node", u)``).  The
  Figs. 1/2 adapters consume it through the chunked period-draw discipline
  of :class:`repro.core.reference.PeriodDraws` (same chunk grid,
  channel-chunk then coin-chunk per node); the Fig. 4 adapter mirrors that
  node's original per-slot draws.  Arena runs are therefore
  **bit-identical** to :class:`repro.sim.node.ScalarNetwork` driving the
  reference nodes — the parity suite (``tests/arena/test_parity.py``)
  asserts equality of feedback-derived state, energy books and halt slots,
  oblivious and reactive jammers alike.

* **Engine-stream adapters** (``DecayColumns``, ``NaiveColumns``,
  ``MultiCastCColumns`` — the latter also serving ``SingleChannelCompetitive``)
  lift the baselines, which have no scalar oracle.  Their oracle is the
  block engine itself: they draw from the single ``generator("nodes")``
  stream in exactly the block sizes :func:`repro.core.result.run_broadcast`
  uses, so on jam-free runs (and under deterministic oblivious jammers) they
  reproduce the block engine's results bit for bit, while additionally
  accepting reactive jammers the block path cannot express.

``MultiCastCColumns`` steps the Fig. 5 round simulation at *physical* slot
granularity — each virtual slot is a round of ``S = n/(2C)`` physical
sub-slots, and a reactive Eve senses and jams individual physical slots,
which is precisely the capability the oblivious fold-based path cannot
model.

All adapters end in a standard :class:`repro.core.result.BroadcastResult`
(via :meth:`ColumnProtocol.result`), so analysis, stores and tables treat
adaptive runs exactly like oblivious ones.  See DESIGN.md section 7.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Tuple

import numpy as np

from repro.baselines.decay import DecayBroadcast
from repro.baselines.naive import NaiveEpidemic
from repro.core.limited import MultiCastC
from repro.core.multicast import MultiCast
from repro.core.multicast_adv import (
    MultiCastAdv,
    STATUS_HALT,
    STATUS_HELPER,
    STATUS_IN,
    STATUS_UN,
)
from repro.core.multicast_core import MultiCastCore
from repro.core.reference import DRAW_CHUNK
from repro.core.result import BroadcastResult
from repro.sim.channel import (
    ACT_LISTEN,
    ACT_SEND_BEACON,
    ACT_SEND_MSG,
    FB_BEACON,
    FB_MSG,
    FB_NOISE,
    FB_SILENCE,
)
from repro.sim.rng import RandomFabric

#: shared empty event list for the all-informed absorb short-circuit
_NO_EVENTS = np.empty(0, dtype=np.int64)

__all__ = [
    "ColumnProtocol",
    "MultiCastCoreColumns",
    "MultiCastColumns",
    "MultiCastAdvColumns",
    "DecayColumns",
    "NaiveColumns",
    "MultiCastCColumns",
]


class ColumnProtocol(ABC):
    """Vectorized whole-population protocol state for the arena runtime.

    The driver loop (:func:`repro.arena.run.run_broadcast_adaptive`) calls
    :meth:`begin_slot` / :meth:`end_slot` once per slot and stops when
    :attr:`done`; :meth:`result` assembles the standard
    :class:`~repro.core.result.BroadcastResult`.

    Hot-loop contract with :meth:`ArenaNetwork.step
    <repro.arena.network.ArenaNetwork.step>`: ``end_slot`` may receive
    ``None`` instead of a feedback column when nobody listened (all
    ``FB_NONE``), and a non-``None`` column is a scratch buffer only valid
    until the next step.  Adapters precompute chunk-sized *action matrices*
    and re-derive only the affected rows when a status changes (the same
    draws-are-status-independent property :func:`repro.core.runner.spread_block`
    exploits), so ``begin_slot`` is just two column slices.
    """

    n: int
    #: False lets the network kernel skip the beacon/message payload split
    #: (only Fig. 4's step II ever sends beacons).
    emits_beacons = True
    #: True once the adapter implements :meth:`begin_window` /
    #: :meth:`absorb_window` (all shipped adapters do); the windowed driver
    #: (:mod:`repro.arena.window`) falls back to slot stepping otherwise.
    supports_windows = False

    @abstractmethod
    def current_channels(self) -> int:
        """Channel count of the current slot (phase-dependent for Fig. 4)."""

    @abstractmethod
    def begin_slot(self, slot: int) -> Tuple[np.ndarray, np.ndarray, bool, bool]:
        """Return ``(channels, actions, has_listen, has_send)`` for this slot.

        The two booleans are the presence hints :meth:`ArenaNetwork.step
        <repro.arena.network.ArenaNetwork.step>` accepts — adapters read
        them off per-chunk column summaries instead of re-reducing the
        action column every slot.  They may be conservatively True (after a
        status change the summaries are only widened), never falsely False;
        ``None`` defers the reduction to the kernel (used by the Fig. 4
        adapter, which has no precomputed chunks).
        """

    @abstractmethod
    def end_slot(self, slot: int, feedback: np.ndarray) -> None:
        """Absorb the slot's ``(n,)`` feedback column."""

    # -- window interface (block-stepped driver) --------------------------------
    def begin_window(self, slot: int, limit: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(channels, actions)`` matrices for up to ``limit`` slots.

        The returned matrices are ``(W, n)`` with ``1 <= W <= limit``; the
        adapter clips ``W`` to its own schedule boundaries (chunk / step /
        round / block ends) so no draw block ever straddles a boundary and
        window-sized RNG consumption equals per-slot consumption (the
        ``PeriodDraws`` discipline, extended to windows).  Channels beyond
        row ``W - 1`` of a caller's budget are simply not served — the
        driver re-windows.  Actions in the matrix are *speculative*: they
        assume no informing event inside the window.  The driver resolves
        the whole window, hands the feedback to :meth:`absorb_window`, and
        the adapter commits only the prefix up to (and including) the first
        action-changing event."""
        raise NotImplementedError

    def absorb_window(self, slot: int, feedback: np.ndarray) -> int:
        """Absorb a prefix of the window's ``(W, n)`` feedback.

        Returns ``A``, the number of slots committed (``1 <= A <= W``): all
        of ``W`` when no action-changing event occurred, else through the
        first event (the event row itself is committed — its feedback was
        computed from actions fixed before the event).  Rows past ``A`` are
        discarded; the driver re-serves them (with patched actions) in the
        next window.  Committing must be state-identical to ``A`` per-slot
        ``begin_slot``/``end_slot`` rounds, including boundary bookkeeping
        when the committed prefix ends an iteration/step/round/block."""
        raise NotImplementedError

    @property
    @abstractmethod
    def done(self) -> bool:
        """True once the protocol has terminated (or hit its own caps)."""

    @abstractmethod
    def result(self, net) -> BroadcastResult:
        """Assemble the final result from protocol state and ``net``'s books."""


# -- reference-stream adapters (Figs. 1/2) ----------------------------------------


class _SharedCoinColumns(ColumnProtocol):
    """Common machinery of the Figs. 1/2 adapters: per-node streams, integer
    coins (1 = listen; 2 = broadcast if informed), iteration-boundary halting
    on a noisy-slot threshold.  Subclasses define the iteration schedule."""

    emits_beacons = False

    def __init__(self, n: int, seed: int, *, max_periods: Optional[int] = None):
        if n < 4:
            raise ValueError("need n >= 4 (n/2 >= 2 channels)")
        self.n = int(n)
        fabric = RandomFabric(seed)
        self.rngs = [fabric.generator("node", u) for u in range(self.n)]
        self.informed = np.zeros(self.n, dtype=bool)
        self.informed[0] = True
        self.halted = np.zeros(self.n, dtype=bool)
        self.informed_slot = np.full(self.n, -1, dtype=np.int64)
        self.informed_slot[0] = 0
        self.halt_slot = np.full(self.n, -1, dtype=np.int64)
        self.noisy = np.zeros(self.n, dtype=np.int64)
        self.t = 0  # slot within the iteration
        self.periods = 0
        self.max_periods = max_periods
        self.capped = False
        self._done = False
        self._start_period()

    # -- subclass hooks ---------------------------------------------------------
    @abstractmethod
    def _period_params(self) -> Tuple[int, int, float]:
        """Return the current iteration's ``(R, coin_high, halt_threshold)``."""

    def _advance_period(self) -> None:
        """Move the schedule to the next iteration (no-op for Fig. 1)."""

    # -- chunked per-node draws (the PeriodDraws contract) ----------------------
    def _start_period(self) -> None:
        self.R, self.coin_high, self.threshold = self._period_params()
        self._chunk_base = 0
        self._local = 0
        self._load_chunk()

    def _load_chunk(self) -> None:
        k = min(DRAW_CHUNK, self.R - self._chunk_base)
        C = self.n // 2
        self._ch = np.zeros((self.n, k), dtype=np.int64)
        self._coin = np.zeros((self.n, k), dtype=np.int64)
        for u in np.nonzero(~self.halted)[0]:
            rng = self.rngs[u]
            self._ch[u] = rng.integers(0, C, size=k)
            self._coin[u] = rng.integers(1, self.coin_high + 1, size=k)
        # Halted nodes keep all-zero coin rows, which map to idle below —
        # no per-slot liveness mask needed.
        act = np.zeros(self._coin.shape, dtype=np.int8)
        act[self._coin == 1] = ACT_LISTEN
        act[(self._coin == 2) & self.informed[:, None]] = ACT_SEND_MSG
        self._act = act
        self._listen_cols = (act == ACT_LISTEN).any(axis=0)
        self._send_cols = (act == ACT_SEND_MSG).any(axis=0)

    def current_channels(self) -> int:
        return self.n // 2

    def begin_slot(self, slot: int) -> Tuple[np.ndarray, np.ndarray, bool, bool]:
        if self._local == self._ch.shape[1]:
            self._chunk_base += self._ch.shape[1]
            self._local = 0
            self._load_chunk()
        local = self._local
        return (
            self._ch[:, local],
            self._act[:, local],
            bool(self._listen_cols[local]),
            bool(self._send_cols[local]),
        )

    def end_slot(self, slot: int, feedback: Optional[np.ndarray]) -> None:
        if feedback is not None:
            hear = (feedback == FB_MSG) & ~self.informed
            if hear.any():
                self.informed |= hear
                self.informed_slot[hear] = slot
                lo = self._local + 1
                if lo < self._coin.shape[1]:
                    for u in np.nonzero(hear)[0]:
                        tail = self._act[u, lo:]
                        hits = self._coin[u, lo:] == 2
                        tail[hits] = ACT_SEND_MSG
                        self._send_cols[lo:] |= hits
            self.noisy += feedback == FB_NOISE
        self._local += 1
        self.t += 1
        if self.t == self.R:  # end of iteration
            self._end_iteration(slot)

    def _end_iteration(self, last_slot: int) -> None:
        """Iteration-boundary bookkeeping; ``last_slot`` is the iteration's
        final slot (halts are stamped one past it, like the scalar oracle)."""
        halt_now = ~self.halted & (self.noisy < self.threshold)
        self.halted |= halt_now
        self.halt_slot[halt_now] = last_slot + 1
        self.noisy[:] = 0
        self.t = 0
        self.periods += 1
        self._advance_period()
        if self.max_periods is not None and self.periods >= self.max_periods:
            self.capped = True
        if self.capped or self.halted.all():
            self._done = True
        else:
            self._start_period()

    # -- window interface -------------------------------------------------------
    supports_windows = True

    def begin_window(self, slot: int, limit: int) -> Tuple[np.ndarray, np.ndarray]:
        if self._local == self._ch.shape[1]:
            self._chunk_base += self._ch.shape[1]
            self._local = 0
            self._load_chunk()
        lo = self._local
        W = min(int(limit), self._ch.shape[1] - lo)
        return self._ch[:, lo:lo + W].T, self._act[:, lo:lo + W].T

    def absorb_window(self, slot: int, feedback: np.ndarray) -> int:
        W = feedback.shape[0]
        if self.informed.all():
            events = _NO_EVENTS  # nobody left to inform: no truncation
        else:
            hear = (feedback == FB_MSG) & ~self.informed[None, :]
            events = np.nonzero(hear.any(axis=1))[0]
        A = int(events[0]) + 1 if events.size else W
        self.noisy += (feedback[:A] == FB_NOISE).sum(axis=0, dtype=np.int64)
        if events.size:
            heard = hear[A - 1]
            self.informed |= heard
            self.informed_slot[heard] = slot + A - 1
            lo = self._local + A
            if lo < self._coin.shape[1]:
                for u in np.nonzero(heard)[0]:
                    tail = self._act[u, lo:]
                    hits = self._coin[u, lo:] == 2
                    tail[hits] = ACT_SEND_MSG
                    self._send_cols[lo:] |= hits
        self._local += A
        self.t += A
        if self.t == self.R:
            self._end_iteration(slot + A - 1)
        return A

    @property
    def done(self) -> bool:
        return self._done

    def result(self, net) -> BroadcastResult:
        return BroadcastResult(
            protocol=self.name,
            n=self.n,
            slots=net.clock,
            completed=bool(self.halted.all()) and not self.capped,
            informed_slot=self.informed_slot.copy(),
            halt_slot=self.halt_slot.copy(),
            node_energy=net.energy.node_cost.copy(),
            adversary_spend=net.energy.adversary_spend,
            halted_uninformed=int((self.halted & (self.informed_slot < 0)).sum()),
            periods=self.periods,
            extras={"arena_runtime": True, "overrun": net.overrun},
        )


class MultiCastCoreColumns(_SharedCoinColumns):
    """Fig. 1 lifted into the arena: identical iterations of ``R`` slots,
    coin range 64, halt threshold R/128 — bit-identical to
    :class:`repro.core.reference.ScalarMultiCastCoreNode` populations."""

    def __init__(self, proto: MultiCastCore, n: int, seed: int):
        if n != proto.n:
            raise ValueError(f"protocol built for n={proto.n}, arena asked for n={n}")
        self._R = proto.iteration_slots
        self.name = proto.name + "[arena]"
        super().__init__(n, seed, max_periods=proto.max_iterations)

    def _period_params(self):
        return self._R, 64, self._R / 128


class MultiCastColumns(_SharedCoinColumns):
    """Fig. 2 lifted into the arena: growing iterations R_i, coin range 2^i,
    halt threshold R_i/2^{i+1} — bit-identical to
    :class:`repro.core.reference.ScalarMultiCastNode` populations."""

    def __init__(self, proto: MultiCast, n: int, seed: int):
        if n != proto.n:
            raise ValueError(f"protocol built for n={proto.n}, arena asked for n={n}")
        self.proto = proto
        self.i = proto.start_iteration
        self.name = proto.name + "[arena]"
        super().__init__(n, seed, max_periods=proto.max_iterations)

    def _period_params(self):
        R = self.proto.iteration_length(self.i)
        return R, 2**self.i, R / 2 ** (self.i + 1)

    def _advance_period(self):
        self.i += 1


# -- reference-stream adapter (Fig. 4) --------------------------------------------


class MultiCastAdvColumns(ColumnProtocol):
    """Fig. 4/6 lifted into the arena — bit-identical to
    :class:`repro.core.reference.ScalarMultiCastAdvNode` populations.

    The epoch/phase/step timetable is deterministic and shared by all nodes,
    so it is tracked once; statuses, the four counters and the (î, ĵ)
    helper records are ``(n,)`` columns.  Randomness mirrors the scalar
    node's original *per-slot* draw order (channel then coin, per node) —
    the committed w.h.p. tests pin that node's behaviour per seed, so this
    adapter pays a per-node Python loop each slot rather than move the node
    to the chunked discipline.  Phase channel counts reach 2^j and the runs
    are minutes-per-trial regardless — keep ``MultiCastAdv`` out of default
    arena grids (DESIGN.md 7).
    """

    def __init__(self, proto: MultiCastAdv, n: int, seed: int):
        self.proto = proto
        self.n = int(n)
        fabric = RandomFabric(seed)
        self.rngs = [fabric.generator("node", u) for u in range(self.n)]
        self.status = np.full(self.n, STATUS_UN, dtype=np.int8)
        self.status[0] = STATUS_IN
        self.informed_slot = np.full(self.n, -1, dtype=np.int64)
        self.informed_slot[0] = 0
        self.halt_slot = np.full(self.n, -1, dtype=np.int64)
        self.i_hat = np.full(self.n, -1, dtype=np.int64)
        self.j_hat = np.full(self.n, -1, dtype=np.int64)
        self.n_m = np.zeros(self.n, dtype=np.int64)
        self.n_mb = np.zeros(self.n, dtype=np.int64)
        self.n_n = np.zeros(self.n, dtype=np.int64)
        self.n_s = np.zeros(self.n, dtype=np.int64)
        self.i = proto.first_epoch
        self.phase_seq = list(proto.phases_of_epoch(self.i))
        self.phase_idx = 0
        self.step = 1
        self.t = 0
        self.epochs_run = 0
        self.capped = False
        self._done = False
        self.name = proto.name + "[arena]"
        # drawn-but-uncommitted window rows (see begin_window): always within
        # the current step, empty at every step boundary
        self._pend_ch: Optional[np.ndarray] = None
        self._pend_coin: Optional[np.ndarray] = None
        self._start_step()

    @property
    def j(self) -> int:
        return self.phase_seq[self.phase_idx]

    def _start_step(self) -> None:
        self.R = self.proto.phase_length(self.i, self.j)
        self.p = self.proto.participation_prob(self.i, self.j)
        self.C = self.proto.phase_channels(self.j)

    def current_channels(self) -> int:
        return self.C

    def begin_slot(self, slot: int) -> Tuple[np.ndarray, np.ndarray, Optional[bool], Optional[bool]]:
        n = self.n
        ch = np.zeros(n, dtype=np.int64)
        # halted nodes keep coin 2.0, above every action threshold (p <= 1/2)
        coin = np.full(n, 2.0, dtype=np.float64)
        C = self.C
        status = self.status
        for u in range(n):
            if status[u] != STATUS_HALT:
                rng = self.rngs[u]
                ch[u] = rng.integers(0, C)
                coin[u] = rng.random()
        un = status == STATUS_UN
        actions = np.zeros(n, dtype=np.int8)
        p = self.p
        if self.step == 1:
            hit = coin < p
            actions[hit & un] = ACT_LISTEN
            actions[hit & ~un] = ACT_SEND_MSG
        else:
            actions[coin < p] = ACT_LISTEN
            send = (coin >= p) & (coin < 2 * p)
            actions[send & un] = ACT_SEND_BEACON
            actions[send & ~un] = ACT_SEND_MSG
        return ch, actions, None, None

    def end_slot(self, slot: int, feedback: Optional[np.ndarray]) -> None:
        if feedback is None:
            self._advance_timetable(slot)
            return
        if self.step == 1:
            promote = (feedback == FB_MSG) & (self.status == STATUS_UN)
            if promote.any():
                self.status[promote] = STATUS_IN
                self.informed_slot[promote] = slot
        else:
            self.n_m += feedback == FB_MSG
            self.n_mb += (feedback == FB_MSG) | (feedback == FB_BEACON)
            self.n_n += feedback == FB_NOISE
            self.n_s += feedback == FB_SILENCE
        self._advance_timetable(slot)

    def _advance_timetable(self, slot: int) -> None:
        self.t += 1
        if self.t < self.R:
            return
        self._end_step(slot)

    def _end_step(self, slot: int) -> None:
        """Step-boundary bookkeeping; ``slot`` is the step's final slot."""
        self.t = 0
        if self.step == 1:
            self.step = 2
            self.n_m[:] = 0
            self.n_mb[:] = 0
            self.n_n[:] = 0
            self.n_s[:] = 0
            return
        # end of step two: the three checks, in pseudocode order
        proto = self.proto
        active = self.status != STATUS_HALT
        rp = self.R * self.p
        rp2 = self.R * self.p * self.p
        promote = active & (self.status == STATUS_UN) & (self.n_m >= 1)
        self.status[promote] = STATUS_IN
        self.informed_slot[promote] = slot + 1
        helper_cond = (
            active
            & (self.status == STATUS_IN)
            & (self.n_m >= proto.HELPER_MSG_FACTOR * rp2)
            & (self.n_s >= proto.HELPER_SILENCE_FACTOR * rp)
        )
        if not (proto.max_phase is not None and self.j == proto.max_phase):
            helper_cond &= self.n_mb <= proto.HELPER_BEACON_CEIL * rp2
        self.status[helper_cond] = STATUS_HELPER
        self.i_hat[helper_cond] = self.i
        self.j_hat[helper_cond] = self.j
        halt_cond = (
            active
            & (self.status == STATUS_HELPER)
            & (self.i - self.i_hat >= proto.helper_wait)
            & (self.j_hat == self.j)
            & (self.n_n <= rp / proto.halt_noise_divisor)
        )
        self.status[halt_cond] = STATUS_HALT
        self.halt_slot[halt_cond] = slot + 1
        # move to the next phase / epoch
        self.step = 1
        self.phase_idx += 1
        if self.phase_idx >= len(self.phase_seq):
            self.i += 1
            self.epochs_run += 1
            self.phase_seq = list(self.proto.phases_of_epoch(self.i))
            self.phase_idx = 0
            if self.proto.max_epochs is not None and self.epochs_run >= self.proto.max_epochs:
                self.capped = True
        if self.capped or (self.status == STATUS_HALT).all():
            self._done = True
        else:
            self._start_step()

    # -- window interface -------------------------------------------------------
    supports_windows = True

    def _draw_rows(self, count: int) -> None:
        """Draw ``count`` window rows, preserving the scalar node's per-slot
        per-node stream order exactly (channel then coin, node by node,
        slot-major) — batching per node would reorder each node's own
        stream, which the committed w.h.p. seeds pin."""
        n, C = self.n, self.C
        ch = np.zeros((count, n), dtype=np.int64)
        coin = np.full((count, n), 2.0, dtype=np.float64)
        live = np.nonzero(self.status != STATUS_HALT)[0]
        rngs = self.rngs
        for w in range(count):
            ch_row = ch[w]
            coin_row = coin[w]
            for u in live:
                rng = rngs[u]
                ch_row[u] = rng.integers(0, C)
                coin_row[u] = rng.random()
        self._pend_ch = ch
        self._pend_coin = coin

    def _window_actions(self, coin: np.ndarray) -> np.ndarray:
        un = (self.status == STATUS_UN)[None, :]
        actions = np.zeros(coin.shape, dtype=np.int8)
        p = self.p
        if self.step == 1:
            hit = coin < p  # halted nodes hold coin 2.0 — never hit
            actions[hit & un] = ACT_LISTEN
            actions[hit & ~un] = ACT_SEND_MSG
        else:
            actions[coin < p] = ACT_LISTEN
            send = (coin >= p) & (coin < 2 * p)
            actions[send & un] = ACT_SEND_BEACON
            actions[send & ~un] = ACT_SEND_MSG
        return actions

    def begin_window(self, slot: int, limit: int) -> Tuple[np.ndarray, np.ndarray]:
        limit = min(int(limit), self.R - self.t)
        if self._pend_coin is None or self._pend_coin.shape[0] == 0:
            self._draw_rows(limit)
        W = min(limit, self._pend_coin.shape[0])
        return self._pend_ch[:W], self._window_actions(self._pend_coin[:W])

    def absorb_window(self, slot: int, feedback: np.ndarray) -> int:
        W = feedback.shape[0]
        if self.step == 1:
            promote = (feedback == FB_MSG) & (self.status == STATUS_UN)[None, :]
            events = np.nonzero(promote.any(axis=1))[0]
            A = int(events[0]) + 1 if events.size else W
            if events.size:
                hit = promote[A - 1]
                self.status[hit] = STATUS_IN
                self.informed_slot[hit] = slot + A - 1
        else:
            # step II reads its counters only at the step boundary — no
            # in-window action changes, the whole window commits
            A = W
            self.n_m += (feedback == FB_MSG).sum(axis=0, dtype=np.int64)
            self.n_mb += ((feedback == FB_MSG) | (feedback == FB_BEACON)).sum(
                axis=0, dtype=np.int64
            )
            self.n_n += (feedback == FB_NOISE).sum(axis=0, dtype=np.int64)
            self.n_s += (feedback == FB_SILENCE).sum(axis=0, dtype=np.int64)
        self._pend_ch = self._pend_ch[A:]
        self._pend_coin = self._pend_coin[A:]
        self.t += A
        if self.t == self.R:
            self._end_step(slot + A - 1)
        return A

    @property
    def done(self) -> bool:
        return self._done

    def result(self, net) -> BroadcastResult:
        halted = self.status == STATUS_HALT
        return BroadcastResult(
            protocol=self.name,
            n=self.n,
            slots=net.clock,
            completed=bool(halted.all()) and not self.capped,
            informed_slot=self.informed_slot.copy(),
            halt_slot=self.halt_slot.copy(),
            node_energy=net.energy.node_cost.copy(),
            adversary_spend=net.energy.adversary_spend,
            halted_uninformed=int((halted & (self.informed_slot < 0)).sum()),
            periods=self.i - self.proto.first_epoch,
            extras={
                "arena_runtime": True,
                "overrun": net.overrun,
                "final_status": self.status.copy(),
            },
        )


# -- engine-stream adapters (the baselines) ---------------------------------------


class DecayColumns(ColumnProtocol):
    """The Decay baseline lifted into the arena — bit-identical to
    :meth:`repro.baselines.decay.DecayBroadcast.run` on jam-free runs and
    under deterministic oblivious jammers (same ``generator("nodes")``
    stream, same per-round coin block)."""

    emits_beacons = False

    def __init__(self, proto: DecayBroadcast, seed: int):
        self.proto = proto
        self.n = proto.n
        self.rng = RandomFabric(seed).generator("nodes")
        self.L = proto.round_slots
        self._scale = 2.0 ** np.arange(self.L, dtype=np.float64)
        self.informed = np.zeros(self.n, dtype=bool)
        self.informed[0] = True
        self.informed_slot = np.full(self.n, -1, dtype=np.int64)
        self.informed_slot[0] = 0
        self._zero_channels = np.zeros(self.n, dtype=np.int64)
        self.t = 0
        self.epochs_run = 0
        self._load_round()

    def _load_round(self) -> None:
        self._coins = self.rng.random((self.L, self.n)) * self._scale[:, None]
        act = np.zeros((self.L, self.n), dtype=np.int8)
        act[:, ~self.informed] = ACT_LISTEN
        act[(self._coins < 1.0) & self.informed[None, :]] = ACT_SEND_MSG
        self._act = act
        self._has_listen = bool((~self.informed).any())
        self._send_rows = (act == ACT_SEND_MSG).any(axis=1)

    def current_channels(self) -> int:
        return 1

    def begin_slot(self, slot: int) -> Tuple[np.ndarray, np.ndarray, bool, bool]:
        return (
            self._zero_channels,
            self._act[self.t],
            self._has_listen,
            bool(self._send_rows[self.t]),
        )

    def end_slot(self, slot: int, feedback: Optional[np.ndarray]) -> None:
        if feedback is not None:
            hear = (feedback == FB_MSG) & ~self.informed
            if hear.any():
                self.informed |= hear
                self.informed_slot[hear] = slot
                lo = self.t + 1
                if lo < self.L:
                    for u in np.nonzero(hear)[0]:
                        col = self._act[lo:, u]
                        sends = self._coins[lo:, u] < 1.0
                        col[:] = np.where(sends, ACT_SEND_MSG, np.int8(0))
                        self._send_rows[lo:] |= sends
        self.t += 1
        if self.t == self.L:
            self.t = 0
            self.epochs_run += 1
            if self.epochs_run < self.proto.epochs:
                self._load_round()

    # -- window interface -------------------------------------------------------
    supports_windows = True

    def begin_window(self, slot: int, limit: int) -> Tuple[np.ndarray, np.ndarray]:
        lo = self.t
        W = min(int(limit), self.L - lo)
        return (
            np.broadcast_to(self._zero_channels, (W, self.n)),
            self._act[lo:lo + W],
        )

    def absorb_window(self, slot: int, feedback: np.ndarray) -> int:
        W = feedback.shape[0]
        if self.informed.all():
            events = _NO_EVENTS  # nobody left to inform: no truncation
        else:
            hear = (feedback == FB_MSG) & ~self.informed[None, :]
            events = np.nonzero(hear.any(axis=1))[0]
        A = int(events[0]) + 1 if events.size else W
        if events.size:
            heard = hear[A - 1]
            self.informed |= heard
            self.informed_slot[heard] = slot + A - 1
            lo = self.t + A
            if lo < self.L:
                for u in np.nonzero(heard)[0]:
                    col = self._act[lo:, u]
                    sends = self._coins[lo:, u] < 1.0
                    col[:] = np.where(sends, ACT_SEND_MSG, np.int8(0))
                    self._send_rows[lo:] |= sends
        self.t += A
        if self.t == self.L:
            self.t = 0
            self.epochs_run += 1
            if self.epochs_run < self.proto.epochs:
                self._load_round()
        return A

    @property
    def done(self) -> bool:
        return self.epochs_run >= self.proto.epochs

    def result(self, net) -> BroadcastResult:
        return BroadcastResult(
            protocol=self.proto.name,
            n=self.n,
            slots=net.clock,
            completed=not net.overrun,
            informed_slot=self.informed_slot.copy(),
            halt_slot=np.full(self.n, net.clock, dtype=np.int64),
            node_energy=net.energy.node_cost.copy(),
            adversary_spend=net.energy.adversary_spend,
            halted_uninformed=int((~self.informed).sum()),
            periods=self.epochs_run,
            extras={"round_slots": self.L, "epochs": self.proto.epochs},
        )


class NaiveColumns(ColumnProtocol):
    """The always-on epidemic baseline lifted into the arena — bit-identical
    to :meth:`repro.baselines.naive.NaiveEpidemic.run` on jam-free runs and
    under deterministic oblivious jammers, including the oracle/linger
    termination, which only fires at the same block boundaries."""

    emits_beacons = False

    def __init__(self, proto: NaiveEpidemic, seed: int):
        self.proto = proto
        self.n = proto.n
        self.C = proto.num_channels
        self.rng = RandomFabric(seed).generator("nodes")
        self.informed = np.zeros(self.n, dtype=bool)
        self.informed[0] = True
        self.informed_slot = np.full(self.n, -1, dtype=np.int64)
        self.informed_slot[0] = 0
        self.blocks = 0
        self.completed = True
        self._linger_left: Optional[int] = None
        self._done = False
        self._bt = 0  # slot within the current block
        self._refresh_actions()
        self._begin_block(0)

    def _refresh_actions(self) -> None:
        # p = 1 and coins are ignored: the action column only depends on the
        # informed set, so one cached row serves until somebody learns m
        self._act_row = np.where(
            self.informed, ACT_SEND_MSG, ACT_LISTEN
        ).astype(np.int8)
        self._has_listen = not bool(self.informed.all())

    def _begin_block(self, clock: int) -> None:
        if clock >= self.proto.max_slots_budget:
            self.completed = False
            self._done = True
            return
        K = min(
            self.proto.block_slots,
            self.proto.max_slots_budget - clock,
            self._linger_left if self._linger_left is not None else self.proto.block_slots,
        )
        self._K = max(1, K)
        # the block engine draws (K, n) channels + coins per block; the coins
        # are never consulted (p = 1) but the stream consumption is part of
        # the parity contract
        self._channels = self.rng.integers(0, self.C, size=(self._K, self.n), dtype=np.int32)
        self.rng.random((self._K, self.n))
        self._bt = 0

    def current_channels(self) -> int:
        return self.C

    def begin_slot(self, slot: int) -> Tuple[np.ndarray, np.ndarray, bool, bool]:
        # the source is always informed, so a sender always exists
        return self._channels[self._bt], self._act_row, self._has_listen, True

    def end_slot(self, slot: int, feedback: Optional[np.ndarray]) -> None:
        if feedback is not None:
            hear = (feedback == FB_MSG) & ~self.informed
            if hear.any():
                self.informed |= hear
                self.informed_slot[hear] = slot
                self._refresh_actions()
        self._bt += 1
        if self._bt < self._K:
            return
        self._end_block(slot)

    def _end_block(self, last_slot: int) -> None:
        """Block-boundary bookkeeping; ``last_slot`` is the block's final slot."""
        self.blocks += 1
        if self.informed.all():
            if self._linger_left is None:
                overshoot = (last_slot + 1) - int(self.informed_slot.max())
                self._linger_left = max(0, self.proto.linger - overshoot)
            else:
                self._linger_left -= self._K
            if self._linger_left <= 0:
                self._done = True
                return
        self._begin_block(last_slot + 1)

    # -- window interface -------------------------------------------------------
    supports_windows = True

    def begin_window(self, slot: int, limit: int) -> Tuple[np.ndarray, np.ndarray]:
        lo = self._bt
        W = min(int(limit), self._K - lo)
        return (
            self._channels[lo:lo + W],
            np.broadcast_to(self._act_row, (W, self.n)),
        )

    def absorb_window(self, slot: int, feedback: np.ndarray) -> int:
        W = feedback.shape[0]
        if self.informed.all():
            events = _NO_EVENTS  # nobody left to inform: no truncation
        else:
            hear = (feedback == FB_MSG) & ~self.informed[None, :]
            events = np.nonzero(hear.any(axis=1))[0]
        A = int(events[0]) + 1 if events.size else W
        if events.size:
            heard = hear[A - 1]
            self.informed |= heard
            self.informed_slot[heard] = slot + A - 1
            self._refresh_actions()
        self._bt += A
        if self._bt == self._K:
            self._end_block(slot + A - 1)
        return A

    @property
    def done(self) -> bool:
        return self._done

    def result(self, net) -> BroadcastResult:
        completed = self.completed and not net.overrun
        return BroadcastResult(
            protocol=self.proto.name,
            n=self.n,
            slots=net.clock,
            completed=completed,
            informed_slot=self.informed_slot.copy(),
            halt_slot=np.full(self.n, net.clock, dtype=np.int64),
            node_energy=net.energy.node_cost.copy(),
            adversary_spend=net.energy.adversary_spend,
            halted_uninformed=int((~self.informed).sum()) if not completed else 0,
            periods=self.blocks,
            extras={"num_channels": self.C, "oracle_termination": True},
        )


class MultiCastCColumns(ColumnProtocol):
    """Fig. 5 (``MultiCast(C)``, hence also the [14] single-channel baseline)
    lifted into the arena at physical-slot granularity.

    Virtual draws and the iteration schedule replicate the block engine's
    (``generator("nodes")``, blocks of ``block_slots`` virtual rows), so
    jam-free runs match :meth:`repro.core.limited.MultiCastC.run` bit for
    bit.  Each virtual slot is then *played out* as a round of ``S``
    physical sub-slots: a node whose virtual channel is ``k`` acts in
    sub-slot ``k // C`` on physical channel ``k % C`` — and a reactive Eve
    gets to sense and jam every physical slot individually, which the
    fold-based oblivious path cannot express.
    """

    emits_beacons = False

    def __init__(self, proto: MultiCastC, seed: int):
        self.proto = proto
        self.n = proto.n
        self.C_virt = proto.num_channels
        self.C_phys = proto.C
        self.S = proto.slots_per_round
        self.rng = RandomFabric(seed).generator("nodes")
        self.informed = np.zeros(self.n, dtype=bool)
        self.informed[0] = True
        self.active = np.ones(self.n, dtype=bool)
        self.informed_slot = np.full(self.n, -1, dtype=np.int64)
        self.informed_slot[0] = 0
        self.halt_slot = np.full(self.n, -1, dtype=np.int64)
        self.noisy = np.zeros(self.n, dtype=np.int64)
        self.halted_uninformed = 0
        self.i = proto.start_iteration
        self.iterations_run = 0
        self.capped = False
        self._done = False
        self._q = 0  # physical sub-slot within the round
        self._subslot_ids = np.arange(self.S, dtype=np.int64)[:, None]
        self._start_iteration()

    def _start_iteration(self) -> None:
        self.R = self.proto.iteration_length(self.i)
        self.p = self.proto.listen_prob(self.i)
        self.threshold = self.R * self.p * self.proto.NOISE_THRESHOLD
        self._remaining = self.R
        self._load_block()

    def _load_block(self) -> None:
        K = min(self.proto.block_slots, self._remaining)
        self._vch = self.rng.integers(0, self.C_virt, size=(K, self.n), dtype=np.int32)
        self._vcoin = self.rng.random((K, self.n))
        # coin thresholds are fixed for the iteration: classify the whole
        # block once so window expansion touches bools, not floats
        self._vlisten = self._vcoin < self.p
        self._vsendish = ~self._vlisten & (self._vcoin < 2 * self.p)
        self._vphys = self._vch % self.C_phys
        self._vsub = self._vch // self.C_phys
        self._K = K
        self._r = 0  # virtual row within the block
        self._round_actions()

    def _round_actions(self) -> None:
        """Fix the round's virtual actions from the current informed set —
        the shared-coin rule of :func:`repro.core.runner.shared_coin_actions` —
        and expand them into one action column per physical sub-slot."""
        vact = np.zeros(self.n, dtype=np.int8)
        vact[self._vlisten[self._r] & self.active] = ACT_LISTEN
        send = self._vsendish[self._r] & self.informed & self.active
        vact[send] = ACT_SEND_MSG
        self._phys_ch = self._vphys[self._r].astype(np.int64)
        subslot = self._vsub[self._r].astype(np.int64)
        # (S, n): sub-slot q's column holds each node's action iff it acts in q
        self._sub_acts = np.where(
            subslot[None, :] == self._subslot_ids, vact[None, :], np.int8(0)
        )
        self._listen_subs = (self._sub_acts == ACT_LISTEN).any(axis=1)
        self._send_subs = (self._sub_acts == ACT_SEND_MSG).any(axis=1)

    def current_channels(self) -> int:
        return self.C_phys

    def begin_slot(self, slot: int) -> Tuple[np.ndarray, np.ndarray, bool, bool]:
        q = self._q
        return (
            self._phys_ch,
            self._sub_acts[q],
            bool(self._listen_subs[q]),
            bool(self._send_subs[q]),
        )

    def end_slot(self, slot: int, feedback: Optional[np.ndarray]) -> None:
        if feedback is not None:
            hear = (feedback == FB_MSG) & ~self.informed
            if hear.any():
                self.informed |= hear
                # virtual-slot semantics: the event is attributed to the round,
                # i.e. the physical slot the round started at (the block engine
                # records slot0 + row * S); actions of later rounds pick the
                # new informed set up in _round_actions
                self.informed_slot[hear] = slot - self._q
            self.noisy += feedback == FB_NOISE
        self._q += 1
        if self._q < self.S:
            return
        self._q = 0
        self._r += 1
        self._remaining -= 1
        if self._r < self._K:
            self._round_actions()
            return
        if self._remaining > 0:
            self._load_block()
            return
        self._end_iteration(slot)

    def _end_iteration(self, last_slot: int) -> None:
        """Iteration-boundary bookkeeping; ``last_slot`` is the iteration's
        final physical slot."""
        halt_now = self.active & (self.noisy < self.threshold)
        self.halted_uninformed += int((halt_now & ~self.informed).sum())
        self.halt_slot[halt_now] = last_slot + 1
        self.active &= ~halt_now
        self.noisy[:] = 0
        self.iterations_run += 1
        self.i += 1
        if (
            self.proto.max_iterations is not None
            and self.iterations_run >= self.proto.max_iterations
        ):
            self.capped = True
        if self.capped or not self.active.any():
            self._done = True
        else:
            self._start_iteration()

    # -- window interface -------------------------------------------------------
    supports_windows = True

    def begin_window(self, slot: int, limit: int) -> Tuple[np.ndarray, np.ndarray]:
        limit = int(limit)
        S, n = self.S, self.n
        q0 = self._q
        self._win_q0 = q0
        head = S - q0  # physical slots left in the already-expanded round
        first_act = self._sub_acts[q0:]
        rounds_left = self._K - self._r - 1
        extra = min((limit - head) // S, rounds_left) if limit > head else 0
        if extra <= 0:
            W = min(limit, head)
            return np.broadcast_to(self._phys_ch, (W, n)), first_act[:W]
        # expand further whole rounds of the loaded block from the virtual
        # draw matrices — speculative on the current informed/active sets
        rr = slice(self._r + 1, self._r + 1 + extra)
        vact = np.zeros((extra, n), dtype=np.int8)
        vact[self._vlisten[rr] & self.active[None, :]] = ACT_LISTEN
        send = (
            self._vsendish[rr] & self.informed[None, :] & self.active[None, :]
        )
        vact[send] = ACT_SEND_MSG
        phys = self._vphys[rr]
        sub = self._vsub[rr]
        # scatter each node's action into its sub-slot row: O(extra * n)
        # writes instead of an (extra, S, n) comparison grid
        acts3 = np.zeros((extra, self.S, n), dtype=np.int8)
        acts3[np.arange(extra)[:, None], sub, np.arange(n)[None, :]] = vact
        channels = np.concatenate(
            [np.broadcast_to(self._phys_ch, (head, n)), np.repeat(phys, S, axis=0)]
        )
        actions = np.concatenate([first_act, acts3.reshape(extra * S, n)])
        return channels, actions

    def absorb_window(self, slot: int, feedback: np.ndarray) -> int:
        W = feedback.shape[0]
        S = self.S
        q0 = self._win_q0
        head = S - q0
        if self.informed.all():
            events = _NO_EVENTS  # nobody left to inform: no truncation
        else:
            hear = (feedback == FB_MSG) & ~self.informed[None, :]
            events = np.nonzero(hear.any(axis=1))[0]
        if events.size:
            t_star = int(events[0])
            # absorb through the end of the event's round: round actions are
            # fixed at round entry (virtual-slot semantics), so later rows of
            # the same round stay valid; later *rounds* must be re-expanded
            rs = -q0 if t_star < head else head + ((t_star - head) // S) * S
            A = min(W, rs + S)
            heard = hear[max(rs, 0):A].any(axis=0)
            self.informed |= heard
            # the hearing is attributed to the round's first physical slot,
            # exactly like end_slot's ``slot - self._q``
            self.informed_slot[heard] = slot + rs
        else:
            A = W
        self.noisy += (feedback[:A] == FB_NOISE).sum(axis=0, dtype=np.int64)
        # positional advance, replaying the per-slot boundary cascade
        left = A
        stale = False
        while left > 0:
            take = min(left, S - self._q)
            self._q += take
            left -= take
            if self._q < S:
                break
            self._q = 0
            self._r += 1
            self._remaining -= 1
            if self._r < self._K:
                # the cached round expansion is one round behind now; rebuild
                # it once, after the loop (intermediate rounds were already
                # served speculatively and commit as-is — no event hit them)
                stale = True
                continue
            if self._remaining > 0:
                self._load_block()
                stale = False
                continue
            self._end_iteration(slot + A - 1)
            stale = False
        if stale and not self._done:
            self._round_actions()
        return A

    @property
    def done(self) -> bool:
        return self._done

    def result(self, net) -> BroadcastResult:
        completed = not self.capped and not net.overrun
        return BroadcastResult(
            protocol=self.proto.name,
            n=self.n,
            slots=net.clock,
            completed=completed and not self.active.any(),
            informed_slot=self.informed_slot.copy(),
            halt_slot=self.halt_slot.copy(),
            node_energy=net.energy.node_cost.copy(),
            adversary_spend=net.energy.adversary_spend,
            halted_uninformed=self.halted_uninformed,
            periods=self.iterations_run,
            extras={
                "num_channels": self.C_virt,
                "first_iteration": self.proto.start_iteration,
                "last_iteration": self.i - 1 if self.iterations_run else None,
                "physical_channels": self.C_phys,
                "slots_per_round": self.S,
            },
        )
