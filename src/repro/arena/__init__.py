"""The adaptive-adversary arena: reactive jammers as first-class experiments.

The paper proves its guarantees for an *oblivious* Eve and conjectures
(section 8) that the protocols survive an *adaptive* one "with few (or even
no) modifications".  The block engine cannot even express that question —
obliviousness is enforced structurally — and the readable per-node scalar
runtime is too slow to sweep.  This package is the probe:

* :mod:`~repro.arena.network` — :class:`ArenaNetwork`, a vectorized
  slot-stepped runtime: per slot, one ``(n,)`` channel column and one
  ``(n,)`` action column, a busy-mask query to the (possibly reactive)
  adversary, one single-slot kernel pass.  ~10x the scalar runtime at
  gallery scale (``benchmarks/bench_arena.py``).
* :mod:`~repro.arena.columns` — adapters lifting the reference protocols
  (bit-identical to the scalar oracles of :mod:`repro.core.reference`) and
  the baselines (bit-identical to the block engine on jam-free runs) into
  that runtime.
* :mod:`~repro.arena.run` — :func:`run_broadcast_adaptive`, the one-call
  entry point returning a standard
  :class:`~repro.core.result.BroadcastResult`.

Reactive jammers live in :mod:`repro.adversary.reactive` and are registered
in :mod:`repro.exp.registry` (``sniper``, ``trailing``, and the
``reactive:<latency>`` family), so ``run_trials`` / ``repro sweep`` /
``python -m repro arena`` accept them by name.  See DESIGN.md section 7 and
EXPERIMENTS.md section 8 for the measured oblivious-vs-adaptive record.
"""

from repro.arena.columns import (
    ColumnProtocol,
    DecayColumns,
    MultiCastAdvColumns,
    MultiCastCColumns,
    MultiCastColumns,
    MultiCastCoreColumns,
    NaiveColumns,
)
from repro.arena.network import ArenaLanes, ArenaNetwork, resolve_columns
from repro.arena.run import (
    lift_protocol,
    run_broadcast_adaptive,
    run_broadcast_windowed_batch,
    supports_protocol,
)
from repro.arena.window import WINDOW_CAP, run_windowed, windowable_adversary

__all__ = [
    "ArenaLanes",
    "ArenaNetwork",
    "ColumnProtocol",
    "DecayColumns",
    "MultiCastAdvColumns",
    "MultiCastCColumns",
    "MultiCastColumns",
    "MultiCastCoreColumns",
    "NaiveColumns",
    "WINDOW_CAP",
    "lift_protocol",
    "resolve_columns",
    "run_broadcast_adaptive",
    "run_broadcast_windowed_batch",
    "run_windowed",
    "supports_protocol",
    "windowable_adversary",
]
