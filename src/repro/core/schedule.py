"""Deterministic protocol timetables.

Every protocol in the paper is *channel-uniform* and has a deterministic slot
structure: iteration/phase boundaries depend only on the protocol parameters,
never on the execution.  An oblivious adversary knows the algorithm (paper
section 3), hence knows this timetable — the paper's section 6.1 argues Eve's
best play against ``MultiCastAdv`` is to concentrate on the phases whose
channel-count guess matches n.

This module computes those timetables so that:

* :class:`repro.adversary.strategies.PhaseTargetedJammer` can jam exactly the
  "good" phases (the EXP-T6.10 / EXP-T7.2 workloads); and
* analysis code can attribute slots/energy to iterations or phases.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

__all__ = [
    "IterationSpan",
    "PhaseSpan",
    "multicast_core_spans",
    "multicast_spans",
    "multicast_adv_spans",
    "phase_intervals",
]


@dataclass(frozen=True)
class IterationSpan:
    """One iteration of Figs. 1/2/5 in global physical slots (half-open)."""

    index: int  #: iteration number i
    start: int
    end: int
    R: int  #: iteration length in virtual slots (= rounds for Fig. 5)
    p: float  #: listen/broadcast probability
    num_channels: int  #: physical channels in use


@dataclass(frozen=True)
class PhaseSpan:
    """One (i, j)-phase of Figs. 4/6 in global physical slots (half-open)."""

    epoch: int
    phase: int
    start: int  #: first slot of step I
    step_boundary: int  #: first slot of step II
    end: int  #: one past the last slot of step II
    R: int  #: slots per step
    p: float
    num_channels: int  #: 2^j

    @property
    def step1(self) -> Tuple[int, int]:
        return (self.start, self.step_boundary)

    @property
    def step2(self) -> Tuple[int, int]:
        return (self.step_boundary, self.end)


def multicast_core_spans(protocol, max_iterations: int) -> List[IterationSpan]:
    """Timetable of a :class:`repro.core.multicast_core.MultiCastCore`."""
    spans = []
    clock = 0
    R = protocol.iteration_slots
    for it in range(1, max_iterations + 1):
        spans.append(
            IterationSpan(it, clock, clock + R, R, protocol.LISTEN_PROB, protocol.num_channels)
        )
        clock += R
    return spans


def multicast_spans(protocol, max_iterations: int) -> List[IterationSpan]:
    """Timetable of a :class:`repro.core.multicast.MultiCast` or
    :class:`repro.core.limited.MultiCastC` (physical slots either way)."""
    spans = []
    clock = 0
    slots_per_round = getattr(protocol, "slots_per_round", 1)
    channels = getattr(protocol, "C", protocol.num_channels)
    i = protocol.start_iteration
    for _ in range(max_iterations):
        R = protocol.iteration_length(i)
        length = R * slots_per_round
        spans.append(
            IterationSpan(i, clock, clock + length, R, protocol.listen_prob(i), channels)
        )
        clock += length
        i += 1
    return spans


def multicast_adv_spans(protocol, max_epochs: int) -> List[PhaseSpan]:
    """Timetable of a :class:`repro.core.multicast_adv.MultiCastAdv` (or the
    Fig. 6 variant — the phase cut-off is honoured automatically)."""
    spans = []
    clock = 0
    for i in range(protocol.first_epoch, protocol.first_epoch + max_epochs):
        for j in protocol.phases_of_epoch(i):
            R = protocol.phase_length(i, j)
            spans.append(
                PhaseSpan(
                    epoch=i,
                    phase=j,
                    start=clock,
                    step_boundary=clock + R,
                    end=clock + 2 * R,
                    R=R,
                    p=protocol.participation_prob(i, j),
                    num_channels=protocol.phase_channels(j),
                )
            )
            clock += 2 * R
    return spans


def phase_intervals(
    spans: List[PhaseSpan],
    *,
    phase: Optional[int] = None,
    step: Optional[int] = None,
    predicate: Optional[Callable[[PhaseSpan], bool]] = None,
) -> List[Tuple[int, int]]:
    """Extract half-open slot intervals from a phase timetable.

    ``phase`` filters on j (e.g. ``phase = lg n - 1`` selects the "good"
    phases Eve should target); ``step`` of 1 or 2 narrows to one step;
    ``predicate`` is an arbitrary extra filter.  The result feeds directly
    into :class:`repro.adversary.strategies.PhaseTargetedJammer`.
    """
    out = []
    for s in spans:
        if phase is not None and s.phase != phase:
            continue
        if predicate is not None and not predicate(s):
            continue
        if step is None:
            out.append((s.start, s.end))
        elif step == 1:
            out.append(s.step1)
        elif step == 2:
            out.append(s.step2)
        else:
            raise ValueError("step must be None, 1, or 2")
    return out
