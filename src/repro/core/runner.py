"""Shared vectorized block machinery for all five protocols.

The protocols differ in their period structure (iterations vs. epoch/phase
lattices) and bookkeeping, but the inner loop is identical: draw each node's
channel and coin for a block of slots, map (coin, status) to an action, resolve
contention, and react to "uninformed node heard the message" events.

Event handling is the performance-critical subtlety.  Channel and coin draws
are *status-independent* in every protocol (a node draws the same randomness
whether informed or not — only the interpretation changes), so when a node
becomes informed mid-block we can keep all draws, re-map actions from the
event slot onward, and re-resolve only the tail.  The informed set only grows,
so a block of K slots costs O(K·n) plus O(K·n) per informing event — in
practice a handful of tail re-resolutions per iteration instead of K Python
iterations.

``MultiCastAdv`` step two freezes statuses mid-step (paper section 6.2), which
is the no-event special case: one resolve per block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.sim.jam import JamBlock
from repro.sim.channel import (
    ACT_IDLE,
    ACT_LISTEN,
    ACT_SEND_BEACON,
    ACT_SEND_MSG,
    FB_BEACON,
    FB_MSG,
    FB_NOISE,
    FB_SILENCE,
    resolve_block,
)
from repro.sim.trace import TraceRecorder

__all__ = [
    "ActionBuilder",
    "BlockOutcome",
    "shared_coin_actions",
    "adv_step_one_actions",
    "adv_step_two_actions",
    "spread_block",
    "count_feedback",
]

#: Maps ``(coins, informed, active)`` to an ``(K, n)`` action matrix.
ActionBuilder = Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]


def shared_coin_actions(p: float) -> ActionBuilder:
    """Action rule of Figs. 1/2/5: everyone listens w.p. ``p``; informed nodes
    additionally broadcast ``m`` w.p. ``p``; uninformed nodes idle on the
    broadcast coin.  (Pseudocode: ``coin == 1`` -> listen; ``coin == 2`` and
    informed -> broadcast.)  Requires ``p <= 1/2``."""
    if not 0.0 < p <= 0.5:
        raise ValueError(f"listen/broadcast probability p={p} must be in (0, 1/2]")

    def build(coins: np.ndarray, informed: np.ndarray, active: np.ndarray) -> np.ndarray:
        actions = np.zeros(coins.shape, dtype=np.int8)
        act = active[None, :]
        listen = (coins < p) & act
        send = (coins >= p) & (coins < 2 * p) & informed[None, :] & act
        actions[listen] = ACT_LISTEN
        actions[send] = ACT_SEND_MSG
        return actions

    return build


def adv_step_one_actions(p: float) -> ActionBuilder:
    """Action rule of Fig. 4 step I: on coin success (prob ``p``) uninformed
    nodes listen and non-uninformed nodes broadcast ``m``; otherwise idle."""
    if not 0.0 < p <= 1.0:
        raise ValueError(f"participation probability p={p} must be in (0, 1]")

    def build(coins: np.ndarray, informed: np.ndarray, active: np.ndarray) -> np.ndarray:
        actions = np.zeros(coins.shape, dtype=np.int8)
        hit = (coins < p) & active[None, :]
        actions[hit & ~informed[None, :]] = ACT_LISTEN
        actions[hit & informed[None, :]] = ACT_SEND_MSG
        return actions

    return build


def adv_step_two_actions(p: float) -> ActionBuilder:
    """Action rule of Fig. 4 step II: listen w.p. ``p``; broadcast w.p. ``p``
    — the payload is the beacon ``+-`` for uninformed nodes and ``m`` for
    everyone else.  Statuses are frozen for the whole step, so this builder
    is used without the event loop."""
    if not 0.0 < p <= 0.5:
        raise ValueError(f"listen/broadcast probability p={p} must be in (0, 1/2]")

    def build(coins: np.ndarray, informed: np.ndarray, active: np.ndarray) -> np.ndarray:
        actions = np.zeros(coins.shape, dtype=np.int8)
        act = active[None, :]
        listen = (coins < p) & act
        send = (coins >= p) & (coins < 2 * p) & act
        actions[listen] = ACT_LISTEN
        actions[send & informed[None, :]] = ACT_SEND_MSG
        actions[send & ~informed[None, :]] = ACT_SEND_BEACON
        return actions

    return build


@dataclass
class BlockOutcome:
    """Result of resolving one block: final actions, feedback, new statuses."""

    actions: np.ndarray  #: (K, n) int8 — what each node actually did
    feedback: np.ndarray  #: (K, n) int8 — FB_* per node per slot
    informed: np.ndarray  #: (n,) bool — informed set after the block


def spread_block(
    channels: np.ndarray,
    coins: np.ndarray,
    jam: np.ndarray,
    informed: np.ndarray,
    active: np.ndarray,
    build_actions: ActionBuilder,
    *,
    learn: bool = True,
    slot0: int = 0,
    slot_scale: int = 1,
    informed_slot: Optional[np.ndarray] = None,
    trace: Optional[TraceRecorder] = None,
) -> BlockOutcome:
    """Resolve a block, flipping uninformed listeners to informed on the fly.

    Parameters
    ----------
    channels, coins:
        ``(K, n)`` draws; status-independent (see module docstring).
    jam:
        ``(K, C)`` adversary mask for these slots.
    informed, active:
        ``(n,)`` boolean status vectors *at block entry* (not modified).
    build_actions:
        One of the action rules above.
    learn:
        If False, statuses are frozen (Fig. 4 step II): one resolve, no events.
    slot0:
        Global slot index of the block's first row, for bookkeeping.
    slot_scale:
        Physical slots per row — 1 for the plain protocols; n/(2C) for the
        round-based Fig. 5 variant, so recorded slots stay physical.
    informed_slot:
        Optional ``(n,)`` int64 array updated in place with the global slot at
        which each newly informed node heard the message.
    trace:
        Optional recorder for growth events.
    """
    informed = informed.copy()
    jam = JamBlock.coerce(jam)
    K, n = coins.shape
    if not learn:
        actions = build_actions(coins, informed, active)
        feedback = resolve_block(channels, actions, jam)
        return BlockOutcome(actions, feedback, informed)

    actions_full = np.zeros((K, n), dtype=np.int8)
    feedback_full = np.full((K, n), -1, dtype=np.int8)
    t0 = 0
    while t0 < K:
        actions = build_actions(coins[t0:], informed, active)
        feedback = resolve_block(channels[t0:], actions, jam.slice(t0))
        can_learn = active & ~informed
        hears = (feedback == FB_MSG) & can_learn[None, :]
        event_rows = np.nonzero(hears.any(axis=1))[0]
        if event_rows.size == 0:
            actions_full[t0:] = actions
            feedback_full[t0:] = feedback
            break
        r = int(event_rows[0])
        actions_full[t0 : t0 + r + 1] = actions[: r + 1]
        feedback_full[t0 : t0 + r + 1] = feedback[: r + 1]
        newly = hears[r]
        informed |= newly
        event_slot = slot0 + (t0 + r) * slot_scale
        if informed_slot is not None:
            informed_slot[newly] = event_slot
        if trace is not None:
            trace.record_growth(event_slot, int(informed.sum()))
        t0 += r + 1
    return BlockOutcome(actions_full, feedback_full, informed)


def count_feedback(feedback: np.ndarray) -> dict:
    """Per-node counters over a block: noisy / silent / message / beacon-or-
    message listens — the N_n, N_s, N_m, N'_m of the pseudocode."""
    noise = (feedback == FB_NOISE).sum(axis=0, dtype=np.int64)
    silence = (feedback == FB_SILENCE).sum(axis=0, dtype=np.int64)
    msg = (feedback == FB_MSG).sum(axis=0, dtype=np.int64)
    beacon = (feedback == FB_BEACON).sum(axis=0, dtype=np.int64)
    return {"noise": noise, "silence": silence, "msg": msg, "msg_or_beacon": msg + beacon}
