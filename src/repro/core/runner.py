"""Shared vectorized block machinery for all five protocols.

The protocols differ in their period structure (iterations vs. epoch/phase
lattices) and bookkeeping, but the inner loop is identical: draw each node's
channel and coin for a block of slots, map (coin, status) to an action, resolve
contention, and react to "uninformed node heard the message" events.

Event handling is the performance-critical subtlety.  Channel and coin draws
are *status-independent* in every protocol (a node draws the same randomness
whether informed or not — only the interpretation changes), so when a node
becomes informed mid-block we can keep all draws, re-map actions from the
event slot onward, and re-resolve only the tail.  The informed set only grows,
so a block of K slots costs O(K·n) plus O(K·n) per informing event — in
practice a handful of tail re-resolutions per iteration instead of K Python
iterations.

``MultiCastAdv`` step two freezes statuses mid-step (paper section 6.2), which
is the no-event special case: one resolve per block.

The lane-batched counterpart :func:`spread_block_batch` runs ``B``
independent trials through shared kernel passes (DESIGN.md section 6); the
shared-coin protocols go further and skip matrix materialization entirely
via :mod:`repro.core.batch`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.sim.jam import JamBlock
from repro.sim.channel import (
    ACT_IDLE,
    ACT_LISTEN,
    ACT_SEND_BEACON,
    ACT_SEND_MSG,
    FB_BEACON,
    FB_MSG,
    FB_NOISE,
    FB_SILENCE,
    resolve_block,
)
from repro.sim.trace import TraceRecorder

__all__ = [
    "ActionBuilder",
    "BlockOutcome",
    "BatchBlockOutcome",
    "shared_coin_actions",
    "adv_step_one_actions",
    "adv_step_two_actions",
    "spread_block",
    "spread_block_batch",
    "count_feedback",
]

#: Maps ``(coins, informed, active)`` to an action matrix.  Builders are
#: shape-polymorphic over an optional leading lane axis: with ``(K, n)``
#: coins and ``(n,)`` statuses they return ``(K, n)`` actions; with
#: ``(B, K, n)`` coins and ``(B, n)`` statuses, ``(B, K, n)`` — the status
#: vectors broadcast as ``status[..., None, :]`` against the coins.
ActionBuilder = Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]


def shared_coin_actions(p: float) -> ActionBuilder:
    """Action rule of Figs. 1/2/5: everyone listens w.p. ``p``; informed nodes
    additionally broadcast ``m`` w.p. ``p``; uninformed nodes idle on the
    broadcast coin.  (Pseudocode: ``coin == 1`` -> listen; ``coin == 2`` and
    informed -> broadcast.)  Requires ``p <= 1/2``."""
    if not 0.0 < p <= 0.5:
        raise ValueError(f"listen/broadcast probability p={p} must be in (0, 1/2]")

    def build(coins: np.ndarray, informed: np.ndarray, active: np.ndarray) -> np.ndarray:
        actions = np.zeros(coins.shape, dtype=np.int8)
        act = active[..., None, :]
        listen = (coins < p) & act
        send = (coins >= p) & (coins < 2 * p) & informed[..., None, :] & act
        actions[listen] = ACT_LISTEN
        actions[send] = ACT_SEND_MSG
        return actions

    return build


def adv_step_one_actions(p: float) -> ActionBuilder:
    """Action rule of Fig. 4 step I: on coin success (prob ``p``) uninformed
    nodes listen and non-uninformed nodes broadcast ``m``; otherwise idle."""
    if not 0.0 < p <= 1.0:
        raise ValueError(f"participation probability p={p} must be in (0, 1]")

    def build(coins: np.ndarray, informed: np.ndarray, active: np.ndarray) -> np.ndarray:
        actions = np.zeros(coins.shape, dtype=np.int8)
        hit = (coins < p) & active[..., None, :]
        actions[hit & ~informed[..., None, :]] = ACT_LISTEN
        actions[hit & informed[..., None, :]] = ACT_SEND_MSG
        return actions

    return build


def adv_step_two_actions(p: float) -> ActionBuilder:
    """Action rule of Fig. 4 step II: listen w.p. ``p``; broadcast w.p. ``p``
    — the payload is the beacon ``+-`` for uninformed nodes and ``m`` for
    everyone else.  Statuses are frozen for the whole step, so this builder
    is used without the event loop."""
    if not 0.0 < p <= 0.5:
        raise ValueError(f"listen/broadcast probability p={p} must be in (0, 1/2]")

    def build(coins: np.ndarray, informed: np.ndarray, active: np.ndarray) -> np.ndarray:
        actions = np.zeros(coins.shape, dtype=np.int8)
        act = active[..., None, :]
        listen = (coins < p) & act
        send = (coins >= p) & (coins < 2 * p) & act
        actions[listen] = ACT_LISTEN
        actions[send & informed[..., None, :]] = ACT_SEND_MSG
        actions[send & ~informed[..., None, :]] = ACT_SEND_BEACON
        return actions

    return build


@dataclass
class BlockOutcome:
    """Result of resolving one block: final actions, feedback, new statuses."""

    actions: np.ndarray  #: (K, n) int8 — what each node actually did
    feedback: np.ndarray  #: (K, n) int8 — FB_* per node per slot
    informed: np.ndarray  #: (n,) bool — informed set after the block


def spread_block(
    channels: np.ndarray,
    coins: np.ndarray,
    jam: np.ndarray,
    informed: np.ndarray,
    active: np.ndarray,
    build_actions: ActionBuilder,
    *,
    learn: bool = True,
    slot0: int = 0,
    slot_scale: int = 1,
    informed_slot: Optional[np.ndarray] = None,
    trace: Optional[TraceRecorder] = None,
) -> BlockOutcome:
    """Resolve a block, flipping uninformed listeners to informed on the fly.

    Parameters
    ----------
    channels, coins:
        ``(K, n)`` draws; status-independent (see module docstring).
    jam:
        ``(K, C)`` adversary mask for these slots.
    informed, active:
        ``(n,)`` boolean status vectors *at block entry* (not modified).
    build_actions:
        One of the action rules above.
    learn:
        If False, statuses are frozen (Fig. 4 step II): one resolve, no events.
    slot0:
        Global slot index of the block's first row, for bookkeeping.
    slot_scale:
        Physical slots per row — 1 for the plain protocols; n/(2C) for the
        round-based Fig. 5 variant, so recorded slots stay physical.
    informed_slot:
        Optional ``(n,)`` int64 array updated in place with the global slot at
        which each newly informed node heard the message.
    trace:
        Optional recorder for growth events.
    """
    informed = informed.copy()
    jam = JamBlock.coerce(jam)
    K, n = coins.shape
    # Fast path: frozen statuses (Fig. 4 step II), or nobody left to inform —
    # once every active node is informed no event can fire, so the whole
    # event-scan/tail-re-resolve machinery (and the full-size actions/feedback
    # copies it needs) is skipped.  This is the steady state of every run
    # after dissemination completes.
    if not learn or not (active & ~informed).any():
        actions = build_actions(coins, informed, active)
        feedback = resolve_block(channels, actions, jam)
        return BlockOutcome(actions, feedback, informed)

    # Event loop.  The full-size output arrays are allocated lazily: the
    # common no-event block returns the first resolve's arrays directly
    # instead of copying them.
    actions_full: Optional[np.ndarray] = None
    feedback_full: Optional[np.ndarray] = None
    t0 = 0
    while t0 < K:
        actions = build_actions(coins[t0:], informed, active)
        feedback = resolve_block(channels[t0:], actions, jam.slice(t0))
        can_learn = active & ~informed
        hears = (feedback == FB_MSG) & can_learn[None, :]
        event_rows = np.nonzero(hears.any(axis=1))[0]
        if event_rows.size == 0:
            if actions_full is None:
                return BlockOutcome(actions, feedback, informed)
            actions_full[t0:] = actions
            feedback_full[t0:] = feedback
            break
        if actions_full is None:
            actions_full = np.zeros((K, n), dtype=np.int8)
            feedback_full = np.full((K, n), -1, dtype=np.int8)
        r = int(event_rows[0])
        actions_full[t0 : t0 + r + 1] = actions[: r + 1]
        feedback_full[t0 : t0 + r + 1] = feedback[: r + 1]
        newly = hears[r]
        informed |= newly
        event_slot = slot0 + (t0 + r) * slot_scale
        if informed_slot is not None:
            informed_slot[newly] = event_slot
        if trace is not None:
            trace.record_growth(event_slot, int(informed.sum()))
        t0 += r + 1
    return BlockOutcome(actions_full, feedback_full, informed)


@dataclass
class BatchBlockOutcome:
    """Result of resolving one block across ``B`` lanes."""

    actions: np.ndarray  #: (B, K, n) int8 — what each lane's nodes did
    feedback: np.ndarray  #: (B, K, n) int8 — FB_* per lane per node per slot
    informed: np.ndarray  #: (B, n) bool — per-lane informed sets after the block


def spread_block_batch(
    channels: np.ndarray,
    coins: np.ndarray,
    jam: JamBlock,
    informed: np.ndarray,
    active: np.ndarray,
    build_actions: ActionBuilder,
    *,
    learn: bool = True,
    slot0: Optional[np.ndarray] = None,
    slot_scale: int = 1,
    informed_slot: Optional[np.ndarray] = None,
) -> BatchBlockOutcome:
    """Lane-batched :func:`spread_block`: ``B`` independent trials, one pass.

    Parameters are the lane-stacked analogues of :func:`spread_block`:
    ``channels``/``coins`` are ``(B, K, n)``, ``informed``/``active`` are
    ``(B, n)``, ``jam`` is a lane-stacked :class:`repro.sim.jam.JamBlock` of
    ``B*K`` rows (or a dense ``(B, K, C)`` mask), ``slot0`` is the ``(B,)``
    per-lane global slot of row 0, and ``informed_slot`` — updated in place —
    is ``(B, n)``.

    The block is materialized in *waves* of short row windows, all lanes
    advancing together: one batched build+resolve per wave, a per-lane scan
    for "uninformed node heard m" events, and — after a lane's statuses can
    no longer change — one final pass over its remaining rows.  Windows grow
    geometrically through event-free stretches and reset after each event,
    so the work is O(rows kept) + O(events · window) instead of the scalar
    loop's O(events · tail).  Slot resolution is row-independent, so the
    kept rows are bit-identical to the scalar event loop's (same draws ->
    same actions, feedback, statuses and event slots per lane; see DESIGN.md
    section 6).  Trace recording is a scalar-path feature: callers that need
    growth traces run lanes individually.
    """
    B, K, n = coins.shape
    informed = informed.copy()
    jam = JamBlock.coerce(jam)
    if jam.K != B * K:
        raise ValueError(f"batched jam block has {jam.K} rows, expected B*K = {B * K}")
    if slot0 is None:
        slot0 = np.zeros(B, dtype=np.int64)
    if not learn or not (active & ~informed).any():
        actions = build_actions(coins, informed, active)
        feedback = resolve_block(channels, actions, jam)
        return BatchBlockOutcome(actions, feedback, informed)

    actions = np.empty((B, K, n), dtype=np.int8)
    feedback = np.empty((B, K, n), dtype=np.int8)
    cursor = np.zeros(B, dtype=np.int64)  # per lane: rows < cursor are final
    segment = np.full(B, EVENT_SEGMENT, dtype=np.int64)
    pending = np.ones(B, dtype=bool)
    watching = (active & ~informed).any(axis=1)  # lane still scans for events

    while pending.any():
        # Lanes whose statuses are settled: the rest of their rows are final.
        for lane in np.nonzero(pending & ~watching)[0]:
            start = int(cursor[lane])
            lane_actions = build_actions(coins[lane, start:], informed[lane], active[lane])
            actions[lane, start:] = lane_actions
            feedback[lane, start:] = resolve_block(
                channels[lane, start:], lane_actions, jam.slice(lane * K + start, (lane + 1) * K)
            )
            pending[lane] = False
        wave = np.nonzero(pending)[0]
        if wave.size == 0:
            break
        widths = np.minimum(segment[wave], K - cursor[wave])
        for width in np.unique(widths):
            group = wave[widths == width]
            W = int(width)
            starts = cursor[group]
            win_channels = np.stack(
                [channels[lane, s : s + W] for lane, s in zip(group, starts)]
            )
            win_coins = np.stack(
                [coins[lane, s : s + W] for lane, s in zip(group, starts)]
            )
            win_jam = JamBlock.stack(
                [jam.slice(lane * K + s, lane * K + s + W) for lane, s in zip(group, starts)]
            )
            win_actions = build_actions(win_coins, informed[group], active[group])
            win_feedback = resolve_block(win_channels, win_actions, win_jam)
            hears = (win_feedback == FB_MSG) & (active[group] & ~informed[group])[:, None, :]
            event_rows = hears.any(axis=2)  # (G, W)
            has_event = event_rows.any(axis=1)
            first_event = event_rows.argmax(axis=1)  # first True (0 if none)
            for g, lane in enumerate(group):
                start = int(starts[g])
                if not has_event[g]:
                    actions[lane, start : start + W] = win_actions[g]
                    feedback[lane, start : start + W] = win_feedback[g]
                    cursor[lane] = start + W
                    segment[lane] *= 4  # event-free: stride farther next wave
                else:
                    r = int(first_event[g])
                    actions[lane, start : start + r + 1] = win_actions[g, : r + 1]
                    feedback[lane, start : start + r + 1] = win_feedback[g, : r + 1]
                    newly = hears[g, r]
                    informed[lane] |= newly
                    if informed_slot is not None:
                        informed_slot[lane][newly] = slot0[lane] + (start + r) * slot_scale
                    cursor[lane] = start + r + 1
                    segment[lane] = EVENT_SEGMENT
                    watching[lane] = (active[lane] & ~informed[lane]).any()
                if cursor[lane] >= K:
                    pending[lane] = False
    return BatchBlockOutcome(actions, feedback, informed)


#: First row-window length of the wave loop in :func:`spread_block_batch`;
#: windows grow 4x through event-free waves and reset to this after each
#: event, bounding both the per-event waste (<= one window) and the number
#: of waves an event-free block needs (logarithmic).
EVENT_SEGMENT = 64


def count_feedback(feedback: np.ndarray) -> dict:
    """Per-node counters over a block: noisy / silent / message / beacon-or-
    message listens — the N_n, N_s, N_m, N'_m of the pseudocode.  Sums over
    the slot axis, so ``(K, n)`` feedback yields ``(n,)`` counters and a
    lane-batched ``(B, K, n)`` block yields ``(B, n)``."""
    noise = (feedback == FB_NOISE).sum(axis=-2, dtype=np.int64)
    silence = (feedback == FB_SILENCE).sum(axis=-2, dtype=np.int64)
    msg = (feedback == FB_MSG).sum(axis=-2, dtype=np.int64)
    beacon = (feedback == FB_BEACON).sum(axis=-2, dtype=np.int64)
    return {"noise": noise, "silence": silence, "msg": msg, "msg_or_beacon": msg + beacon}
