"""Pseudocode-literal scalar implementations (differential-test oracles).

These classes transcribe the paper's Figures 1, 2 and 4 line by line, one
object per node, one decision per slot, using the scalar runtime of
:mod:`repro.sim.node`.  They are deliberately slow and simple: their job is to
certify the semantics of the vectorized implementations in this package (the
two share the channel-resolution kernel but nothing else), and to serve as
documentation you can read next to the paper.

The RNG streams differ from the vectorized runners (per-node generators here
versus one block matrix there), so differential tests against *those* compare
behaviour — success, informedness, energy statistics, halting structure —
over seeds, not bitwise traces.

The adaptive-arena runtime (:mod:`repro.arena`) is different: its column
adapters consume the *same* per-node streams — the Figs. 1/2 nodes through
the shared chunked draw discipline (:class:`PeriodDraws`), the Fig. 4 node
by mirroring its per-slot draws — so arena runs are **bit-identical** to
these oracles — same feedback, energy books and halt slots for the same
seeds — which is what the arena parity suite asserts.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.core.multicast_adv import MultiCastAdv
from repro.core.result import BroadcastResult
from repro.sim.channel import ACT_IDLE, ACT_LISTEN, ACT_SEND_BEACON, ACT_SEND_MSG
from repro.sim.channel import FB_BEACON, FB_MSG, FB_NOISE, FB_SILENCE
from repro.sim.node import NodeProtocol, ScalarNetwork
from repro.sim.rng import RandomFabric

__all__ = [
    "DRAW_CHUNK",
    "PeriodDraws",
    "ScalarMultiCastCoreNode",
    "ScalarMultiCastNode",
    "ScalarMultiCastAdvNode",
    "run_scalar_multicast_core",
    "run_scalar_multicast",
    "run_scalar_multicast_adv",
]

#: Rows per vectorized draw call when pre-fetching a period's randomness.
#: Part of the randomness *contract*, not just a buffer size: a node's stream
#: is consumed as channel-chunk then coin-chunk, in chunks of this length
#: anchored at the period start.  The Figs. 1/2 arena column adapters
#: (:mod:`repro.arena.columns`) replicate exactly this consumption pattern,
#: which is what makes their arena runs bit-identical to these oracles.
DRAW_CHUNK = 8192


class PeriodDraws:
    """One node's pre-drawn randomness for one period (iteration or step).

    NumPy generators consume their bit stream element-wise, so drawing a
    period's channels and coins in vectorized chunks yields the same values
    as per-slot scalar draws — while letting both this scalar runtime and the
    vectorized arena share one draw discipline.  Chunking (rather than one
    ``R``-sized draw) keeps memory bounded for the late, enormous iterations
    of ``MultiCast`` under heavy jamming.

    ``coin_high=None`` draws float coins in [0, 1); an integer draws coins
    uniformly from ``[1, coin_high]`` (the Figs. 1/2 integer coins).
    """

    def __init__(self, rng: np.random.Generator, R: int, num_channels: int,
                 coin_high: Optional[int] = None):
        self.rng = rng
        self.R = int(R)
        self.num_channels = int(num_channels)
        self.coin_high = coin_high
        self._base = 0  # period-absolute index of the loaded chunk's first row
        self._pos = 0  # next row within the loaded chunk
        self._load()

    def _load(self) -> None:
        k = min(DRAW_CHUNK, self.R - self._base)
        self.channels = self.rng.integers(0, self.num_channels, size=k)
        if self.coin_high is None:
            self.coins = self.rng.random(k)
        else:
            self.coins = self.rng.integers(1, self.coin_high + 1, size=k)

    def take(self):
        """Return this slot's ``(channel, coin)`` and advance the cursor."""
        if self._pos == self.channels.shape[0]:
            self._base += self.channels.shape[0]
            self._pos = 0
            self._load()
        ch = int(self.channels[self._pos])
        coin = self.coins[self._pos]
        self._pos += 1
        return ch, coin


class ScalarMultiCastCoreNode(NodeProtocol):
    """Fig. 1, verbatim: fixed iterations of R slots, p = 1/64, halt iff the
    iteration's noisy count is below R/128."""

    def __init__(self, n: int, R: int, *, is_source: bool, rng: np.random.Generator):
        self.n = n
        self.R = R
        self.rng = rng
        self.informed = is_source  # status == in
        self._halted = False
        self.noisy = 0  # N_n for the current iteration
        self.slot_in_iteration = 0
        self.halt_slot: Optional[int] = None
        self.informed_slot: Optional[int] = 0 if is_source else None
        self._draws = PeriodDraws(rng, R, n // 2, coin_high=64)

    @property
    def halted(self) -> bool:
        return self._halted

    def begin_slot(self, slot: int):
        if self._halted:
            return 0, ACT_IDLE
        ch, coin = self._draws.take()  # ch <- rnd(1, n/2); coin <- rnd(1, 64)
        if coin == 1:
            return ch, ACT_LISTEN
        if coin == 2 and self.informed:
            return ch, ACT_SEND_MSG
        return ch, ACT_IDLE

    def end_slot(self, slot: int, feedback: int):
        if not self._halted:
            if feedback == FB_NOISE:
                self.noisy += 1
            elif feedback == FB_MSG and not self.informed:
                self.informed = True
                self.informed_slot = slot
        self.slot_in_iteration += 1
        if self.slot_in_iteration == self.R:  # end of iteration
            if not self._halted and self.noisy < self.R / 128:
                self._halted = True
                self.halt_slot = slot + 1
            self.noisy = 0
            self.slot_in_iteration = 0
            if not self._halted:
                self._draws = PeriodDraws(self.rng, self.R, self.n // 2, coin_high=64)


class ScalarMultiCastNode(NodeProtocol):
    """Fig. 2, verbatim: growing iterations R_i = a·i·4^i·lg²n, p_i = 2^-i,
    halt iff N_n < R_i·p_i/2 = R_i/2^{i+1}."""

    def __init__(self, n: int, a: float, *, is_source: bool, rng: np.random.Generator, start_iteration: int = 6):
        self.n = n
        self.a = a
        self.rng = rng
        self.informed = is_source
        self._halted = False
        self.i = start_iteration
        self.R = self._length(self.i)
        self.noisy = 0
        self.slot_in_iteration = 0
        self.halt_slot: Optional[int] = None
        self.informed_slot: Optional[int] = 0 if is_source else None
        self._draws = PeriodDraws(rng, self.R, n // 2, coin_high=2**self.i)

    def _length(self, i: int) -> int:
        return max(1, math.ceil(self.a * i * 4**i * math.log2(self.n) ** 2))

    @property
    def halted(self) -> bool:
        return self._halted

    def begin_slot(self, slot: int):
        if self._halted:
            return 0, ACT_IDLE
        ch, coin = self._draws.take()  # ch <- rnd(1, n/2); coin <- rnd(1, 2^i)
        if coin == 1:
            return ch, ACT_LISTEN
        if coin == 2 and self.informed:
            return ch, ACT_SEND_MSG
        return ch, ACT_IDLE

    def end_slot(self, slot: int, feedback: int):
        if not self._halted:
            if feedback == FB_NOISE:
                self.noisy += 1
            elif feedback == FB_MSG and not self.informed:
                self.informed = True
                self.informed_slot = slot
        self.slot_in_iteration += 1
        if self.slot_in_iteration == self.R:
            if not self._halted and self.noisy < self.R / 2 ** (self.i + 1):
                self._halted = True
                self.halt_slot = slot + 1
            self.i += 1
            self.R = self._length(self.i)
            self.noisy = 0
            self.slot_in_iteration = 0
            if not self._halted:
                self._draws = PeriodDraws(
                    self.rng, self.R, self.n // 2, coin_high=2**self.i
                )


class ScalarMultiCastAdvNode(NodeProtocol):
    """Fig. 4, verbatim, including the four counters and the three end-of-
    step-two checks.  Phase progression (epoch i, phase j, step, slot-in-step)
    is tracked per node; all nodes advance in lockstep because the timetable
    is deterministic.

    Unlike the Figs. 1/2 nodes above, this class keeps the original per-slot
    draw order (channel then coin, one slot at a time) instead of the
    chunked :class:`PeriodDraws` discipline: the committed w.h.p. tests pin
    this node's behaviour per seed, and the arena adapter replicates the
    per-slot consumption instead (``MultiCastAdv`` is minutes-per-trial
    either way; the arena's speed target concerns the gallery-scale
    protocols).
    """

    UN, IN, HELPER, HALT = 0, 1, 2, 3

    def __init__(self, proto: MultiCastAdv, *, is_source: bool, rng: np.random.Generator):
        self.proto = proto
        self.rng = rng
        self.status = self.IN if is_source else self.UN
        self.i = proto.first_epoch
        self.phase_seq = list(proto.phases_of_epoch(self.i))
        self.phase_idx = 0
        self.step = 1
        self.slot_in_step = 0
        self.i_hat: Optional[int] = None
        self.j_hat: Optional[int] = None
        self.n_m = self.n_mb = self.n_n = self.n_s = 0
        self.halt_slot: Optional[int] = None
        self.informed_slot: Optional[int] = 0 if is_source else None

    # -- helpers -------------------------------------------------------------
    @property
    def j(self) -> int:
        return self.phase_seq[self.phase_idx]

    @property
    def halted(self) -> bool:
        return self.status == self.HALT

    def current_channels(self) -> int:
        return self.proto.phase_channels(self.j)

    def begin_slot(self, slot: int):
        if self.halted:
            return 0, ACT_IDLE
        p = self.proto.participation_prob(self.i, self.j)
        ch = int(self.rng.integers(0, self.proto.phase_channels(self.j)))
        coin = self.rng.random()
        if self.step == 1:
            if coin < p:
                if self.status == self.UN:
                    return ch, ACT_LISTEN
                return ch, ACT_SEND_MSG
            return ch, ACT_IDLE
        # step two
        if coin < p:
            return ch, ACT_LISTEN
        if coin < 2 * p:
            if self.status == self.UN:
                return ch, ACT_SEND_BEACON
            return ch, ACT_SEND_MSG
        return ch, ACT_IDLE

    def end_slot(self, slot: int, feedback: int):
        if not self.halted:
            if self.step == 1:
                if feedback == FB_MSG and self.status == self.UN:
                    self.status = self.IN
                    self.informed_slot = slot
            else:
                if feedback == FB_MSG:
                    self.n_m += 1
                    self.n_mb += 1
                elif feedback == FB_BEACON:
                    self.n_mb += 1
                elif feedback == FB_NOISE:
                    self.n_n += 1
                elif feedback == FB_SILENCE:
                    self.n_s += 1
        self._advance(slot)

    def _advance(self, slot: int) -> None:
        self.slot_in_step += 1
        R = self.proto.phase_length(self.i, self.j)
        if self.slot_in_step < R:
            return
        self.slot_in_step = 0
        if self.step == 1:
            self.step = 2
            self.n_m = self.n_mb = self.n_n = self.n_s = 0
            return
        # end of step two: the three checks (pseudocode lines 21-23 / 21-25)
        if not self.halted:
            R = self.proto.phase_length(self.i, self.j)
            p = self.proto.participation_prob(self.i, self.j)
            rp, rp2 = R * p, R * p * p
            if self.status == self.UN and self.n_m >= 1:
                self.status = self.IN
                self.informed_slot = slot + 1
            if self.status == self.IN:
                at_cutoff = self.proto.max_phase is not None and self.j == self.proto.max_phase
                ok = (
                    self.n_m >= self.proto.HELPER_MSG_FACTOR * rp2
                    and self.n_s >= self.proto.HELPER_SILENCE_FACTOR * rp
                )
                if not at_cutoff:
                    ok = ok and self.n_mb <= self.proto.HELPER_BEACON_CEIL * rp2
                if ok:
                    self.status = self.HELPER
                    self.i_hat, self.j_hat = self.i, self.j
            if (
                self.status == self.HELPER
                and self.i_hat is not None
                and self.i - self.i_hat >= self.proto.helper_wait
                and self.j == self.j_hat
                and self.n_n <= rp / self.proto.halt_noise_divisor
            ):
                self.status = self.HALT
                self.halt_slot = slot + 1
        # move to the next phase / epoch
        self.step = 1
        self.phase_idx += 1
        if self.phase_idx >= len(self.phase_seq):
            self.i += 1
            self.phase_seq = list(self.proto.phases_of_epoch(self.i))
            self.phase_idx = 0


# -- scalar execution drivers ----------------------------------------------------


def _scalar_result(name, n, net: ScalarNetwork, nodes, periods: int) -> BroadcastResult:
    informed_slot = np.array(
        [(-1 if node.informed_slot is None else node.informed_slot) for node in nodes],
        dtype=np.int64,
    )
    halt_slot = np.array(
        [(-1 if node.halt_slot is None else node.halt_slot) for node in nodes],
        dtype=np.int64,
    )
    halted = np.array([node.halted for node in nodes])
    return BroadcastResult(
        protocol=name,
        n=n,
        slots=net.clock,
        completed=bool(halted.all()),
        informed_slot=informed_slot,
        halt_slot=halt_slot,
        node_energy=net.energy.node_cost.copy(),
        adversary_spend=net.energy.adversary_spend,
        halted_uninformed=int((halted & (informed_slot < 0)).sum()),
        periods=periods,
        extras={"scalar_reference": True, "overrun": net.overrun},
    )


def run_scalar_multicast_core(
    n: int,
    T: int,
    adversary=None,
    *,
    a: float = 64.0,
    seed: int = 0,
    max_slots: int = 200_000,
) -> BroadcastResult:
    """Run the Fig. 1 oracle end to end (slow; small instances only)."""
    fabric = RandomFabric(seed)
    t_hat = max(T, n)
    R = max(1, math.ceil(a * math.log2(max(2, t_hat))))
    nodes = [
        ScalarMultiCastCoreNode(n, R, is_source=(u == 0), rng=fabric.generator("node", u))
        for u in range(n)
    ]
    if adversary is not None:
        adversary.reset()
    net = ScalarNetwork(nodes, adversary, max_slots=max_slots)
    slots = net.run(n // 2)
    return _scalar_result("MultiCastCore[scalar]", n, net, nodes, periods=slots // R)


def run_scalar_multicast(
    n: int,
    adversary=None,
    *,
    a: float = 0.01,
    start_iteration: int = 6,
    seed: int = 0,
    max_slots: int = 500_000,
) -> BroadcastResult:
    """Run the Fig. 2 oracle end to end (slow; small instances only)."""
    fabric = RandomFabric(seed)
    nodes = [
        ScalarMultiCastNode(
            n, a, is_source=(u == 0), rng=fabric.generator("node", u),
            start_iteration=start_iteration,
        )
        for u in range(n)
    ]
    if adversary is not None:
        adversary.reset()
    net = ScalarNetwork(nodes, adversary, max_slots=max_slots)
    net.run(n // 2)
    periods = max(node.i - start_iteration for node in nodes)
    return _scalar_result("MultiCast[scalar]", n, net, nodes, periods=periods)


def run_scalar_multicast_adv(
    proto: MultiCastAdv,
    n: int,
    adversary=None,
    *,
    seed: int = 0,
    max_slots: int = 500_000,
) -> BroadcastResult:
    """Run the Fig. 4/6 oracle end to end (slow; small instances only)."""
    fabric = RandomFabric(seed)
    nodes = [
        ScalarMultiCastAdvNode(proto, is_source=(u == 0), rng=fabric.generator("node", u))
        for u in range(n)
    ]
    if adversary is not None:
        adversary.reset()
    net = ScalarNetwork(nodes, adversary, max_slots=max_slots)
    # All nodes share one deterministic timetable and advance in lockstep, so
    # any still-active node's view of the channel count is authoritative.
    net.run(lambda _slot: _first_active_channels(nodes))
    periods = max(node.i - proto.first_epoch for node in nodes)
    return _scalar_result(proto.name + "[scalar]", n, net, nodes, periods=periods)


def _first_active_channels(nodes: List[ScalarMultiCastAdvNode]) -> int:
    for node in nodes:
        if not node.halted:
            return node.current_channels()
    return 1
