"""Lane-batched block kernel for ``MultiCastAdv`` / ``MultiCastAdvC``.

The Fig. 4/6 protocols were the last family running scalar-only: their
epoch/phase lattice (unlike the Figs. 1/2/5 iteration loop) has two steps
per phase, four feedback counters, and a channel count that grows without
bound — but none of that resists the lane axis, because all lanes share one
deterministic timetable and advance through the same (i, j) phases in
lockstep.  This module is the DESIGN.md section 9 kernel:

* :func:`_adv_step_one_block` — step I (dissemination) for one block of
  every lane.  A node participates iff its coin clears ``p`` (uninformed ->
  listen, informed -> broadcast ``m``), so the kernel extracts the ~``pKn``
  participating ``(lane, row, node)`` triples once and resolves the
  "uninformed node heard m" events as a per-lane earliest-event loop over
  sorted cell keys — the exact fixed point of the scalar tail re-resolution
  in :func:`repro.core.runner.spread_block`, without materializing
  ``(L, K, n)`` action or feedback matrices.  Once dissemination completes
  (the steady state of every run) there are no listeners and the block
  reduces to one send-count ``bincount``.
* :func:`_adv_step_two_block` — step II (status adjustment).  Statuses are
  frozen for the whole step, so the four counters N_m, N'_m, N_n, N_s are a
  pure function of the draws and the jam mask: one participant extraction,
  one sorted-key broadcaster count per payload (``m`` vs the beacon ``±``),
  one jam lookup, four ``bincount`` reductions — the sparse analogue of the
  3-D ``resolve_block`` + ``count_feedback`` pass, vectorized across lanes
  *and* across the R(i, j) slots of the phase.
* :func:`run_adv_batch` — the epoch/phase driver mirroring
  :meth:`repro.core.multicast_adv.MultiCastAdv.run` lane-by-lane, with the
  end-of-phase checks applied through the *shared*
  :func:`repro.core.multicast_adv.apply_phase_checks` (one implementation of
  the threshold comparisons for both paths), and per-lane ``max_slots``
  overruns masking lanes out mid-phase exactly where the scalar
  ``SlotLimitExceeded`` lands.

Determinism contract (DESIGN.md section 9, enforced by
``tests/core/test_batch_equivalence.py``): lane ``l`` is **bit-identical**
to ``run_broadcast(proto, n, adversaries[l], seed=seeds[l])`` — same draw
order (per block: one ``(K, n)`` channel draw then one ``(K, n)`` coin draw,
``K = min(block_slots, remaining)``, from the lane's own generator), same
slots, statuses, event slots, energy books, periods and extras.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

from repro.obs.recorder import active as _obs_active
from repro.core.multicast_adv import (
    STATUS_HALT,
    STATUS_IN,
    STATUS_UN,
    apply_phase_checks,
)
from repro.core.result import BroadcastResult
from repro.sim.engine import BatchNetwork
from repro.sim.jam import JamBlock

__all__ = ["run_adv_batch"]


def _participants(coins: np.ndarray, channels: np.ndarray, active: np.ndarray,
                  threshold: float, C: int) -> Tuple[np.ndarray, ...]:
    """Extract the ``(lane, row, node)`` triples whose coin clears
    ``threshold`` (masked to active nodes), plus their flat cell keys in the
    lane-stacked jam key space ``(lane*K + row) * C + channel``."""
    L, K, n = coins.shape
    hit = coins < threshold
    if not active.all():
        hit &= active[:, None, :]
    flat = np.flatnonzero(hit)
    lane = flat // (K * n)
    row = (flat // n) % K
    node = flat % n
    cell = (lane * np.int64(K) + row) * np.int64(C) + channels.ravel()[flat]
    return flat, lane, row, node, cell


def _counts_by_node(lane: np.ndarray, node: np.ndarray, mask: np.ndarray,
                    L: int, n: int) -> np.ndarray:
    """``(L, n)`` occurrence counts of the masked hits."""
    return np.bincount(
        (lane[mask] * n + node[mask]), minlength=L * n
    ).reshape(L, n)


def _count_at(sorted_cells: np.ndarray, query: np.ndarray) -> np.ndarray:
    """How many entries of the sorted key array equal each query key."""
    if not sorted_cells.size:
        return np.zeros(query.shape[0], dtype=np.int64)
    lo = np.searchsorted(sorted_cells, query, side="left")
    hi = np.searchsorted(sorted_cells, query, side="right")
    return hi - lo


def _adv_step_one_block(
    channels: np.ndarray,
    coins: np.ndarray,
    jam: JamBlock,
    informed: np.ndarray,
    active: np.ndarray,
    p: float,
    *,
    slot0: np.ndarray,
    informed_slot: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Resolve one step-I block of every lane, returning
    ``(listen_counts, send_counts, informed)``.

    Inputs are lane-stacked: ``channels``/``coins`` are ``(L, K, n)``,
    ``informed``/``active``/``informed_slot`` are ``(L, n)`` (the latter
    updated in place with event slots), ``jam`` is the lanes' stacked
    :class:`~repro.sim.jam.JamBlock` of ``L*K`` rows, ``slot0`` each lane's
    global slot of row 0.

    The step-I action rule makes the *same draw* a listen or a send
    depending on when its node learned ``m`` (captured as a per-node
    informing row; -1 = knew at entry, K = never in this block): a hit is a
    send iff its row is past its node's informing row, a listen otherwise.
    An uninformed listener hears ``m`` iff its (row, cell) holds exactly one
    current send and no jamming.  Events only add sends at rows *past* the
    informing row being set, so processing the earliest hearing per lane
    (all hearers of that row flip together) and rescanning past it reaches
    exactly the fixed point of the scalar event loop, with every lane
    advancing one event per pass.  Dissemination needs at most n-1 events
    per lane per run, and the expensive late phases have none.
    """
    L, K, n = coins.shape
    flat, lane, row, node, cell = _participants(coins, channels, active, p, jam.C)
    jam_at = jam.lookup_keys(cell)

    NEVER = np.int64(K)  # sentinel informing row: not informed in this block
    informing_row = np.where(informed, np.int64(-1), NEVER)  # (L, n)
    frontier = np.full(L, -1, dtype=np.int64)  # rows <= frontier are settled
    while True:
        inf_at_hit = informing_row[lane, node]
        listeners = (inf_at_hit == NEVER) & (row > frontier[lane])
        if not listeners.any():
            break
        send_cells = np.sort(cell[row > inf_at_hit])
        heard = (_count_at(send_cells, cell[listeners]) == 1) & ~jam_at[listeners]
        if not heard.any():
            break
        h_idx = np.nonzero(listeners)[0][heard]
        h_lane = lane[h_idx]
        h_row = row[h_idx]
        # earliest hearing row per lane: h_idx is (lane, row, node)-sorted,
        # so the first index per lane carries its smallest row
        ev_lanes, first = np.unique(h_lane, return_index=True)
        ev_row = h_row[first]
        # every hearer of that exact row flips together (scalar: hears[r])
        ev = h_row == ev_row[np.searchsorted(ev_lanes, h_lane)]
        informing_row[h_lane[ev], node[h_idx][ev]] = h_row[ev]
        frontier[ev_lanes] = ev_row

    if informed_slot is not None:
        new_lane, new_node = np.nonzero((informing_row >= 0) & (informing_row < NEVER))
        informed_slot[new_lane, new_node] = (
            slot0[new_lane] + informing_row[new_lane, new_node]
        )

    sends = row > informing_row[lane, node]
    send_counts = _counts_by_node(lane, node, sends, L, n)
    listen_counts = _counts_by_node(lane, node, ~sends, L, n)
    return listen_counts, send_counts, informing_row < NEVER


def _adv_step_two_block(
    channels: np.ndarray,
    coins: np.ndarray,
    jam: JamBlock,
    informed: np.ndarray,
    active: np.ndarray,
    p: float,
) -> Tuple[np.ndarray, np.ndarray, dict]:
    """Resolve one step-II block of every lane, returning
    ``(listen_counts, send_counts, counters)`` with ``counters`` holding the
    ``(L, n)`` N_m / N'_m / N_n / N_s increments.

    Statuses are frozen (paper section 6.2), so there is no event loop: a
    hit listens below ``p`` and broadcasts in ``[p, 2p)`` — the payload is
    ``m`` for informed nodes and the beacon ``±`` otherwise — and each
    listen classifies exactly as :func:`repro.sim.channel.resolve_block`
    would: noise iff its cell is jammed or holds >= 2 broadcasts, else the
    payload of its single broadcaster, else silence.
    """
    L, K, n = coins.shape
    flat, lane, row, node, cell = _participants(coins, channels, active, 2 * p, jam.C)
    is_listen = coins.ravel()[flat] < p
    listen_counts = _counts_by_node(lane, node, is_listen, L, n)
    send_counts = _counts_by_node(lane, node, ~is_listen, L, n)

    sender_informed = informed[lane, node] & ~is_listen
    sender_beacon = ~informed[lane, node] & ~is_listen
    msg_cells = np.sort(cell[sender_informed])
    beacon_cells = np.sort(cell[sender_beacon])

    lcell = cell[is_listen]
    msg = _count_at(msg_cells, lcell)
    beacon = _count_at(beacon_cells, lcell)
    total = msg + beacon
    noisy = jam.lookup_keys(lcell) | (total >= 2)
    got_msg = ~noisy & (total == 1) & (msg == 1)
    got_beacon = ~noisy & (total == 1) & (beacon == 1)
    silent = ~noisy & (total == 0)

    l_lane = lane[is_listen]
    l_node = node[is_listen]
    n_m = _counts_by_node(l_lane, l_node, got_msg, L, n)
    n_beacon = _counts_by_node(l_lane, l_node, got_beacon, L, n)
    counters = {
        "msg": n_m,
        "msg_or_beacon": n_m + n_beacon,
        "noise": _counts_by_node(l_lane, l_node, noisy, L, n),
        "silence": _counts_by_node(l_lane, l_node, silent, L, n),
    }
    return listen_counts, send_counts, counters


def run_adv_batch(proto, bnet: BatchNetwork) -> List[BroadcastResult]:
    """Run one ``MultiCastAdv`` / ``MultiCastAdvC`` execution per lane.

    Mirrors :meth:`repro.core.multicast_adv.MultiCastAdv.run` lane-by-lane.
    The timetable is deterministic, so every live lane is always in the
    *same* (i, j)-phase and the whole batch advances through one sequence of
    draw/resolve/commit calls; a lane whose clock passes ``max_slots`` is
    masked out mid-phase (its statuses keep the last committed phase's
    values, its ``informed_slot`` the final partial block's events — exactly
    where the scalar ``SlotLimitExceeded`` lands), and a lane whose nodes
    have all halted exits at the next epoch boundary, like the scalar while
    loop.
    """
    n, B = bnet.n, bnet.B
    status = np.full((B, n), STATUS_UN, dtype=np.int8)
    status[:, 0] = STATUS_IN  # the source knows m
    informed_slot = np.full((B, n), -1, dtype=np.int64)
    informed_slot[:, 0] = 0
    halt_slot = np.full((B, n), -1, dtype=np.int64)
    helper_epoch = np.full((B, n), -1, dtype=np.int64)  # î per node
    helper_phase = np.full((B, n), -1, dtype=np.int64)  # ĵ per node
    completed = np.ones(B, dtype=bool)
    epochs_run = np.zeros(B, dtype=np.int64)
    live = np.ones(B, dtype=bool)
    i = proto.first_epoch

    while live.any():
        if proto.max_epochs is not None and i - proto.first_epoch >= proto.max_epochs:
            completed[live] = False
            break
        lane_ids = np.nonzero(live)[0]
        for j in proto.phases_of_epoch(i):
            lane_ids = _run_phase_batch(
                proto,
                bnet,
                lane_ids,
                i,
                j,
                status,
                informed_slot,
                halt_slot,
                helper_epoch,
                helper_phase,
                completed,
            )
            if not lane_ids.size:
                break
        # lanes dropped mid-epoch (overrun) keep their lower epoch count,
        # like the scalar exception path
        live[np.setdiff1d(np.nonzero(live)[0], lane_ids)] = False
        epochs_run[lane_ids] += 1
        finished = ~(status[lane_ids] != STATUS_HALT).any(axis=1)
        live[lane_ids[finished]] = False
        i += 1

    tel = _obs_active()
    if tel is not None and B > 1:
        # straggler wait: slots the slowest lane ran past the second-slowest
        clocks = np.sort(bnet.clocks)
        tel.count("adv_batch.straggler_slots", int(clocks[-1] - clocks[-2]))
        tel.count("adv_batch.batches")
        tel.count("adv_batch.lanes", B)

    halted = status == STATUS_HALT
    informed = status >= STATUS_IN
    return [
        BroadcastResult(
            protocol=proto.name,
            n=n,
            slots=int(bnet.clocks[lane]),
            completed=bool(completed[lane]) and bool(halted[lane].all()),
            informed_slot=informed_slot[lane].copy(),
            halt_slot=halt_slot[lane].copy(),
            node_energy=bnet.energy.lane_node_cost(lane),
            adversary_spend=bnet.energy.lane_adversary_spend(lane),
            halted_uninformed=int((halted[lane] & (informed_slot[lane] < 0)).sum()),
            periods=int(epochs_run[lane]),
            extras={
                "alpha": proto.alpha,
                "b": proto.b,
                "channel_cap": proto.channel_cap,
                "final_status": status[lane].copy(),
                "helper_epoch": helper_epoch[lane].copy(),
                "helper_phase": helper_phase[lane].copy(),
                "informed": informed[lane].copy(),
                "last_epoch": (
                    proto.first_epoch + int(epochs_run[lane]) - 1
                    if epochs_run[lane]
                    else None
                ),
            },
        )
        for lane in range(B)
    ]


def _run_phase_batch(
    proto,
    bnet: BatchNetwork,
    lane_ids: np.ndarray,
    i: int,
    j: int,
    status: np.ndarray,
    informed_slot: np.ndarray,
    halt_slot: np.ndarray,
    helper_epoch: np.ndarray,
    helper_phase: np.ndarray,
    completed: np.ndarray,
) -> np.ndarray:
    """Run one (i, j)-phase for the listed lanes; returns the lanes that
    survived it (per-lane overruns drop out with ``completed`` cleared)."""
    R = proto.phase_length(i, j)
    p = proto.participation_prob(i, j)
    C = proto.phase_channels(j)
    active = status[lane_ids] != STATUS_HALT
    informed = status[lane_ids] >= STATUS_IN
    tel = _obs_active()

    # ---- Step I: dissemination (statuses may flip un -> in mid-step) ----
    remaining = R
    while remaining > 0 and lane_ids.size:
        K = min(proto.block_slots, remaining)
        channels = bnet.draw_channels(lane_ids, K, C)
        coins = bnet.draw_coins(lane_ids, K)
        jam = bnet.draw_jamming(lane_ids, K, C)
        sub_slot = informed_slot[lane_ids]
        if tel is not None:
            t0 = time.perf_counter()
        listen_counts, send_counts, new_informed = _adv_step_one_block(
            channels,
            coins,
            jam,
            informed,
            active,
            p,
            slot0=bnet.clocks[lane_ids],
            informed_slot=sub_slot,
        )
        if tel is not None:
            tel.add_time("adv_batch.kernel_s", time.perf_counter() - t0)
            tel.count("adv_batch.kernel_passes")
            tel.observe("adv_batch.occupancy", int(lane_ids.size))
        overrun = bnet.commit_counts(lane_ids, listen_counts, send_counts, K)
        # informed_slot is adopted even for a lane whose commit overran (the
        # scalar path raises *after* the event loop's in-place update);
        # everything else belongs to survivors only, matching where the
        # scalar exception lands.
        informed_slot[lane_ids] = sub_slot
        if overrun.any():
            completed[lane_ids[overrun]] = False
            lane_ids = lane_ids[~overrun]
            active = active[~overrun]
            new_informed = new_informed[~overrun]
        informed = new_informed
        remaining -= K
    # Commit step-I learning (un -> in) on a *local* copy: the global
    # status array is only written once a lane survives the whole phase,
    # because the scalar path mutates a copy inside _run_phase and a
    # SlotLimitExceeded raised in either step aborts before that copy is
    # returned — a lane dying in step II must keep its pre-phase statuses
    # (informed_slot is different: its step-I updates are in place on both
    # paths, see above).
    st = status[lane_ids]
    st[(st == STATUS_UN) & informed] = STATUS_IN

    # ---- Step II: frozen statuses, four counters ----
    n_m = np.zeros((lane_ids.size, bnet.n), dtype=np.int64)
    n_mb = np.zeros_like(n_m)
    n_noise = np.zeros_like(n_m)
    n_silence = np.zeros_like(n_m)
    remaining = R
    while remaining > 0 and lane_ids.size:
        K = min(proto.block_slots, remaining)
        channels = bnet.draw_channels(lane_ids, K, C)
        coins = bnet.draw_coins(lane_ids, K)
        jam = bnet.draw_jamming(lane_ids, K, C)
        if tel is not None:
            t0 = time.perf_counter()
        listen_counts, send_counts, counters = _adv_step_two_block(
            channels, coins, jam, informed, active, p
        )
        if tel is not None:
            tel.add_time("adv_batch.kernel_s", time.perf_counter() - t0)
            tel.count("adv_batch.kernel_passes")
            tel.observe("adv_batch.occupancy", int(lane_ids.size))
        overrun = bnet.commit_counts(lane_ids, listen_counts, send_counts, K)
        if overrun.any():
            # the overrunning lane's block counters are dropped — the scalar
            # path raises at commit, before counting the block's feedback
            completed[lane_ids[overrun]] = False
            keep = ~overrun
            lane_ids = lane_ids[keep]
            active = active[keep]
            informed = informed[keep]
            st = st[keep]
            n_m, n_mb = n_m[keep], n_mb[keep]
            n_noise, n_silence = n_noise[keep], n_silence[keep]
            counters = {name: arr[keep] for name, arr in counters.items()}
        n_m += counters["msg"]
        n_mb += counters["msg_or_beacon"]
        n_noise += counters["noise"]
        n_silence += counters["silence"]
        remaining -= K

    if lane_ids.size:
        isl = informed_slot[lane_ids]
        hsl = halt_slot[lane_ids]
        hep = helper_epoch[lane_ids]
        hph = helper_phase[lane_ids]
        apply_phase_checks(
            proto,
            i,
            j,
            active=active,
            status=st,
            n_m=n_m,
            n_mb=n_mb,
            n_noise=n_noise,
            n_silence=n_silence,
            informed_slot=isl,
            halt_slot=hsl,
            helper_epoch=hep,
            helper_phase=hph,
            clock=bnet.clocks[lane_ids][:, None],
        )
        status[lane_ids] = st
        informed_slot[lane_ids] = isl
        halt_slot[lane_ids] = hsl
        helper_epoch[lane_ids] = hep
        helper_phase[lane_ids] = hph
    return lane_ids
