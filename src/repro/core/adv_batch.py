"""Lane-batched block kernel for ``MultiCastAdv`` / ``MultiCastAdvC``.

The Fig. 4/6 protocols were the last family running scalar-only: their
epoch/phase lattice (unlike the Figs. 1/2/5 iteration loop) has two steps
per phase, four feedback counters, and a channel count that grows without
bound — but none of that resists the lane axis, because all lanes share one
deterministic timetable and advance through the same (i, j) phases in
lockstep.  This module is the DESIGN.md section 9 kernel:

* :func:`_adv_step_one_block` — step I (dissemination) for one block of
  every lane.  A node participates iff its coin clears ``p`` (uninformed ->
  listen, informed -> broadcast ``m``), so the kernel extracts the ~``pKn``
  participating ``(lane, row, node)`` triples once and resolves the
  "uninformed node heard m" events as a per-lane earliest-event loop over
  sorted cell keys — the exact fixed point of the scalar tail re-resolution
  in :func:`repro.core.runner.spread_block`, without materializing
  ``(L, K, n)`` action or feedback matrices.  Once dissemination completes
  (the steady state of every run) there are no listeners and the block
  reduces to one send-count ``bincount``.
* :func:`_adv_step_two_block` — step II (status adjustment).  Statuses are
  frozen for the whole step, so the four counters N_m, N'_m, N_n, N_s are a
  pure function of the draws and the jam mask: one participant extraction,
  one sorted-key broadcaster count per payload (``m`` vs the beacon ``±``),
  one jam lookup, four ``bincount`` reductions — the sparse analogue of the
  3-D ``resolve_block`` + ``count_feedback`` pass, vectorized across lanes
  *and* across the R(i, j) slots of the phase.
* :func:`run_adv_batch` — the epoch/phase driver mirroring
  :meth:`repro.core.multicast_adv.MultiCastAdv.run` lane-by-lane, with the
  end-of-phase checks applied through the *shared*
  :func:`repro.core.multicast_adv.apply_phase_checks` (one implementation of
  the threshold comparisons for both paths), and per-lane ``max_slots``
  overruns masking lanes out mid-phase exactly where the scalar
  ``SlotLimitExceeded`` lands.

Determinism contract (DESIGN.md section 9, enforced by
``tests/core/test_batch_equivalence.py``): lane ``l`` is **bit-identical**
to ``run_broadcast(proto, n, adversaries[l], seed=seeds[l])`` — same draw
order (per block: one ``(K, n)`` channel draw then one ``(K, n)`` coin draw,
``K = min(block_slots, remaining)``, from the lane's own generator), same
slots, statuses, event slots, energy books, periods and extras.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

from repro.obs.recorder import active as _obs_active
from repro.core.multicast_adv import (
    STATUS_HALT,
    STATUS_IN,
    STATUS_UN,
    apply_phase_checks,
)
from repro.core.result import BroadcastResult
from repro.sim.engine import BatchNetwork
from repro.sim.jam import JamBlock

__all__ = ["run_adv_batch", "run_adv_stream"]


def _participants(coins: np.ndarray, channels: np.ndarray, active: np.ndarray,
                  threshold: np.ndarray, offsets: np.ndarray,
                  Cmax: int) -> Tuple[np.ndarray, ...]:
    """Extract the ``(lane, row, node)`` triples whose coin clears the lane's
    ``threshold`` (masked to active nodes) from a ragged lane-major block —
    ``coins``/``channels`` are ``(T, n)`` with lane ``l`` owning rows
    ``offsets[l]:offsets[l+1]`` — plus flat cell keys in the common key
    space ``global_row * Cmax + channel`` (rows are globally disjoint, so
    keys from lanes with different channel counts never collide)."""
    T, n = coins.shape
    L = offsets.size - 1
    lane_of_row = np.repeat(np.arange(L, dtype=np.int64), np.diff(offsets))
    hit = coins < threshold[lane_of_row][:, None]
    if not active.all():
        hit &= active[lane_of_row]
    flat = np.flatnonzero(hit)
    grow = flat // n  # global (concatenated) row
    node = flat % n
    lane = lane_of_row[grow]
    row = grow - offsets[lane]  # lane-local row — scalar-stream position
    cell = grow * np.int64(Cmax) + channels.ravel()[flat]
    return flat, lane, row, node, cell


def _member_keys(sorted_keys: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Membership of each query key in a sorted key array (the unstacked
    analogue of :meth:`JamBlock.lookup_keys`)."""
    if not sorted_keys.size:
        return np.zeros(query.shape[0], dtype=bool)
    idx = np.minimum(
        np.searchsorted(sorted_keys, query, side="left"), sorted_keys.size - 1
    )
    return sorted_keys[idx] == query


def _ragged_jam_keys(blocks, offsets: np.ndarray, Cmax: int) -> np.ndarray:
    """Sorted global jam keys for per-lane :class:`JamBlock`\\ s: lane ``l``'s
    ``(row, channel)`` entries become ``(offsets[l] + row) * Cmax + channel``.
    Lane-major concatenation of the per-lane (row-major sorted) key arrays is
    globally sorted, because global rows are disjoint and ascending."""
    parts = []
    for l, block in enumerate(blocks):
        if block.total() == 0:
            continue
        rows = np.repeat(np.arange(block.K, dtype=np.int64), block.counts())
        parts.append((np.int64(offsets[l]) + rows) * np.int64(Cmax) + block.channels)
    if not parts:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(parts)


def _counts_by_node(lane: np.ndarray, node: np.ndarray, mask: np.ndarray,
                    L: int, n: int) -> np.ndarray:
    """``(L, n)`` occurrence counts of the masked hits."""
    return np.bincount(
        (lane[mask] * n + node[mask]), minlength=L * n
    ).reshape(L, n)


def _count_at(sorted_cells: np.ndarray, query: np.ndarray) -> np.ndarray:
    """How many entries of the sorted key array equal each query key."""
    if not sorted_cells.size:
        return np.zeros(query.shape[0], dtype=np.int64)
    lo = np.searchsorted(sorted_cells, query, side="left")
    hi = np.searchsorted(sorted_cells, query, side="right")
    return hi - lo


def _adv_step_one_ragged(
    channels: np.ndarray,
    coins: np.ndarray,
    jam_keys: np.ndarray,
    offsets: np.ndarray,
    p: np.ndarray,
    Cmax: int,
    informed: np.ndarray,
    active: np.ndarray,
    *,
    slot0: np.ndarray,
    informed_slot: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Resolve one step-I block of every lane, returning
    ``(listen_counts, send_counts, informed)``.

    Inputs are ragged lane-major: ``channels``/``coins`` are ``(T, n)`` with
    lane ``l`` owning rows ``offsets[l]:offsets[l+1]`` (lanes may carry
    different row counts and different channel counts — ``p`` is per lane,
    ``jam_keys`` the sorted global jam keys in the common ``Cmax`` space from
    :func:`_ragged_jam_keys`); ``informed``/``active``/``informed_slot`` are
    ``(L, n)`` (the latter updated in place with event slots), ``slot0``
    each lane's global slot of its row 0.

    The step-I action rule makes the *same draw* a listen or a send
    depending on when its node learned ``m`` (captured as a per-node
    informing row; -1 = knew at entry, NEVER = not in this block): a hit is
    a send iff its row is past its node's informing row, a listen otherwise.
    An uninformed listener hears ``m`` iff its (row, cell) holds exactly one
    current send and no jamming.  Events only add sends at rows *past* the
    informing row being set, so processing the earliest hearing per lane
    (all hearers of that row flip together) and rescanning past it reaches
    exactly the fixed point of the scalar event loop, with every lane
    advancing one event per pass.  Dissemination needs at most n-1 events
    per lane per run, and the expensive late phases have none.
    """
    T, n = coins.shape
    L = offsets.size - 1
    flat, lane, row, node, cell = _participants(
        coins, channels, active, p, offsets, Cmax
    )
    jam_at = _member_keys(jam_keys, cell)

    # sentinel informing row: larger than any lane-local row in this block
    NEVER = np.int64(np.diff(offsets).max() if L else 0)
    informing_row = np.where(informed, np.int64(-1), NEVER)  # (L, n)
    frontier = np.full(L, -1, dtype=np.int64)  # rows <= frontier are settled
    while True:
        inf_at_hit = informing_row[lane, node]
        listeners = (inf_at_hit == NEVER) & (row > frontier[lane])
        if not listeners.any():
            break
        send_cells = np.sort(cell[row > inf_at_hit])
        heard = (_count_at(send_cells, cell[listeners]) == 1) & ~jam_at[listeners]
        if not heard.any():
            break
        h_idx = np.nonzero(listeners)[0][heard]
        h_lane = lane[h_idx]
        h_row = row[h_idx]
        # earliest hearing row per lane: h_idx is (lane, row, node)-sorted,
        # so the first index per lane carries its smallest row
        ev_lanes, first = np.unique(h_lane, return_index=True)
        ev_row = h_row[first]
        # every hearer of that exact row flips together (scalar: hears[r])
        ev = h_row == ev_row[np.searchsorted(ev_lanes, h_lane)]
        informing_row[h_lane[ev], node[h_idx][ev]] = h_row[ev]
        frontier[ev_lanes] = ev_row

    if informed_slot is not None:
        new_lane, new_node = np.nonzero((informing_row >= 0) & (informing_row < NEVER))
        informed_slot[new_lane, new_node] = (
            slot0[new_lane] + informing_row[new_lane, new_node]
        )

    sends = row > informing_row[lane, node]
    send_counts = _counts_by_node(lane, node, sends, L, n)
    listen_counts = _counts_by_node(lane, node, ~sends, L, n)
    return listen_counts, send_counts, informing_row < NEVER


def _adv_step_one_block(
    channels: np.ndarray,
    coins: np.ndarray,
    jam: JamBlock,
    informed: np.ndarray,
    active: np.ndarray,
    p: float,
    *,
    slot0: np.ndarray,
    informed_slot: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fixed-shape step-I adapter: ``(L, K, n)`` lane-stacked inputs routed
    through :func:`_adv_step_one_ragged` with uniform offsets.  The stacked
    jam block's cached keys are already the global ``(lane*K + row) * C +
    channel`` space the ragged kernel expects."""
    L, K, n = coins.shape
    offsets = np.arange(L + 1, dtype=np.int64) * K
    return _adv_step_one_ragged(
        channels.reshape(L * K, n),
        coins.reshape(L * K, n),
        jam._keys(),
        offsets,
        np.full(L, p, dtype=np.float64),
        jam.C,
        informed,
        active,
        slot0=slot0,
        informed_slot=informed_slot,
    )


def _adv_step_two_ragged(
    channels: np.ndarray,
    coins: np.ndarray,
    jam_keys: np.ndarray,
    offsets: np.ndarray,
    p: np.ndarray,
    Cmax: int,
    informed: np.ndarray,
    active: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, dict]:
    """Resolve one step-II block of every lane, returning
    ``(listen_counts, send_counts, counters)`` with ``counters`` holding the
    ``(L, n)`` N_m / N'_m / N_n / N_s increments.  Ragged lane-major inputs
    as in :func:`_adv_step_one_ragged`.

    Statuses are frozen (paper section 6.2), so there is no event loop: a
    hit listens below ``p`` and broadcasts in ``[p, 2p)`` — the payload is
    ``m`` for informed nodes and the beacon ``±`` otherwise — and each
    listen classifies exactly as :func:`repro.sim.channel.resolve_block`
    would: noise iff its cell is jammed or holds >= 2 broadcasts, else the
    payload of its single broadcaster, else silence.
    """
    T, n = coins.shape
    L = offsets.size - 1
    flat, lane, row, node, cell = _participants(
        coins, channels, active, 2.0 * p, offsets, Cmax
    )
    is_listen = coins.ravel()[flat] < p[lane]
    listen_counts = _counts_by_node(lane, node, is_listen, L, n)
    send_counts = _counts_by_node(lane, node, ~is_listen, L, n)

    sender_informed = informed[lane, node] & ~is_listen
    sender_beacon = ~informed[lane, node] & ~is_listen
    msg_cells = np.sort(cell[sender_informed])
    beacon_cells = np.sort(cell[sender_beacon])

    lcell = cell[is_listen]
    msg = _count_at(msg_cells, lcell)
    beacon = _count_at(beacon_cells, lcell)
    total = msg + beacon
    noisy = _member_keys(jam_keys, lcell) | (total >= 2)
    got_msg = ~noisy & (total == 1) & (msg == 1)
    got_beacon = ~noisy & (total == 1) & (beacon == 1)
    silent = ~noisy & (total == 0)

    l_lane = lane[is_listen]
    l_node = node[is_listen]
    n_m = _counts_by_node(l_lane, l_node, got_msg, L, n)
    n_beacon = _counts_by_node(l_lane, l_node, got_beacon, L, n)
    counters = {
        "msg": n_m,
        "msg_or_beacon": n_m + n_beacon,
        "noise": _counts_by_node(l_lane, l_node, noisy, L, n),
        "silence": _counts_by_node(l_lane, l_node, silent, L, n),
    }
    return listen_counts, send_counts, counters


def _adv_step_two_block(
    channels: np.ndarray,
    coins: np.ndarray,
    jam: JamBlock,
    informed: np.ndarray,
    active: np.ndarray,
    p: float,
) -> Tuple[np.ndarray, np.ndarray, dict]:
    """Fixed-shape step-II adapter over :func:`_adv_step_two_ragged` (see
    :func:`_adv_step_one_block`)."""
    L, K, n = coins.shape
    offsets = np.arange(L + 1, dtype=np.int64) * K
    return _adv_step_two_ragged(
        channels.reshape(L * K, n),
        coins.reshape(L * K, n),
        jam._keys(),
        offsets,
        np.full(L, p, dtype=np.float64),
        jam.C,
        informed,
        active,
    )


def run_adv_batch(proto, bnet: BatchNetwork) -> List[BroadcastResult]:
    """Run one ``MultiCastAdv`` / ``MultiCastAdvC`` execution per lane.

    Mirrors :meth:`repro.core.multicast_adv.MultiCastAdv.run` lane-by-lane.
    The timetable is deterministic, so every live lane is always in the
    *same* (i, j)-phase and the whole batch advances through one sequence of
    draw/resolve/commit calls; a lane whose clock passes ``max_slots`` is
    masked out mid-phase (its statuses keep the last committed phase's
    values, its ``informed_slot`` the final partial block's events — exactly
    where the scalar ``SlotLimitExceeded`` lands), and a lane whose nodes
    have all halted exits at the next epoch boundary, like the scalar while
    loop.
    """
    n, B = bnet.n, bnet.B
    status = np.full((B, n), STATUS_UN, dtype=np.int8)
    status[:, 0] = STATUS_IN  # the source knows m
    informed_slot = np.full((B, n), -1, dtype=np.int64)
    informed_slot[:, 0] = 0
    halt_slot = np.full((B, n), -1, dtype=np.int64)
    helper_epoch = np.full((B, n), -1, dtype=np.int64)  # î per node
    helper_phase = np.full((B, n), -1, dtype=np.int64)  # ĵ per node
    completed = np.ones(B, dtype=bool)
    epochs_run = np.zeros(B, dtype=np.int64)
    live = np.ones(B, dtype=bool)
    i = proto.first_epoch

    while live.any():
        if proto.max_epochs is not None and i - proto.first_epoch >= proto.max_epochs:
            completed[live] = False
            break
        lane_ids = np.nonzero(live)[0]
        for j in proto.phases_of_epoch(i):
            lane_ids = _run_phase_batch(
                proto,
                bnet,
                lane_ids,
                i,
                j,
                status,
                informed_slot,
                halt_slot,
                helper_epoch,
                helper_phase,
                completed,
            )
            if not lane_ids.size:
                break
        # lanes dropped mid-epoch (overrun) keep their lower epoch count,
        # like the scalar exception path
        live[np.setdiff1d(np.nonzero(live)[0], lane_ids)] = False
        epochs_run[lane_ids] += 1
        finished = ~(status[lane_ids] != STATUS_HALT).any(axis=1)
        live[lane_ids[finished]] = False
        i += 1

    tel = _obs_active()
    if tel is not None:
        if B > 1:
            # straggler wait: slots the slowest lane ran past the second-slowest
            clocks = np.sort(bnet.clocks)
            tel.count("adv_batch.straggler_slots", int(clocks[-1] - clocks[-2]))
        tel.count("adv_batch.batches")
        tel.count("adv_batch.lanes", B)

    halted = status == STATUS_HALT
    informed = status >= STATUS_IN
    return [
        BroadcastResult(
            protocol=proto.name,
            n=n,
            slots=int(bnet.clocks[lane]),
            completed=bool(completed[lane]) and bool(halted[lane].all()),
            informed_slot=informed_slot[lane].copy(),
            halt_slot=halt_slot[lane].copy(),
            node_energy=bnet.energy.lane_node_cost(lane),
            adversary_spend=bnet.energy.lane_adversary_spend(lane),
            halted_uninformed=int((halted[lane] & (informed_slot[lane] < 0)).sum()),
            periods=int(epochs_run[lane]),
            extras={
                "alpha": proto.alpha,
                "b": proto.b,
                "channel_cap": proto.channel_cap,
                "final_status": status[lane].copy(),
                "helper_epoch": helper_epoch[lane].copy(),
                "helper_phase": helper_phase[lane].copy(),
                "informed": informed[lane].copy(),
                "last_epoch": (
                    proto.first_epoch + int(epochs_run[lane]) - 1
                    if epochs_run[lane]
                    else None
                ),
            },
        )
        for lane in range(B)
    ]


def _run_phase_batch(
    proto,
    bnet: BatchNetwork,
    lane_ids: np.ndarray,
    i: int,
    j: int,
    status: np.ndarray,
    informed_slot: np.ndarray,
    halt_slot: np.ndarray,
    helper_epoch: np.ndarray,
    helper_phase: np.ndarray,
    completed: np.ndarray,
) -> np.ndarray:
    """Run one (i, j)-phase for the listed lanes; returns the lanes that
    survived it (per-lane overruns drop out with ``completed`` cleared)."""
    R = proto.phase_length(i, j)
    p = proto.participation_prob(i, j)
    C = proto.phase_channels(j)
    active = status[lane_ids] != STATUS_HALT
    informed = status[lane_ids] >= STATUS_IN
    tel = _obs_active()

    # ---- Step I: dissemination (statuses may flip un -> in mid-step) ----
    remaining = R
    while remaining > 0 and lane_ids.size:
        K = min(proto.block_slots, remaining)
        channels = bnet.draw_channels(lane_ids, K, C)
        coins = bnet.draw_coins(lane_ids, K)
        jam = bnet.draw_jamming(lane_ids, K, C)
        sub_slot = informed_slot[lane_ids]
        if tel is not None:
            t0 = time.perf_counter()
        listen_counts, send_counts, new_informed = _adv_step_one_block(
            channels,
            coins,
            jam,
            informed,
            active,
            p,
            slot0=bnet.clocks[lane_ids],
            informed_slot=sub_slot,
        )
        if tel is not None:
            tel.add_time("adv_batch.kernel_s", time.perf_counter() - t0)
            tel.count("adv_batch.kernel_passes")
            tel.observe("adv_batch.occupancy", int(lane_ids.size))
            tel.count("adv_batch.lane_passes", int(lane_ids.size))
            tel.count("adv_batch.idle_lane_passes", int(bnet.B - lane_ids.size))
            if lane_ids.size == 1 and bnet.B > 1:
                tel.count("adv_batch.solo_slots", int(K))
        overrun = bnet.commit_counts(lane_ids, listen_counts, send_counts, K)
        # informed_slot is adopted even for a lane whose commit overran (the
        # scalar path raises *after* the event loop's in-place update);
        # everything else belongs to survivors only, matching where the
        # scalar exception lands.
        informed_slot[lane_ids] = sub_slot
        if overrun.any():
            completed[lane_ids[overrun]] = False
            lane_ids = lane_ids[~overrun]
            active = active[~overrun]
            new_informed = new_informed[~overrun]
        informed = new_informed
        remaining -= K
    # Commit step-I learning (un -> in) on a *local* copy: the global
    # status array is only written once a lane survives the whole phase,
    # because the scalar path mutates a copy inside _run_phase and a
    # SlotLimitExceeded raised in either step aborts before that copy is
    # returned — a lane dying in step II must keep its pre-phase statuses
    # (informed_slot is different: its step-I updates are in place on both
    # paths, see above).
    st = status[lane_ids]
    st[(st == STATUS_UN) & informed] = STATUS_IN

    # ---- Step II: frozen statuses, four counters ----
    n_m = np.zeros((lane_ids.size, bnet.n), dtype=np.int64)
    n_mb = np.zeros_like(n_m)
    n_noise = np.zeros_like(n_m)
    n_silence = np.zeros_like(n_m)
    remaining = R
    while remaining > 0 and lane_ids.size:
        K = min(proto.block_slots, remaining)
        channels = bnet.draw_channels(lane_ids, K, C)
        coins = bnet.draw_coins(lane_ids, K)
        jam = bnet.draw_jamming(lane_ids, K, C)
        if tel is not None:
            t0 = time.perf_counter()
        listen_counts, send_counts, counters = _adv_step_two_block(
            channels, coins, jam, informed, active, p
        )
        if tel is not None:
            tel.add_time("adv_batch.kernel_s", time.perf_counter() - t0)
            tel.count("adv_batch.kernel_passes")
            tel.observe("adv_batch.occupancy", int(lane_ids.size))
            tel.count("adv_batch.lane_passes", int(lane_ids.size))
            tel.count("adv_batch.idle_lane_passes", int(bnet.B - lane_ids.size))
            if lane_ids.size == 1 and bnet.B > 1:
                tel.count("adv_batch.solo_slots", int(K))
        overrun = bnet.commit_counts(lane_ids, listen_counts, send_counts, K)
        if overrun.any():
            # the overrunning lane's block counters are dropped — the scalar
            # path raises at commit, before counting the block's feedback
            completed[lane_ids[overrun]] = False
            keep = ~overrun
            lane_ids = lane_ids[keep]
            active = active[keep]
            informed = informed[keep]
            st = st[keep]
            n_m, n_mb = n_m[keep], n_mb[keep]
            n_noise, n_silence = n_noise[keep], n_silence[keep]
            counters = {name: arr[keep] for name, arr in counters.items()}
        n_m += counters["msg"]
        n_mb += counters["msg_or_beacon"]
        n_noise += counters["noise"]
        n_silence += counters["silence"]
        remaining -= K

    if lane_ids.size:
        isl = informed_slot[lane_ids]
        hsl = halt_slot[lane_ids]
        hep = helper_epoch[lane_ids]
        hph = helper_phase[lane_ids]
        apply_phase_checks(
            proto,
            i,
            j,
            active=active,
            status=st,
            n_m=n_m,
            n_mb=n_mb,
            n_noise=n_noise,
            n_silence=n_silence,
            informed_slot=isl,
            halt_slot=hsl,
            helper_epoch=hep,
            helper_phase=hph,
            clock=bnet.clocks[lane_ids][:, None],
        )
        status[lane_ids] = st
        informed_slot[lane_ids] = isl
        halt_slot[lane_ids] = hsl
        helper_epoch[lane_ids] = hep
        helper_phase[lane_ids] = hph
    return lane_ids


def run_adv_stream(proto, stream) -> List[BroadcastResult]:
    """Continuous-batching counterpart of :func:`run_adv_batch`.

    Slots are *not* in lockstep: each slot carries its own (epoch, phase,
    step) position and remaining-slot count, every pass merges the occupied
    slots of a step into one ragged kernel call (per-lane row counts, listen
    probabilities *and channel counts* — step partitioning keeps the two
    kernels' distinct event semantics), and a slot that retires — halted at
    an epoch boundary, overrun mid-phase, or out of epochs — is refilled
    from the stream's pending queue instead of idling until the batch
    drains.  Lanes retire mid-epoch only on overrun (matching the scalar
    ``SlotLimitExceeded``); a fully-halted lane still draws its remaining
    phases and leaves at the epoch boundary, exactly like the scalar while
    loop.  Per-trial results are bit-identical to :func:`run_adv_batch` and
    the scalar path (DESIGN.md section 13).
    """
    bnet = stream.bnet
    n = bnet.n  # MultiCastAdv is n-agnostic, like run_adv_batch
    W = stream.width
    status = np.full((W, n), STATUS_UN, dtype=np.int8)
    informed_slot = np.full((W, n), -1, dtype=np.int64)
    halt_slot = np.full((W, n), -1, dtype=np.int64)
    helper_epoch = np.full((W, n), -1, dtype=np.int64)
    helper_phase = np.full((W, n), -1, dtype=np.int64)
    completed = np.ones(W, dtype=bool)
    epochs_run = np.zeros(W, dtype=np.int64)
    occupied = np.ones(W, dtype=bool)
    # phase machine, per slot
    epoch_i = np.zeros(W, dtype=np.int64)
    slot_phases: List[list] = [[] for _ in range(W)]
    phase_pos = np.zeros(W, dtype=np.int64)
    step = np.ones(W, dtype=np.int8)  # 1 = dissemination, 2 = adjustment
    remaining = np.zeros(W, dtype=np.int64)
    R_arr = np.zeros(W, dtype=np.int64)
    p_arr = np.zeros(W, dtype=np.float64)
    C_arr = np.zeros(W, dtype=np.int64)
    j_arr = np.zeros(W, dtype=np.int64)
    ph_active = np.zeros((W, n), dtype=bool)
    ph_informed = np.zeros((W, n), dtype=bool)
    # step-II working state: status copy with step-I promotions, counters
    st = np.zeros((W, n), dtype=np.int8)
    n_m = np.zeros((W, n), dtype=np.int64)
    n_mb = np.zeros_like(n_m)
    n_noise = np.zeros_like(n_m)
    n_silence = np.zeros_like(n_m)
    tel = _obs_active()

    def slot_result(slot: int) -> BroadcastResult:
        halted = status[slot] == STATUS_HALT
        return BroadcastResult(
            protocol=proto.name,
            n=n,
            slots=int(bnet.clocks[slot]),
            completed=bool(completed[slot]) and bool(halted.all()),
            informed_slot=informed_slot[slot].copy(),
            halt_slot=halt_slot[slot].copy(),
            node_energy=bnet.energy.lane_node_cost(slot),
            adversary_spend=bnet.energy.lane_adversary_spend(slot),
            halted_uninformed=int((halted & (informed_slot[slot] < 0)).sum()),
            periods=int(epochs_run[slot]),
            extras={
                "alpha": proto.alpha,
                "b": proto.b,
                "channel_cap": proto.channel_cap,
                "final_status": status[slot].copy(),
                "helper_epoch": helper_epoch[slot].copy(),
                "helper_phase": helper_phase[slot].copy(),
                "informed": (status[slot] >= STATUS_IN).copy(),
                "last_epoch": (
                    proto.first_epoch + int(epochs_run[slot]) - 1
                    if epochs_run[slot]
                    else None
                ),
            },
        )

    def start_phase(slot: int) -> None:
        i = int(epoch_i[slot])
        j = int(slot_phases[slot][phase_pos[slot]])
        j_arr[slot] = j
        R_arr[slot] = proto.phase_length(i, j)
        p_arr[slot] = proto.participation_prob(i, j)
        C_arr[slot] = proto.phase_channels(j)
        ph_active[slot] = status[slot] != STATUS_HALT
        ph_informed[slot] = status[slot] >= STATUS_IN
        step[slot] = 1
        remaining[slot] = R_arr[slot]

    def start_epoch(slot: int) -> bool:
        """Enter the slot's current epoch; False = retired on max_epochs."""
        i = int(epoch_i[slot])
        if proto.max_epochs is not None and i - proto.first_epoch >= proto.max_epochs:
            completed[slot] = False
            return False
        slot_phases[slot] = list(proto.phases_of_epoch(i))
        phase_pos[slot] = 0
        start_phase(slot)
        return True

    def reset_slot(slot: int) -> None:
        status[slot] = STATUS_UN
        status[slot, 0] = STATUS_IN  # the source knows m
        informed_slot[slot] = -1
        informed_slot[slot, 0] = 0
        halt_slot[slot] = -1
        helper_epoch[slot] = -1
        helper_phase[slot] = -1
        completed[slot] = True
        epochs_run[slot] = 0
        epoch_i[slot] = proto.first_epoch

    def retire(slot: int) -> None:
        while True:
            stream.finish(slot, slot_result(slot))
            if tel is not None:
                tel.count("adv_batch.lanes")
            if not stream.refill(slot):
                occupied[slot] = False
                return
            reset_slot(slot)
            if start_epoch(slot):
                return
            # the refilled trial retired immediately (max_epochs <= 0)

    def end_phases(done: np.ndarray) -> None:
        """Phase-end checks for every listed slot in one vectorized call.

        The slots sit at *different* (i, j) positions, so the per-lane
        R·p / R·p² columns are built from the scalars ``start_phase``
        cached — the same ``phase_length``/``participation_prob`` values
        the lockstep path uses, multiplied in the same order, keeping the
        threshold comparisons bit-identical per lane.
        """
        p_col = p_arr[done][:, None]
        rp_col = R_arr[done][:, None] * p_col
        sub_st = st[done]
        isl = informed_slot[done]
        hsl = halt_slot[done]
        hep = helper_epoch[done]
        hph = helper_phase[done]
        apply_phase_checks(
            proto,
            epoch_i[done][:, None],
            j_arr[done][:, None],
            active=ph_active[done],
            status=sub_st,
            n_m=n_m[done],
            n_mb=n_mb[done],
            n_noise=n_noise[done],
            n_silence=n_silence[done],
            informed_slot=isl,
            halt_slot=hsl,
            helper_epoch=hep,
            helper_phase=hph,
            clock=bnet.clocks[done][:, None],
            rp=rp_col,
            rp2=rp_col * p_col,
        )
        status[done] = sub_st
        informed_slot[done] = isl
        halt_slot[done] = hsl
        helper_epoch[done] = hep
        helper_phase[done] = hph
        for slot in done:
            slot = int(slot)
            if phase_pos[slot] + 1 < len(slot_phases[slot]):
                phase_pos[slot] += 1
                start_phase(slot)
                continue
            # epoch boundary — the only place a lane retires of its own accord
            epochs_run[slot] += 1
            if (status[slot] == STATUS_HALT).all():
                retire(slot)
                continue
            epoch_i[slot] += 1
            if not start_epoch(slot):
                retire(slot)

    for slot in range(W):
        reset_slot(slot)
        if not start_epoch(slot):
            retire(slot)

    while occupied.any():
        if tel is not None:
            tel.count("adv_batch.idle_lane_passes", int(W - occupied.sum()))
        for step_val in (1, 2):
            sel = occupied & (step == step_val)
            lane_ids = np.nonzero(sel)[0]
            if not lane_ids.size:
                continue
            Ks = np.minimum(proto.block_slots, remaining[lane_ids])
            Cs = C_arr[lane_ids]
            Cmax = int(Cs.max())
            channels = bnet.draw_channels_ragged(lane_ids, Ks, Cs)
            coins = bnet.draw_coins_ragged(lane_ids, Ks)
            blocks = bnet.draw_jamming_ragged(lane_ids, Ks, Cs)
            offsets = np.concatenate(([0], np.cumsum(Ks)))
            jam_keys = _ragged_jam_keys(blocks, offsets, Cmax)
            if tel is not None:
                t0 = time.perf_counter()
            if step_val == 1:
                sub_slot = informed_slot[lane_ids]
                listen_counts, send_counts, new_informed = _adv_step_one_ragged(
                    channels,
                    coins,
                    jam_keys,
                    offsets,
                    p_arr[lane_ids],
                    Cmax,
                    ph_informed[lane_ids],
                    ph_active[lane_ids],
                    slot0=bnet.clocks[lane_ids],
                    informed_slot=sub_slot,
                )
            else:
                listen_counts, send_counts, counters = _adv_step_two_ragged(
                    channels,
                    coins,
                    jam_keys,
                    offsets,
                    p_arr[lane_ids],
                    Cmax,
                    ph_informed[lane_ids],
                    ph_active[lane_ids],
                )
            if tel is not None:
                tel.add_time("adv_batch.kernel_s", time.perf_counter() - t0)
                tel.count("adv_batch.kernel_passes")
                tel.observe("adv_batch.occupancy", int(lane_ids.size))
                tel.count("adv_batch.lane_passes", int(lane_ids.size))
                if lane_ids.size == 1 and W > 1:
                    tel.count("adv_batch.solo_slots", int(Ks[0]))
            overrun = bnet.commit_counts_ragged(lane_ids, listen_counts, send_counts, Ks)
            if step_val == 1:
                # adopted even on overrun, like the lockstep/scalar paths
                informed_slot[lane_ids] = sub_slot
            keep = ~overrun
            live = lane_ids[keep]
            remaining[live] -= Ks[keep]
            if step_val == 1:
                ph_informed[live] = new_informed[keep]
                done = live[remaining[live] == 0]
                if done.size:
                    # step-I learning (un -> in) on a local copy: the
                    # global status array is only written at phase end
                    s = status[done]
                    s[(s == STATUS_UN) & ph_informed[done]] = STATUS_IN
                    st[done] = s
                    n_m[done] = 0
                    n_mb[done] = 0
                    n_noise[done] = 0
                    n_silence[done] = 0
                    step[done] = 2
                    remaining[done] = R_arr[done]
            else:
                n_m[live] += counters["msg"][keep]
                n_mb[live] += counters["msg_or_beacon"][keep]
                n_noise[live] += counters["noise"][keep]
                n_silence[live] += counters["silence"][keep]
                done = live[remaining[live] == 0]
                if done.size:
                    end_phases(done)
            for slot in lane_ids[overrun]:
                # mid-phase death: pre-phase statuses stand, this block's
                # step-II counters are dropped — where SlotLimitExceeded
                # lands on the scalar path
                completed[slot] = False
                retire(int(slot))

    if tel is not None:
        tel.count("adv_batch.batches")
        tel.count("adv_batch.refills", stream.refills)
    return list(stream.results)
