"""``MultiCastAdv`` — paper section 6, Figure 4 (and Fig. 6 via ``channel_cap``).

When n is unknown the protocol guesses it: epoch i contains phases
j = 0 .. i-1, and an (i, j)-phase runs an epidemic broadcast on 2^j channels
(betting n ≈ 2^{j+1}).  Each phase has two steps of R(i, j) = b·2^{2α(i−j)}·i³
slots with participation probability p(i, j) = 2^{−α(i−j)}/2:

* **Step I — dissemination.**  Uninformed nodes listen w.p. p; everyone else
  broadcasts ``m`` w.p. p.  Hearing ``m`` informs a node immediately.
* **Step II — status adjustment.**  Every node listens w.p. p or broadcasts
  w.p. p (uninformed nodes broadcast the beacon ``±``, others ``m``); statuses
  are frozen for the whole step while four counters accumulate: N_m (heard
  ``m``), N'_m (heard ``m`` or ``±``), N_n (noise), N_s (silence).

End-of-phase checks (pseudocode lines 21–23, applied in order):

1. uninformed and N_m ≥ 1                    -> informed;
2. informed and N_m ≥ 1.5Rp², N_s ≥ 0.9Rp,
   N'_m ≤ 2.2Rp²                              -> helper (records (î, ĵ));
3. helper and i − î ≥ 2/α and j = ĵ and
   N_n ≤ Rp/3000                              -> halt.

The N'_m ceiling is the estimator that the channel-count guess is right
(Lemmas 6.1–6.3: helpers only appear when i > lg n and j = lg n − 1), and the
two-stage helper → halt mechanism guarantees all nodes are helpers before any
halts, so terminations never strand the remaining nodes (Lemma 6.5).

Guarantee (Theorem 6.10): w.h.p. all nodes receive the message and terminate
within Õ(T/n^{1−2α} + n^{2α}) slots at per-node cost Õ(√(T/n^{1−2α}) + n^{2α});
α ∈ (0, 1/4) trades the polynomial improvement against the hidden constant.

**Limited channels (Fig. 6).**  ``channel_cap=C`` clips phases to
j ≤ lg C, and at the boundary phase j = lg C drops the N'_m ≤ 2.2Rp²
condition from the helper check (the paper's "cut-off" mechanism).  With
``channel_cap=None`` this class is exactly Fig. 4.

Fidelity notes: all structural constants (1.5, 0.9, 2.2, 1/3000, 2/α, i³, the
2^{±α(i−j)} scalings) are the paper's; ``b`` ("sufficiently large") is the
usual float scale parameter.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.result import BroadcastResult
from repro.core.runner import (
    adv_step_one_actions,
    adv_step_two_actions,
    count_feedback,
    spread_block,
)
from repro.sim.engine import RadioNetwork, SlotLimitExceeded
from repro.sim.trace import TraceRecorder

__all__ = [
    "MultiCastAdv",
    "STATUS_UN",
    "STATUS_IN",
    "STATUS_HELPER",
    "STATUS_HALT",
    "apply_phase_checks",
]

# Node statuses (paper: un / in / helper / halt).
STATUS_UN = np.int8(0)
STATUS_IN = np.int8(1)
STATUS_HELPER = np.int8(2)
STATUS_HALT = np.int8(3)


def apply_phase_checks(
    proto,
    i: int,
    j: int,
    *,
    active: np.ndarray,
    status: np.ndarray,
    n_m: np.ndarray,
    n_mb: np.ndarray,
    n_noise: np.ndarray,
    n_silence: np.ndarray,
    informed_slot: np.ndarray,
    halt_slot: np.ndarray,
    helper_epoch: np.ndarray,
    helper_phase: np.ndarray,
    clock,
    rp=None,
    rp2=None,
):
    """End-of-phase checks (pseudocode lines 21-23 / 21-25), applied in order,
    mutating ``status`` and the bookkeeping arrays in place.

    This is the *single* implementation of the four threshold comparisons
    (N_m >= 1.5Rp², N_s >= 0.9Rp, N'_m <= 2.2Rp², N_n <= Rp/D): the scalar
    runner (:meth:`MultiCastAdv._run_phase`) calls it with ``(n,)`` arrays
    and an integer ``clock``, the lane-batched runner
    (:mod:`repro.core.adv_batch`) with ``(L, n)`` arrays and an ``(L, 1)``
    per-lane clock column — so an off-by-one at a boundary cannot diverge
    between the two paths (tests/core/test_adv_phase_checks.py pins the
    exact-equality behaviour of every comparison).

    ``i`` and ``j`` may also be ``(L, 1)`` integer columns (the stream
    driver checks lanes sitting at *different* phases in one call); the
    thresholds only need R·p and R·p², so ragged callers pass ``rp``/``rp2``
    columns built from the same ``phase_length``/``participation_prob``
    scalars — the float products are computed in the same order, so the
    comparisons stay bit-identical to the scalar call.

    ``active`` is the phase-entry active mask (statuses that were not HALT
    when the phase began); ``status`` must already reflect the step-I
    promotions.  Returns ``(helper_cond, halt_cond)`` for trace bookkeeping.
    """
    if rp is None:
        R = proto.phase_length(i, j)
        p = proto.participation_prob(i, j)
        rp, rp2 = R * p, R * p * p
    clock_full = np.broadcast_to(np.asarray(clock, dtype=np.int64), status.shape)
    i_full = np.broadcast_to(np.asarray(i, dtype=np.int64), status.shape)
    j_full = np.broadcast_to(np.asarray(j, dtype=np.int64), status.shape)

    # Line 21: un and N_m >= 1 -> in.
    promote = active & (status == STATUS_UN) & (n_m >= 1)
    status[promote] = STATUS_IN
    informed_slot[promote] = clock_full[promote]

    # Line 22 (Fig. 4) / lines 22-24 (Fig. 6): in -> helper.
    helper_cond = (
        active
        & (status == STATUS_IN)
        & (n_m >= proto.HELPER_MSG_FACTOR * rp2)
        & (n_silence >= proto.HELPER_SILENCE_FACTOR * rp)
    )
    if proto.max_phase is None:
        helper_cond &= n_mb <= proto.HELPER_BEACON_CEIL * rp2
    else:
        # The N'_m ceiling applies except at the Fig. 6 boundary phase
        # j = lg C, where the paper removes it.
        helper_cond &= (n_mb <= proto.HELPER_BEACON_CEIL * rp2) | (
            j_full == proto.max_phase
        )
    status[helper_cond] = STATUS_HELPER
    helper_epoch[helper_cond] = i_full[helper_cond]
    helper_phase[helper_cond] = j_full[helper_cond]

    # Line 23 / 25: helper, waited >= 2/alpha epochs, matching phase, and
    # low noise -> halt.  Nodes promoted to helper this very phase fail
    # the wait (i - i = 0), matching the sequential pseudocode.
    halt_cond = (
        active
        & (status == STATUS_HELPER)
        & (i_full - helper_epoch >= proto.helper_wait)
        & (helper_phase == j_full)
        & (n_noise <= rp / proto.halt_noise_divisor)
    )
    status[halt_cond] = STATUS_HALT
    halt_slot[halt_cond] = clock_full[halt_cond]
    return helper_cond, halt_cond


class MultiCastAdv:
    """Fig. 4 protocol object (Fig. 6 when ``channel_cap`` is set).

    Parameters
    ----------
    alpha:
        The tunable exponent, 0 < α < 1/4.
    b:
        Phase-length scale: R(i, j) = max(1, ceil(b · 2^{2α(i−j)} · i³)).
    channel_cap:
        ``None`` -> unlimited channels (Fig. 4).  An integer C -> Fig. 6:
        phases clipped at j = lg C (C is rounded down to a power of two, per
        the paper's "round down" convention) with the modified helper rule.
    first_epoch:
        Paper starts at epoch 1; exposed for tests.
    block_slots:
        Vectorization granularity (performance only).
    max_epochs:
        Safety cap; ``None`` runs until all halt or ``max_slots`` fires.
    halt_noise_divisor:
        The D in the halt condition N_n <= R·p/D.  Paper: 3000.  The paper
        needs D that large only so Lemma 6.9's constants close; since the
        collision-noise rate scales as p², D=3000 forces p < ~1/77 before a
        halt can succeed, i.e. ~lg(3000)/alpha epochs past the helper phase —
        prohibitive at laptop scale.  Experiments may lower D (documented in
        DESIGN.md section 2.2); the default stays faithful.
    helper_wait:
        Epochs a helper waits before it may halt (the 2/α in line 23).
        ``None`` -> the paper's 2/alpha.
    """

    HELPER_MSG_FACTOR = 1.5  #: N_m >= 1.5 R p^2
    HELPER_SILENCE_FACTOR = 0.9  #: N_s >= 0.9 R p
    HELPER_BEACON_CEIL = 2.2  #: N'_m <= 2.2 R p^2

    #: Preferred trials per lane-batched kernel pass (consulted by
    #: ``run_trials``/``run_trial_batch`` when no explicit width is given).
    #: Purely a throughput knob — results are bit-identical at any width.
    #: The Fig. 4/6 kernel's per-lane working set is tiny (laptop-scale n),
    #: so amortizing per-block overhead across more lanes wins where the
    #: n = 64 shared-coin kernel is cache-bound at width 2 (DESIGN.md 9.3,
    #: measured in BENCH_adv_batch.json).
    batch_lane_width = 8

    #: Preferred width for the *continuously-refilled* stream driver
    #: (``run_broadcast_stream``).  Lockstep blocks cap at 8 because a wide
    #: fixed block ends up running its longest trial on a near-empty batch;
    #: compaction refills freed slots, so the stream keeps wide batches
    #: occupied and wins by merging more lanes per kernel pass (measured in
    #: BENCH_adv_compaction.json; results are bit-identical at any width).
    stream_lane_width = 32

    def __init__(
        self,
        *,
        alpha: float = 0.2,
        b: float = 1.0,
        channel_cap: Optional[int] = None,
        first_epoch: int = 1,
        block_slots: int = 8192,
        max_epochs: Optional[int] = None,
        halt_noise_divisor: float = 3000.0,
        helper_wait: Optional[float] = None,
    ):
        if not 0.0 < alpha < 0.25:
            raise ValueError("alpha must be in (0, 1/4)")
        if b <= 0:
            raise ValueError("b must be positive")
        if channel_cap is not None and channel_cap < 1:
            raise ValueError("channel_cap must be >= 1")
        if first_epoch < 1:
            raise ValueError("first_epoch must be >= 1")
        self.alpha = float(alpha)
        self.b = float(b)
        self.channel_cap = None if channel_cap is None else int(channel_cap)
        self.first_epoch = int(first_epoch)
        self.block_slots = int(block_slots)
        self.max_epochs = max_epochs
        if halt_noise_divisor <= 0:
            raise ValueError("halt_noise_divisor must be positive")
        self.halt_noise_divisor = float(halt_noise_divisor)
        #: epochs a helper must wait before it may halt: i - î >= 2/α.
        self.helper_wait = 2.0 / self.alpha if helper_wait is None else float(helper_wait)
        if self.helper_wait < 0:
            raise ValueError("helper_wait must be non-negative")
        #: largest phase index when channels are capped (lg of the rounded-
        #: down power-of-two capacity); None = unlimited.
        self.max_phase = (
            None if self.channel_cap is None else int(math.floor(math.log2(self.channel_cap)))
        )

    @property
    def name(self) -> str:
        if self.channel_cap is None:
            return "MultiCastAdv"
        return f"MultiCastAdv(C={self.channel_cap})"

    # -- phase parameters (paper section 6.2) -----------------------------------
    def phase_length(self, i: int, j: int) -> int:
        """R(i, j) = b · 2^{2α(i−j)} · i³ slots per *step* (two steps/phase)."""
        return max(1, math.ceil(self.b * 2 ** (2 * self.alpha * (i - j)) * i**3))

    def participation_prob(self, i: int, j: int) -> float:
        """p(i, j) = 2^{−α(i−j)} / 2."""
        return 2 ** (-self.alpha * (i - j)) / 2.0

    def phase_channels(self, j: int) -> int:
        """2^j channels in phase j."""
        return 2**j

    def phases_of_epoch(self, i: int) -> range:
        """j = 0 .. i-1, clipped at lg C when channels are capped (Fig. 6)."""
        hi = i - 1 if self.max_phase is None else min(i - 1, self.max_phase)
        return range(0, hi + 1)

    # -- execution ---------------------------------------------------------------
    def run(self, net: RadioNetwork, *, trace: Optional[TraceRecorder] = None) -> BroadcastResult:
        """Execute one broadcast on ``net`` and return the result."""
        n = net.n
        status = np.full(n, STATUS_UN, dtype=np.int8)
        status[0] = STATUS_IN  # the source knows m
        informed_slot = np.full(n, -1, dtype=np.int64)
        informed_slot[0] = 0
        halt_slot = np.full(n, -1, dtype=np.int64)
        helper_epoch = np.full(n, -1, dtype=np.int64)  # î per node
        helper_phase = np.full(n, -1, dtype=np.int64)  # ĵ per node
        completed = True
        epochs_run = 0
        i = self.first_epoch
        if trace is not None:
            trace.record_growth(0, 1)

        try:
            while (status != STATUS_HALT).any():
                if self.max_epochs is not None and epochs_run >= self.max_epochs:
                    completed = False
                    break
                for j in self.phases_of_epoch(i):
                    status = self._run_phase(
                        net,
                        i,
                        j,
                        status,
                        informed_slot,
                        halt_slot,
                        helper_epoch,
                        helper_phase,
                        trace,
                    )
                epochs_run += 1
                i += 1
        except SlotLimitExceeded:
            completed = False

        informed = status >= STATUS_IN
        halted = status == STATUS_HALT
        # A node that halted without ever hearing m is a correctness violation;
        # by construction informed_slot < 0 iff the node never learned m.
        halted_uninformed = int((halted & (informed_slot < 0)).sum())
        return BroadcastResult(
            protocol=self.name,
            n=n,
            slots=net.clock,
            completed=completed and bool(halted.all()),
            informed_slot=informed_slot,
            halt_slot=halt_slot,
            node_energy=net.energy.node_cost.copy(),
            adversary_spend=net.energy.adversary_spend,
            halted_uninformed=halted_uninformed,
            periods=epochs_run,
            extras={
                "alpha": self.alpha,
                "b": self.b,
                "channel_cap": self.channel_cap,
                "final_status": status.copy(),
                "helper_epoch": helper_epoch.copy(),
                "helper_phase": helper_phase.copy(),
                "informed": informed,
                "last_epoch": i - 1 if epochs_run else None,
            },
        )

    def run_batch(self, bnet) -> list:
        """Execute one broadcast per lane of a
        :class:`repro.sim.engine.BatchNetwork` — bit-identical per lane to
        :meth:`run` under the same seed (DESIGN.md section 9)."""
        from repro.core.adv_batch import run_adv_batch

        return run_adv_batch(self, bnet)

    def run_stream(self, stream) -> list:
        """Continuous-batching :meth:`run_batch`: trials retire and lane
        slots refill at epoch boundaries (DESIGN.md section 13)."""
        from repro.core.adv_batch import run_adv_stream

        return run_adv_stream(self, stream)

    def _run_phase(
        self,
        net: RadioNetwork,
        i: int,
        j: int,
        status: np.ndarray,
        informed_slot: np.ndarray,
        halt_slot: np.ndarray,
        helper_epoch: np.ndarray,
        helper_phase: np.ndarray,
        trace: Optional[TraceRecorder],
    ) -> np.ndarray:
        """Run one (i, j)-phase: step I, step II, end-of-phase checks."""
        n = status.shape[0]
        R = self.phase_length(i, j)
        p = self.participation_prob(i, j)
        C = self.phase_channels(j)
        start_slot = net.clock
        active = status != STATUS_HALT
        informed = status >= STATUS_IN

        # ---- Step I: dissemination (statuses may flip un -> in mid-step) ----
        build1 = adv_step_one_actions(p)
        remaining = R
        while remaining > 0:
            K = min(self.block_slots, remaining)
            channels = net.rng.integers(0, C, size=(K, n), dtype=np.int32)
            coins = net.rng.random((K, n))
            jam = net.draw_jamming(K, C)
            out = spread_block(
                channels,
                coins,
                jam,
                informed,
                active,
                build1,
                slot0=net.clock,
                informed_slot=informed_slot,
                trace=trace,
            )
            net.commit_block(out.actions)
            informed = out.informed
            remaining -= K
        # Commit step-I learning into statuses (un -> in).
        status = status.copy()
        status[(status == STATUS_UN) & informed] = STATUS_IN

        # ---- Step II: frozen statuses, four counters ----
        build2 = adv_step_two_actions(p)
        n_m = np.zeros(n, dtype=np.int64)
        n_mb = np.zeros(n, dtype=np.int64)
        n_noise = np.zeros(n, dtype=np.int64)
        n_silence = np.zeros(n, dtype=np.int64)
        remaining = R
        while remaining > 0:
            K = min(self.block_slots, remaining)
            channels = net.rng.integers(0, C, size=(K, n), dtype=np.int32)
            coins = net.rng.random((K, n))
            jam = net.draw_jamming(K, C)
            out = spread_block(
                channels, coins, jam, informed, active, build2, learn=False
            )
            net.commit_block(out.actions)
            counts = count_feedback(out.feedback)
            n_m += counts["msg"]
            n_mb += counts["msg_or_beacon"]
            n_noise += counts["noise"]
            n_silence += counts["silence"]
            remaining -= K

        # ---- End-of-phase checks, in pseudocode order (shared with the
        # lane-batched runner — see apply_phase_checks) ----
        helper_cond, halt_cond = apply_phase_checks(
            self,
            i,
            j,
            active=active,
            status=status,
            n_m=n_m,
            n_mb=n_mb,
            n_noise=n_noise,
            n_silence=n_silence,
            informed_slot=informed_slot,
            halt_slot=halt_slot,
            helper_epoch=helper_epoch,
            helper_phase=helper_phase,
            clock=net.clock,
        )

        if trace is not None:
            trace.record_period(
                "phase",
                (i, j),
                start_slot,
                net.clock,
                int((status >= STATUS_IN).sum()),
                int((status != STATUS_HALT).sum()),
                R=R,
                p=p,
                C=C,
                helpers=int((status == STATUS_HELPER).sum()),
                new_helpers=int(helper_cond.sum()),
                new_halts=int(halt_cond.sum()),
            )
        return status
