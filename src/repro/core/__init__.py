"""The paper's algorithms (Chen & Zheng, SPAA 2019).

Five protocols, matching the paper's five pseudocode figures:

* :class:`repro.core.multicast_core.MultiCastCore` — Fig. 1; knows n and T.
* :class:`repro.core.multicast.MultiCast` — Fig. 2; knows n only.
* :class:`repro.core.multicast_adv.MultiCastAdv` — Fig. 4; knows neither.
* :class:`repro.core.limited.MultiCastC` — Fig. 5; ``MultiCast`` on C channels.
* :class:`repro.core.limited.MultiCastAdvC` — Fig. 6; ``MultiCastAdv`` with
  the phase cut-off at j = lg C (implemented as ``MultiCastAdv(channel_cap=C)``).

All protocols share the vectorized block runner in :mod:`repro.core.runner`
and return a :class:`repro.core.result.BroadcastResult`.  Scalar, pseudocode-
literal implementations live in :mod:`repro.core.reference` for differential
testing.
"""

from repro.core.batch import run_broadcast_batch
from repro.core.limited import MultiCastAdvC, MultiCastC, effective_channels
from repro.core.multicast import MultiCast
from repro.core.multicast_adv import MultiCastAdv
from repro.core.multicast_core import MultiCastCore
from repro.core.result import BroadcastResult, run_broadcast
from repro.core.schedule import (
    IterationSpan,
    PhaseSpan,
    multicast_adv_spans,
    multicast_core_spans,
    multicast_spans,
    phase_intervals,
)

__all__ = [
    "BroadcastResult",
    "IterationSpan",
    "MultiCast",
    "MultiCastAdv",
    "MultiCastAdvC",
    "MultiCastC",
    "MultiCastCore",
    "PhaseSpan",
    "effective_channels",
    "multicast_adv_spans",
    "multicast_core_spans",
    "multicast_spans",
    "phase_intervals",
    "run_broadcast",
    "run_broadcast_batch",
]
