"""Execution results and the one-call convenience runner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.sim.engine import RadioNetwork
from repro.sim.trace import TraceRecorder

__all__ = ["BroadcastResult", "run_broadcast"]


@dataclass
class BroadcastResult:
    """Outcome of one protocol execution.

    Correctness of a run means: every node halted (``completed``), every node
    knew the message when it halted (``halted_uninformed == 0``), and hence
    ``all_informed``.  The resource-competitiveness claims are about
    ``max_cost`` versus ``adversary_spend`` and about ``slots``.
    """

    protocol: str
    n: int
    slots: int  #: physical slots elapsed when the execution ended
    completed: bool  #: all nodes halted before the safety caps fired
    informed_slot: np.ndarray  #: (n,) global slot the node learned m; -1 = never; 0 = source
    halt_slot: np.ndarray  #: (n,) global slot the node halted; -1 = never
    node_energy: np.ndarray  #: (n,) total listen+send cost per node
    adversary_spend: int  #: Eve's actual expenditure T(pi)
    halted_uninformed: int  #: nodes that terminated without the message (errors)
    periods: int  #: iterations (Figs. 1/2/5) or epochs (Figs. 4/6) executed
    extras: Dict[str, Any] = field(default_factory=dict)

    # -- derived ---------------------------------------------------------------
    @property
    def all_informed(self) -> bool:
        """Every node learned the message."""
        return bool((self.informed_slot >= 0).all())

    @property
    def success(self) -> bool:
        """The broadcast met its correctness contract end to end."""
        return self.completed and self.all_informed and self.halted_uninformed == 0

    @property
    def max_cost(self) -> int:
        """max_u cost(u) — the left-hand side of Definition 3.1."""
        return int(self.node_energy.max())

    @property
    def mean_cost(self) -> float:
        return float(self.node_energy.mean())

    @property
    def dissemination_slot(self) -> Optional[int]:
        """First slot by which *all* nodes were informed (None if never)."""
        if not self.all_informed:
            return None
        return int(self.informed_slot.max())

    @property
    def last_halt_slot(self) -> Optional[int]:
        """Slot at which the last node halted (None if some never halted)."""
        if (self.halt_slot < 0).any():
            return None
        return int(self.halt_slot.max())

    def competitive_ratio(self) -> float:
        """``max_cost / adversary_spend`` (inf when Eve spent nothing)."""
        if self.adversary_spend == 0:
            return float("inf")
        return self.max_cost / self.adversary_spend

    def __str__(self) -> str:  # pragma: no cover - human-readable report
        return (
            f"{self.protocol}(n={self.n}): success={self.success} "
            f"slots={self.slots} max_cost={self.max_cost} "
            f"eve={self.adversary_spend} periods={self.periods}"
        )


def run_broadcast(
    protocol,
    n: int,
    adversary=None,
    *,
    seed: int = 0,
    max_slots: int = 50_000_000,
    trace: Optional[TraceRecorder] = None,
) -> BroadcastResult:
    """Create a fresh network, reset the adversary, and run one execution.

    This is the main entry point for examples and experiments::

        from repro import MultiCast, BlanketJammer, run_broadcast
        result = run_broadcast(MultiCast(n=64, a=0.02),
                               n=64,
                               adversary=BlanketJammer(budget=50_000, channels=0.5),
                               seed=7)
        assert result.success

    A *reactive* adversary (one with the per-slot sensing API ``jam_slot``,
    see :mod:`repro.adversary.reactive`) cannot run on the oblivious block
    engine; such runs are dispatched to the arena runtime
    (:func:`repro.arena.run_broadcast_adaptive`) transparently, so trial
    batches and campaigns accept either adversary family through this one
    entry point.
    """
    if adversary is not None and hasattr(adversary, "jam_slot"):
        if trace is not None:
            raise ValueError("trace recording is not supported on adaptive runs")
        from repro.arena import run_broadcast_adaptive  # local: avoids an import cycle

        return run_broadcast_adaptive(
            protocol, n, adversary, seed=seed, max_slots=max_slots
        )
    if adversary is not None:
        adversary.reset()
    net = RadioNetwork(n, adversary, seed=seed, max_slots=max_slots)
    return protocol.run(net, trace=trace)
