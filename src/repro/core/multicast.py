"""``MultiCast`` — paper section 5, Figure 2.

``MultiCastCore`` needs T because its identical iterations each carry a fixed
error probability; ``MultiCast`` removes that input by making iterations grow:
iteration i (starting at i = 6) has R_i = a·i·4^i·lg²n slots and uses
listen/broadcast probability p_i = 2^-i, halting a node iff its noisy-slot
count is below R_i·p_i/2.  Later iterations fail with rapidly vanishing
probability, so the total error is bounded by a function of n alone, and the
"sparse" probabilities buy the improved energy bound.

Guarantee (Theorem 5.4): with n/2 channels, w.h.p. all nodes receive the
message and terminate within O(T/n + lg²n) slots, and each node's cost is
O(√(T/n)·√lgT·lgn + lg²n).  With no jamming everything finishes inside the
first iteration: O(lg²n) time and cost.

Fidelity notes
--------------
* Structural constants are the paper's: growth factor 4 in R_i, probability
  halving p_i = 2^-i, first iteration i = 6, halt threshold R_i·p_i/2.
* ``a`` ("sufficiently large") is a float scale parameter, as in
  :mod:`repro.core.multicast_core`; see there for why.
* This class is also the engine behind ``MultiCast(C)`` (Fig. 5): the
  channel-limited variant maps physical (slot, channel) pairs to virtual
  channels and reuses this exact iteration loop — see
  :mod:`repro.core.limited`.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.result import BroadcastResult
from repro.core.runner import count_feedback, shared_coin_actions, spread_block
from repro.sim.engine import RadioNetwork, SlotLimitExceeded
from repro.sim.trace import TraceRecorder

__all__ = ["MultiCast"]


class MultiCast:
    """Fig. 2 protocol object.

    Parameters
    ----------
    n:
        Number of nodes (node 0 is the source).
    a:
        Iteration-length scale: R_i = max(1, ceil(a · i · 4^i · lg²n)).
        Defaults keep the paper's shape; pick ~0.001–0.05 for laptop-scale
        experiments (see DESIGN.md section 2.2).
    start_iteration:
        The paper starts at i = 6 (so p_i <= 1/64); exposed for tests.
    block_slots, max_iterations:
        As in :class:`repro.core.multicast_core.MultiCastCore`.
    """

    #: per-iteration growth of the iteration length (paper: 4^i).
    LENGTH_GROWTH = 4
    #: halt iff noisy-slot count < R_i * p_i * this (paper: 1/2).
    NOISE_THRESHOLD = 0.5

    def __init__(
        self,
        n: int,
        *,
        a: float = 0.05,
        start_iteration: int = 6,
        block_slots: int = 4096,
        max_iterations: Optional[int] = None,
    ):
        if n < 4:
            raise ValueError("MultiCast needs n >= 4 (n/2 >= 2 channels)")
        if a <= 0:
            raise ValueError("a must be positive")
        if start_iteration < 1:
            raise ValueError("start_iteration must be >= 1")
        self.n = int(n)
        self.a = float(a)
        self.start_iteration = int(start_iteration)
        self.block_slots = int(block_slots)
        self.max_iterations = max_iterations
        self.num_channels = self.n // 2

    @property
    def name(self) -> str:
        return "MultiCast"

    def iteration_length(self, i: int) -> int:
        """R_i = a · i · 4^i · lg²n, at least 1."""
        lg2n = math.log2(self.n) ** 2
        return max(1, math.ceil(self.a * i * (self.LENGTH_GROWTH**i) * lg2n))

    def listen_prob(self, i: int) -> float:
        """p_i = 2^-i."""
        return 2.0**-i

    def run(self, net: RadioNetwork, *, trace: Optional[TraceRecorder] = None) -> BroadcastResult:
        """Execute one broadcast on ``net`` and return the result."""
        if net.n != self.n:
            raise ValueError(f"network has n={net.n}, protocol built for n={self.n}")
        return _run_multicast_iterations(self, net, trace=trace)

    def run_batch(self, bnet) -> list:
        """Execute one broadcast per lane of a
        :class:`repro.sim.engine.BatchNetwork` — bit-identical per lane to
        :meth:`run` under the same seed (DESIGN.md section 6)."""
        from repro.core.batch import run_iterations_batch

        return run_iterations_batch(
            self,
            bnet,
            first_index=self.start_iteration,
            schedule=self._iteration_schedule,
            make_extras=self._batch_extras,
        )

    def run_stream(self, stream) -> list:
        """Continuous-batching :meth:`run_batch`: the same per-trial results
        through compacted/refilled lane slots (DESIGN.md section 13)."""
        from repro.core.batch import run_iterations_stream

        return run_iterations_stream(
            self,
            stream,
            first_index=self.start_iteration,
            schedule=self._iteration_schedule,
            make_extras=self._batch_extras,
        )

    def _iteration_schedule(self, i: int) -> tuple:
        """(R_i, p_i, halt threshold) for iteration ``i``."""
        R = self.iteration_length(i)
        p = self.listen_prob(i)
        return R, p, R * p * self.NOISE_THRESHOLD

    def _batch_extras(self, iterations: int) -> dict:
        """Per-lane extras matching the scalar runner's, given the lane's
        iteration count."""
        return {
            "num_channels": self.num_channels,
            "first_iteration": self.start_iteration,
            "last_iteration": (
                self.start_iteration + iterations - 1 if iterations else None
            ),
        }


def _run_multicast_iterations(
    proto,
    net: RadioNetwork,
    *,
    trace: Optional[TraceRecorder],
    slots_per_row: int = 1,
    draw_jamming=None,
) -> BroadcastResult:
    """Shared iteration loop for ``MultiCast`` (Fig. 2) and ``MultiCast(C)``
    (Fig. 5).

    ``slots_per_row`` and ``draw_jamming`` are the Fig. 5 hooks: the limited
    variant simulates each virtual slot ("round") with ``n/(2C)`` physical
    slots, and derives the virtual jam mask from the physical one — see
    :mod:`repro.core.limited` for the mapping.  For plain ``MultiCast`` the
    defaults draw jamming directly on n/2 physical channels.
    """
    n = proto.n
    C = proto.num_channels
    if draw_jamming is None:
        draw_jamming = lambda K: net.draw_jamming(K, C)  # noqa: E731

    informed = np.zeros(n, dtype=bool)
    informed[0] = True
    active = np.ones(n, dtype=bool)
    informed_slot = np.full(n, -1, dtype=np.int64)
    informed_slot[0] = 0
    halt_slot = np.full(n, -1, dtype=np.int64)
    halted_uninformed = 0
    completed = True
    iterations_run = 0
    i = proto.start_iteration
    if trace is not None:
        trace.record_growth(0, 1)

    try:
        while active.any():
            if proto.max_iterations is not None and iterations_run >= proto.max_iterations:
                completed = False
                break
            R = proto.iteration_length(i)
            p = proto.listen_prob(i)
            threshold = R * p * proto.NOISE_THRESHOLD
            build = shared_coin_actions(p)
            start_slot = net.clock
            noisy = np.zeros(n, dtype=np.int64)
            remaining = R
            while remaining > 0:
                K = min(proto.block_slots, remaining)
                channels = net.rng.integers(0, C, size=(K, n), dtype=np.int32)
                coins = net.rng.random((K, n))
                jam = draw_jamming(K)
                out = spread_block(
                    channels,
                    coins,
                    jam,
                    informed,
                    active,
                    build,
                    slot0=net.clock,
                    slot_scale=slots_per_row,
                    informed_slot=informed_slot,
                    trace=trace,
                )
                net.commit_block(out.actions, slots_per_row=slots_per_row)
                informed = out.informed
                noisy += count_feedback(out.feedback)["noise"]
                remaining -= K

            halt_now = active & (noisy < threshold)
            halted_uninformed += int((halt_now & ~informed).sum())
            halt_slot[halt_now] = net.clock
            active &= ~halt_now
            iterations_run += 1
            if trace is not None:
                trace.record_period(
                    "iteration",
                    (i,),
                    start_slot,
                    net.clock,
                    int(informed.sum()),
                    int(active.sum()),
                    R=R,
                    p=p,
                    max_noisy=int(noisy.max()),
                    threshold=threshold,
                )
            i += 1
    except SlotLimitExceeded:
        completed = False

    return BroadcastResult(
        protocol=proto.name,
        n=n,
        slots=net.clock,
        completed=completed and not active.any(),
        informed_slot=informed_slot,
        halt_slot=halt_slot,
        node_energy=net.energy.node_cost.copy(),
        adversary_spend=net.energy.adversary_spend,
        halted_uninformed=halted_uninformed,
        periods=iterations_run,
        extras={
            "num_channels": C,
            "first_iteration": proto.start_iteration,
            "last_iteration": i - 1 if iterations_run else None,
        },
    )
