"""``MultiCastCore`` — paper section 4, Figure 1.

The simplest of the paper's algorithms: identical iterations of R = a·lg T̂
slots (T̂ = max(T, n)); in every slot every active node hops to a uniform
channel in [1, n/2], listens with probability 1/64, and — if informed —
broadcasts with probability 1/64.  At the end of an iteration a node halts iff
it heard noise in fewer than R/128 of its slots.

Guarantee (Theorem 4.4): w.h.p. all nodes receive the message, and each
node's cost and active period is O(T/n + max{lg T, lg n}).  The algorithm
needs *both* n and T as inputs — removing the T requirement is what
``MultiCast`` (section 5) is for.

Fidelity notes
--------------
* Structural constants (1/64 listen/broadcast probability, R/128 noise
  threshold) are the paper's.
* The iteration-length scale ``a`` ("some sufficiently large constant") is a
  float parameter: the paper needs it large only to push the per-iteration
  error probability below 1/T̂^Ω(1); at simulation scale the concentration is
  measured, not assumed, so small ``a`` keeps runs affordable and the shape
  experiments (EXP-T4.4) still hold.
* The paper assumes n is a power of two and uses n/2 channels; we accept any
  n >= 4 and use floor(n/2) channels.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.result import BroadcastResult
from repro.core.runner import count_feedback, shared_coin_actions, spread_block
from repro.sim.engine import RadioNetwork, SlotLimitExceeded
from repro.sim.trace import TraceRecorder

__all__ = ["MultiCastCore"]


class MultiCastCore:
    """Fig. 1 protocol object (stateless across runs; reusable).

    Parameters
    ----------
    n:
        Number of nodes (node 0 is the source).
    T:
        The adversary budget the protocol is provisioned for (an *input* to
        this algorithm, per the paper; the adversary actually attached to the
        network may spend less).
    a:
        Iteration-length scale: R = ceil(a · lg2(max(T, n))).
    block_slots:
        Vectorization granularity (performance only; no semantic effect).
    max_iterations:
        Optional safety cap; ``None`` runs until all nodes halt or the
        network's ``max_slots`` fires.
    """

    #: listen (and broadcast) probability per slot — paper's 1/64.
    LISTEN_PROB = 1.0 / 64.0
    #: halt iff the iteration's noisy-slot count is below R * this — paper's 1/128.
    NOISE_THRESHOLD = 1.0 / 128.0

    def __init__(
        self,
        n: int,
        T: int,
        *,
        a: float = 8192.0,
        block_slots: int = 4096,
        max_iterations: Optional[int] = None,
    ):
        if n < 4:
            raise ValueError("MultiCastCore needs n >= 4 (n/2 >= 2 channels)")
        if T < 0:
            raise ValueError("T must be non-negative")
        if a <= 0:
            raise ValueError("a must be positive")
        self.n = int(n)
        self.T = int(T)
        self.a = float(a)
        self.block_slots = int(block_slots)
        self.max_iterations = max_iterations
        self.num_channels = self.n // 2
        t_hat = max(self.T, self.n)
        #: iteration length R = a · lg T̂ (at least 1 slot)
        self.iteration_slots = max(1, math.ceil(self.a * math.log2(max(2, t_hat))))

    @property
    def name(self) -> str:
        return "MultiCastCore"

    def run_batch(self, bnet) -> list:
        """Execute one broadcast per lane of a
        :class:`repro.sim.engine.BatchNetwork` — bit-identical per lane to
        :meth:`run` under the same seed (DESIGN.md section 6).  Fig. 1's
        identical iterations make this the simplest batched schedule: every
        iteration is (R, 1/64, R/128)."""
        from repro.core.batch import run_iterations_batch

        R = self.iteration_slots
        return run_iterations_batch(
            self,
            bnet,
            first_index=1,
            schedule=lambda i: (R, self.LISTEN_PROB, R * self.NOISE_THRESHOLD),
            make_extras=lambda iterations: {
                "iteration_slots": R,
                "num_channels": self.num_channels,
                "provisioned_T": self.T,
            },
            count_at_entry=True,
        )

    def run_stream(self, stream) -> list:
        """Continuous-batching :meth:`run_batch` (DESIGN.md section 13)."""
        from repro.core.batch import run_iterations_stream

        R = self.iteration_slots
        return run_iterations_stream(
            self,
            stream,
            first_index=1,
            schedule=lambda i: (R, self.LISTEN_PROB, R * self.NOISE_THRESHOLD),
            make_extras=lambda iterations: {
                "iteration_slots": R,
                "num_channels": self.num_channels,
                "provisioned_T": self.T,
            },
            count_at_entry=True,
        )

    def run(self, net: RadioNetwork, *, trace: Optional[TraceRecorder] = None) -> BroadcastResult:
        """Execute one broadcast on ``net`` and return the result."""
        if net.n != self.n:
            raise ValueError(f"network has n={net.n}, protocol built for n={self.n}")
        n, C, R = self.n, self.num_channels, self.iteration_slots
        p = self.LISTEN_PROB
        threshold = R * self.NOISE_THRESHOLD
        build = shared_coin_actions(p)

        informed = np.zeros(n, dtype=bool)
        informed[0] = True
        active = np.ones(n, dtype=bool)
        informed_slot = np.full(n, -1, dtype=np.int64)
        informed_slot[0] = 0
        halt_slot = np.full(n, -1, dtype=np.int64)
        halted_uninformed = 0
        completed = True
        iteration = 0
        if trace is not None:
            trace.record_growth(0, 1)

        try:
            while active.any():
                if self.max_iterations is not None and iteration >= self.max_iterations:
                    completed = False
                    break
                iteration += 1
                start_slot = net.clock
                noisy = np.zeros(n, dtype=np.int64)
                remaining = R
                while remaining > 0:
                    K = min(self.block_slots, remaining)
                    channels = net.rng.integers(0, C, size=(K, n), dtype=np.int32)
                    coins = net.rng.random((K, n))
                    jam = net.draw_jamming(K, C)
                    out = spread_block(
                        channels,
                        coins,
                        jam,
                        informed,
                        active,
                        build,
                        slot0=net.clock,
                        informed_slot=informed_slot,
                        trace=trace,
                    )
                    net.commit_block(out.actions)
                    informed = out.informed
                    noisy += count_feedback(out.feedback)["noise"]
                    remaining -= K

                halt_now = active & (noisy < threshold)
                halted_uninformed += int((halt_now & ~informed).sum())
                halt_slot[halt_now] = net.clock
                active &= ~halt_now
                if trace is not None:
                    trace.record_period(
                        "iteration",
                        (iteration,),
                        start_slot,
                        net.clock,
                        int(informed.sum()),
                        int(active.sum()),
                        R=R,
                        max_noisy=int(noisy.max()),
                        threshold=threshold,
                    )
        except SlotLimitExceeded:
            completed = False

        return BroadcastResult(
            protocol=self.name,
            n=n,
            slots=net.clock,
            completed=completed and not active.any(),
            informed_slot=informed_slot,
            halt_slot=halt_slot,
            node_energy=net.energy.node_cost.copy(),
            adversary_spend=net.energy.adversary_spend,
            halted_uninformed=halted_uninformed,
            periods=iteration,
            extras={
                "iteration_slots": R,
                "num_channels": C,
                "provisioned_T": self.T,
            },
        )
