"""Batched (lane-axis) trial execution — many seeded runs, one kernel pass.

Every statistic this reproduction reports is a rate over independently
seeded trials, and on a single core the only remaining speed lever is
amortizing per-block interpreter and kernel overhead across those trials.
This module is the protocol-layer half of that move (DESIGN.md section 6):

* :func:`_shared_coin_block` — the lane-batched block kernel for the
  shared-coin action rule (Figs. 1/2/5).  The iteration loop never consumes
  action or feedback *matrices* — only per-node listen/send/noise totals,
  the informing events, and the resulting statuses — and under the shared
  coin all of those are pure functions of the ~2pKn draws that clear the
  participation coin.  So the kernel extracts those participants once,
  resolves the "uninformed node heard m" cascade as a vectorized
  fixed-point over per-node informing rows, and reduces the counters in one
  sender-keyed pass — no ``resolve_block``, no ``(B, K, n)`` action/feedback
  materialization, one flat key space ``lane*K*C + slot*C + channel``.
* :func:`run_iterations_batch` — the lane-batched counterpart of the shared
  iteration loop used by ``MultiCastCore`` (Fig. 1), ``MultiCast`` (Fig. 2)
  and ``MultiCast(C)`` (Fig. 5): all protocols whose periods are iterations
  of R slots with a shared-coin action rule and a noisy-slot halting test.
  Lanes run the same iteration schedule in lockstep; a lane that halts (or
  overruns ``max_slots``) is masked out of subsequent blocks rather than
  blocking the batch.
* :func:`run_broadcast_batch` — the batch analogue of
  :func:`repro.core.result.run_broadcast`: build one
  :class:`repro.sim.engine.BatchNetwork` over per-lane seeds/adversaries and
  dispatch to the protocol's ``run_batch``.  Every shipped protocol has one
  (``MultiCastAdv``/``MultiCastAdvC`` batch through
  :mod:`repro.core.adv_batch`); a protocol without one (or a batch mixing
  reactive with oblivious adversaries) falls back to a per-lane loop behind
  the same interface — loudly: the fallback prints one stderr line and
  stamps ``extras["backend"] = "scalar-fallback"`` on each lane that ran
  the scalar block engine, so campaign logs and stores show which cells
  didn't batch.

Determinism contract (enforced by ``tests/core/test_batch_equivalence.py``):
lane ``l`` is **bit-identical** to the scalar execution with the same
``(seed, adversary)`` — same slots, statuses, event slots, energy books and
extras — because each lane draws from its own generator in the same order,
and the kernel computes exactly the quantities the scalar resolver would
(section 6 of DESIGN.md walks through the argument).
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.result import BroadcastResult, run_broadcast
from repro.obs.recorder import active as _obs_active
from repro.sim.engine import BatchNetwork
from repro.sim.jam import JamBlock

__all__ = [
    "run_broadcast_batch",
    "run_iterations_batch",
    "FallbackNotes",
    "collect_fallback_notes",
]

#: ``schedule(i) -> (R, p, threshold)``: iteration i's length, listen
#: probability and halting threshold (halt iff noisy-slot count < threshold).
IterationSchedule = Callable[[int], Tuple[int, float, float]]


def _shared_coin_block(
    channels: np.ndarray,
    coins: np.ndarray,
    jam: JamBlock,
    informed: np.ndarray,
    active: np.ndarray,
    p: float,
    *,
    slot0: np.ndarray,
    slot_scale: int = 1,
    informed_slot: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Resolve one block of every lane under the shared-coin rule, returning
    ``(listen_counts, send_counts, noise_counts, informed)``.

    Inputs are lane-stacked: ``channels``/``coins`` are ``(L, K, n)``,
    ``informed``/``active``/``informed_slot`` are ``(L, n)`` (the latter
    updated in place with event slots), ``jam`` is the lanes' stacked
    :class:`~repro.sim.jam.JamBlock` of ``L*K`` rows in the same lane order,
    and ``slot0`` holds each lane's global slot of row 0.

    The computation is exact — bit-identical to building the action matrix,
    calling :func:`repro.sim.channel.resolve_block` and reducing, per lane —
    but touches only the draws that clear the participation coin:

    1.  **Participants.**  A node acts iff its coin < 2p (listen below p,
        broadcast — when informed — in [p, 2p)); everything below works on
        the ``(lane, row, node)`` triples of those hits.  Listen energy is
        status-independent and counted immediately.
    2.  **Event cascade.**  Whether a broadcast-coin hit is a real broadcast
        depends on when its node learned ``m``, captured as a per-node
        *informing row* (-1 = knew at block entry, K = not yet).  An
        uninformed listener hears ``m`` iff its (row, channel) cell has
        exactly one current broadcaster and no jamming, and the earliest
        such row per lane is that lane's next event — which adds
        broadcasters at later rows only, so iterating "detect earliest event
        per lane -> record informing rows -> re-detect past it" reaches the
        same fixed point the scalar tail re-resolution loop does, with every
        lane advancing per pass.
    3.  **Counters.**  With informing rows final, a broadcast-coin hit is a
        send iff its row is later than its node's informing row, and a
        listen is noisy iff its cell is jammed or holds >= 2 such sends —
        one sorted-key count plus one lookup over the listen hits.
    """
    L, K, n = coins.shape
    C = jam.C
    if active.all():  # nobody has halted yet — the common early-run case
        hit = coins < 2 * p
    else:
        hit = (coins < 2 * p) & active[:, None, :]
    # One flat extraction pass; the raveled gathers below walk memory in
    # increasing order, which matters more than it looks at these sizes.
    flat = np.flatnonzero(hit)
    lane = flat // (K * n)
    row = (flat // n) % K
    node = flat % n
    is_listen = coins.ravel()[flat] < p
    node_key = lane * n + node
    cell = (lane * np.int64(K) + row) * np.int64(C) + channels.ravel()[flat]
    listen_counts = np.bincount(node_key[is_listen], minlength=L * n).reshape(L, n)
    # Jamming at listen cells, once for the whole block (binary search in the
    # stacked block's key space).
    jam_at = np.zeros(lane.shape[0], dtype=bool)
    jam_at[is_listen] = jam.lookup_keys(cell[is_listen])

    NEVER = np.int64(K)  # sentinel informing row: not informed in this block
    informing_row = np.where(informed, np.int64(-1), NEVER)  # (L, n)

    def sends_now():
        return ~is_listen & (row > informing_row[lane, node])

    def broadcasters_at(query_cells: np.ndarray, send_mask: np.ndarray) -> np.ndarray:
        """Current broadcaster count at each queried cell."""
        send_cells = np.sort(cell[send_mask])
        if not send_cells.size:
            return np.zeros(query_cells.shape[0], dtype=np.int64)
        lo = np.searchsorted(send_cells, query_cells, side="left")
        hi = np.searchsorted(send_cells, query_cells, side="right")
        return hi - lo

    frontier = np.full(L, -1, dtype=np.int64)  # rows <= frontier are settled
    while True:
        informing_at_hit = informing_row[lane, node]
        learners = (
            is_listen & (informing_at_hit == NEVER) & (row > frontier[lane])
        )
        if not learners.any():
            break
        sends = ~is_listen & (row > informing_at_hit)
        count = broadcasters_at(cell[learners], sends)
        heard = (count == 1) & ~jam_at[learners]
        if not heard.any():
            break
        learner_idx = np.nonzero(learners)[0]
        heard_idx = learner_idx[heard]
        heard_lane = lane[heard_idx]
        heard_row = row[heard_idx]
        heard_node = node[heard_idx]
        # Optimistic acceptance.  A hearing is *cell-safe* — no
        # later-resolved event can flip its own cell — iff no
        # still-uninformed node holds a broadcast coin on it: those are the
        # only broadcasts the cascade can still add (or, by collision,
        # remove).  That is not sufficient on its own: the *same node* may
        # have an earlier listen that is still volatile (pending hearing,
        # or a cell a future broadcast could turn into one), and the node
        # must inform at its earliest hearing — so a cell-safe hearing is
        # accepted only when it is the node's earliest volatile listen.
        # The earliest hearing per lane is additionally always definitive
        # (np.nonzero order is (lane, row, node)-sorted, so the first index
        # per lane is its earliest row): events only add broadcasts at rows
        # past the informing row, and no event precedes the earliest
        # hearing.  Accepted events therefore cannot interfere with one
        # another, and a typical block settles in a couple of passes
        # instead of one per event row.
        potential = np.sort(cell[~is_listen & (informing_at_hit == NEVER)])
        learner_cells = cell[learner_idx]
        exposed = (
            np.searchsorted(potential, learner_cells, side="right")
            - np.searchsorted(potential, learner_cells, side="left")
        ) > 0
        cell_safe = ~exposed[heard]
        # first volatile listen row, computed only for the nodes that have a
        # cell-safe hearing to validate (np.minimum.at is an unbuffered
        # per-element loop; keep its input tiny)
        candidate_keys = np.unique(
            heard_lane[cell_safe] * n + heard_node[cell_safe]
        )
        volatile = exposed | heard
        vol_idx = learner_idx[volatile]
        vol_keys = lane[vol_idx] * n + node[vol_idx]
        relevant = vol_idx[
            vol_keys == candidate_keys[
                np.minimum(
                    np.searchsorted(candidate_keys, vol_keys),
                    max(0, candidate_keys.size - 1),
                )
            ]
        ] if candidate_keys.size else vol_idx[:0]
        first_volatile = np.full((L, n), NEVER, dtype=np.int64)
        np.minimum.at(
            first_volatile, (lane[relevant], node[relevant]), row[relevant]
        )
        safe = cell_safe & (heard_row == first_volatile[heard_lane, heard_node])
        event_lanes, first = np.unique(heard_lane, return_index=True)
        first_row = np.full(L, NEVER, dtype=np.int64)
        first_row[event_lanes] = heard_row[first]
        definitive = safe | (heard_row == first_row[heard_lane])
        ev_lane = heard_lane[definitive]
        ev_row = heard_row[definitive]
        ev_node = heard_node[definitive]
        # A node can still carry two accepted hearings (lane-first plus a
        # later cell-safe one); it informs at the earliest, hence minimum
        # rather than last-write-wins.
        np.minimum.at(informing_row, (ev_lane, ev_node), ev_row)
        # New broadcasts appear only at rows past this pass's earliest
        # hearing, so nothing below it can still change.
        frontier[event_lanes] = heard_row[first]

    if informed_slot is not None:
        new_lane, new_node = np.nonzero((informing_row >= 0) & (informing_row < NEVER))
        informed_slot[new_lane, new_node] = (
            slot0[new_lane] + informing_row[new_lane, new_node] * slot_scale
        )

    sends = sends_now()
    send_counts = np.bincount(node_key[sends], minlength=L * n).reshape(L, n)
    count = broadcasters_at(cell[is_listen], sends)
    noisy = jam_at[is_listen] | (count >= 2)
    noise_counts = np.bincount(
        node_key[is_listen][noisy], minlength=L * n
    ).reshape(L, n)
    return listen_counts, send_counts, noise_counts, informing_row < NEVER


def run_iterations_batch(
    proto,
    bnet: BatchNetwork,
    *,
    first_index: int,
    schedule: IterationSchedule,
    make_extras: Callable[[int], dict],
    slots_per_row: int = 1,
    draw_jamming=None,
    count_at_entry: bool = False,
) -> List[BroadcastResult]:
    """Run the shared iteration loop for every lane of ``bnet`` in lockstep.

    Mirrors ``repro.core.multicast._run_multicast_iterations`` lane-by-lane:
    while a lane still has active nodes it keeps entering iterations, and
    since every lane starts at ``first_index`` all live lanes are always on
    the *same* iteration — so they share R, p and the block structure, and
    the whole batch advances through one sequence of draw/resolve/commit
    calls, with each block resolved by :func:`_shared_coin_block`.
    ``proto`` supplies ``n``, ``num_channels``, ``block_slots``,
    ``max_iterations`` and ``name``; ``make_extras(lane_iterations)`` builds
    the per-lane extras dict.

    ``draw_jamming(lane_ids, rows)`` may override the jam source (the Fig. 5
    physical-to-virtual relabeling); the default draws on
    ``proto.num_channels`` directly.

    ``count_at_entry`` mirrors a bookkeeping difference between the scalar
    runners: ``MultiCastCore`` increments its iteration counter on *entering*
    an iteration (so a lane truncated mid-iteration reports the partial one
    in ``periods``), ``MultiCast`` on completing it.
    """
    n = proto.n
    C = proto.num_channels
    if bnet.n != n:
        raise ValueError(f"batch network has n={bnet.n}, protocol built for n={n}")
    if draw_jamming is None:
        draw_jamming = lambda lane_ids, rows: bnet.draw_jamming(lane_ids, rows, C)  # noqa: E731

    B = bnet.B
    informed = np.zeros((B, n), dtype=bool)
    informed[:, 0] = True
    active = np.ones((B, n), dtype=bool)
    informed_slot = np.full((B, n), -1, dtype=np.int64)
    informed_slot[:, 0] = 0
    halt_slot = np.full((B, n), -1, dtype=np.int64)
    halted_uninformed = np.zeros(B, dtype=np.int64)
    completed = np.ones(B, dtype=bool)
    iterations_run = np.zeros(B, dtype=np.int64)
    live = np.ones(B, dtype=bool)
    i = first_index
    tel = _obs_active()

    while live.any():
        if proto.max_iterations is not None and int(iterations_run[live].max()) >= proto.max_iterations:
            completed[live] = False
            break
        R, p, threshold = schedule(i)
        noisy = np.zeros((B, n), dtype=np.int64)
        lane_ids = np.nonzero(live)[0]
        remaining = R
        while remaining > 0 and lane_ids.size:
            K = min(proto.block_slots, remaining)
            channels = bnet.draw_channels(lane_ids, K, C)
            coins = bnet.draw_coins(lane_ids, K)
            jam = draw_jamming(lane_ids, K)
            sub_slot = informed_slot[lane_ids]
            if tel is not None:
                t0 = time.perf_counter()
            listen_counts, send_counts, block_noise, new_informed = _shared_coin_block(
                channels,
                coins,
                jam,
                informed[lane_ids],
                active[lane_ids],
                p,
                slot0=bnet.clocks[lane_ids],
                slot_scale=slots_per_row,
                informed_slot=sub_slot,
            )
            if tel is not None:
                tel.add_time("batch.kernel_s", time.perf_counter() - t0)
                tel.count("batch.kernel_passes")
                tel.count("batch.lane_rows", int(lane_ids.size) * K)
                tel.observe("batch.occupancy", int(lane_ids.size))
            overrun = bnet.commit_counts(
                lane_ids, listen_counts, send_counts, K, slots_per_row=slots_per_row
            )
            # informed_slot is adopted even for a lane whose commit overran
            # (the scalar path raises *after* the event loop's in-place
            # update); informed/noisy updates belong to survivors only,
            # matching where the scalar exception lands.
            informed_slot[lane_ids] = sub_slot
            if overrun.any():
                dead = lane_ids[overrun]
                completed[dead] = False
                live[dead] = False
                if count_at_entry:  # the partial iteration counts (Fig. 1)
                    iterations_run[dead] += 1
                lane_ids = lane_ids[~overrun]
                new_informed = new_informed[~overrun]
                block_noise = block_noise[~overrun]
            informed[lane_ids] = new_informed
            noisy[lane_ids] += block_noise
            remaining -= K
        if lane_ids.size:
            halt_now = active[lane_ids] & (noisy[lane_ids] < threshold)  # (L, n)
            halted_uninformed[lane_ids] += (halt_now & ~informed[lane_ids]).sum(axis=1)
            lane_halt = halt_slot[lane_ids]
            lane_clocks = bnet.clocks[lane_ids]
            lane_halt[halt_now] = np.broadcast_to(lane_clocks[:, None], lane_halt.shape)[halt_now]
            halt_slot[lane_ids] = lane_halt
            active[lane_ids] &= ~halt_now
            iterations_run[lane_ids] += 1
            finished = ~active[lane_ids].any(axis=1)
            live[lane_ids[finished]] = False
        i += 1

    if tel is not None and B > 1:
        # straggler wait: slots the slowest lane ran past the second-slowest
        # — per-pass occupancy says *when* lanes drop out, this says how much
        # tail one lane adds to the whole batch
        clocks = np.sort(bnet.clocks)
        tel.count("batch.straggler_slots", int(clocks[-1] - clocks[-2]))
        tel.count("batch.batches")
        tel.count("batch.lanes", B)

    return [
        BroadcastResult(
            protocol=proto.name,
            n=n,
            slots=int(bnet.clocks[lane]),
            completed=bool(completed[lane]) and not active[lane].any(),
            informed_slot=informed_slot[lane].copy(),
            halt_slot=halt_slot[lane].copy(),
            node_energy=bnet.energy.lane_node_cost(lane),
            adversary_spend=bnet.energy.lane_adversary_spend(lane),
            halted_uninformed=int(halted_uninformed[lane]),
            periods=int(iterations_run[lane]),
            extras=make_extras(int(iterations_run[lane])),
        )
        for lane in range(B)
    ]


class FallbackNotes:
    """Campaign-scoped tally of scalar-fallback lanes, keyed by cause.

    A long campaign can push thousands of lane blocks through
    :func:`run_broadcast_batch`; if its protocol cannot batch, a per-call
    stderr line turns the log into noise (once per kernel pass, not once per
    campaign).  Inside a :func:`collect_fallback_notes` scope the calls
    stay silent and the notes accumulate here; the campaign runner emits one
    summary line per (protocol, reason) at the end.  Counts survive process
    boundaries as plain dicts (:meth:`snapshot` / :meth:`merge`), which is
    how sharded workers report theirs back to the parent.
    """

    def __init__(self):
        #: (protocol name, reason) -> [lanes, kernel passes]
        self.counts: Dict[Tuple[str, str], List[int]] = {}

    def add(self, name: str, reason: str, lanes: int, passes: int = 1) -> None:
        entry = self.counts.setdefault((name, reason), [0, 0])
        entry[0] += lanes
        entry[1] += passes

    def snapshot(self) -> Dict[Tuple[str, str], List[int]]:
        """A picklable copy of the tally (worker -> parent transport)."""
        return {key: list(value) for key, value in self.counts.items()}

    def merge(self, counts: Dict[Tuple[str, str], List[int]]) -> None:
        for (name, reason), (lanes, passes) in counts.items():
            self.add(name, reason, lanes, passes)

    def __bool__(self) -> bool:
        return bool(self.counts)

    def summary_lines(self) -> List[str]:
        """One line per cause, in first-seen order."""
        return [
            f"run_broadcast_batch: {name} {reason} — {lanes} lane(s) in "
            f"{passes} kernel pass(es) ran on the scalar fallback"
            for (name, reason), (lanes, passes) in self.counts.items()
        ]

    def emit(self, stream=None) -> None:
        for line in self.summary_lines():
            print(line, file=stream if stream is not None else sys.stderr)


#: The active collector, if any (installed by collect_fallback_notes).
_FALLBACK_NOTES: Optional[FallbackNotes] = None


@contextmanager
def collect_fallback_notes():
    """Collect scalar-fallback warnings instead of printing them per call.

    Yields the :class:`FallbackNotes`; nests by shadowing (the innermost
    scope collects).  The campaign runner wraps each run in one of these and
    emits the summary once, which is the "one warning per campaign, not one
    per lane pass" contract ``tests/exp/test_fallback_notes.py`` pins.
    """
    global _FALLBACK_NOTES
    previous = _FALLBACK_NOTES
    notes = FallbackNotes()
    _FALLBACK_NOTES = notes
    try:
        yield notes
    finally:
        _FALLBACK_NOTES = previous


def _note_fallback(protocol, reason: str, lanes: int) -> None:
    """Record a scalar fallback: collected note inside a campaign scope,
    one stderr line otherwise — plus a telemetry counter when recording."""
    name = getattr(protocol, "name", type(protocol).__name__)
    if _FALLBACK_NOTES is not None:
        _FALLBACK_NOTES.add(name, reason, lanes)
    else:
        print(
            f"run_broadcast_batch: {name} {reason} — "
            f"{lanes} lane(s) ran on the scalar fallback",
            file=sys.stderr,
        )
    tel = _obs_active()
    if tel is not None:
        tel.count("batch.fallback_lanes", lanes)


def run_broadcast_batch(
    protocol,
    n: int,
    adversaries: Optional[Sequence] = None,
    seeds: Sequence[int] = (0,),
    *,
    max_slots: int = 50_000_000,
    trace=None,
) -> List[BroadcastResult]:
    """Run one execution per lane — ``len(seeds)`` trials in one batch.

    The batch analogue of :func:`repro.core.result.run_broadcast`: lane ``l``
    runs ``protocol`` against ``adversaries[l]`` (reset first) under seed
    ``seeds[l]``, and the returned list matches what ``B`` scalar
    ``run_broadcast`` calls would produce, result for result.

    Protocols advertise batch support with a ``run_batch(bnet)`` method —
    every shipped protocol has one (``MultiCastAdv``/``MultiCastAdvC``
    through :mod:`repro.core.adv_batch`).  A protocol without one — and any
    batch mixing reactive with oblivious adversaries — falls back to a
    per-lane loop behind the same interface, but not silently: every lane
    that actually ran the scalar block engine gets
    ``extras["backend"] = "scalar-fallback"`` and one stderr line counts
    them, so campaign logs and stores show which cells didn't batch.
    (Lanes with *reactive* adversaries are different — they dispatch to the
    vectorized arena runtime by design and are neither warned about nor
    stamped.)

    ``trace=`` (a :class:`~repro.core.trace.TraceRecorder`) is honored only
    by the scalar engine: a one-lane batch falls back scalar with a
    FallbackNote, and a multi-lane batch raises — a trace records one
    execution, so silently attaching it to lane 0 of a batch (or dropping
    it, as batched/windowed dispatch used to) would misreport what ran.
    """
    seeds = list(seeds)
    if not seeds:
        raise ValueError("need at least one lane (seed)")
    if adversaries is None:
        adversaries = [None] * len(seeds)
    adversaries = list(adversaries)
    if len(adversaries) != len(seeds):
        raise ValueError(
            f"{len(adversaries)} adversaries for {len(seeds)} seeds (need one per lane)"
        )
    if trace is not None:
        if len(seeds) > 1:
            raise ValueError(
                "trace recording is scalar-only: run_broadcast_batch got "
                f"trace= with {len(seeds)} lanes — record one lane per "
                "trace, or drop trace= to run batched"
            )
        result = run_broadcast(
            protocol, n, adversaries[0], seed=seeds[0], max_slots=max_slots,
            trace=trace,
        )
        result.extras["backend"] = "scalar-fallback"
        _note_fallback(protocol, "trace= forces the scalar path", 1)
        return [result]
    if adversaries and all(
        adversary is not None
        and hasattr(adversary, "jam_slot")
        and (getattr(adversary, "window_latency", None) or 0) >= 1
        for adversary in adversaries
    ):
        # an all-reactive batch whose every jammer senses with latency >= 1:
        # the arena's windowed lane driver hosts the whole batch in lockstep
        # (bit-identical to the per-lane arena dispatch below, ~10x faster)
        from repro.arena.run import run_broadcast_windowed_batch, supports_protocol

        if supports_protocol(protocol):
            return run_broadcast_windowed_batch(
                protocol, n, adversaries, seeds, max_slots=max_slots
            )
    has_run_batch = hasattr(protocol, "run_batch")
    if not has_run_batch or any(
        hasattr(adversary, "jam_slot") for adversary in adversaries
    ):
        # reactive (adaptive) adversaries cannot run on the oblivious block
        # engine; run_broadcast dispatches those lanes to the arena runtime
        results = []
        fallbacks = 0
        for adversary, seed in zip(adversaries, seeds):
            result = run_broadcast(protocol, n, adversary, seed=seed, max_slots=max_slots)
            if not hasattr(adversary, "jam_slot"):
                # this lane ran the scalar block engine (reactive lanes run
                # the vectorized arena by design and are not stamped)
                result.extras["backend"] = "scalar-fallback"
                fallbacks += 1
            results.append(result)
        if fallbacks:
            _note_fallback(
                protocol,
                "has no run_batch"
                if not has_run_batch
                else "split a mixed reactive/oblivious batch",
                fallbacks,
            )
        return results
    for adversary in adversaries:
        if adversary is not None:
            adversary.reset()
    bnet = BatchNetwork(n, seeds, adversaries, max_slots=max_slots)
    return protocol.run_batch(bnet)
